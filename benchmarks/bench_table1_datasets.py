"""Table 1 — input graph inventory.

Reproduces the paper's Table 1: for every input graph the benchmark builds
the (scaled) synthetic analog, measures construction time, and records the
vertex/edge counts next to the counts the paper reports for the original
data.  The structural summary (degrees, probabilities, clustering) makes the
fidelity of each analog visible.
"""

from __future__ import annotations

import pytest

from repro.datasets.registry import DATASETS
from repro.uncertain.statistics import global_clustering_coefficient, summarize

#: Table 1 rows in the paper's order.
TABLE1_ROWS = [
    "ppi",
    "dblp10",
    "p2p-gnutella08",
    "p2p-gnutella04",
    "p2p-gnutella09",
    "ca-grqc",
    "wiki-vote",
    "ba5000",
    "ba6000",
    "ba7000",
    "ba8000",
    "ba9000",
    "ba10000",
]

#: The DBLP analog is two orders of magnitude larger than everything else;
#: build it at a further reduced scale so the suite stays fast.
EXTRA_SCALE = {"dblp10": 0.02}


@pytest.mark.parametrize("name", TABLE1_ROWS)
def bench_table1_dataset_construction(name, dataset, run_once, record_rows, bench_scale):
    """Build each Table 1 analog and record its structural summary."""
    multiplier = EXTRA_SCALE.get(name, 1.0)
    graph = run_once(lambda: dataset(name, multiplier))
    spec = DATASETS[name]
    summary = summarize(graph)
    record_rows(
        "Table 1",
        "Input graphs (paper sizes vs scaled synthetic analogs)",
        [
            {
                "graph": name,
                "category": spec.category,
                "paper_vertices": spec.paper_vertices,
                "paper_edges": spec.paper_edges,
                "analog_vertices": summary.num_vertices,
                "analog_edges": summary.num_edges,
                "mean_degree": round(summary.mean_degree, 2),
                "mean_probability": round(summary.mean_probability, 3),
                "clustering": round(global_clustering_coefficient(graph), 3),
            }
        ],
        columns=[
            "graph",
            "category",
            "paper_vertices",
            "paper_edges",
            "analog_vertices",
            "analog_edges",
            "mean_degree",
            "mean_probability",
            "clustering",
        ],
    )
    assert summary.num_vertices > 0
    assert summary.num_edges > 0
