"""Session reuse — warm-cache α sweeps vs recompile-per-α free functions.

Not a figure from the paper: this benchmark exercises the session API's
compile-once batching (``MiningSession.sweep``, see ``docs/api.md``).  The
cold baseline calls :func:`mule` once per α — each call compiles the graph
from scratch — while the warm run sweeps the same α values through one
session, which compiles once (asserted via ``cache_info``) and serves every
other point by cheap derivation.  Output parity (cliques *and* counters,
bit for bit) is asserted for every complete run, so the speed-up is never
bought with a semantic change.

The α range sits in the high-threshold regime where enumeration itself is
cheap and compilation is a large share of each call — exactly the regime a
many-(α, graph) service lives in — so the warm sweep must beat the cold
loop on wall clock whenever the runs complete.
"""

from __future__ import annotations

import random
from time import perf_counter

from repro.api import MiningSession
from repro.core.mule import mule
from repro.generators.erdos_renyi import random_uncertain_graph

#: The swept thresholds (≥ 5 points, ascending).  High thresholds keep the
#: searches cheap relative to compilation, which is the term the sweep
#: amortises — the regime the timing assertion below needs to be robust.
ALPHAS = [0.7, 0.75, 0.8, 0.85, 0.9, 0.95]

#: Workload at the default reproduction scale (0.05): dense-ish G(n, p)
#: whose compile cost is a visible share of a high-α enumeration.
BASE_VERTICES = 360
EDGE_DENSITY = 0.25
DEFAULT_SCALE = 0.05


def _workload(bench_scale: float):
    n = max(60, round(BASE_VERTICES * (bench_scale / DEFAULT_SCALE) ** 0.5))
    return random_uncertain_graph(n, EDGE_DENSITY, rng=random.Random(2015))


def bench_session_reuse(bench_scale, run_once, record_rows, bench_controls):
    """Warm-cache sweep vs per-α recompiles at five thresholds."""
    graph = _workload(bench_scale)

    def measure():
        # Interleaved min-of-3 for both phases: a single wall-clock sample
        # is too fragile to gate CI on (one scheduler stall during the warm
        # phase would fail the job), while the minimum of a few alternating
        # repetitions cancels both noise spikes and clock drift.
        cold_samples, warm_samples = [], []
        cold = warm = info = None
        for _ in range(3):
            started = perf_counter()
            cold = [mule(graph, alpha, controls=bench_controls) for alpha in ALPHAS]
            cold_samples.append(perf_counter() - started)

            session = MiningSession(graph)
            started = perf_counter()
            warm = session.sweep(ALPHAS, controls=bench_controls)
            warm_samples.append(perf_counter() - started)
            info = session.cache_info()
        return cold, min(cold_samples), warm, min(warm_samples), info

    cold, cold_seconds, warm, warm_seconds, info = run_once(measure)

    rows = [
        {
            "graph": f"er-{graph.num_vertices}",
            "alpha": alpha,
            "num_cliques": warm_outcome.num_cliques,
            "cold_seconds": round(cold_result.elapsed_seconds, 4),
            "warm_seconds": round(warm_outcome.elapsed_seconds, 4),
            "stop_reason": warm_outcome.stop_reason,
        }
        for alpha, cold_result, warm_outcome in zip(ALPHAS, cold, warm)
    ]
    rows.append(
        {
            "graph": f"er-{graph.num_vertices}",
            "alpha": "total",
            "num_cliques": sum(outcome.num_cliques for outcome in warm),
            "cold_seconds": round(cold_seconds, 4),
            "warm_seconds": round(warm_seconds, 4),
            "stop_reason": f"speedup={cold_seconds / max(warm_seconds, 1e-9):.2f}x",
        }
    )
    record_rows(
        "Session reuse",
        "warm-cache session.sweep vs recompile-per-alpha mule()",
        rows,
        columns=[
            "graph",
            "alpha",
            "num_cliques",
            "cold_seconds",
            "warm_seconds",
            "stop_reason",
        ],
    )

    # The tentpole guarantee: one compilation for the whole sweep...
    assert info.compilations == 1, info
    assert info.derivations == len(ALPHAS) - 1, info

    complete = all(
        not cold_result.truncated and not warm_outcome.truncated
        for cold_result, warm_outcome in zip(cold, warm)
    )
    if complete:
        # ...with bit-identical output (cliques, probabilities, counters)...
        for cold_result, warm_outcome in zip(cold, warm):
            assert {r.vertices: r.probability for r in warm_outcome} == {
                r.vertices: r.probability for r in cold_result
            }
            assert warm_outcome.statistics == cold_result.statistics
        # ...and a genuine wall-clock win over recompiling per α.
        assert warm_seconds < cold_seconds, (
            f"warm sweep ({warm_seconds:.4f}s) did not beat "
            f"recompile-per-alpha ({cold_seconds:.4f}s)"
        )
