"""Observability overhead — metrics enabled vs disabled on the Figure 1 grid.

The instrumentation contract (`docs/observability.md`) is that metrics
*observe* the pipeline without perturbing it: enumeration output is
bit-identical with the registry on or off, and the wall-time cost of the
instrument branches is small.  This benchmark makes both claims
measurable: it reruns the Figure 1 MULE grid twice through the full
session layer (cache lookups, engine counter fold-in — the instrumented
hot path), once with the global registry and tracer enabled and once
disabled (the same switch ``REPRO_DISABLE_METRICS=1`` throws at process
start), asserts per-cell output identity, and writes a machine-readable
summary to ``BENCH_obs.json`` at the repository root: per-cell wall
times, the per-cell geometric-mean overhead ratio, dataset scale/seed.

Setting ``REPRO_BENCH_ASSERT_OBS_OVERHEAD`` turns the geomean ratio into
a hard assertion (bar: 1.05, or ``REPRO_BENCH_OBS_OVERHEAD_MAX``) — what
the CI observability job runs.
"""

from __future__ import annotations

import json
import math
import os
import time
from pathlib import Path

from repro.api import EnumerationRequest, MiningSession
from repro.obs import registry as obs_registry
from repro.obs import tracer as obs_tracer

#: The Figure 1 grid (same cells as bench_fig1_mule_vs_dfsnoip).
FIGURE1_ALPHAS = [0.9, 0.8, 0.0005, 0.0001]
FIGURE1_GRAPHS = ["wiki-vote", "ba5000", "ca-grqc", "ppi"]


def _best_of(func, reps: int):
    """Minimum wall time over ``reps`` runs, plus the last run's outcome."""
    best = math.inf
    outcome = None
    for _ in range(reps):
        start = time.perf_counter()
        outcome = func()
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
    return best, outcome


def bench_obs_overhead(dataset, run_once, record_rows, bench_scale, bench_seed):
    """Enabled-vs-disabled wall time per Figure 1 cell, output identity asserted.

    Each cell builds a fresh :class:`MiningSession` per run so every run
    pays the same compile + cache work; the enabled/disabled pair differ
    only in the instrument branches.  Wall times are best-of-N
    (``REPRO_BENCH_OBS_REPS``, default 3) — enumeration is deterministic,
    so the minimum is the least-noisy estimator.
    """
    reps = int(os.environ.get("REPRO_BENCH_OBS_REPS", "3"))
    registry = obs_registry()
    tracer = obs_tracer()
    cells = []

    def run_grid():
        for graph_name in FIGURE1_GRAPHS:
            graph = dataset(graph_name)
            for alpha in FIGURE1_ALPHAS:
                request = EnumerationRequest(algorithm="mule", alpha=alpha)

                def run():
                    return MiningSession(graph).enumerate(request)

                registry.set_enabled(True)
                tracer.set_enabled(True)
                try:
                    enabled_s, enabled_outcome = _best_of(run, reps)
                finally:
                    registry.set_enabled(False)
                    tracer.set_enabled(False)
                try:
                    disabled_s, disabled_outcome = _best_of(run, reps)
                finally:
                    registry.set_enabled(True)
                    tracer.set_enabled(True)
                disabled_outcome.assert_matches(enabled_outcome)
                cells.append(
                    {
                        "graph": graph_name,
                        "alpha": alpha,
                        "num_cliques": enabled_outcome.num_cliques,
                        "enabled_seconds": enabled_s,
                        "disabled_seconds": disabled_s,
                        "overhead": enabled_s / max(disabled_s, 1e-12),
                    }
                )

    run_once(run_grid)

    enabled_total = sum(c["enabled_seconds"] for c in cells)
    disabled_total = sum(c["disabled_seconds"] for c in cells)
    geomean = math.exp(sum(math.log(c["overhead"]) for c in cells) / len(cells))
    summary = {
        "benchmark": "obs-overhead",
        "datasets": FIGURE1_GRAPHS,
        "alphas": FIGURE1_ALPHAS,
        "scale": bench_scale,
        "seed": bench_seed,
        "reps": reps,
        "cells": [
            {
                **c,
                "enabled_seconds": round(c["enabled_seconds"], 6),
                "disabled_seconds": round(c["disabled_seconds"], 6),
                "overhead": round(c["overhead"], 4),
            }
            for c in cells
        ],
        "enabled_total_seconds": round(enabled_total, 6),
        "disabled_total_seconds": round(disabled_total, 6),
        "overall_overhead": round(enabled_total / max(disabled_total, 1e-12), 4),
        "geomean_overhead": round(geomean, 4),
        "parity": True,
    }
    output = Path(__file__).resolve().parent.parent / "BENCH_obs.json"
    output.write_text(json.dumps(summary, indent=2) + "\n", encoding="utf-8")

    record_rows(
        "Observability overhead",
        "metrics enabled vs disabled wall time (seconds) per Figure 1 cell",
        [
            {
                "graph": c["graph"],
                "alpha": c["alpha"],
                "enabled_s": round(c["enabled_seconds"], 4),
                "disabled_s": round(c["disabled_seconds"], 4),
                "overhead": round(c["overhead"], 3),
            }
            for c in cells
        ],
        columns=["graph", "alpha", "enabled_s", "disabled_s", "overhead"],
    )

    # The bar binds only on explicit opt-in (the CI observability job):
    # busy machines measure scheduler noise, not instrument branches.
    if os.environ.get("REPRO_BENCH_ASSERT_OBS_OVERHEAD"):
        bar = float(os.environ.get("REPRO_BENCH_OBS_OVERHEAD_MAX", "1.05"))
        assert geomean <= bar, (
            f"metrics overhead geomean {geomean:.3f}x exceeds the {bar:.2f}x "
            "bar (cells: "
            + ", ".join(
                f"{c['graph']}/{c['alpha']}={c['overhead']:.3f}x" for c in cells
            )
            + ")"
        )
