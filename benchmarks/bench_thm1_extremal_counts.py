"""Theorem 1 — the maximum number of α-maximal cliques.

Not a figure but the paper's analytical centerpiece (Section 3): for any
``0 < α < 1`` the maximum number of α-maximal cliques on ``n`` vertices is
exactly ``C(n, ⌊n/2⌋)``, attained by the Lemma 1 construction, and strictly
above the Moon–Moser bound ``≈ 3^{n/3}`` that governs deterministic graphs.

The benchmark enumerates the extremal graphs for growing ``n`` and records
the three quantities side by side; it also measures enumeration cost on the
worst-case instances, which is the regime of the ``O(n · 2^n)`` analysis.
"""

from __future__ import annotations

import pytest

from repro.core.bounds import (
    extremal_uncertain_graph,
    moon_moser_bound,
    moon_moser_graph,
    uncertain_clique_bound,
)
from repro.core.mule import mule

EXTREMAL_SIZES = [6, 8, 10, 12, 14, 16]
ALPHA = 0.5


@pytest.mark.parametrize("n", EXTREMAL_SIZES)
def bench_thm1_extremal_graph(n, run_once, record_rows):
    """Enumerate the Lemma 1 extremal graph and check it attains the bound."""
    graph = extremal_uncertain_graph(n, ALPHA)
    # The 1 - 1e-9 factor guards against floating-point rounding of the
    # κ-fold probability product (documented in repro.core.bounds).
    result = run_once(mule, graph, ALPHA * (1 - 1e-9))
    record_rows(
        "Theorem 1",
        "Extremal uncertain graphs: output vs the C(n, n//2) and Moon-Moser bounds",
        [
            {
                "n": n,
                "moon_moser_bound": moon_moser_bound(n),
                "theorem1_bound": uncertain_clique_bound(n, ALPHA),
                "extremal_graph_output": result.num_cliques,
                "seconds": round(result.elapsed_seconds, 4),
            }
        ],
        columns=[
            "n",
            "moon_moser_bound",
            "theorem1_bound",
            "extremal_graph_output",
            "seconds",
        ],
    )
    assert result.num_cliques == uncertain_clique_bound(n, ALPHA)
    assert result.num_cliques > moon_moser_bound(n)


@pytest.mark.parametrize("n", [9, 12, 15])
def bench_thm1_moon_moser_worst_case(n, run_once, record_rows):
    """The deterministic worst case (α = 1): Moon–Moser graphs."""
    graph = moon_moser_graph(n)
    result = run_once(mule, graph, 1.0)
    record_rows(
        "Theorem 1 (deterministic)",
        "Moon-Moser graphs at alpha = 1",
        [
            {
                "n": n,
                "moon_moser_bound": moon_moser_bound(n),
                "output": result.num_cliques,
                "seconds": round(result.elapsed_seconds, 4),
            }
        ],
        columns=["n", "moon_moser_bound", "output", "seconds"],
    )
    assert result.num_cliques == moon_moser_bound(n)
