"""Shared infrastructure for the benchmark suite.

Every benchmark module reproduces one table or figure of the paper's
evaluation (see DESIGN.md for the experiment index).  This conftest
provides:

* ``bench_scale`` — the dataset scale factor.  The paper's graphs have
  5 000–685 000 vertices and its implementation is Java; this pure-Python
  reproduction defaults to a reduced scale so the whole suite finishes in
  minutes.  Override with ``REPRO_BENCH_SCALE=0.2 pytest benchmarks/ ...``.
* ``dataset`` — cached, seed-pinned construction of the Table 1 analogs.
* ``record_rows`` — a collector for paper-style result rows; everything
  recorded is printed in the terminal summary (and therefore lands in
  ``bench_output.txt``) together with the reproduction scale.
* ``run_once`` — run a callable exactly once under pytest-benchmark
  (the enumerations here take 0.1 s – 10 s, so statistical repetition is
  wasteful; the structural counters recorded alongside are deterministic).
* ``bench_controls`` — optional engine run controls built from
  ``REPRO_BENCH_MAX_CLIQUES`` / ``REPRO_BENCH_TIME_BUDGET``.  Benches that
  thread the fixture through (currently the Figure 1 comparison, used as
  the CI smoke run) are bounded on slow machines; truncated results skip
  output-agreement assertions and record their ``stop_reason``.  The other
  figure benches assert shape properties that are only meaningful for
  complete enumerations, so they opt in as they gain truncation-safe
  assertions.
"""

from __future__ import annotations

import os
from collections import OrderedDict

import pytest

from repro.analysis.comparison import format_table
from repro.core.engine import RunControls
from repro.datasets.loaders import load_cached_dataset
from repro.uncertain.graph import UncertainGraph

_RESULT_STORE: "OrderedDict[str, dict]" = OrderedDict()


def _bench_scale() -> float:
    return float(os.environ.get("REPRO_BENCH_SCALE", "0.05"))


def _bench_seed() -> int:
    return int(os.environ.get("REPRO_BENCH_SEED", "2015"))


@pytest.fixture(scope="session")
def bench_scale() -> float:
    """Dataset scale factor used throughout the benchmark suite."""
    return _bench_scale()


@pytest.fixture(scope="session")
def bench_seed() -> int:
    """Seed used for dataset generation, so runs are reproducible."""
    return _bench_seed()


@pytest.fixture(scope="session")
def bench_controls() -> RunControls | None:
    """Engine run controls from the environment (``None`` = unlimited).

    ``REPRO_BENCH_MAX_CLIQUES=1000`` and/or ``REPRO_BENCH_TIME_BUDGET=5``
    (seconds, per enumeration) bound every benchmark that threads this
    fixture through (see the module docstring for which ones do), which
    keeps smoke runs on tiny machines predictable.
    """
    max_cliques = os.environ.get("REPRO_BENCH_MAX_CLIQUES")
    time_budget = os.environ.get("REPRO_BENCH_TIME_BUDGET")
    if max_cliques is None and time_budget is None:
        return None
    return RunControls(
        max_cliques=int(max_cliques) if max_cliques is not None else None,
        time_budget_seconds=float(time_budget) if time_budget is not None else None,
    )


@pytest.fixture(scope="session")
def dataset(bench_scale, bench_seed):
    """Factory fixture: ``dataset(name, scale_multiplier=1.0)`` → UncertainGraph."""
    cache: dict[tuple, UncertainGraph] = {}

    def load(name: str, scale_multiplier: float = 1.0) -> UncertainGraph:
        key = (name, scale_multiplier)
        if key not in cache:
            cache[key] = load_cached_dataset(
                name, scale=bench_scale * scale_multiplier, seed=bench_seed
            )
        return cache[key]

    return load


@pytest.fixture(scope="session")
def record_rows():
    """Collector: ``record_rows(experiment_id, title, rows, columns=None)``.

    Rows recorded here are printed as aligned tables in the terminal summary
    so that ``pytest benchmarks/ --benchmark-only | tee bench_output.txt``
    captures the paper-style series alongside pytest-benchmark's timings.
    """

    def record(experiment: str, title: str, rows, columns=None) -> None:
        entry = _RESULT_STORE.setdefault(
            experiment, {"title": title, "rows": [], "columns": columns}
        )
        entry["rows"].extend(rows)
        if columns is not None:
            entry["columns"] = columns

    return record


@pytest.fixture
def run_once(benchmark):
    """Run ``func`` exactly once under pytest-benchmark and return its result."""

    def runner(func, *args, **kwargs):
        return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    """Print all recorded paper-style tables at the end of the run."""
    if not _RESULT_STORE:
        return
    write = terminalreporter.write_line
    write("")
    write("=" * 78)
    write(
        "Paper-style reproduction tables "
        f"(dataset scale={_bench_scale():g}, seed={_bench_seed()})"
    )
    write(
        "Absolute runtimes are not comparable to the paper (pure Python vs Java, "
        "scaled-down synthetic analogs); compare shapes and ratios."
    )
    write("=" * 78)
    for experiment, entry in _RESULT_STORE.items():
        write("")
        write(f"--- {experiment}: {entry['title']} ---")
        write(format_table(entry["rows"], columns=entry["columns"]))
    write("")
