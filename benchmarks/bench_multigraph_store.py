"""Multi-graph hosting — warm-cache throughput and LRU eviction behaviour.

Not a figure from the paper: this benchmark smoke-tests the resource-model
redesign (``GraphStore`` + ``/v2/graphs``; see ``docs/service.md``) the
way ``bench_service_throughput.py`` covers the single-graph surface.  Two
measurements:

* **warm-cache rps with N graphs resident** — a real in-process HTTP
  server hosts several graphs; after one warm-up sweep per graph, client
  threads hammer ``POST /v2/graphs/{name}/enumerate`` round-robin across
  the catalog.  Asserted: every outcome is clique- and counter-identical
  to the local session run on its graph, and every graph compiled exactly
  **once** (per-graph ``/v1/stats`` counters — the multi-graph cache
  isolates residencies);
* **eviction under a small LRU budget** — a store bounded at
  ``max_graphs=3`` receives a stream of uploads; the run asserts the
  budget holds, pinned catalog graphs survive, evicted graphs drop their
  compiled artifacts, and a re-used graph stays resident (LRU touching
  works).
"""

from __future__ import annotations

import random
from concurrent.futures import ThreadPoolExecutor
from time import perf_counter

from repro.api import EnumerationRequest, GraphStore, MiningSession
from repro.generators.erdos_renyi import random_uncertain_graph
from repro.service import MiningServer, connect

ALPHA = 0.8
CLIENT_THREADS = 4
DEFAULT_SCALE = 0.05

#: Resident catalog size and per-graph request volume at default scale.
NUM_GRAPHS = 4
BASE_REQUESTS = 96

BASE_VERTICES = 150
EDGE_DENSITY = 0.25


def _catalog(bench_scale: float) -> dict:
    n = max(30, round(BASE_VERTICES * (bench_scale / DEFAULT_SCALE) ** 0.5))
    return {
        f"er{index}": random_uncertain_graph(
            n + 7 * index, EDGE_DENSITY, rng=random.Random(100 + index)
        )
        for index in range(NUM_GRAPHS)
    }


def bench_multigraph_warm_rps(bench_scale, run_once, record_rows):
    """Round-robin remote enumerations across N resident graphs."""
    graphs = _catalog(bench_scale)
    request = EnumerationRequest(algorithm="mule", alpha=ALPHA)
    references = {
        name: MiningSession(graph).enumerate(request)
        for name, graph in graphs.items()
    }
    num_requests = max(24, round(BASE_REQUESTS * bench_scale / DEFAULT_SCALE))
    names = list(graphs)

    def measure():
        store = GraphStore()
        for name, graph in graphs.items():
            store.add(graph, name=name, pin=True)
        with MiningServer(store, port=0, max_workers=CLIENT_THREADS) as server:
            remote = connect(server.url)
            sessions = {name: remote.session(name) for name in names}
            for session in sessions.values():
                session.enumerate(request)  # warm-up: the one compilation
            started = perf_counter()
            with ThreadPoolExecutor(max_workers=CLIENT_THREADS) as pool:
                outcomes = list(
                    pool.map(
                        lambda i: (
                            names[i % len(names)],
                            sessions[names[i % len(names)]].enumerate(request),
                        ),
                        range(num_requests),
                    )
                )
            elapsed = perf_counter() - started
            per_graph = {
                name: sessions[name].cache_info() for name in names
            }
            stats = remote.stats()
        return outcomes, elapsed, per_graph, stats

    outcomes, elapsed, per_graph, stats = run_once(measure)

    requests_per_second = num_requests / max(elapsed, 1e-9)
    record_rows(
        "Multi-graph hosting throughput",
        f"remote enumerate() round-robin over {NUM_GRAPHS} resident graphs",
        [
            {
                "graphs_resident": NUM_GRAPHS,
                "alpha": ALPHA,
                "requests": num_requests,
                "client_threads": CLIENT_THREADS,
                "seconds": round(elapsed, 4),
                "requests_per_sec": round(requests_per_second, 1),
                "total_compilations": stats["cache"]["compilations"],
            }
        ],
        columns=[
            "graphs_resident",
            "alpha",
            "requests",
            "client_threads",
            "seconds",
            "requests_per_sec",
            "total_compilations",
        ],
    )

    # Parity per graph: the wire and the shared store add zero drift.
    assert len(outcomes) == num_requests
    for name, outcome in outcomes:
        outcome.assert_matches(references[name])
    # Each graph compiled exactly once; the totals line up.
    for name, info in per_graph.items():
        assert info.compilations == 1, (name, info)
    assert stats["cache"]["compilations"] == NUM_GRAPHS, stats
    assert stats["http"]["failed"] == 0, stats
    assert requests_per_second > 0


def bench_store_eviction(bench_scale, run_once, record_rows):
    """An LRU-bounded store under an upload stream: budget + pins hold."""
    request = EnumerationRequest(algorithm="mule", alpha=ALPHA)
    pinned_graph = random_uncertain_graph(60, EDGE_DENSITY, rng=random.Random(7))
    hot_graph = random_uncertain_graph(64, EDGE_DENSITY, rng=random.Random(8))
    uploads = [
        random_uncertain_graph(40 + i, EDGE_DENSITY, rng=random.Random(500 + i))
        for i in range(12)
    ]

    def measure():
        store = GraphStore(max_graphs=3)
        store.add(pinned_graph, name="catalog", pin=True)
        hot = store.add(hot_graph, name="hot")
        store.session("hot").enumerate(request)
        evicted_with_artifacts = 0
        started = perf_counter()
        for graph in uploads:
            info = store.add(graph)
            store.session(info.fingerprint).enumerate(request)
            # Touch the hot graph every round so LRU keeps it resident.
            store.session("hot")
            if store.cache.info_for(info.fingerprint).entries == 0:
                evicted_with_artifacts += 1
        elapsed = perf_counter() - started
        return store, hot, evicted_with_artifacts, elapsed

    store, hot, _, elapsed = run_once(measure)

    resident = [info.name or info.fingerprint[:8] for info in store.list()]
    record_rows(
        "Store eviction under a 3-graph LRU budget",
        "12 uploads through a bounded GraphStore (pinned + hot graphs survive)",
        [
            {
                "budget": 3,
                "uploads": len(uploads),
                "resident_after": len(store),
                "cache_entries": store.cache_info().entries,
                "seconds": round(elapsed, 4),
                "survivors": ", ".join(resident),
            }
        ],
        columns=[
            "budget",
            "uploads",
            "resident_after",
            "cache_entries",
            "seconds",
            "survivors",
        ],
    )

    # The budget held, the pin held, and the touched graph stayed hot.
    assert len(store) == 3
    assert "catalog" in store
    assert "hot" in store
    assert store.cache_info_for("hot").entries > 0
    # Every evicted upload's artifacts left the shared cache with it.
    for graph in uploads[:-1]:
        fingerprint = graph.fingerprint()
        if fingerprint not in store:
            assert store.cache.info_for(fingerprint).entries == 0
