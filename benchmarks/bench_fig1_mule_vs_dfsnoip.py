"""Figure 1 — MULE vs DFS-NOIP runtime comparison.

The paper's Figure 1 compares the two enumerators on four graphs
(wiki-vote, BA5000, ca-GrQc, PPI) at four thresholds
(α ∈ {0.9, 0.8, 0.0005, 0.0001}) and finds MULE faster everywhere, with the
gap widening sharply for small α (e.g. 25 s vs 4 400 s on ca-GrQc at
α = 0.0001).

This benchmark reruns exactly that grid on the scaled analogs.  Both
algorithms must produce identical outputs; the recorded rows contain the
runtimes, their ratio, and the (deterministic) probability-multiplication
counts, which show the same effect independent of machine noise.

``bench_fig1_kernel_backends`` reruns the same grid once more, MULE only,
timing the python kernel against the vectorised kernel backend
(:mod:`repro.core.engine.backends`) on identical compiled graphs.  It
asserts bit-identical outputs per cell and writes a machine-readable
summary to ``BENCH_kernel.json`` at the repository root: per-cell wall
times and speedups, the time-weighted overall speedup, the per-cell
geometric-mean speedup, dataset scale/seed, and the host core count.  On
hosts with at least 4 cores, setting ``REPRO_BENCH_ASSERT_KERNEL_SPEEDUP``
turns the geometric-mean speedup into a hard assertion (bar: 2.0, or
``REPRO_BENCH_KERNEL_SPEEDUP_MIN``) — what the CI kernel-parity job runs.
"""

from __future__ import annotations

import json
import math
import os
import time
from pathlib import Path

import pytest

from repro.core.dfs_noip import dfs_noip
from repro.core.engine import compile_graph
from repro.core.engine.backends import kernel_capabilities, run_vector_search
from repro.core.engine.kernel import run_search
from repro.core.engine.strategies import MuleStrategy
from repro.core.mule import mule
from repro.core.result import SearchStatistics

#: The four panels of Figure 1.
FIGURE1_ALPHAS = [0.9, 0.8, 0.0005, 0.0001]

#: The four graphs on the x-axis of each panel.
FIGURE1_GRAPHS = ["wiki-vote", "ba5000", "ca-grqc", "ppi"]


@pytest.mark.parametrize("graph_name", FIGURE1_GRAPHS)
@pytest.mark.parametrize("alpha", FIGURE1_ALPHAS)
def bench_fig1_mule(graph_name, alpha, dataset, run_once, record_rows, bench_controls):
    """Time MULE on one (graph, α) cell of Figure 1."""
    graph = dataset(graph_name)
    result = run_once(mule, graph, alpha, controls=bench_controls)
    record_rows(
        "Figure 1",
        "MULE vs DFS-NOIP runtime (seconds) per graph and alpha",
        [
            {
                "graph": graph_name,
                "alpha": alpha,
                "algorithm": "mule",
                "num_cliques": result.num_cliques,
                "seconds": round(result.elapsed_seconds, 4),
                "prob_multiplications": result.statistics.probability_multiplications,
            }
        ],
        columns=[
            "graph",
            "alpha",
            "algorithm",
            "num_cliques",
            "seconds",
            "prob_multiplications",
        ],
    )
    assert result.num_cliques > 0


@pytest.mark.parametrize("graph_name", FIGURE1_GRAPHS)
@pytest.mark.parametrize("alpha", FIGURE1_ALPHAS)
def bench_fig1_dfs_noip(graph_name, alpha, dataset, run_once, record_rows, bench_controls):
    """Time DFS-NOIP on one (graph, α) cell of Figure 1 and check agreement."""
    graph = dataset(graph_name)
    result = run_once(dfs_noip, graph, alpha, controls=bench_controls)
    reference = mule(graph, alpha, controls=bench_controls)
    if not (result.truncated or reference.truncated):
        assert result.vertex_sets() == reference.vertex_sets()
    record_rows(
        "Figure 1",
        "MULE vs DFS-NOIP runtime (seconds) per graph and alpha",
        [
            {
                "graph": graph_name,
                "alpha": alpha,
                "algorithm": "dfs-noip",
                "num_cliques": result.num_cliques,
                "seconds": round(result.elapsed_seconds, 4),
                "prob_multiplications": result.statistics.probability_multiplications,
            }
        ],
    )
    # The paper's headline shape: DFS-NOIP does much more probability work,
    # with the gap widening as α decreases.  At large α both algorithms do
    # little work on the scaled-down analogs and the (approximate) counters
    # are within noise of each other, so the assertion targets the small-α
    # cells where the paper's effect is strongest.
    if alpha < 0.5 and not (result.truncated or reference.truncated):
        assert (
            result.statistics.probability_multiplications
            > reference.statistics.probability_multiplications
        )


def _host_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux hosts
        return os.cpu_count() or 1


def _best_of(kernel_run, reps: int) -> tuple[float, list, SearchStatistics]:
    """Minimum wall time over ``reps`` runs, plus one run's output/counters."""
    best = math.inf
    pairs: list = []
    statistics = SearchStatistics()
    for _ in range(reps):
        stats = SearchStatistics()
        start = time.perf_counter()
        out = list(kernel_run(stats))
        elapsed = time.perf_counter() - start
        if elapsed < best:
            best, pairs, statistics = elapsed, out, stats
    return best, pairs, statistics


def bench_fig1_kernel_backends(
    dataset, run_once, record_rows, bench_scale, bench_seed
):
    """Python kernel vs vector kernel over the Figure 1 MULE grid.

    Each cell compiles once and runs both kernels on the same artifact, so
    the measurement isolates the kernel hot loop.  Wall times are best-of-N
    (``REPRO_BENCH_KERNEL_REPS``, default 3) — enumeration is deterministic,
    so the minimum is the least-noisy estimator.  Outputs must be
    bit-identical per cell: emission order, probabilities and all search
    counters.
    """
    reps = int(os.environ.get("REPRO_BENCH_KERNEL_REPS", "3"))
    cells = []

    def run_grid():
        for graph_name in FIGURE1_GRAPHS:
            graph = dataset(graph_name)
            for alpha in FIGURE1_ALPHAS:
                compiled = compile_graph(graph, alpha=alpha)
                py_s, py_pairs, py_stats = _best_of(
                    lambda stats: run_search(
                        compiled, alpha, MuleStrategy(), statistics=stats
                    ),
                    reps,
                )
                vec_s, vec_pairs, vec_stats = _best_of(
                    lambda stats: run_vector_search(
                        compiled, alpha, MuleStrategy(), statistics=stats
                    ),
                    reps,
                )
                assert vec_pairs == py_pairs, (graph_name, alpha)
                assert vec_stats == py_stats, (graph_name, alpha)
                cells.append(
                    {
                        "graph": graph_name,
                        "alpha": alpha,
                        "num_cliques": len(py_pairs),
                        "python_seconds": py_s,
                        "vector_seconds": vec_s,
                        "speedup": py_s / max(vec_s, 1e-12),
                    }
                )

    run_once(run_grid)

    python_total = sum(c["python_seconds"] for c in cells)
    vector_total = sum(c["vector_seconds"] for c in cells)
    overall = python_total / max(vector_total, 1e-12)
    geomean = math.exp(
        sum(math.log(c["speedup"]) for c in cells) / len(cells)
    )
    summary = {
        "benchmark": "fig1-kernel-backends",
        "datasets": FIGURE1_GRAPHS,
        "alphas": FIGURE1_ALPHAS,
        "scale": bench_scale,
        "seed": bench_seed,
        "reps": reps,
        "host_cores": _host_cores(),
        "capabilities": [c._asdict() for c in kernel_capabilities()],
        "cells": [
            {**c, "python_seconds": round(c["python_seconds"], 6),
             "vector_seconds": round(c["vector_seconds"], 6),
             "speedup": round(c["speedup"], 3)}
            for c in cells
        ],
        "python_total_seconds": round(python_total, 6),
        "vector_total_seconds": round(vector_total, 6),
        "overall_speedup": round(overall, 3),
        "geomean_speedup": round(geomean, 3),
        "parity": True,
    }
    output = Path(__file__).resolve().parent.parent / "BENCH_kernel.json"
    output.write_text(json.dumps(summary, indent=2) + "\n", encoding="utf-8")

    record_rows(
        "Kernel backends",
        "python vs vector kernel wall time (seconds) per Figure 1 cell",
        [
            {
                "graph": c["graph"],
                "alpha": c["alpha"],
                "python_s": round(c["python_seconds"], 4),
                "vector_s": round(c["vector_seconds"], 4),
                "speedup": round(c["speedup"], 2),
            }
            for c in cells
        ],
        columns=["graph", "alpha", "python_s", "vector_s", "speedup"],
    )

    # The speedup bar only binds where it is meaningful: an explicitly
    # opted-in run (the CI kernel job) on a host with real cores.  Loaded
    # single-core runners measure scheduler noise, not the kernel.
    if os.environ.get("REPRO_BENCH_ASSERT_KERNEL_SPEEDUP") and _host_cores() >= 4:
        bar = float(os.environ.get("REPRO_BENCH_KERNEL_SPEEDUP_MIN", "2.0"))
        assert geomean >= bar, (
            f"vector kernel geomean speedup {geomean:.2f}x is below the "
            f"{bar:.1f}x bar (cells: "
            + ", ".join(
                f"{c['graph']}/{c['alpha']}={c['speedup']:.2f}x" for c in cells
            )
            + ")"
        )
