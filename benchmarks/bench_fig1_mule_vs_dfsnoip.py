"""Figure 1 — MULE vs DFS-NOIP runtime comparison.

The paper's Figure 1 compares the two enumerators on four graphs
(wiki-vote, BA5000, ca-GrQc, PPI) at four thresholds
(α ∈ {0.9, 0.8, 0.0005, 0.0001}) and finds MULE faster everywhere, with the
gap widening sharply for small α (e.g. 25 s vs 4 400 s on ca-GrQc at
α = 0.0001).

This benchmark reruns exactly that grid on the scaled analogs.  Both
algorithms must produce identical outputs; the recorded rows contain the
runtimes, their ratio, and the (deterministic) probability-multiplication
counts, which show the same effect independent of machine noise.
"""

from __future__ import annotations

import pytest

from repro.core.dfs_noip import dfs_noip
from repro.core.mule import mule

#: The four panels of Figure 1.
FIGURE1_ALPHAS = [0.9, 0.8, 0.0005, 0.0001]

#: The four graphs on the x-axis of each panel.
FIGURE1_GRAPHS = ["wiki-vote", "ba5000", "ca-grqc", "ppi"]


@pytest.mark.parametrize("graph_name", FIGURE1_GRAPHS)
@pytest.mark.parametrize("alpha", FIGURE1_ALPHAS)
def bench_fig1_mule(graph_name, alpha, dataset, run_once, record_rows, bench_controls):
    """Time MULE on one (graph, α) cell of Figure 1."""
    graph = dataset(graph_name)
    result = run_once(mule, graph, alpha, controls=bench_controls)
    record_rows(
        "Figure 1",
        "MULE vs DFS-NOIP runtime (seconds) per graph and alpha",
        [
            {
                "graph": graph_name,
                "alpha": alpha,
                "algorithm": "mule",
                "num_cliques": result.num_cliques,
                "seconds": round(result.elapsed_seconds, 4),
                "prob_multiplications": result.statistics.probability_multiplications,
            }
        ],
        columns=[
            "graph",
            "alpha",
            "algorithm",
            "num_cliques",
            "seconds",
            "prob_multiplications",
        ],
    )
    assert result.num_cliques > 0


@pytest.mark.parametrize("graph_name", FIGURE1_GRAPHS)
@pytest.mark.parametrize("alpha", FIGURE1_ALPHAS)
def bench_fig1_dfs_noip(graph_name, alpha, dataset, run_once, record_rows, bench_controls):
    """Time DFS-NOIP on one (graph, α) cell of Figure 1 and check agreement."""
    graph = dataset(graph_name)
    result = run_once(dfs_noip, graph, alpha, controls=bench_controls)
    reference = mule(graph, alpha, controls=bench_controls)
    if not (result.truncated or reference.truncated):
        assert result.vertex_sets() == reference.vertex_sets()
    record_rows(
        "Figure 1",
        "MULE vs DFS-NOIP runtime (seconds) per graph and alpha",
        [
            {
                "graph": graph_name,
                "alpha": alpha,
                "algorithm": "dfs-noip",
                "num_cliques": result.num_cliques,
                "seconds": round(result.elapsed_seconds, 4),
                "prob_multiplications": result.statistics.probability_multiplications,
            }
        ],
    )
    # The paper's headline shape: DFS-NOIP does much more probability work,
    # with the gap widening as α decreases.  At large α both algorithms do
    # little work on the scaled-down analogs and the (approximate) counters
    # are within noise of each other, so the assertion targets the small-α
    # cells where the paper's effect is strongest.
    if alpha < 0.5 and not (result.truncated or reference.truncated):
        assert (
            result.statistics.probability_multiplications
            > reference.statistics.probability_multiplications
        )
