"""Job streaming — time-to-first-record and memory, streamed vs buffered.

Not a figure from the paper: this benchmark smoke-tests the async job
pipeline (``POST /v2/jobs`` + NDJSON result streaming, see
``docs/service.md``) the way ``bench_service_throughput`` covers the
synchronous path.  A real HTTP server runs in-process on an ephemeral
port and one enumeration with a few thousand result cliques is fetched
two ways:

* **buffered** — synchronous ``RemoteSession.enumerate()``: the server
  materialises the full outcome, encodes one JSON body, the client parses
  it whole.  First record and last record arrive together.
* **streamed** — ``submit()`` + ``RemoteJob.iter_results()``: pages flow
  as the kernel emits them, so the first record lands while the server is
  still enumerating.

Asserted invariants:

* the streamed reassembly is clique- and counter-identical to a local
  session run (``assert_matches`` — parity is never traded for latency);
* **bounded TTFR**: time-to-first-record of the streamed path beats the
  buffered path's *total* wall clock (guarded against sub-50 ms runs,
  where scheduling noise dominates and the comparison is meaningless).

Peak RSS (``ru_maxrss``) is sampled around each phase and recorded in the
summary table.  It is reported, not asserted: the high-water mark is
process-wide and monotone, and with the server in-process both phases
share one address space, so an inequality between the two deltas would
pin allocator behaviour rather than the pipeline's buffering bound.
"""

from __future__ import annotations

import random
import resource
from time import perf_counter

from repro.api import EnumerationRequest, MiningSession
from repro.generators.erdos_renyi import random_uncertain_graph
from repro.service import MiningServer, RemoteSession

#: Low threshold → thousands of result cliques, so transfer cost (the
#: thing streaming pipelines) dominates the measured path.
ALPHA = 0.4

DEFAULT_SCALE = 0.05
BASE_VERTICES = 400
EDGE_DENSITY = 0.12

#: Records per streamed chunk — small enough that many pages flow, large
#: enough that framing overhead stays off the critical path.
PAGE_SIZE = 64

#: Below this buffered wall clock the TTFR comparison is scheduling noise.
MIN_MEANINGFUL_SECONDS = 0.05


def _workload(bench_scale: float):
    n = max(60, round(BASE_VERTICES * (bench_scale / DEFAULT_SCALE) ** 0.5))
    return random_uncertain_graph(n, EDGE_DENSITY, rng=random.Random(2015))


def _peak_rss_kb() -> int:
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss


def bench_job_streaming_ttfr(bench_scale, run_once, record_rows):
    """First-record latency and peak RSS, streamed vs buffered transport."""
    graph = _workload(bench_scale)
    request = EnumerationRequest(algorithm="mule", alpha=ALPHA)
    reference = MiningSession(graph).enumerate(request)

    def measure():
        with MiningServer(graph, port=0) as server:
            remote = RemoteSession(server.url)
            remote.enumerate(request)  # warm-up: compilation + codec paths

            rss_start = _peak_rss_kb()
            job = remote.submit(request, page_size=PAGE_SIZE)
            streamed_started = perf_counter()
            ttfr = None
            count = 0
            for _ in job.iter_results():
                if ttfr is None:
                    ttfr = perf_counter() - streamed_started
                count += 1
            streamed_total = perf_counter() - streamed_started
            streamed_outcome = job.outcome()
            rss_after_stream = _peak_rss_kb()

            buffered_started = perf_counter()
            buffered_outcome = remote.enumerate(request)
            buffered_total = perf_counter() - buffered_started
            rss_after_buffered = _peak_rss_kb()

        return {
            "ttfr": ttfr,
            "count": count,
            "streamed_total": streamed_total,
            "streamed_outcome": streamed_outcome,
            "buffered_total": buffered_total,
            "buffered_outcome": buffered_outcome,
            "streamed_rss_kb": rss_after_stream - rss_start,
            "buffered_rss_kb": rss_after_buffered - rss_after_stream,
        }

    result = run_once(measure)

    result["streamed_outcome"].assert_matches(reference)
    result["buffered_outcome"].assert_matches(reference)
    assert result["count"] == len(reference.records)

    record_rows(
        "Job streaming",
        "time-to-first-record, streamed NDJSON vs buffered enumerate",
        [
            {
                "graph": f"er-{graph.num_vertices}",
                "alpha": ALPHA,
                "cliques": len(reference.records),
                "page_size": PAGE_SIZE,
                "ttfr_s": round(result["ttfr"], 4),
                "streamed_s": round(result["streamed_total"], 4),
                "buffered_s": round(result["buffered_total"], 4),
                "streamed_rss_kb": result["streamed_rss_kb"],
                "buffered_rss_kb": result["buffered_rss_kb"],
            }
        ],
        columns=[
            "graph",
            "alpha",
            "cliques",
            "page_size",
            "ttfr_s",
            "streamed_s",
            "buffered_s",
            "streamed_rss_kb",
            "buffered_rss_kb",
        ],
    )

    if result["buffered_total"] >= MIN_MEANINGFUL_SECONDS:
        assert result["ttfr"] < result["buffered_total"], (
            f"streaming lost its latency edge: first record took "
            f"{result['ttfr']:.4f}s, the whole buffered call "
            f"{result['buffered_total']:.4f}s"
        )
