"""Figure 5 — LARGE-MULE runtime as a function of the size threshold t.

Figure 5 of the paper shows, for BA10000 (a), ca-GrQc (b) and DBLP (c),
that the runtime of LARGE-MULE falls steeply as the minimum clique size t
grows, across a range of α values.  The headline numbers are on DBLP:
enumerating everything at α = 0.9 takes 76 797 s, while LARGE-MULE with
t = 3 needs only 32 s.

The benchmark reruns the same (graph, α, t) grid on the scaled analogs and
additionally records the output of the ablation (shared-neighborhood
filtering disabled) so the contribution of the pre-pruning is visible.
"""

from __future__ import annotations

import pytest

from repro.core.large_mule import LargeMuleConfig, large_mule

#: Size thresholds on the x-axis.
THRESHOLDS = [2, 3, 4, 5, 6, 7]

#: α values per panel — a subset of the paper's curve families.
PANELS = {
    "ba10000": [0.2, 0.01, 0.0001],
    "ca-grqc": [0.2, 0.01, 0.0001],
    "dblp10": [0.9, 0.5, 0.1],
}

#: DBLP is far larger than the other graphs; shrink it further.
EXTRA_SCALE = {"dblp10": 0.02}


@pytest.mark.parametrize("graph_name", sorted(PANELS))
def bench_fig5_runtime_vs_threshold(graph_name, dataset, run_once, record_rows):
    """One Figure 5 panel: LARGE-MULE across the (α, t) grid for one graph."""
    graph = dataset(graph_name, EXTRA_SCALE.get(graph_name, 1.0))

    def sweep():
        rows = []
        for alpha in PANELS[graph_name]:
            for threshold in THRESHOLDS:
                result = large_mule(graph, alpha, threshold)
                rows.append(
                    {
                        "graph": graph_name,
                        "alpha": alpha,
                        "size_threshold": threshold,
                        "seconds": round(result.elapsed_seconds, 4),
                        "num_cliques": result.num_cliques,
                        "recursive_calls": result.statistics.recursive_calls,
                    }
                )
        return rows

    rows = run_once(sweep)
    record_rows(
        "Figure 5",
        "LARGE-MULE runtime vs size threshold t",
        rows,
        columns=[
            "graph",
            "alpha",
            "size_threshold",
            "seconds",
            "num_cliques",
            "recursive_calls",
        ],
    )
    # Shape check: for each α, search effort at the largest t is no larger
    # than at t = 2 (it typically collapses by orders of magnitude).
    for alpha in PANELS[graph_name]:
        series = [r for r in rows if r["alpha"] == alpha]
        assert series[-1]["recursive_calls"] <= series[0]["recursive_calls"]


@pytest.mark.parametrize("graph_name", ["ba10000", "ca-grqc"])
def bench_fig5_ablation_shared_neighborhood_filter(
    graph_name, dataset, run_once, record_rows
):
    """Ablation: LARGE-MULE with the Modani–Dey pre-filter disabled."""
    graph = dataset(graph_name)
    alpha, threshold = 0.01, 5

    def run_both():
        with_filter = large_mule(graph, alpha, threshold)
        without_filter = large_mule(
            graph,
            alpha,
            threshold,
            config=LargeMuleConfig(shared_neighborhood_filtering=False),
        )
        return with_filter, without_filter

    with_filter, without_filter = run_once(run_both)
    assert with_filter.vertex_sets() == without_filter.vertex_sets()
    record_rows(
        "Figure 5 (ablation)",
        "Shared Neighborhood Filtering on/off (alpha=0.01, t=5)",
        [
            {
                "graph": graph_name,
                "variant": "with-filter",
                "seconds": round(with_filter.elapsed_seconds, 4),
                "recursive_calls": with_filter.statistics.recursive_calls,
                "num_cliques": with_filter.num_cliques,
            },
            {
                "graph": graph_name,
                "variant": "without-filter",
                "seconds": round(without_filter.elapsed_seconds, 4),
                "recursive_calls": without_filter.statistics.recursive_calls,
                "num_cliques": without_filter.num_cliques,
            },
        ],
        columns=["graph", "variant", "seconds", "recursive_calls", "num_cliques"],
    )
