"""Ablation — the Observation 3 edge-pruning preprocessing.

DESIGN.md calls out two design choices for ablation benchmarks: the
incremental probability maintenance (which Figure 1 already isolates via
DFS-NOIP) and the α-threshold edge pruning of Observation 3.  This module
covers the latter: MULE with and without dropping ``p(e) < α`` edges before
the search.  The outputs are identical by construction; at high α the
pruned variant touches far fewer candidates.
"""

from __future__ import annotations

import pytest

from repro.core.mule import MuleConfig, mule

GRAPHS = ["wiki-vote", "ba5000", "ca-grqc"]
ALPHAS = [0.9, 0.5, 0.1]


@pytest.mark.parametrize("graph_name", GRAPHS)
def bench_ablation_edge_pruning(graph_name, dataset, run_once, record_rows):
    """MULE with Observation 3 pruning on vs off across three thresholds."""
    graph = dataset(graph_name)

    def sweep():
        rows = []
        for alpha in ALPHAS:
            pruned = mule(graph, alpha, config=MuleConfig(prune_edges=True))
            unpruned = mule(graph, alpha, config=MuleConfig(prune_edges=False))
            assert pruned.vertex_sets() == unpruned.vertex_sets()
            rows.append(
                {
                    "graph": graph_name,
                    "alpha": alpha,
                    "pruned_seconds": round(pruned.elapsed_seconds, 4),
                    "unpruned_seconds": round(unpruned.elapsed_seconds, 4),
                    "pruned_candidates": pruned.statistics.candidates_examined,
                    "unpruned_candidates": unpruned.statistics.candidates_examined,
                    "num_cliques": pruned.num_cliques,
                }
            )
        return rows

    rows = run_once(sweep)
    record_rows(
        "Ablation: edge pruning",
        "MULE with/without Observation 3 edge pruning",
        rows,
        columns=[
            "graph",
            "alpha",
            "pruned_seconds",
            "unpruned_seconds",
            "pruned_candidates",
            "unpruned_candidates",
            "num_cliques",
        ],
    )
    # At the highest α the pruned variant must not examine more candidates.
    high_alpha_row = rows[0]
    assert high_alpha_row["pruned_candidates"] <= high_alpha_row["unpruned_candidates"]
