"""Figure 6 — number of large α-maximal cliques as a function of t.

The companion of Figure 5: for BA10000, ca-GrQc and DBLP, the number of
α-maximal cliques with at least t vertices drops (roughly geometrically) as
t grows, for every α.  This benchmark records the full series and asserts
the monotone-decreasing shape, plus consistency with plain MULE filtering.
"""

from __future__ import annotations

import pytest

from repro.core.large_mule import large_mule
from repro.core.mule import mule

THRESHOLDS = [2, 3, 4, 5, 6, 7]

PANELS = {
    "ba10000": [0.2, 0.01, 0.0001],
    "ca-grqc": [0.2, 0.01, 0.0001],
    "dblp10": [0.9, 0.5, 0.1],
}

EXTRA_SCALE = {"dblp10": 0.02}


@pytest.mark.parametrize("graph_name", sorted(PANELS))
def bench_fig6_cliques_vs_threshold(graph_name, dataset, run_once, record_rows):
    """One Figure 6 panel: output size across the (α, t) grid for one graph."""
    graph = dataset(graph_name, EXTRA_SCALE.get(graph_name, 1.0))

    def sweep():
        rows = []
        for alpha in PANELS[graph_name]:
            for threshold in THRESHOLDS:
                result = large_mule(graph, alpha, threshold)
                rows.append(
                    {
                        "graph": graph_name,
                        "alpha": alpha,
                        "size_threshold": threshold,
                        "num_cliques": result.num_cliques,
                    }
                )
        return rows

    rows = run_once(sweep)
    record_rows(
        "Figure 6",
        "Number of alpha-maximal cliques with >= t vertices",
        rows,
        columns=["graph", "alpha", "size_threshold", "num_cliques"],
    )
    # Shape check: for each α the counts are non-increasing in t.
    for alpha in PANELS[graph_name]:
        series = [r["num_cliques"] for r in rows if r["alpha"] == alpha]
        assert series == sorted(series, reverse=True)


@pytest.mark.parametrize("graph_name", ["ca-grqc", "ba10000"])
def bench_fig6_consistency_with_mule(graph_name, dataset, run_once, record_rows):
    """LARGE-MULE output must equal MULE output filtered by size."""
    graph = dataset(graph_name)
    alpha, threshold = 0.01, 4

    def run_both():
        full = mule(graph, alpha)
        large = large_mule(graph, alpha, threshold)
        return full, large

    full, large = run_once(run_both)
    expected = {c for c in full.vertex_sets() if len(c) >= threshold}
    assert large.vertex_sets() == expected
    record_rows(
        "Figure 6 (consistency)",
        "LARGE-MULE equals size-filtered MULE",
        [
            {
                "graph": graph_name,
                "alpha": alpha,
                "size_threshold": threshold,
                "mule_cliques_total": full.num_cliques,
                "mule_cliques_filtered": len(expected),
                "large_mule_cliques": large.num_cliques,
            }
        ],
        columns=[
            "graph",
            "alpha",
            "size_threshold",
            "mule_cliques_total",
            "mule_cliques_filtered",
            "large_mule_cliques",
        ],
    )
