"""Parallel scaling — sharded parallel_mule vs serial MULE at 1/2/4 workers.

Not a figure from the paper: this benchmark exercises the ROADMAP's
scale-out layer (``repro.parallel``).  It runs serial :func:`mule` as the
baseline on a dense Erdős–Rényi workload sized so the serial enumeration
takes a few seconds at the default reproduction scale, then
:func:`parallel_mule` at 1, 2 and 4 worker processes, recording the speedup
of each configuration and asserting output parity (bit-identical clique
sets) on every complete run.

The ≥ 1.5× speedup expectation at 4 workers only holds — and is only
asserted — when the host exposes at least 4 usable cores and the serial
baseline is slow enough (≥ 2 s) for the pool start-up to amortise; on
smaller machines (or bounded CI smoke runs via ``REPRO_BENCH_TIME_BUDGET``)
the benchmark still verifies parity and records the measured ratios.
"""

from __future__ import annotations

import random

from repro.analysis.comparison import parallel_scaling
from repro.generators.erdos_renyi import random_uncertain_graph
from repro.parallel import default_workers

#: Worker counts on the x-axis.
WORKER_COUNTS = (1, 2, 4)

#: Threshold chosen low so the enumeration is output-heavy (the regime
#: where parallelism matters; compare Figure 4's runtime ∝ output size).
ALPHA = 0.05

#: Baseline workload at the default reproduction scale (0.05): a dense
#: G(200, 0.5) uncertain graph — serial MULE takes ≥ 2 s in pure Python.
BASE_VERTICES = 200
EDGE_DENSITY = 0.5
DEFAULT_SCALE = 0.05


def _workload(bench_scale: float):
    """Scale the vertex count so search work tracks ``REPRO_BENCH_SCALE``.

    The enumeration cost of dense G(n, p) grows much faster than n, so the
    vertex count scales with the square root of the requested work factor.
    """
    n = max(30, round(BASE_VERTICES * (bench_scale / DEFAULT_SCALE) ** 0.5))
    return random_uncertain_graph(n, EDGE_DENSITY, rng=random.Random(2015))


def bench_parallel_scaling(bench_scale, run_once, record_rows, bench_controls):
    """Speedup of parallel_mule over serial mule at 1/2/4 workers."""
    graph = _workload(bench_scale)
    rows = run_once(
        parallel_scaling,
        {f"er-{graph.num_vertices}": graph},
        [ALPHA],
        WORKER_COUNTS,
        controls=bench_controls,
    )
    record_rows(
        "Parallel scaling",
        "parallel_mule speedup vs serial mule (workers=0 is the serial baseline)",
        [
            {
                "graph": row["graph"],
                "alpha": row["alpha"],
                "workers": row["workers"],
                "num_cliques": row["num_cliques"],
                "seconds": round(float(row["elapsed_seconds"]), 4),
                "speedup": round(float(row["speedup"]), 2),
                "stop_reason": row["stop_reason"],
            }
            for row in rows
        ],
        columns=[
            "graph",
            "alpha",
            "workers",
            "num_cliques",
            "seconds",
            "speedup",
            "stop_reason",
        ],
    )
    by_workers = {row["workers"]: row for row in rows}
    serial = by_workers[0]
    assert serial["num_cliques"] > 0 or serial["stop_reason"] != "completed"
    # parallel_scaling already asserted clique-set parity for every
    # complete run; the speedup bar only applies where it can physically
    # hold: >= 4 usable cores and a baseline slow enough to amortise the
    # process pool.
    complete = all(row["stop_reason"] == "completed" for row in rows)
    if (
        complete
        and default_workers() >= 4
        and float(serial["elapsed_seconds"]) >= 2.0
    ):
        assert float(by_workers[4]["speedup"]) >= 1.5, (
            f"expected >= 1.5x speedup at 4 workers, got "
            f"{by_workers[4]['speedup']:.2f}x"
        )
