"""Figure 3 — number of α-maximal cliques as a function of α.

Companion of Figure 2: the same α sweep over the same two graph families,
but the measured quantity is the output size (number of α-maximal cliques).
The paper observes a sharp drop as α grows, with the occasional small
non-monotonicity (a large clique splitting into several smaller maximal
cliques) that is invisible at plot scale.
"""

from __future__ import annotations

import pytest

from repro.core.mule import mule

ALPHA_SWEEP = [0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5]

FIGURE3A_GRAPHS = ["ba5000", "ba6000", "ba7000", "ba8000", "ba9000", "ba10000"]
FIGURE3B_GRAPHS = [
    "ppi",
    "ca-grqc",
    "p2p-gnutella04",
    "p2p-gnutella08",
    "p2p-gnutella09",
    "wiki-vote",
]


def _count_sweep(graph, graph_name, record_rows, experiment, title):
    rows = []
    for alpha in ALPHA_SWEEP:
        result = mule(graph, alpha)
        rows.append(
            {
                "graph": graph_name,
                "alpha": alpha,
                "num_cliques": result.num_cliques,
                "largest_clique": result.largest().size if result.num_cliques else 0,
            }
        )
    record_rows(
        experiment,
        title,
        rows,
        columns=["graph", "alpha", "num_cliques", "largest_clique"],
    )
    return rows


@pytest.mark.parametrize("graph_name", FIGURE3A_GRAPHS)
def bench_fig3a_random_graphs(graph_name, dataset, run_once, record_rows):
    """Figure 3(a): #cliques vs α for the Barabási–Albert graphs."""
    graph = dataset(graph_name)
    rows = run_once(
        _count_sweep,
        graph,
        graph_name,
        record_rows,
        "Figure 3a",
        "Number of alpha-maximal cliques vs alpha (BA graphs)",
    )
    # Shape check: the smallest α yields at least as many cliques as the largest.
    assert rows[0]["num_cliques"] >= rows[-1]["num_cliques"]


@pytest.mark.parametrize("graph_name", FIGURE3B_GRAPHS)
def bench_fig3b_real_graphs(graph_name, dataset, run_once, record_rows):
    """Figure 3(b): #cliques vs α for the semi-synthetic and real graph analogs."""
    graph = dataset(graph_name)
    rows = run_once(
        _count_sweep,
        graph,
        graph_name,
        record_rows,
        "Figure 3b",
        "Number of alpha-maximal cliques vs alpha (semi-synthetic and real analogs)",
    )
    assert rows[0]["num_cliques"] >= rows[-1]["num_cliques"]
