"""Figure 2 — MULE runtime as a function of the probability threshold α.

Figure 2(a) sweeps the Barabási–Albert graphs BA5000–BA10000 and
Figure 2(b) the semi-synthetic/real graphs (PPI, ca-GrQc, the three
p2p-Gnutella snapshots, wiki-vote) over α ∈ [0.0001, 0.5].  The paper
observes runtimes dropping sharply as α grows because the search prunes
candidate extensions earlier.

Each benchmark case is one curve (one graph); the α sweep runs inside it so
the recorded rows form the full series of the figure.
"""

from __future__ import annotations

import pytest

from repro.core.mule import mule

#: The α values on the x-axis (log-scale in the paper).
ALPHA_SWEEP = [0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5]

FIGURE2A_GRAPHS = ["ba5000", "ba6000", "ba7000", "ba8000", "ba9000", "ba10000"]
FIGURE2B_GRAPHS = [
    "ppi",
    "ca-grqc",
    "p2p-gnutella04",
    "p2p-gnutella08",
    "p2p-gnutella09",
    "wiki-vote",
]


def _sweep(graph, graph_name: str, record_rows, experiment: str, title: str):
    rows = []
    for alpha in ALPHA_SWEEP:
        result = mule(graph, alpha)
        rows.append(
            {
                "graph": graph_name,
                "alpha": alpha,
                "seconds": round(result.elapsed_seconds, 4),
                "num_cliques": result.num_cliques,
                "recursive_calls": result.statistics.recursive_calls,
            }
        )
    record_rows(
        experiment,
        title,
        rows,
        columns=["graph", "alpha", "seconds", "num_cliques", "recursive_calls"],
    )
    return rows


@pytest.mark.parametrize("graph_name", FIGURE2A_GRAPHS)
def bench_fig2a_random_graphs(graph_name, dataset, run_once, record_rows):
    """Figure 2(a): runtime vs α for the Barabási–Albert graphs."""
    graph = dataset(graph_name)
    rows = run_once(
        _sweep, graph, graph_name, record_rows, "Figure 2a", "MULE runtime vs alpha (BA graphs)"
    )
    # Shape check: the low-α end must not be faster than the high-α end.
    assert rows[0]["recursive_calls"] >= rows[-1]["recursive_calls"]


@pytest.mark.parametrize("graph_name", FIGURE2B_GRAPHS)
def bench_fig2b_real_graphs(graph_name, dataset, run_once, record_rows):
    """Figure 2(b): runtime vs α for the semi-synthetic and real graph analogs."""
    graph = dataset(graph_name)
    rows = run_once(
        _sweep,
        graph,
        graph_name,
        record_rows,
        "Figure 2b",
        "MULE runtime vs alpha (semi-synthetic and real graph analogs)",
    )
    assert rows[0]["recursive_calls"] >= rows[-1]["recursive_calls"]
