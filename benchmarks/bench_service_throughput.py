"""Service throughput — requests/second against a warm compiled-graph cache.

Not a figure from the paper: this benchmark smoke-tests the service layer
(``repro-mule serve`` / :class:`repro.RemoteSession`, see
``docs/service.md``) the way CI exercises the other tentpoles.  A real
HTTP server runs in-process on an ephemeral port; after one warm-up call
compiles the graph, several client threads hammer ``POST /v1/enumerate``
at a high threshold (enumeration cheap, so the measured path is codec +
HTTP + scheduling + cache hit).  Asserted invariants:

* every remote outcome is clique- and counter-identical to the local
  session run of the same request (parity is never traded for speed);
* the whole benchmark performs exactly **one** server-side compilation
  (asserted via ``/v1/stats`` — the multi-client cache works);
* throughput is positive and every request succeeds.
"""

from __future__ import annotations

import random
from concurrent.futures import ThreadPoolExecutor
from time import perf_counter

from repro.api import EnumerationRequest, MiningSession
from repro.generators.erdos_renyi import random_uncertain_graph
from repro.service import MiningServer, RemoteSession

#: High threshold: compilation would dominate per-request cost if it were
#: not cached, so the requests/sec number directly reflects cache reuse.
ALPHA = 0.8

#: Request volume at the default reproduction scale (0.05).
BASE_REQUESTS = 120
CLIENT_THREADS = 4
DEFAULT_SCALE = 0.05

BASE_VERTICES = 220
EDGE_DENSITY = 0.25


def _workload(bench_scale: float):
    n = max(40, round(BASE_VERTICES * (bench_scale / DEFAULT_SCALE) ** 0.5))
    return random_uncertain_graph(n, EDGE_DENSITY, rng=random.Random(2015))


def bench_service_throughput(bench_scale, run_once, record_rows):
    """Concurrent remote enumerations on a warm cache, parity asserted."""
    graph = _workload(bench_scale)
    request = EnumerationRequest(algorithm="mule", alpha=ALPHA)
    reference = MiningSession(graph).enumerate(request)
    num_requests = max(20, round(BASE_REQUESTS * bench_scale / DEFAULT_SCALE))

    def measure():
        with MiningServer(graph, port=0, max_workers=CLIENT_THREADS) as server:
            remote = RemoteSession(server.url)
            remote.enumerate(request)  # warm-up: the one compilation
            started = perf_counter()
            with ThreadPoolExecutor(max_workers=CLIENT_THREADS) as pool:
                outcomes = list(
                    pool.map(
                        lambda _: remote.enumerate(request), range(num_requests)
                    )
                )
            elapsed = perf_counter() - started
            stats = remote.stats()
        return outcomes, elapsed, stats

    outcomes, elapsed, stats = run_once(measure)

    requests_per_second = num_requests / max(elapsed, 1e-9)
    record_rows(
        "Service throughput",
        "remote enumerate() on a warm cache (in-process HTTP server)",
        [
            {
                "graph": f"er-{graph.num_vertices}",
                "alpha": ALPHA,
                "requests": num_requests,
                "client_threads": CLIENT_THREADS,
                "seconds": round(elapsed, 4),
                "requests_per_sec": round(requests_per_second, 1),
                "compilations": stats["cache"]["compilations"],
            }
        ],
        columns=[
            "graph",
            "alpha",
            "requests",
            "client_threads",
            "seconds",
            "requests_per_sec",
            "compilations",
        ],
    )

    # Parity: the wire adds zero semantic drift, request after request.
    assert len(outcomes) == num_requests
    for outcome in outcomes:
        outcome.assert_matches(reference)
    # The multi-client cache guarantee: one compilation for the whole run.
    assert stats["cache"]["compilations"] == 1, stats
    assert stats["http"]["failed"] == 0, stats
    assert requests_per_second > 0
