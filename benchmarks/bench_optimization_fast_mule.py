"""Optimization study — the two MULE entry points on the shared engine.

Not a paper figure.  Historically this bench compared the
pseudo-code-faithful recursive MULE against the private bitset-accelerated
FAST-MULE to separate "algorithmic idea" from "implementation tuning".
Since the engine refactor both entry points route through the same
compiled-graph + iterative-kernel path, so the recorded speedup should
hover around 1.0; the rows now serve as a drift detector for the engine's
constant factor (and the output-equality assertion as an extra parity
check) across the Figure 1 graphs.
"""

from __future__ import annotations

import pytest

from repro.core.fast_mule import fast_mule
from repro.core.mule import mule

GRAPHS = ["wiki-vote", "ba5000", "ca-grqc", "ppi"]
ALPHAS = [0.5, 0.001]


@pytest.mark.parametrize("graph_name", GRAPHS)
def bench_fast_mule_vs_reference(graph_name, dataset, run_once, record_rows):
    """Run both implementations across two thresholds on one graph."""
    graph = dataset(graph_name)

    def sweep():
        rows = []
        for alpha in ALPHAS:
            reference = mule(graph, alpha)
            fast = fast_mule(graph, alpha)
            assert fast.vertex_sets() == reference.vertex_sets()
            rows.append(
                {
                    "graph": graph_name,
                    "alpha": alpha,
                    "num_cliques": reference.num_cliques,
                    "mule_seconds": round(reference.elapsed_seconds, 4),
                    "fast_mule_seconds": round(fast.elapsed_seconds, 4),
                    "speedup": round(
                        reference.elapsed_seconds / max(fast.elapsed_seconds, 1e-9), 2
                    ),
                }
            )
        return rows

    rows = run_once(sweep)
    record_rows(
        "Optimization: FAST-MULE",
        "Reference MULE vs bitset-accelerated FAST-MULE (identical output)",
        rows,
        columns=[
            "graph",
            "alpha",
            "num_cliques",
            "mule_seconds",
            "fast_mule_seconds",
            "speedup",
        ],
    )
