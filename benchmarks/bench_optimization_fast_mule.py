"""Optimization study — reference MULE vs the bitset-accelerated FAST-MULE.

Not a paper figure: this bench quantifies how much of the observed runtime
is implementation constant factor rather than algorithm, by comparing the
pseudo-code-faithful MULE implementation against the bitset-accelerated
variant on the Figure 1 graphs.  Outputs must be identical; only the
constant factor moves.  Together with Figure 1 (MULE vs DFS-NOIP) this
separates "algorithmic idea" from "implementation tuning".
"""

from __future__ import annotations

import pytest

from repro.core.fast_mule import fast_mule
from repro.core.mule import mule

GRAPHS = ["wiki-vote", "ba5000", "ca-grqc", "ppi"]
ALPHAS = [0.5, 0.001]


@pytest.mark.parametrize("graph_name", GRAPHS)
def bench_fast_mule_vs_reference(graph_name, dataset, run_once, record_rows):
    """Run both implementations across two thresholds on one graph."""
    graph = dataset(graph_name)

    def sweep():
        rows = []
        for alpha in ALPHAS:
            reference = mule(graph, alpha)
            fast = fast_mule(graph, alpha)
            assert fast.vertex_sets() == reference.vertex_sets()
            rows.append(
                {
                    "graph": graph_name,
                    "alpha": alpha,
                    "num_cliques": reference.num_cliques,
                    "mule_seconds": round(reference.elapsed_seconds, 4),
                    "fast_mule_seconds": round(fast.elapsed_seconds, 4),
                    "speedup": round(
                        reference.elapsed_seconds / max(fast.elapsed_seconds, 1e-9), 2
                    ),
                }
            )
        return rows

    rows = run_once(sweep)
    record_rows(
        "Optimization: FAST-MULE",
        "Reference MULE vs bitset-accelerated FAST-MULE (identical output)",
        rows,
        columns=[
            "graph",
            "alpha",
            "num_cliques",
            "mule_seconds",
            "fast_mule_seconds",
            "speedup",
        ],
    )
