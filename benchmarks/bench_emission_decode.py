"""Micro-benchmark for the kernel's per-emission decode path.

Every clique the engine yields crosses :meth:`CompiledGraph.decode`, which
translates integer vertex indices back to original labels.  The naive
spelling — ``frozenset(labels[i] for i in indices)`` — allocates a
generator frame per emission; the committed form —
``frozenset(map(labels.__getitem__, indices))`` — does not.  On small-α
runs emitting hundreds of thousands of cliques the per-emission constant
is the difference, so this benchmark pins it: both spellings are timed
over the real emission workload of a Figure 1 cell (every clique MULE
emits on ca-GrQc at α = 0.0005) and must agree exactly.

The assertion is deliberately loose (``map`` must not be *slower* beyond
noise) — the point is a recorded measurement, not a flaky gate.
"""

from __future__ import annotations

import time

from repro.core.engine import compile_graph
from repro.core.engine.kernel import run_search
from repro.core.engine.strategies import MuleStrategy

#: Passes over the workload per timed spelling; best-of is reported.
_REPS = 5

#: The emission workload replays this many decode calls per pass.
_MIN_CALLS = 50_000


def _emission_workload(dataset):
    """Index tuples shaped like the kernel's real emissions."""
    graph = dataset("ca-grqc")
    alpha = 0.0005
    compiled = compile_graph(graph, alpha=alpha)
    cliques = [
        tuple(sorted(compiled.index_of[v] for v in members))
        for members, _ in run_search(compiled, alpha, MuleStrategy())
    ]
    assert cliques, "workload cell emitted nothing; raise the scale"
    # Replay the emission stream until the call count drowns timer noise.
    workload = list(cliques)
    while len(workload) < _MIN_CALLS:
        workload.extend(cliques)
    return compiled, workload


def _best_of(func, workload, reps: int = _REPS) -> float:
    best = float("inf")
    for _ in range(reps):
        start = time.perf_counter()
        for indices in workload:
            func(indices)
        best = min(best, time.perf_counter() - start)
    return best


def bench_emission_decode(dataset, run_once, record_rows):
    """Time ``decode`` (bound ``map``) against the generator-expression form."""
    compiled, workload = _emission_workload(dataset)
    labels = compiled.labels

    def naive(indices):
        return frozenset(labels[i] for i in indices)

    assert all(
        compiled.decode(indices) == naive(indices) for indices in workload[:100]
    )

    timings = {}

    def run_both():
        timings["map"] = _best_of(compiled.decode, workload)
        timings["genexpr"] = _best_of(naive, workload)

    run_once(run_both)

    calls = len(workload)
    ratio = timings["genexpr"] / max(timings["map"], 1e-12)
    record_rows(
        "Emission decode",
        "per-emission index->label decode, bound map vs generator expression",
        [
            {
                "spelling": "map(labels.__getitem__, ...)",
                "calls": calls,
                "seconds": round(timings["map"], 4),
                "ns_per_call": round(timings["map"] / calls * 1e9, 1),
            },
            {
                "spelling": "frozenset(genexpr)",
                "calls": calls,
                "seconds": round(timings["genexpr"], 4),
                "ns_per_call": round(timings["genexpr"] / calls * 1e9, 1),
            },
        ],
        columns=["spelling", "calls", "seconds", "ns_per_call"],
    )
    # The bound-map spelling must not lose; 0.9 leaves room for timer noise
    # on loaded runners while still catching a real regression.
    assert ratio >= 0.9, f"decode is slower than the naive spelling ({ratio:.2f}x)"
