"""Distributed fan-out — DistributedSession over a fleet vs serial MULE.

Not a figure from the paper: this benchmark exercises the distributed
coordinator (``repro.distributed``) end to end over an in-process fleet
of real HTTP workers.  It runs serial :func:`mule` as the baseline on a
dense Erdős–Rényi workload, then the coordinator against fleets of 1 and
2 workers, recording the wall-clock ratio of each configuration and
asserting bit-identical outcomes on every run.

Unlike ``bench_parallel_scaling`` (process pool, zero-copy shards), each
shard here pays HTTP framing, JSON codec and result-page streaming, so
the interesting number is the *overhead* relative to serial on one
worker and how much of it the second worker claws back — the threading
server shares the GIL with the benchmark process, so no real speedup is
asserted, only parity and completion.
"""

from __future__ import annotations

import random
import time

from repro.api import EnumerationRequest, GraphStore, MiningSession
from repro.distributed import DistributedSession
from repro.generators.erdos_renyi import random_uncertain_graph
from repro.service import MiningServer

#: Fleet sizes on the x-axis (0 = the serial baseline).
FLEET_SIZES = (0, 1, 2)

ALPHA = 0.2

#: Baseline workload at the default reproduction scale (0.05): sized so
#: the serial enumeration is non-trivial but the whole series stays
#: within a smoke-run budget even with the wire protocol in the loop.
BASE_VERTICES = 120
EDGE_DENSITY = 0.4
DEFAULT_SCALE = 0.05


def _workload(bench_scale: float):
    n = max(24, round(BASE_VERTICES * (bench_scale / DEFAULT_SCALE) ** 0.5))
    return random_uncertain_graph(n, EDGE_DENSITY, rng=random.Random(2015))


def _run_series(graph):
    request = EnumerationRequest(algorithm="mule", alpha=ALPHA)
    started = time.perf_counter()
    reference = MiningSession(graph).enumerate(request)
    serial_seconds = time.perf_counter() - started
    rows = [
        {
            "workers": 0,
            "num_cliques": reference.num_cliques,
            "elapsed_seconds": serial_seconds,
            "ratio": 1.0,
            "stop_reason": reference.stop_reason,
        }
    ]
    for fleet_size in FLEET_SIZES[1:]:
        servers = [
            MiningServer(GraphStore(), port=0, quiet=True).start()
            for _ in range(fleet_size)
        ]
        try:
            urls = tuple(server.url for server in servers)
            started = time.perf_counter()
            with DistributedSession(graph, urls) as session:
                outcome = session.enumerate(request)
            elapsed = time.perf_counter() - started
        finally:
            for server in servers:
                server.close()
        outcome.assert_matches(reference)
        rows.append(
            {
                "workers": fleet_size,
                "num_cliques": outcome.num_cliques,
                "elapsed_seconds": elapsed,
                "ratio": serial_seconds / max(elapsed, 1e-9),
                "stop_reason": outcome.stop_reason,
            }
        )
    return rows


def bench_distributed_fan_out(bench_scale, run_once, record_rows):
    """Coordinator overhead/parity over in-process fleets of 1-2 workers."""
    graph = _workload(bench_scale)
    rows = run_once(_run_series, graph)
    record_rows(
        "Distributed fan-out",
        "DistributedSession vs serial mule (workers=0 is the serial "
        "baseline; ratio = serial seconds / distributed seconds)",
        [
            {
                "workers": row["workers"],
                "num_cliques": row["num_cliques"],
                "seconds": round(float(row["elapsed_seconds"]), 4),
                "ratio": round(float(row["ratio"]), 2),
                "stop_reason": row["stop_reason"],
            }
            for row in rows
        ],
        columns=["workers", "num_cliques", "seconds", "ratio", "stop_reason"],
    )
    # Parity was asserted per fleet inside the series; the structural
    # expectation here is only that every configuration completed.
    assert all(row["stop_reason"] == "completed" for row in rows)
    assert rows[0]["num_cliques"] > 0
