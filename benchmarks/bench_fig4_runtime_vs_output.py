"""Figure 4 — runtime versus output size.

The paper plots MULE's runtime against the number of α-maximal cliques it
outputs (for the BA graphs across α ∈ {0.05 … 0.0001}) and finds the two
almost proportional — evidence that the algorithm's cost is driven by the
output, as the near-output-optimal analysis of Section 4.2 predicts.

The benchmark reruns the grid and additionally records a least-squares
correlation between output size and the (noise-free) count of recursive
calls, asserting it is strongly positive.
"""

from __future__ import annotations

import pytest

from repro.core.mule import mule

FIGURE4_ALPHAS = [0.05, 0.01, 0.005, 0.001, 0.0005, 0.0001]
FIGURE4_GRAPHS = ["ba5000", "ba6000", "ba7000", "ba8000", "ba9000", "ba10000"]


def _pearson(xs: list[float], ys: list[float]) -> float:
    n = len(xs)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    cov = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    var_x = sum((x - mean_x) ** 2 for x in xs) ** 0.5
    var_y = sum((y - mean_y) ** 2 for y in ys) ** 0.5
    if var_x == 0 or var_y == 0:
        return 0.0
    return cov / (var_x * var_y)


@pytest.mark.parametrize("graph_name", FIGURE4_GRAPHS)
def bench_fig4_runtime_vs_output(graph_name, dataset, run_once, record_rows):
    """One Figure 4 curve: runtime/output pairs across the α grid for one BA graph."""
    graph = dataset(graph_name)

    def sweep():
        rows = []
        for alpha in FIGURE4_ALPHAS:
            result = mule(graph, alpha)
            rows.append(
                {
                    "graph": graph_name,
                    "alpha": alpha,
                    "num_cliques": result.num_cliques,
                    "seconds": round(result.elapsed_seconds, 4),
                    "recursive_calls": result.statistics.recursive_calls,
                }
            )
        return rows

    rows = run_once(sweep)
    outputs = [row["num_cliques"] for row in rows]
    calls = [row["recursive_calls"] for row in rows]
    correlation = _pearson([float(o) for o in outputs], [float(c) for c in calls])
    for row in rows:
        row["output_vs_calls_corr"] = round(correlation, 3)
    record_rows(
        "Figure 4",
        "MULE runtime vs output size (BA graphs, alpha in {0.05 ... 0.0001})",
        rows,
        columns=[
            "graph",
            "alpha",
            "num_cliques",
            "seconds",
            "recursive_calls",
            "output_vs_calls_corr",
        ],
    )
    # The paper's claim: runtime is (nearly) proportional to output size.
    assert correlation > 0.9
