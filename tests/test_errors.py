"""Tests for the exception hierarchy."""

from __future__ import annotations

import pytest

from repro.errors import (
    DatasetError,
    EdgeError,
    FormatError,
    GraphError,
    ParameterError,
    ProbabilityError,
    ReproError,
    VertexError,
)


class TestHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        for exc_type in (
            GraphError,
            VertexError,
            EdgeError,
            ProbabilityError,
            ParameterError,
            DatasetError,
            FormatError,
        ):
            assert issubclass(exc_type, ReproError)

    def test_vertex_and_edge_errors_are_graph_errors(self):
        assert issubclass(VertexError, GraphError)
        assert issubclass(EdgeError, GraphError)

    def test_repro_error_is_an_exception(self):
        assert issubclass(ReproError, Exception)

    def test_catching_base_class_catches_subclasses(self):
        with pytest.raises(ReproError):
            raise EdgeError("boom")

    def test_errors_carry_messages(self):
        err = ProbabilityError("p must be in (0, 1]")
        assert "p must be in (0, 1]" in str(err)
