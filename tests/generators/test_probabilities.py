"""Unit tests for edge-probability models."""

from __future__ import annotations

import math
import random

import pytest

from repro.errors import ParameterError, ProbabilityError
from repro.generators.probabilities import (
    beta_probabilities,
    bimodal_confidence_probabilities,
    coauthorship_probabilities_from_counts,
    coauthorship_probability,
    constant_probability,
    uniform_probabilities,
)


class TestConstant:
    def test_returns_fixed_value(self):
        model = constant_probability(0.42)
        assert model(1, 2) == 0.42
        assert model("a", "b") == 0.42

    def test_invalid_constant(self):
        with pytest.raises(ProbabilityError):
            constant_probability(0.0)
        with pytest.raises(ProbabilityError):
            constant_probability(1.2)


class TestUniform:
    def test_values_in_range(self):
        model = uniform_probabilities(0.2, 0.8, rng=1)
        samples = [model(i, i + 1) for i in range(200)]
        assert all(0.2 <= p <= 0.8 for p in samples)

    def test_default_full_range_never_zero(self):
        model = uniform_probabilities(rng=2)
        assert all(0.0 < model(i, i + 1) <= 1.0 for i in range(500))

    def test_seeded_reproducibility(self):
        first = [uniform_probabilities(rng=7)(i, i + 1) for i in range(10)]
        second = [uniform_probabilities(rng=7)(i, i + 1) for i in range(10)]
        assert first == second

    def test_invalid_range(self):
        with pytest.raises(ParameterError):
            uniform_probabilities(0.8, 0.2)
        with pytest.raises(ParameterError):
            uniform_probabilities(-0.1, 0.5)
        with pytest.raises(ParameterError):
            uniform_probabilities(0.5, 1.5)

    def test_accepts_random_instance(self):
        model = uniform_probabilities(rng=random.Random(3))
        assert 0.0 < model(1, 2) <= 1.0


class TestBeta:
    def test_values_in_range(self):
        model = beta_probabilities(2.0, 5.0, rng=4)
        samples = [model(i, i + 1) for i in range(300)]
        assert all(0.0 < p <= 1.0 for p in samples)

    def test_skew_direction(self):
        low_skew = beta_probabilities(2.0, 8.0, rng=5)
        high_skew = beta_probabilities(8.0, 2.0, rng=5)
        low_mean = sum(low_skew(i, i + 1) for i in range(500)) / 500
        high_mean = sum(high_skew(i, i + 1) for i in range(500)) / 500
        assert low_mean < 0.5 < high_mean

    def test_invalid_shapes(self):
        with pytest.raises(ParameterError):
            beta_probabilities(0.0, 1.0)
        with pytest.raises(ParameterError):
            beta_probabilities(1.0, -2.0)


class TestBimodal:
    def test_values_in_expected_ranges(self):
        model = bimodal_confidence_probabilities(
            high_fraction=0.5,
            high_range=(0.7, 0.9),
            low_range=(0.1, 0.3),
            rng=6,
        )
        samples = [model(i, i + 1) for i in range(400)]
        assert all((0.1 <= p <= 0.3) or (0.7 <= p <= 0.9) for p in samples)

    def test_high_fraction_respected_roughly(self):
        model = bimodal_confidence_probabilities(high_fraction=0.8, rng=7)
        samples = [model(i, i + 1) for i in range(1000)]
        high = sum(1 for p in samples if p >= 0.6)
        assert 0.7 <= high / len(samples) <= 0.9

    def test_invalid_parameters(self):
        with pytest.raises(ParameterError):
            bimodal_confidence_probabilities(high_fraction=1.5)
        with pytest.raises(ParameterError):
            bimodal_confidence_probabilities(high_range=(0.9, 0.7))


class TestCoauthorship:
    def test_paper_formula(self):
        # p = 1 - e^{-c/10}, the DBLP model used by the paper.
        for c in (1, 5, 10, 50):
            assert coauthorship_probability(c) == pytest.approx(1 - math.exp(-c / 10))

    def test_monotone_in_paper_count(self):
        values = [coauthorship_probability(c) for c in range(1, 30)]
        assert values == sorted(values)

    def test_zero_papers_gives_tiny_probability(self):
        assert 0.0 < coauthorship_probability(0) < 1e-6

    def test_invalid_inputs(self):
        with pytest.raises(ParameterError):
            coauthorship_probability(-1)
        with pytest.raises(ParameterError):
            coauthorship_probability(3, scale=0)

    def test_custom_scale(self):
        assert coauthorship_probability(5, scale=5) == pytest.approx(1 - math.exp(-1))

    def test_model_from_counts(self):
        model = coauthorship_probabilities_from_counts({(1, 2): 10})
        assert model(1, 2) == pytest.approx(1 - math.exp(-1.0))
        assert model(2, 1) == pytest.approx(1 - math.exp(-1.0))
        # Missing pairs default to one joint paper.
        assert model(3, 4) == pytest.approx(1 - math.exp(-0.1))
