"""Unit tests for the domain-specific generators (collaboration, PPI, p2p, wiki-vote)."""

from __future__ import annotations

import math

import pytest

from repro.errors import ParameterError
from repro.generators.p2p import p2p_like_graph
from repro.generators.ppi import ppi_like_graph
from repro.generators.social import collaboration_graph, wiki_vote_like_graph


class TestCollaborationGraph:
    def test_vertex_count(self):
        g = collaboration_graph(200, 150, rng=1)
        assert g.num_vertices == 200

    def test_probabilities_follow_coauthorship_model(self):
        g = collaboration_graph(100, 80, rng=2)
        # Every probability must be of the form 1 - e^{-c/10} for integer c >= 1.
        valid = {1 - math.exp(-c / 10) for c in range(1, 60)}
        for _, _, p in g.edges():
            assert any(abs(p - v) < 1e-12 for v in valid)

    def test_papers_create_cliques(self):
        g = collaboration_graph(60, 20, min_authors_per_paper=3, max_authors_per_paper=3, rng=3)
        # At least one triangle must exist (a 3-author paper induces one).
        skeleton = g.skeleton()
        has_triangle = any(
            len(skeleton.common_neighbors(u, v)) > 0 for u, v in skeleton.edges()
        )
        assert has_triangle

    def test_clustering_higher_than_p2p(self):
        """Collaboration graphs must be clique-rich compared to p2p overlays."""
        collab = collaboration_graph(150, 130, rng=4).skeleton()
        p2p = p2p_like_graph(150, rng=4).skeleton()

        def triangle_share(skeleton):
            edges = list(skeleton.edges())
            if not edges:
                return 0.0
            closed = sum(
                1 for u, v in edges if skeleton.common_neighbors(u, v)
            )
            return closed / len(edges)

        assert triangle_share(collab) > triangle_share(p2p)

    def test_reproducibility(self):
        assert collaboration_graph(80, 50, rng=9) == collaboration_graph(80, 50, rng=9)

    def test_invalid_parameters(self):
        with pytest.raises(ParameterError):
            collaboration_graph(0, 10)
        with pytest.raises(ParameterError):
            collaboration_graph(10, -1)
        with pytest.raises(ParameterError):
            collaboration_graph(10, 5, min_authors_per_paper=5, max_authors_per_paper=3)


class TestWikiVoteGraph:
    def test_vertex_count(self):
        g = wiki_vote_like_graph(200, 40, rng=1)
        assert g.num_vertices == 240

    def test_candidates_receive_most_edges(self):
        g = wiki_vote_like_graph(300, 30, votes_per_voter=8, rng=2)
        candidate_degrees = [g.degree(v) for v in range(1, 31)]
        voter_degrees = [g.degree(v) for v in range(31, 331)]
        assert max(candidate_degrees) > max(voter_degrees)

    def test_probabilities_in_range(self):
        g = wiki_vote_like_graph(100, 20, rng=3)
        assert all(0.0 < p <= 1.0 for _, _, p in g.edges())

    def test_invalid_parameters(self):
        with pytest.raises(ParameterError):
            wiki_vote_like_graph(0, 10)
        with pytest.raises(ParameterError):
            wiki_vote_like_graph(10, 5, votes_per_voter=6)
        with pytest.raises(ParameterError):
            wiki_vote_like_graph(10, 5, votes_per_voter=0)


class TestPpiGraph:
    def test_vertex_count(self):
        g = ppi_like_graph(400, rng=1)
        assert g.num_vertices == 400

    def test_sparse_like_the_real_network(self):
        """The fruit-fly PPI graph has roughly one edge per vertex."""
        g = ppi_like_graph(1000, rng=2)
        assert 0.4 <= g.num_edges / g.num_vertices <= 2.0

    def test_contains_small_complexes(self):
        g = ppi_like_graph(300, rng=3)
        skeleton = g.skeleton()
        has_triangle = any(
            skeleton.common_neighbors(u, v) for u, v in skeleton.edges()
        )
        assert has_triangle

    def test_many_low_degree_proteins(self):
        g = ppi_like_graph(500, rng=4)
        low_degree = sum(1 for v in g.vertices() if g.degree(v) <= 1)
        assert low_degree > 0.3 * g.num_vertices

    def test_invalid_parameters(self):
        with pytest.raises(ParameterError):
            ppi_like_graph(0)
        with pytest.raises(ParameterError):
            ppi_like_graph(100, complex_size_range=(5, 3))
        with pytest.raises(ParameterError):
            ppi_like_graph(100, singleton_fraction=1.0)

    def test_reproducibility(self):
        assert ppi_like_graph(200, rng=7) == ppi_like_graph(200, rng=7)


class TestP2pGraph:
    def test_vertex_count(self):
        g = p2p_like_graph(300, rng=1)
        assert g.num_vertices == 300

    def test_moderate_average_degree(self):
        g = p2p_like_graph(1000, rng=2)
        average_degree = 2 * g.num_edges / g.num_vertices
        assert 2.0 <= average_degree <= 10.0

    def test_low_clustering(self):
        from repro.uncertain.statistics import global_clustering_coefficient

        p2p = p2p_like_graph(400, rng=3)
        collab = collaboration_graph(400, 350, rng=3)
        assert global_clustering_coefficient(p2p) < 0.2
        assert global_clustering_coefficient(p2p) < global_clustering_coefficient(collab)

    def test_invalid_parameters(self):
        with pytest.raises(ParameterError):
            p2p_like_graph(2)
        with pytest.raises(ParameterError):
            p2p_like_graph(100, core_fraction=0.0)
        with pytest.raises(ParameterError):
            p2p_like_graph(100, core_degree=0)

    def test_reproducibility(self):
        assert p2p_like_graph(150, rng=5) == p2p_like_graph(150, rng=5)
