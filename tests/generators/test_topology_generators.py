"""Unit tests for the graph topology generators (BA, ER, planted)."""

from __future__ import annotations

import pytest

from repro.errors import ParameterError
from repro.generators.barabasi_albert import (
    barabasi_albert_skeleton,
    barabasi_albert_uncertain,
)
from repro.generators.erdos_renyi import (
    erdos_renyi_skeleton,
    erdos_renyi_uncertain,
    random_uncertain_graph,
)
from repro.generators.planted import planted_clique_graph, planted_partition_graph


class TestBarabasiAlbert:
    def test_vertex_and_edge_counts(self):
        n, m_attach = 200, 5
        g = barabasi_albert_skeleton(n, m_attach, rng=1)
        assert g.num_vertices == n
        seed_edges = m_attach * (m_attach + 1) // 2
        expected_edges = seed_edges + (n - m_attach - 1) * m_attach
        assert g.num_edges == expected_edges

    def test_paper_configuration_edge_density(self):
        g = barabasi_albert_uncertain(500, 10, rng=2)
        # The paper's BA graphs have roughly 10 edges per vertex.
        assert 9 <= g.num_edges / g.num_vertices <= 11

    def test_degree_distribution_is_skewed(self):
        g = barabasi_albert_skeleton(400, 4, rng=3)
        degrees = sorted(g.degree(v) for v in g.vertices())
        assert degrees[-1] > 4 * degrees[len(degrees) // 2]

    def test_reproducibility(self):
        a = barabasi_albert_uncertain(100, 3, rng=9)
        b = barabasi_albert_uncertain(100, 3, rng=9)
        assert a == b

    def test_probabilities_in_range(self):
        g = barabasi_albert_uncertain(100, 3, rng=4)
        assert all(0.0 < p <= 1.0 for _, _, p in g.edges())

    def test_invalid_parameters(self):
        with pytest.raises(ParameterError):
            barabasi_albert_skeleton(0, 2)
        with pytest.raises(ParameterError):
            barabasi_albert_skeleton(10, 0)
        with pytest.raises(ParameterError):
            barabasi_albert_skeleton(5, 5)


class TestErdosRenyi:
    def test_empty_probability_gives_no_edges(self):
        assert erdos_renyi_skeleton(50, 0.0, rng=1).num_edges == 0

    def test_full_probability_gives_complete_graph(self):
        g = erdos_renyi_skeleton(20, 1.0, rng=1)
        assert g.num_edges == 20 * 19 // 2

    def test_edge_count_near_expectation(self):
        n, p = 100, 0.3
        g = erdos_renyi_skeleton(n, p, rng=5)
        expected = p * n * (n - 1) / 2
        assert 0.8 * expected <= g.num_edges <= 1.2 * expected

    def test_reproducibility(self):
        assert erdos_renyi_skeleton(40, 0.25, rng=6) == erdos_renyi_skeleton(40, 0.25, rng=6)

    def test_uncertain_variant_probabilities(self):
        g = erdos_renyi_uncertain(30, 0.4, rng=7)
        assert all(0.0 < p <= 1.0 for _, _, p in g.edges())

    def test_random_uncertain_graph_probability_floor(self):
        g = random_uncertain_graph(30, 0.5, min_edge_probability=0.2, rng=8)
        assert all(p >= 0.2 for _, _, p in g.edges())

    def test_invalid_parameters(self):
        with pytest.raises(ParameterError):
            erdos_renyi_skeleton(-1, 0.5)
        with pytest.raises(ParameterError):
            erdos_renyi_skeleton(10, 1.5)


class TestPlantedCliques:
    def test_planted_cliques_are_present(self):
        graph, planted = planted_clique_graph(50, [4, 5], rng=1)
        assert len(planted) == 2
        for clique in planted:
            assert graph.is_clique(clique)
            assert graph.clique_probability(clique) > 0.5

    def test_planted_cliques_disjoint(self):
        _, planted = planted_clique_graph(40, [4, 4, 4], rng=2)
        assert len(planted[0] | planted[1] | planted[2]) == 12

    def test_background_edges_have_low_probability(self):
        graph, planted = planted_clique_graph(
            30,
            [5],
            clique_probability=0.95,
            background_density=0.2,
            background_probability_range=(0.05, 0.3),
            rng=3,
        )
        planted_vertices = planted[0]
        for u, v, p in graph.edges():
            if u in planted_vertices and v in planted_vertices:
                assert p == 0.95
            else:
                assert p <= 0.3

    def test_invalid_parameters(self):
        with pytest.raises(ParameterError):
            planted_clique_graph(5, [4, 4])
        with pytest.raises(ParameterError):
            planted_clique_graph(10, [1])
        with pytest.raises(ParameterError):
            planted_clique_graph(10, [3], clique_probability=0.0)
        with pytest.raises(ParameterError):
            planted_clique_graph(0, [])

    def test_reproducibility(self):
        a, _ = planted_clique_graph(30, [4], rng=11)
        b, _ = planted_clique_graph(30, [4], rng=11)
        assert a == b


class TestPlantedPartition:
    def test_vertex_count(self):
        g = planted_partition_graph(4, 6, rng=1)
        assert g.num_vertices == 24

    def test_intra_community_denser_than_inter(self):
        g = planted_partition_graph(3, 8, intra_density=0.9, inter_density=0.05, rng=2)
        community = lambda v: (v - 1) // 8
        intra = sum(1 for u, v, _ in g.edges() if community(u) == community(v))
        inter = g.num_edges - intra
        assert intra > inter

    def test_invalid_parameters(self):
        with pytest.raises(ParameterError):
            planted_partition_graph(0, 5)
        with pytest.raises(ParameterError):
            planted_partition_graph(2, 5, intra_probability=0.0)
        with pytest.raises(ParameterError):
            planted_partition_graph(2, 5, inter_density=1.5)
