"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.deterministic.graph import Graph
from repro.generators.erdos_renyi import random_uncertain_graph
from repro.uncertain.graph import UncertainGraph


@pytest.fixture
def triangle() -> UncertainGraph:
    """A certain triangle plus a pendant low-probability edge."""
    return UncertainGraph(
        edges=[(1, 2, 0.9), (2, 3, 0.9), (1, 3, 0.9), (3, 4, 0.4)]
    )


@pytest.fixture
def two_cliques() -> UncertainGraph:
    """Two vertex-disjoint high-probability triangles joined by a weak edge."""
    return UncertainGraph(
        edges=[
            (1, 2, 0.95),
            (2, 3, 0.95),
            (1, 3, 0.95),
            (4, 5, 0.9),
            (5, 6, 0.9),
            (4, 6, 0.9),
            (3, 4, 0.1),
        ]
    )


@pytest.fixture
def path_graph() -> UncertainGraph:
    """A 5-vertex path with decreasing probabilities."""
    return UncertainGraph(
        edges=[(1, 2, 0.9), (2, 3, 0.7), (3, 4, 0.5), (4, 5, 0.3)]
    )


@pytest.fixture
def deterministic_square() -> Graph:
    """A 4-cycle plus one chord (two triangles sharing an edge)."""
    return Graph(edges=[(1, 2), (2, 3), (3, 4), (4, 1), (1, 3)])


@pytest.fixture
def random_graph_factory():
    """Factory building seeded random uncertain graphs for cross-validation."""

    def build(n: int, density: float = 0.5, seed: int = 0) -> UncertainGraph:
        return random_uncertain_graph(n, density, rng=random.Random(seed))

    return build
