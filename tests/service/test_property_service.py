"""Property tests for the service layer (seeded stdlib ``random`` only).

Two families:

* **codec round-trips** — randomly generated valid requests, and outcomes
  produced by real enumerations of every algorithm on small generator
  graphs, survive ``to_wire → encode → decode → from_wire`` unchanged
  (fields, record order, probabilities, counters — everything);
* **remote/local parity** — ``RemoteSession.enumerate()`` against a live
  in-process server is clique-set- and counter-identical to local
  ``MiningSession.enumerate()`` for all five algorithms (the PR's
  acceptance criterion), on randomly generated graphs.
"""

from __future__ import annotations

import random

import pytest

from repro.api import EnumerationRequest, MiningSession
from repro.core.engine import RunControls
from repro.generators.erdos_renyi import random_uncertain_graph
from repro.service import MiningServer, RemoteSession, codec

#: Requests per seeded generator run; small graphs keep the whole module
#: in the sub-second range.
NUM_RANDOM_REQUESTS = 200

ALGORITHM_REQUESTS = [
    EnumerationRequest(algorithm="mule", alpha=0.2),
    EnumerationRequest(algorithm="fast", alpha=0.2),
    EnumerationRequest(algorithm="noip", alpha=0.2),
    EnumerationRequest(algorithm="large", alpha=0.1, size_threshold=3),
    EnumerationRequest(algorithm="top_k", alpha=0.2, k=5),
]


def random_request(rng: random.Random) -> EnumerationRequest:
    """Draw one valid request from the full cross-product of knobs."""
    algorithm = rng.choice(["mule", "fast", "noip", "large", "top_k"])
    alpha = rng.choice([0.05, 0.1, 0.25, 1 / 3, 0.5, 0.725, 0.9, 1.0])
    fields: dict = {"algorithm": algorithm, "alpha": alpha}
    if algorithm == "top_k":
        fields["k"] = rng.randint(1, 10)
        fields["min_size"] = rng.randint(1, 4)
        if rng.random() < 0.3:
            fields["alpha"] = None  # threshold-descent search
    if algorithm == "large":
        fields["size_threshold"] = rng.randint(2, 5)
        fields["shared_neighborhood_filtering"] = rng.random() < 0.5
    fields["prune_edges"] = rng.random() < 0.8
    if rng.random() < 0.4:
        fields["controls"] = RunControls(
            max_cliques=rng.choice([None, 1, 7, 1000]),
            time_budget_seconds=rng.choice([None, 0.5, 30.0]),
            check_every_frames=rng.choice([1, 64, 256]),
        )
    if algorithm in ("mule", "fast") and rng.random() < 0.4:
        fields["workers"] = rng.choice([None, 2, 4])
        fields["num_shards"] = rng.choice([None, 1, 8])
        fields["backend"] = rng.choice(["auto", "process", "inline"])
        if fields["workers"] == 1 or fields["workers"] is None:
            fields["execution"] = rng.choice(["auto", "parallel"])
    return EnumerationRequest(**fields)


def assert_outcome_identical(decoded, original) -> None:
    """Field-exact comparison, including record *order* and probabilities."""
    assert [(r.vertices, r.probability) for r in decoded.records] == [
        (r.vertices, r.probability) for r in original.records
    ]
    assert decoded.algorithm == original.algorithm
    assert decoded.alpha == original.alpha
    assert decoded.statistics == original.statistics
    assert decoded.report == original.report
    assert decoded.elapsed_seconds == original.elapsed_seconds
    assert decoded.request == original.request


class TestRequestRoundTrip:
    def test_random_requests_roundtrip_unchanged(self):
        rng = random.Random(20150420)
        for _ in range(NUM_RANDOM_REQUESTS):
            request = random_request(rng)
            wire = codec.decode(codec.encode(codec.to_wire(request)))
            assert codec.from_wire(wire) == request

    def test_roundtrip_is_byte_stable(self):
        rng = random.Random(7)
        for _ in range(50):
            request = random_request(rng)
            first = codec.encode(codec.to_wire(request))
            second = codec.encode(codec.to_wire(codec.from_wire(codec.decode(first))))
            assert first == second


class TestOutcomeRoundTrip:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_outcomes_roundtrip_unchanged(self, seed):
        graph = random_uncertain_graph(12, 0.5, rng=random.Random(seed))
        session = MiningSession(graph)
        for request in ALGORITHM_REQUESTS:
            outcome = session.enumerate(request)
            decoded = codec.from_wire(
                codec.decode(codec.encode(codec.to_wire(outcome)))
            )
            assert_outcome_identical(decoded, outcome)

    def test_truncated_outcome_roundtrips(self):
        graph = random_uncertain_graph(14, 0.6, rng=random.Random(3))
        outcome = MiningSession(graph).enumerate(
            EnumerationRequest(
                algorithm="mule", alpha=0.05, controls=RunControls(max_cliques=2)
            )
        )
        assert outcome.truncated
        decoded = codec.from_wire(codec.decode(codec.encode(codec.to_wire(outcome))))
        assert_outcome_identical(decoded, outcome)
        assert decoded.truncated

    def test_threshold_search_outcome_roundtrips(self):
        graph = random_uncertain_graph(10, 0.5, rng=random.Random(4))
        outcome = MiningSession(graph).enumerate(
            EnumerationRequest(algorithm="top_k", k=3)
        )
        decoded = codec.from_wire(codec.decode(codec.encode(codec.to_wire(outcome))))
        assert_outcome_identical(decoded, outcome)


class TestRemoteParity:
    """RemoteSession.enumerate ≡ MiningSession.enumerate, all algorithms."""

    @pytest.fixture(scope="class")
    def graph(self):
        return random_uncertain_graph(14, 0.5, rng=random.Random(21))

    @pytest.fixture(scope="class")
    def remote(self, graph):
        with MiningServer(graph, port=0) as server:
            yield RemoteSession(server.url)

    @pytest.mark.parametrize(
        "request_", ALGORITHM_REQUESTS, ids=lambda r: r.algorithm
    )
    def test_parity_per_algorithm(self, graph, remote, request_):
        local = MiningSession(graph).enumerate(request_)
        over_the_wire = remote.enumerate(request_)
        over_the_wire.assert_matches(local)
        assert over_the_wire.algorithm == local.algorithm
        assert over_the_wire.report == local.report

    def test_parity_threshold_search(self, graph, remote):
        request = EnumerationRequest(algorithm="top_k", k=4)
        local = MiningSession(graph).enumerate(request)
        over_the_wire = remote.enumerate(request)
        over_the_wire.assert_matches(local)

    def test_parity_parallel_workers_forwarded(self, graph, remote):
        request = EnumerationRequest(
            algorithm="mule", alpha=0.2, workers=2, backend="inline"
        )
        local = MiningSession(graph).enumerate(request)
        over_the_wire = remote.enumerate(request)
        over_the_wire.assert_matches(local)
        assert over_the_wire.algorithm == "parallel-mule"
