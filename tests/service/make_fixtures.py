"""Regenerate the golden wire-format corpus under ``fixtures/``.

The fixtures pin the wire schema: ``test_fixtures.py`` asserts every file
re-encodes byte-for-byte through the codec, so **any** change to envelope
shape, field names, canonical encoding or float formatting shows up as a
fixture diff in review.  Regenerate deliberately (after a schema-version
bump) with::

    PYTHONPATH=src python tests/service/make_fixtures.py

Everything here is deterministic: the outcomes come from seeded searches
on fixed graphs and their ``elapsed_seconds`` are frozen to exact binary
fractions before encoding.
"""

from __future__ import annotations

from pathlib import Path

from repro.api import EnumerationRequest, GraphInfo, MiningSession
from repro.core.engine import RunControls
from repro.core.result import CliqueRecord
from repro.errors import ParameterError
from repro.obs import MetricsRegistry
from repro.service import codec
from repro.uncertain.graph import UncertainGraph

FIXTURES = Path(__file__).parent / "fixtures"


def fixture_graph() -> UncertainGraph:
    """The conftest triangle: a certain triangle plus a weak pendant edge."""
    return UncertainGraph(
        edges=[(1, 2, 0.9), (2, 3, 0.9), (1, 3, 0.9), (3, 4, 0.4)]
    )


def frozen(outcome, elapsed: float = 0.015625):
    """Stamp a deterministic elapsed time so encodings are byte-stable."""
    outcome.elapsed_seconds = elapsed
    return outcome


def metrics_snapshot() -> dict:
    """A deterministic mini-registry: fixed counts, exact-binary timings.

    Built on a private registry (never the process-global seam) so the
    fixture bytes cannot depend on what else ran in the process; every
    observed value is an exact binary fraction, so the derived p50/p99
    interpolations are byte-stable too.
    """
    registry = MetricsRegistry(enabled=True)
    requests = registry.counter(
        "http_requests_total",
        "HTTP requests served.",
        labelnames=("endpoint", "status"),
    )
    requests.labels(endpoint="/v1/stats", status="200").inc(3)
    requests.labels(endpoint="/v2/jobs", status="404").inc()
    registry.gauge("sched_queue_depth", "Jobs submitted but not started.").set(2)
    latency = registry.histogram(
        "http_request_seconds",
        "Per-endpoint request latency.",
        labelnames=("endpoint",),
        buckets=(0.0625, 0.25, 1.0),
    )
    for value in (0.03125, 0.125, 0.5):
        latency.labels(endpoint="/v1/stats").observe(value)
    return registry.snapshot()


def build_payloads() -> dict[str, dict]:
    graph = fixture_graph()
    session = MiningSession(graph)

    mule_request = EnumerationRequest(algorithm="mule", alpha=0.5)
    top_k_request = EnumerationRequest(algorithm="top_k", alpha=0.5, k=2, min_size=2)

    mule_outcome = frozen(session.enumerate(mule_request))
    status_running = codec.JobStatus(
        id="job-000001",
        state="running",
        cliques_emitted=12,
        frames_expanded=40,
        elapsed_seconds=0.03125,
        records=12,
    )
    status_done = codec.JobStatus(
        id="job-000002",
        state="done",
        cliques_emitted=2,
        frames_expanded=9,
        elapsed_seconds=0.015625,
        records=2,
    )
    status_failed = codec.JobStatus(
        id="job-000003",
        state="failed",
        cliques_emitted=0,
        frames_expanded=0,
        elapsed_seconds=0.0078125,
        records=0,
        error=ParameterError("algorithm 'top_k' requires k"),
    )

    return {
        "request_mule_default": codec.to_wire(mule_request),
        "request_large_with_controls": codec.to_wire(
            EnumerationRequest(
                algorithm="large",
                alpha=0.25,
                size_threshold=3,
                controls=RunControls(
                    max_cliques=100,
                    time_budget_seconds=1.5,
                    check_every_frames=64,
                ),
            )
        ),
        "request_parallel_sharded": codec.to_wire(
            EnumerationRequest(
                algorithm="fast",
                alpha=0.5,
                workers=4,
                num_shards=8,
                backend="inline",
                execution="parallel",
            )
        ),
        "request_top_k_threshold_search": codec.to_wire(
            EnumerationRequest(
                algorithm="top_k", k=5, min_size=3, prune_edges=False
            )
        ),
        # A non-default kernel is an additive v2 request field: its
        # presence promotes the envelope to schema 2 (kernel="auto"
        # requests keep encoding to the frozen v1 bytes above).
        "request_vector_kernel": codec.to_wire(
            EnumerationRequest(algorithm="mule", alpha=0.5, kernel="vector")
        ),
        # root_shard is the second additive v2 request field — the
        # distributed coordinator's per-shard root restriction, carried as
        # vertex labels (None keeps the frozen v1 bytes).
        "request_root_shard": codec.to_wire(
            EnumerationRequest(algorithm="mule", alpha=0.5, root_shard=(1, 2))
        ),
        "outcome_mule_triangle": codec.to_wire(
            frozen(session.enumerate(mule_request))
        ),
        "outcome_top_k_ranked": codec.to_wire(
            frozen(session.enumerate(top_k_request))
        ),
        "sweep_request_five_alphas": codec.sweep_to_wire(
            mule_request, [0.5, 0.6, 0.7, 0.8, 0.9]
        ),
        # A sweep's response shape: the alpha-ordered outcome list.
        "outcome_list_sweep_pair": codec.outcomes_to_wire(
            [
                frozen(session.enumerate(mule_request)),
                frozen(session.enumerate(top_k_request)),
            ]
        ),
        "records_string_labels": codec.to_wire(
            [
                CliqueRecord(vertices=frozenset({"ana", "bob", "cal"}), probability=0.7866),
                CliqueRecord(vertices=frozenset({"dee"}), probability=1.0),
            ]
        ),
        "error_parameter": codec.to_wire(
            ParameterError("algorithm 'top_k' requires k")
        ),
        # ---- schema v2: graphs as values and as references ---- #
        "graph_mixed_labels": codec.graph_to_wire(
            UncertainGraph(
                vertices=["isolated"],
                edges=[
                    (1, 2, 0.9),
                    (2, "gene", 1 / 3),  # non-terminating binary fraction
                    (2.5, "gene", 0.0625),
                ],
            )
        ),
        "graph_upload": codec.upload_to_wire(
            codec.GraphUpload(dataset="ppi", scale=0.05, seed=2015, name="ppi")
        ),
        "graph_upload_literal": codec.upload_to_wire(
            codec.GraphUpload(graph=fixture_graph(), name="triangle")
        ),
        "graph_ref_request": codec.ref_request_to_wire(mule_request, graph="ppi"),
        "graph_ref_sweep": codec.ref_sweep_to_wire(
            mule_request, [0.5, 0.6, 0.7, 0.8, 0.9], graph="ppi"
        ),
        "graph_info_ppi": codec.graph_info_to_wire(
            GraphInfo(
                fingerprint="a3f1" * 16,
                name="ppi",
                num_vertices=3751,
                num_edges=3692,
                pinned=True,
                default=True,
            )
        ),
        # The store listing (GET /v2/graphs): default graph first.
        "graph_list_two_graphs": codec.graph_list_to_wire(
            [
                GraphInfo(
                    fingerprint="a3f1" * 16,
                    name="ppi",
                    num_vertices=3751,
                    num_edges=3692,
                    pinned=True,
                    default=True,
                ),
                GraphInfo(
                    fingerprint="0b2c" * 16,
                    name=None,
                    num_vertices=4,
                    num_edges=4,
                    pinned=False,
                    default=False,
                ),
            ]
        ),
        # ---- schema v2: the async job vocabulary ---- #
        "job_request_paged": codec.job_request_to_wire(
            mule_request, graph="ppi", page_size=128
        ),
        "job_status_running": codec.job_status_to_wire(status_running),
        "job_status_failed": codec.job_status_to_wire(status_failed),
        "job_result_chunk_page": codec.job_chunk_to_wire(
            codec.JobChunk(
                job="job-000002",
                seq=0,
                records=tuple(mule_outcome.records),
                final=False,
            )
        ),
        "job_result_chunk_final": codec.job_chunk_to_wire(
            codec.JobChunk(
                job="job-000002",
                seq=1,
                records=(),
                final=True,
                summary=mule_outcome,
            )
        ),
        "job_list_mixed": codec.job_list_to_wire([status_running, status_done]),
        # ---- schema v2: observability ---- #
        "metrics_snapshot": codec.metrics_to_wire(metrics_snapshot()),
    }


def main() -> None:
    FIXTURES.mkdir(exist_ok=True)
    for name, payload in sorted(build_payloads().items()):
        path = FIXTURES / f"{name}.json"
        path.write_bytes(codec.encode(payload))
        print(f"wrote {path}")


if __name__ == "__main__":
    main()
