"""Scheduler tests — single-flight compilation, mixed-graph isolation.

The concurrency guarantees pinned here:

* N concurrent requests for the same (graph, α) perform exactly **one**
  compilation (asserted via ``cache_info()``), even on a cold cache —
  the single-flight dedup the plain cache deliberately does not provide;
* concurrent sweeps share one compilation end to end;
* interleaved load over *different* graphs never cross-contaminates
  outcomes (session-per-fingerprint isolation);
* the bookkeeping counters (submitted/completed/failed, waits) add up.
"""

from __future__ import annotations

import random
import threading
import time

import pytest

from repro.api import EnumerationRequest, MiningSession
from repro.errors import ParameterError, ServiceError
from repro.generators.erdos_renyi import random_uncertain_graph
from repro.service import EnumerationScheduler
from repro.service.jobs import JobState
import repro.api.cache as cache_module

REQUEST = EnumerationRequest(algorithm="mule", alpha=0.4)


@pytest.fixture
def graph():
    return random_uncertain_graph(16, 0.5, rng=random.Random(11))


@pytest.fixture
def other_graph():
    return random_uncertain_graph(12, 0.6, rng=random.Random(99))


@pytest.fixture
def slow_compile(monkeypatch):
    """Make every real compilation take a visible amount of wall clock.

    The single-flight window is otherwise microseconds wide on toy
    graphs, which would let a broken implementation pass by racing
    through it; 50 ms guarantees all concurrently submitted jobs arrive
    while the leader is still compiling.
    """
    real = cache_module.compile_graph

    def slowed(*args, **kwargs):
        time.sleep(0.05)
        return real(*args, **kwargs)

    monkeypatch.setattr(cache_module, "compile_graph", slowed)


class TestSingleFlight:
    def test_same_key_compiles_exactly_once(self, graph, slow_compile):
        with EnumerationScheduler(graph, max_workers=8) as scheduler:
            futures = [scheduler.submit(REQUEST) for _ in range(12)]
            outcomes = [future.result() for future in futures]
            info = scheduler.cache_info()
            stats = scheduler.stats()
        assert info.compilations == 1, info
        # Followers piggybacked on the leader instead of compiling.
        assert stats.single_flight_waits >= 1, stats
        reference = MiningSession(graph).enumerate(REQUEST)
        for outcome in outcomes:
            outcome.assert_matches(reference)

    def test_external_threads_share_one_compilation(self, graph, slow_compile):
        outcomes = []
        errors = []
        with EnumerationScheduler(graph, max_workers=8) as scheduler:
            barrier = threading.Barrier(6)

            def hammer():
                try:
                    barrier.wait(timeout=5)
                    outcomes.append(scheduler.run(REQUEST))
                except Exception as exc:  # pragma: no cover - diagnostic
                    errors.append(exc)

            threads = [threading.Thread(target=hammer) for _ in range(6)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=30)
            info = scheduler.cache_info()
        assert not errors
        assert len(outcomes) == 6
        assert info.compilations == 1, info

    def test_concurrent_sweep_compiles_once(self, graph, slow_compile):
        alphas = [0.2, 0.3, 0.4, 0.5, 0.6, 0.7]
        with EnumerationScheduler(graph, max_workers=8) as scheduler:
            outcomes = scheduler.sweep(alphas)
            info = scheduler.cache_info()
        assert info.compilations == 1, info
        assert info.derivations == len(alphas) - 1, info
        session = MiningSession(graph)
        for alpha, outcome in zip(alphas, outcomes):
            outcome.assert_matches(
                session.enumerate(EnumerationRequest(algorithm="mule", alpha=alpha))
            )

    def test_distinct_keys_still_compile_separately(self, graph):
        # Different compile options are different artifacts; single-flight
        # must not over-merge them.
        pruned = EnumerationRequest(algorithm="mule", alpha=0.4)
        unpruned = EnumerationRequest(algorithm="mule", alpha=0.4, prune_edges=False)
        with EnumerationScheduler(graph) as scheduler:
            a = scheduler.run(pruned)
            b = scheduler.run(unpruned)
            info = scheduler.cache_info()
        assert info.compilations == 2, info
        a.assert_matches(b, compare_statistics=False)


class TestMixedGraphLoad:
    def test_outcomes_never_cross_contaminate(self, graph, other_graph):
        with EnumerationScheduler(graph, max_workers=6) as scheduler:
            futures = []
            for _ in range(4):
                futures.append((graph, scheduler.submit(REQUEST)))
                futures.append(
                    (other_graph, scheduler.submit(REQUEST, graph=other_graph))
                )
            results = [(g, future.result()) for g, future in futures]
            assert scheduler.stats().sessions == 2

        expected = {
            id(g): MiningSession(g).enumerate(REQUEST) for g in (graph, other_graph)
        }
        for g, outcome in results:
            outcome.assert_matches(expected[id(g)])
        # The two graphs genuinely disagree, so a swap would have failed.
        assert expected[id(graph)].vertex_sets() != expected[
            id(other_graph)
        ].vertex_sets()

    def test_equal_graphs_share_a_session(self, graph):
        copy = graph.copy()
        with EnumerationScheduler(graph) as scheduler:
            scheduler.run(REQUEST)
            scheduler.run(REQUEST, graph=copy)
            assert scheduler.stats().sessions == 1
            assert scheduler.cache_info().compilations == 1


class TestBookkeeping:
    def test_counters_add_up(self, graph):
        with EnumerationScheduler(graph, max_workers=2) as scheduler:
            for _ in range(5):
                scheduler.run(REQUEST)
            stats = scheduler.stats()
        assert stats.submitted == 5
        assert stats.completed == 5
        assert stats.failed == 0
        assert stats.inflight == 0
        assert stats.queued == 0

    def test_failures_are_counted_and_raised(self, graph, monkeypatch):
        class Boom(RuntimeError):
            pass

        def explode(self, *args, **kwargs):
            raise Boom("compile exploded")

        with EnumerationScheduler(graph) as scheduler:
            # Patch the compile step: it is the shared front of both the
            # streaming and the materialising job paths.
            monkeypatch.setattr(MiningSession, "compiled", explode)
            future = scheduler.submit(REQUEST)
            with pytest.raises(Boom):
                future.result()
            stats = scheduler.stats()
        assert stats.failed == 1
        assert stats.completed == 0

    def test_invalid_max_workers_rejected(self, graph):
        with pytest.raises(ParameterError):
            EnumerationScheduler(graph, max_workers=0)

    def test_submit_after_shutdown_raises(self, graph):
        scheduler = EnumerationScheduler(graph)
        scheduler.shutdown()
        with pytest.raises(ServiceError, match="server shutdown"):
            scheduler.submit(REQUEST)

    def test_empty_graph_requests_complete(self):
        from repro.uncertain.graph import UncertainGraph

        with EnumerationScheduler(UncertainGraph()) as scheduler:
            outcome = scheduler.run(REQUEST)
        assert outcome.num_cliques == 0


class TestShutdownSubmitRace:
    """``shutdown(drain=True)`` racing in-flight ``submit_job`` calls.

    The contract: a submission losing the race gets a clean
    ``ServiceError("server shutdown…")``, and no interleaving leaves a
    zombie job parked ``queued`` in the registry after shutdown returns —
    every registered job is swept by the drain or runs to a terminal
    state.
    """

    def test_executor_refusal_settles_the_job(self, graph, monkeypatch):
        """An executor that refuses must not leave the job queued.

        Simulates the narrowest interleaving (executor shut down without
        the scheduler's closed flag observed): the submission must
        surface as a ``ServiceError`` and the just-registered job must be
        settled, not abandoned in ``queued``.
        """
        scheduler = EnumerationScheduler(graph)

        def refuse(*args, **kwargs):
            raise RuntimeError("cannot schedule new futures after shutdown")

        monkeypatch.setattr(scheduler._executor, "submit", refuse)
        with pytest.raises(ServiceError, match="server shutdown"):
            scheduler.submit_job(REQUEST)
        states = [job.state for job in scheduler.jobs.list()]
        assert JobState.QUEUED not in states
        assert scheduler.stats().queued == 0
        monkeypatch.undo()
        scheduler.shutdown()

    def test_drain_race_leaves_no_zombie_queued_job(self, graph):
        submitters = 8
        for _ in range(5):
            scheduler = EnumerationScheduler(graph, max_workers=2)
            results: list[tuple[str, object]] = []
            barrier = threading.Barrier(submitters + 1)

            def submit_one():
                try:
                    barrier.wait()
                    job = scheduler.submit_job(REQUEST)
                except ServiceError as exc:
                    results.append(("refused", exc))
                else:
                    results.append(("accepted", job))

            def shut_down():
                barrier.wait()
                scheduler.shutdown(drain=True)

            threads = [
                threading.Thread(target=submit_one) for _ in range(submitters)
            ]
            threads.append(threading.Thread(target=shut_down))
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

            assert len(results) == submitters
            for kind, payload in results:
                if kind == "refused":
                    assert "server shutdown" in str(payload)
                else:
                    # Shutdown has returned: the drain swept (or the pool
                    # finished) every job that made it in — none may still
                    # sit queued.
                    assert payload.state != JobState.QUEUED
            assert scheduler.jobs.counts()[JobState.QUEUED] == 0


class TestDefaultKernel:
    """The deployment-level kernel default (``serve --kernel``)."""

    def test_invalid_default_rejected(self, graph):
        with pytest.raises(ParameterError):
            EnumerationScheduler(graph, default_kernel="simd")

    @pytest.mark.parametrize("default", ["python", "vector"])
    def test_auto_requests_adopt_the_default(self, graph, default):
        with EnumerationScheduler(graph, default_kernel=default) as scheduler:
            outcome = scheduler.run(REQUEST)
        assert outcome.request.kernel == default

    def test_explicit_kernel_wins_over_default(self, graph):
        request = EnumerationRequest(algorithm="mule", alpha=0.4, kernel="python")
        with EnumerationScheduler(graph, default_kernel="vector") as scheduler:
            outcome = scheduler.run(request)
        assert outcome.request.kernel == "python"

    def test_vector_default_spares_the_baseline(self, graph):
        # DFS-NOIP cannot run on the vector kernel; a vector default must
        # leave its requests at "auto" instead of rejecting them.
        request = EnumerationRequest(algorithm="noip", alpha=0.4)
        with EnumerationScheduler(graph, default_kernel="vector") as scheduler:
            outcome = scheduler.run(request)
        assert outcome.request.kernel == "auto"
        assert outcome.num_cliques > 0

    def test_kernels_produce_identical_outcomes(self, graph):
        with EnumerationScheduler(graph, default_kernel="python") as py:
            a = py.run(REQUEST)
        with EnumerationScheduler(graph, default_kernel="vector") as vec:
            b = vec.run(REQUEST)
        assert [
            (r.vertices, r.probability) for r in a.records
        ] == [(r.vertices, r.probability) for r in b.records]
        assert a.statistics == b.statistics
