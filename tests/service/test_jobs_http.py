"""The async job endpoints end to end — submit, poll, stream, cancel.

These run a real :class:`MiningServer` on an ephemeral port.  The
headline assertions:

* a job streamed over NDJSON reassembles **bit-identically**
  (``assert_matches``) to a local synchronous run — including under
  mid-stream cancellation, where backpressure makes the truncation point
  deterministic;
* status polls are monotonic in the progress counters;
* ``RemoteJob.iter_results`` survives dropped connections without losing
  or duplicating records (cursor resume), and gives up cleanly on a
  stream that stalls;
* control-plane calls (health, stats, status polls, cancel) use the
  short :data:`DEFAULT_CONTROL_TIMEOUT_SECONDS`, never the 300 s
  data-plane default;
* a draining server answers every new submission with a 503
  ``ServiceError`` envelope while read-only endpoints keep working.
"""

from __future__ import annotations

import random
import time
import urllib.request

import pytest

from repro.api import EnumerationRequest, MiningSession
from repro.core.engine import RunControls, StopReason
from repro.errors import (
    FormatError,
    JobError,
    JobNotFoundError,
    ServiceError,
)
from repro.generators.erdos_renyi import random_uncertain_graph
from repro.service import MiningServer, RemoteJob, RemoteSession, codec
from repro.service import client as client_module
from repro.service.client import (
    DEFAULT_CONTROL_TIMEOUT_SECONDS,
    DEFAULT_TIMEOUT_SECONDS,
)
from repro.service.jobs import JobState

# 85 records at alpha=0.2 — more than one page buffer (64 pages of one
# record each), so an unconsumed page_size=1 job deterministically parks
# its producer mid-run.
REQUEST = EnumerationRequest(algorithm="mule", alpha=0.2)
PAGE_BUFFER = 64  # DEFAULT_MAX_PENDING_PAGES, the submit-path bound
DEADLINE = 10.0


@pytest.fixture(scope="module")
def graph():
    return random_uncertain_graph(20, 0.5, rng=random.Random(7))


@pytest.fixture(scope="module")
def serial_outcome(graph):
    return MiningSession(graph).enumerate(REQUEST)


@pytest.fixture()
def server(graph):
    with MiningServer(graph, port=0) as srv:
        yield srv


@pytest.fixture()
def remote(server):
    return RemoteSession(server.url)


def poll_until(job: RemoteJob, state: str) -> codec.JobStatus:
    deadline = time.monotonic() + DEADLINE
    while True:
        status = job.status()
        if status.state == state:
            return status
        if time.monotonic() > deadline:
            pytest.fail(f"job {job.id} stuck in {status.state!r}")
        time.sleep(0.005)


class TestSubmitAndStream:
    def test_wait_matches_local_run(self, remote, serial_outcome):
        job = remote.submit(REQUEST)
        outcome = job.wait()
        outcome.assert_matches(serial_outcome)

    def test_streamed_chunks_reassemble_bit_identically(
        self, remote, serial_outcome
    ):
        job = remote.submit(REQUEST, page_size=7)
        streamed = list(job.iter_results())
        assert [(r.vertices, r.probability) for r in streamed] == [
            (r.vertices, r.probability) for r in serial_outcome.records
        ]
        job.outcome().assert_matches(serial_outcome)

    def test_status_reflects_completion(self, remote, serial_outcome):
        job = remote.submit(REQUEST)
        status = poll_until(job, JobState.DONE)
        assert status.id == job.id
        assert status.records == len(serial_outcome.records)
        assert status.cliques_emitted == len(serial_outcome.records)
        assert status.error is None

    def test_progress_polls_are_monotonic(self, remote):
        job = remote.submit(REQUEST)
        statuses = [job.status()]
        while statuses[-1].state not in JobState.TERMINAL:
            statuses.append(job.status())
        emitted = [s.records for s in statuses]
        frames = [s.frames_expanded for s in statuses]
        assert emitted == sorted(emitted)
        assert frames == sorted(frames)
        assert all(s.state in codec.JOB_STATES for s in statuses)

    def test_jobs_listing(self, remote):
        first = remote.submit(REQUEST)
        first.wait()
        second = remote.submit(REQUEST)
        second.wait()
        listed = remote.jobs()
        assert [s.id for s in listed] == [first.id, second.id]
        assert all(s.state == JobState.DONE for s in listed)

    def test_stats_exposes_job_counts(self, remote):
        job = remote.submit(REQUEST)
        job.wait()
        jobs = remote.stats()["jobs"]
        assert jobs["done"] == 1
        assert set(jobs) == set(codec.JOB_STATES)


class TestCancellation:
    def test_mid_run_cancel_truncates_deterministically(
        self, remote, serial_outcome
    ):
        """Backpressure parks the unconsumed producer at exactly
        ``PAGE_BUFFER`` records; cancelling there yields a bit-exact
        prefix with ``cancelled`` provenance."""
        job = remote.submit(
            EnumerationRequest(
                algorithm="mule",
                alpha=0.2,
                controls=RunControls(check_every_frames=1),
            ),
            page_size=1,
        )
        deadline = time.monotonic() + DEADLINE
        while job.status().records < PAGE_BUFFER:
            assert time.monotonic() < deadline, "producer never filled buffer"
            time.sleep(0.005)
        assert job.status().state == JobState.RUNNING

        # DELETE acknowledges the request; the cooperative producer may
        # need one more wake-up to settle, so poll for the guarantee.
        status = job.cancel()
        assert status.state in (JobState.RUNNING, JobState.CANCELLED)
        poll_until(job, JobState.CANCELLED)

        streamed = list(job.iter_results())
        assert len(streamed) == PAGE_BUFFER
        outcome = job.outcome()
        assert outcome.stop_reason == StopReason.CANCELLED
        assert outcome.report.cliques_emitted == PAGE_BUFFER
        assert [(r.vertices, r.probability) for r in streamed] == [
            (r.vertices, r.probability)
            for r in serial_outcome.records[:PAGE_BUFFER]
        ]

    def test_cancel_done_job_leaves_it_done(self, remote):
        job = remote.submit(REQUEST)
        job.wait()
        status = job.cancel()
        assert status.state == JobState.DONE

    def test_delete_unknown_job_is_404(self, remote):
        with pytest.raises(JobNotFoundError):
            remote.job("job-999999").cancel()

    def test_status_unknown_job_is_404(self, remote):
        with pytest.raises(JobNotFoundError):
            remote.job("job-999999").status()


class TestCursors:
    def test_cursor_skips_acknowledged_pages(self, remote, serial_outcome):
        job = remote.submit(REQUEST, page_size=7)
        poll_until(job, JobState.DONE)
        job._cursor = 5  # re-attach mid-stream: pages 0–4 already consumed
        tail = list(job.iter_results())
        assert [(r.vertices, r.probability) for r in tail] == [
            (r.vertices, r.probability)
            for r in serial_outcome.records[5 * 7 :]
        ]

    def test_released_cursor_rejected_through_the_wire(self, remote):
        job = remote.submit(REQUEST, page_size=7)
        list(job.iter_results())
        fresh = remote.job(job.id)
        with pytest.raises(JobError, match="released"):
            list(fresh.iter_results())

    def test_malformed_cursor_is_a_format_error(self, server, remote):
        job = remote.submit(REQUEST)
        job.wait()
        with pytest.raises(FormatError):
            remote._open_stream(f"/v2/jobs/{job.id}/results?cursor=abc")
        with pytest.raises(FormatError):
            remote._open_stream(f"/v2/jobs/{job.id}/results?page=3")


class _CannedStreams:
    """A fake ``_HttpClient`` serving canned NDJSON connections.

    Each connection is a list of encoded chunk lines; a ``drop`` marker
    raises mid-iteration like a severed socket.  Connections are handed
    out in order; the cursor of every open is recorded so tests can pin
    the resume sequence.
    """

    DROP = object()

    def __init__(self, connections, states=()):
        self._connections = list(connections)
        self._states = list(states)  # answers to status polls, in order
        self.opened_at = []
        self.status_polls = 0

    def _open_stream(self, path: str, *, timeout: float | None = None):
        self.opened_at.append(int(path.rsplit("cursor=", 1)[1]))
        if not self._connections:
            raise AssertionError("no more canned connections")
        return _CannedResponse(self._connections.pop(0))

    def _get(self, path: str, *, timeout: float | None = None):
        # A status poll; state defaults to running once the canned
        # sequence is exhausted.
        self.status_polls += 1
        state = self._states.pop(0) if self._states else JobState.RUNNING
        return codec.job_status_to_wire(
            codec.JobStatus(
                id=path.rsplit("/", 1)[1],
                state=state,
                cliques_emitted=0,
                frames_expanded=0,
                elapsed_seconds=0.0,
                records=0,
            )
        )


class _CannedResponse:
    def __init__(self, lines):
        self._lines = lines

    def __iter__(self):
        for line in self._lines:
            if line is _CannedStreams.DROP:
                raise OSError("connection dropped")
            yield line

    def close(self):
        pass


def chunk_lines(job_id: str, outcome, page_size: int) -> list[bytes]:
    """Encode an outcome as the NDJSON lines a server would stream."""
    records = outcome.records
    pages = [
        records[i : i + page_size] for i in range(0, len(records), page_size)
    ]
    summary = codec.job_summary_from_wire(codec.job_summary_to_wire(outcome))
    lines = [
        codec.encode(
            codec.job_chunk_to_wire(
                codec.JobChunk(
                    job=job_id, seq=seq, records=tuple(page), final=False
                )
            )
        )
        for seq, page in enumerate(pages)
    ]
    lines.append(
        codec.encode(
            codec.job_chunk_to_wire(
                codec.JobChunk(
                    job=job_id,
                    seq=len(pages),
                    records=(),
                    final=True,
                    summary=summary,
                )
            )
        )
    )
    return lines


class TestClientReconnect:
    """RemoteJob's resume logic against deterministic fake connections."""

    def test_drop_mid_stream_resumes_without_loss(self, serial_outcome):
        lines = chunk_lines("job-000042", serial_outcome, page_size=7)
        fake = _CannedStreams(
            [
                lines[:3] + [_CannedStreams.DROP],  # dies after 3 chunks
                lines[3:],  # resumed connection serves the rest
            ]
        )
        job = RemoteJob(fake, "job-000042")
        streamed = list(job.iter_results())
        assert fake.opened_at == [0, 3]
        assert [(r.vertices, r.probability) for r in streamed] == [
            (r.vertices, r.probability) for r in serial_outcome.records
        ]
        job.outcome().assert_matches(serial_outcome)

    def test_drop_mid_line_does_not_advance_the_cursor(self, serial_outcome):
        lines = chunk_lines("job-000042", serial_outcome, page_size=7)
        truncated = lines[1][: len(lines[1]) // 2]
        fake = _CannedStreams(
            [
                [lines[0], truncated],  # chunk 1 cut off mid-bytes
                lines[1:],
            ]
        )
        job = RemoteJob(fake, "job-000042")
        with pytest.raises(ServiceError, match="malformed"):
            list(job.iter_results())

    def test_stalled_stream_gives_up(self, serial_outcome, monkeypatch):
        monkeypatch.setattr(client_module, "_RECONNECT_BACKOFF_SECONDS", 1e-6)
        fake = _CannedStreams([[_CannedStreams.DROP]] * 10)
        job = RemoteJob(fake, "job-000042")
        with pytest.raises(ServiceError, match="stalled"):
            list(job.iter_results())
        assert len(fake.opened_at) == 5

    def test_queued_job_slow_start_is_not_stalled(
        self, serial_outcome, monkeypatch
    ):
        """A job parked in the submit queue must not burn the stall budget.

        Regression test: the stream of a queued job legitimately closes
        with nothing to deliver — reconnecting used to count each of
        those empty streams as a stall (with zero delay between them), so
        any job queued behind a few seconds of work died with a spurious
        ``stalled`` error before it ever started.
        """
        monkeypatch.setattr(client_module, "_RECONNECT_BACKOFF_SECONDS", 1e-6)
        lines = chunk_lines("job-000042", serial_outcome, page_size=7)
        empty_streams = 2 * client_module._MAX_STALLED_RECONNECTS
        fake = _CannedStreams(
            [[]] * empty_streams + [lines],
            states=[JobState.QUEUED] * empty_streams,
        )
        job = RemoteJob(fake, "job-000042")
        streamed = list(job.iter_results())
        assert fake.status_polls == empty_streams
        assert len(fake.opened_at) == empty_streams + 1
        assert [(r.vertices, r.probability) for r in streamed] == [
            (r.vertices, r.probability) for r in serial_outcome.records
        ]
        job.outcome().assert_matches(serial_outcome)

    def test_stall_budget_starts_once_running_observed(
        self, serial_outcome, monkeypatch
    ):
        """Queued polls are free; the budget starts at the first running."""
        monkeypatch.setattr(client_module, "_RECONNECT_BACKOFF_SECONDS", 1e-6)
        queued = 4
        fake = _CannedStreams(
            [[]] * 20,
            states=[JobState.QUEUED] * queued,  # then running forever
        )
        job = RemoteJob(fake, "job-000042")
        with pytest.raises(ServiceError, match="stalled"):
            list(job.iter_results())
        # 4 free reconnects while queued + the full stall budget after.
        assert len(fake.opened_at) == queued + client_module._MAX_STALLED_RECONNECTS
        # Once running was observed the client stops polling status.
        assert fake.status_polls == queued + 1

    def test_idle_reconnects_back_off_exponentially(
        self, serial_outcome, monkeypatch
    ):
        delays: list[float] = []
        monkeypatch.setattr(client_module.time, "sleep", delays.append)
        fake = _CannedStreams([[_CannedStreams.DROP]] * 10)
        job = RemoteJob(fake, "job-000042")
        with pytest.raises(ServiceError, match="stalled"):
            list(job.iter_results())
        base = client_module._RECONNECT_BACKOFF_SECONDS
        assert delays == [base, base * 2, base * 4, base * 8]

    def test_foreign_chunk_is_rejected(self, serial_outcome):
        lines = chunk_lines("job-000099", serial_outcome, page_size=7)
        fake = _CannedStreams([lines])
        job = RemoteJob(fake, "job-000042")
        with pytest.raises(ServiceError, match="job-000099"):
            list(job.iter_results())


class TestTimeouts:
    """Control-plane calls must not inherit the 300 s data-plane default."""

    def test_per_call_timeout_routing(self, server, remote, monkeypatch):
        captured = []
        real = urllib.request.urlopen

        def spy(request, timeout=None):
            captured.append(timeout)
            return real(request, timeout=timeout)

        monkeypatch.setattr(urllib.request, "urlopen", spy)

        remote.health()
        remote.stats()
        job = remote.submit(REQUEST)
        job.status()
        job.wait()
        job.cancel()
        remote.jobs()
        remote.enumerate(REQUEST)

        control, data = DEFAULT_CONTROL_TIMEOUT_SECONDS, DEFAULT_TIMEOUT_SECONDS
        # health, stats, submit, status, cancel, jobs — everything except
        # the result stream and the synchronous enumerate.
        assert captured.count(control) == 6
        assert captured.count(data) == 2
        assert captured[-1] == data

    def test_explicit_timeout_wins(self, server, remote, monkeypatch):
        captured = []
        real = urllib.request.urlopen

        def spy(request, timeout=None):
            captured.append(timeout)
            return real(request, timeout=timeout)

        monkeypatch.setattr(urllib.request, "urlopen", spy)
        remote.health(timeout=1.5)
        remote.stats(timeout=2.5)
        assert captured == [1.5, 2.5]


class TestDrain:
    def test_draining_server_rejects_submissions_with_503(
        self, server, remote
    ):
        done = remote.submit(REQUEST)
        done.wait()
        server.drain()
        assert server.draining

        with pytest.raises(ServiceError, match="draining"):
            remote.submit(REQUEST)
        with pytest.raises(ServiceError, match="draining"):
            remote.enumerate(REQUEST)

        # Read-only endpoints keep answering while the server drains.
        assert remote.health()["status"] == "ok"
        assert done.status().state == JobState.DONE

    def test_close_unparks_blocked_producers(self, graph):
        server = MiningServer(graph, port=0).start()
        remote = RemoteSession(server.url)
        parked = remote.submit(REQUEST, page_size=1)  # parks at the buffer
        deadline = time.monotonic() + DEADLINE
        while parked.status().records < PAGE_BUFFER:
            assert time.monotonic() < deadline
            time.sleep(0.005)
        # close() drains: the parked producer is woken to fail, so this
        # returns instead of deadlocking on scheduler shutdown.
        server.close()
        assert parked.id in repr(parked)
        with pytest.raises(ServiceError):
            remote.health(timeout=2.0)  # the socket really is gone
