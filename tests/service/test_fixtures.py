"""The conformance corpus — golden wire-format fixtures.

Every ``fixtures/*.json`` file is a canonically-encoded payload produced by
``make_fixtures.py``.  The tests assert two independent things:

* **byte-stable encoding** — decoding a fixture and re-encoding it through
  the codec reproduces the exact bytes on disk.  Any change to envelope
  shape, key names, canonical formatting or float rendering fails here and
  must come with a deliberate fixture regeneration (i.e. a reviewable
  diff) and, for semantic changes, a schema-version bump;
* **decode equality** — fixtures decode to exactly the objects they were
  built from, pinning the semantics, not just the spelling.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.api import EnumerationRequest
from repro.core.engine import RunControls, StopReason
from repro.errors import ParameterError
from repro.service import codec

FIXTURES = Path(__file__).parent / "fixtures"
FIXTURE_PATHS = sorted(FIXTURES.glob("*.json"))


def roundtrip(raw: bytes) -> bytes:
    """Decode fixture bytes to an object and re-encode them canonically."""
    payload = codec.decode(raw)
    kind = payload.get("kind")
    if kind == "sweep-request":
        request, alphas = codec.sweep_from_wire(payload)
        return codec.encode(codec.sweep_to_wire(request, alphas))
    if kind == "graph-ref-request":
        ref, request = codec.ref_request_from_wire(payload)
        return codec.encode(codec.ref_request_to_wire(request, graph=ref))
    if kind == "graph-ref-sweep":
        ref, request, alphas = codec.ref_sweep_from_wire(payload)
        return codec.encode(codec.ref_sweep_to_wire(request, alphas, graph=ref))
    if kind == "job-request":
        ref, request, page_size = codec.job_request_from_wire(payload)
        return codec.encode(
            codec.job_request_to_wire(request, graph=ref, page_size=page_size)
        )
    if kind == "job-result-chunk":
        chunk = codec.job_chunk_from_wire(payload)
        return codec.encode(codec.job_chunk_to_wire(chunk))
    if kind == "metrics":
        # A metrics snapshot decodes to a plain dict, which the generic
        # to_wire dispatcher (rightly) refuses to guess a kind for.
        return codec.encode(codec.metrics_to_wire(codec.metrics_from_wire(payload)))
    obj = codec.from_wire(payload)
    if kind == "error":
        return codec.encode(codec.error_to_wire(obj))
    return codec.encode(codec.to_wire(obj))


def test_corpus_is_present():
    """The corpus must never silently vanish (glob returning [] passes
    parametrized tests vacuously)."""
    assert len(FIXTURE_PATHS) >= 20


@pytest.mark.parametrize("path", FIXTURE_PATHS, ids=lambda p: p.stem)
def test_byte_stable_roundtrip(path):
    raw = path.read_bytes()
    assert roundtrip(raw) == raw, (
        f"{path.name} no longer round-trips byte-for-byte; if the schema "
        f"changed deliberately, bump SCHEMA_VERSION and regenerate with "
        f"make_fixtures.py"
    )


@pytest.mark.parametrize("path", FIXTURE_PATHS, ids=lambda p: p.stem)
def test_fixture_envelopes_are_versioned(path):
    payload = codec.decode(path.read_bytes())
    assert payload["schema"] in codec.SUPPORTED_SCHEMA_VERSIONS
    assert isinstance(payload["kind"], str)


def _restamp(payload, version):
    """Recursively rewrite every nested envelope's schema version."""
    if isinstance(payload, dict):
        restamped = {k: _restamp(v, version) for k, v in payload.items()}
        if "schema" in restamped and "kind" in restamped:
            restamped["schema"] = version
        return restamped
    if isinstance(payload, list):
        return [_restamp(item, version) for item in payload]
    return payload


@pytest.mark.parametrize(
    "path",
    [p for p in FIXTURE_PATHS if not p.stem.startswith(("graph", "job"))],
    ids=lambda p: p.stem,
)
def test_v1_corpus_decodes_identically_under_v2(path):
    """The v1→v2 compatibility contract: every v1 envelope decodes to the
    same object whether stamped schema 1 (an old client) or schema 2 (a new
    one) — v2 is strictly additive over the v1 kinds."""
    original = codec.decode(path.read_bytes())
    restamped = _restamp(original, codec.SCHEMA_VERSION_V2)

    def load(payload):
        kind = payload.get("kind")
        if kind == "sweep-request":
            return codec.sweep_from_wire(payload)
        obj = codec.from_wire(payload)
        if kind == "error":
            # Exceptions compare by identity; their decoded meaning is
            # (reconstructed type, message).
            return type(obj), str(obj)
        return obj

    assert load(restamped) == load(original)


class TestDecodeEquality:
    """Fixtures decode to exactly the objects they encode."""

    def load(self, name: str):
        return codec.decode((FIXTURES / f"{name}.json").read_bytes())

    def test_request_mule_default(self):
        request = codec.from_wire(self.load("request_mule_default"))
        assert request == EnumerationRequest(algorithm="mule", alpha=0.5)

    def test_request_large_with_controls(self):
        request = codec.from_wire(self.load("request_large_with_controls"))
        assert request == EnumerationRequest(
            algorithm="large",
            alpha=0.25,
            size_threshold=3,
            controls=RunControls(
                max_cliques=100, time_budget_seconds=1.5, check_every_frames=64
            ),
        )

    def test_request_parallel_sharded(self):
        request = codec.from_wire(self.load("request_parallel_sharded"))
        assert request == EnumerationRequest(
            algorithm="fast",
            alpha=0.5,
            workers=4,
            num_shards=8,
            backend="inline",
            execution="parallel",
        )
        assert request.parallel

    def test_request_top_k_threshold_search(self):
        request = codec.from_wire(self.load("request_top_k_threshold_search"))
        assert request == EnumerationRequest(
            algorithm="top_k", k=5, min_size=3, prune_edges=False
        )
        assert request.alpha is None

    def test_outcome_mule_triangle(self):
        outcome = codec.from_wire(self.load("outcome_mule_triangle"))
        assert outcome.algorithm == "mule"
        assert outcome.alpha == 0.5
        assert outcome.records_by_vertices() == {
            frozenset({1, 2, 3}): pytest.approx(0.729, abs=1e-12),
            frozenset({4}): 1.0,
        }
        assert outcome.stop_reason == StopReason.COMPLETED
        assert outcome.statistics.recursive_calls == 9
        assert outcome.report.frames_expanded == 9
        assert outcome.request == EnumerationRequest(algorithm="mule", alpha=0.5)

    def test_outcome_top_k_ranked(self):
        outcome = codec.from_wire(self.load("outcome_top_k_ranked"))
        assert outcome.algorithm == "top-k"
        assert [sorted(r.vertices) for r in outcome.records] == [[1, 2, 3]]
        assert outcome.request.k == 2

    def test_sweep_request_five_alphas(self):
        request, alphas = codec.sweep_from_wire(
            self.load("sweep_request_five_alphas")
        )
        assert request == EnumerationRequest(algorithm="mule", alpha=0.5)
        assert alphas == [0.5, 0.6, 0.7, 0.8, 0.9]

    def test_records_string_labels(self):
        records = codec.from_wire(self.load("records_string_labels"))
        assert [r.vertices for r in records] == [
            frozenset({"ana", "bob", "cal"}),
            frozenset({"dee"}),
        ]

    def test_error_parameter(self):
        error = codec.from_wire(self.load("error_parameter"))
        assert isinstance(error, ParameterError)
        assert "requires k" in str(error)

    def test_graph_mixed_labels(self):
        from repro.uncertain.graph import UncertainGraph

        graph = codec.from_wire(self.load("graph_mixed_labels"))
        assert graph == UncertainGraph(
            vertices=["isolated"],
            edges=[(1, 2, 0.9), (2, "gene", 1 / 3), (2.5, "gene", 0.0625)],
        )
        # Exact float round-trip of a non-terminating binary fraction.
        assert graph.probability(2, "gene") == 1 / 3

    def test_graph_upload(self):
        upload = codec.from_wire(self.load("graph_upload"))
        assert upload == codec.GraphUpload(
            dataset="ppi", scale=0.05, seed=2015, name="ppi"
        )

    def test_graph_upload_literal(self):
        from tests.service.make_fixtures import fixture_graph

        upload = codec.from_wire(self.load("graph_upload_literal"))
        assert upload.graph == fixture_graph()
        assert upload.dataset is None
        assert upload.name == "triangle"

    def test_graph_ref_request(self):
        ref, request = codec.ref_request_from_wire(self.load("graph_ref_request"))
        assert ref == "ppi"
        assert request == EnumerationRequest(algorithm="mule", alpha=0.5)

    def test_graph_ref_sweep(self):
        ref, request, alphas = codec.ref_sweep_from_wire(
            self.load("graph_ref_sweep")
        )
        assert ref == "ppi"
        assert request == EnumerationRequest(algorithm="mule", alpha=0.5)
        assert alphas == [0.5, 0.6, 0.7, 0.8, 0.9]

    def test_graph_info_ppi(self):
        info = codec.from_wire(self.load("graph_info_ppi"))
        assert info.name == "ppi"
        assert info.num_vertices == 3751
        assert info.pinned and info.default

    def test_job_request_paged(self):
        ref, request, page_size = codec.job_request_from_wire(
            self.load("job_request_paged")
        )
        assert ref == "ppi"
        assert request == EnumerationRequest(algorithm="mule", alpha=0.5)
        assert page_size == 128

    def test_job_status_running(self):
        status = codec.from_wire(self.load("job_status_running"))
        assert status == codec.JobStatus(
            id="job-000001",
            state="running",
            cliques_emitted=12,
            frames_expanded=40,
            elapsed_seconds=0.03125,
            records=12,
        )

    def test_job_status_failed(self):
        status = codec.from_wire(self.load("job_status_failed"))
        assert status.state == "failed"
        assert isinstance(status.error, ParameterError)
        assert "requires k" in str(status.error)

    def test_job_result_chunk_page(self):
        chunk = codec.from_wire(self.load("job_result_chunk_page"))
        assert chunk.job == "job-000002"
        assert chunk.seq == 0
        assert not chunk.final
        assert chunk.summary is None and chunk.error is None
        assert {r.vertices for r in chunk.records} == {
            frozenset({1, 2, 3}),
            frozenset({4}),
        }

    def test_job_result_chunk_final(self):
        chunk = codec.from_wire(self.load("job_result_chunk_final"))
        assert chunk.final
        assert chunk.error is None
        assert chunk.records == ()
        summary = chunk.summary
        assert summary.algorithm == "mule"
        assert summary.records == []
        assert summary.report.stop_reason == StopReason.COMPLETED
        assert summary.request == EnumerationRequest(algorithm="mule", alpha=0.5)

    def test_job_list_mixed(self):
        statuses = codec.from_wire(self.load("job_list_mixed"))
        assert [s.id for s in statuses] == ["job-000001", "job-000002"]
        assert [s.state for s in statuses] == ["running", "done"]

    def test_metrics_snapshot(self):
        from tests.service.make_fixtures import metrics_snapshot

        snapshot = codec.metrics_from_wire(self.load("metrics_snapshot"))
        assert snapshot == metrics_snapshot()
        series = snapshot["histograms"][
            "http_request_seconds{endpoint=/v1/stats}"
        ]
        # Exact binary fractions: the fixture builder observed 1/32, 1/8
        # and 1/2 into buckets (1/16, 1/4, 1).
        assert series["counts"] == [1, 1, 1, 0]
        assert series["sum"] == 0.65625
