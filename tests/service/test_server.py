"""Server + client tests — endpoints, error mapping, the acceptance sweep.

These run a real :class:`MiningServer` on an ephemeral port and talk to it
over actual sockets.  The headline assertions:

* a ≥5-α remote sweep compiles exactly once **server-side**, asserted via
  ``GET /v1/stats`` (the PR's acceptance criterion);
* ``RemoteSession.sweep`` outcomes are clique/counter-identical to a local
  ``MiningSession.sweep``;
* protocol failures surface as the right exception types client-side
  (``ParameterError`` for bad requests, ``FormatError`` for malformed
  payloads, ``ServiceError`` for transport problems).
"""

from __future__ import annotations

import json
import random
import urllib.error
import urllib.request

import pytest

from repro.api import EnumerationRequest, MiningSession
from repro.errors import FormatError, ParameterError, ReproError, ServiceError
from repro.generators.erdos_renyi import random_uncertain_graph
from repro.service import MiningServer, RemoteSession, codec
from repro.uncertain.graph import UncertainGraph

SWEEP_ALPHAS = [0.2, 0.3, 0.4, 0.5, 0.6, 0.7]


@pytest.fixture(scope="module")
def graph():
    return random_uncertain_graph(14, 0.5, rng=random.Random(21))


@pytest.fixture()
def server(graph):
    with MiningServer(graph, port=0) as srv:
        yield srv


@pytest.fixture()
def remote(server):
    return RemoteSession(server.url)


def post_raw(server, path: str, body: bytes, content_type="application/json"):
    """POST raw bytes, returning (status, payload-dict)."""
    request = urllib.request.Request(
        server.url + path,
        data=body,
        headers={"Content-Type": content_type},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


class TestHealthAndStats:
    def test_health(self, remote, graph):
        payload = remote.health()
        assert payload["status"] == "ok"
        assert payload["schema"] == codec.SCHEMA_VERSION
        assert payload["graph"]["num_vertices"] == graph.num_vertices
        assert payload["graph"]["fingerprint"] == graph.fingerprint()

    def test_stats_shape(self, remote):
        payload = remote.stats()
        assert payload["kind"] == "service-stats"
        assert set(payload["cache"]) == {
            "hits",
            "misses",
            "compilations",
            "derivations",
            "entries",
        }
        assert payload["scheduler"]["max_workers"] >= 1
        assert payload["http"]["received"] >= 0

    def test_port_zero_resolves(self, server):
        assert server.port > 0
        assert str(server.port) in server.url


class TestRemoteSweep:
    def test_remote_sweep_compiles_exactly_once_serverside(self, remote, graph):
        """Acceptance criterion: ≥5 α values over the wire, one server-side
        compilation, asserted via /v1/stats."""
        assert len(SWEEP_ALPHAS) >= 5
        outcomes = remote.sweep(SWEEP_ALPHAS)
        stats = remote.stats()
        assert stats["cache"]["compilations"] == 1, stats
        assert remote.cache_info().compilations == 1

        local = MiningSession(graph).sweep(SWEEP_ALPHAS)
        for ours, theirs in zip(outcomes, local):
            ours.assert_matches(theirs)

    def test_sweep_then_other_algorithms_reuse_the_artifact(self, remote):
        remote.sweep(SWEEP_ALPHAS)
        remote.enumerate(EnumerationRequest(algorithm="noip", alpha=0.4))
        info = remote.cache_info()
        # The DFS-NOIP pass at α=0.4 derives from the α=0.2 base.
        assert info.compilations == 1, info

    def test_empty_sweep_returns_empty(self, remote):
        assert remote.sweep([]) == []


class TestErrorMapping:
    def test_bad_parameters_reraise_original_type(self, remote):
        payload = codec.request_to_wire(EnumerationRequest(algorithm="mule", alpha=0.5))
        payload["algorithm"] = "quantum"
        with pytest.raises(ParameterError, match="unknown algorithm"):
            remote._post("/v1/enumerate", payload)

    def test_unknown_key_reraise_format_error(self, remote):
        payload = codec.request_to_wire(EnumerationRequest(algorithm="mule", alpha=0.5))
        payload["surprise"] = True
        with pytest.raises(FormatError, match="unknown keys"):
            remote._post("/v1/enumerate", payload)

    def test_invalid_json_body(self, server):
        status, payload = post_raw(server, "/v1/enumerate", b"{nope")
        assert status == 400
        assert payload["kind"] == "error"
        assert payload["type"] == "FormatError"

    def test_empty_body(self, server):
        status, payload = post_raw(server, "/v1/enumerate", b"")
        assert status == 400
        assert payload["type"] == "FormatError"

    def test_unknown_post_route_is_404(self, server):
        body = codec.encode(
            codec.request_to_wire(EnumerationRequest(algorithm="mule", alpha=0.5))
        )
        status, payload = post_raw(server, "/v1/nope", body)
        assert status == 404
        assert payload["kind"] == "error"

    def test_unknown_get_route_is_404(self, server):
        request = urllib.request.Request(server.url + "/nope", method="GET")
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=30)
        assert excinfo.value.code == 404

    def test_unreachable_server_raises_service_error(self):
        remote = RemoteSession("http://127.0.0.1:9", timeout=2)
        with pytest.raises(ServiceError, match="cannot reach"):
            remote.enumerate(EnumerationRequest(algorithm="mule", alpha=0.5))

    def test_error_closes_keepalive_connection(self, server):
        # Regression: an error response may leave unread body bytes on the
        # socket; under HTTP/1.1 keep-alive a follow-up request on the same
        # connection would read them as a request line.  The server must
        # close after an error (and say so).
        import http.client

        connection = http.client.HTTPConnection(server.host, server.port, timeout=30)
        try:
            # Declared length far beyond what is sent (and over the cap).
            connection.putrequest("POST", "/v1/enumerate")
            connection.putheader("Content-Type", "application/json")
            connection.putheader("Content-Length", str(2 * 1024 * 1024))
            connection.endheaders()
            connection.send(b"{ partial")
            response = connection.getresponse()
            assert response.status == 400
            assert response.getheader("Connection") == "close"
            response.read()
        finally:
            connection.close()
        # And the server itself is still healthy on a fresh connection.
        assert RemoteSession(server.url).health()["status"] == "ok"

    def test_chunked_transfer_encoding_is_refused_with_411(self, server, graph):
        """Chunked uploads must fail loudly, not decode to an empty body.

        Regression: ``http.server`` never decodes chunked transfer
        encoding, so ``POST /v2/graphs`` trusted the (absent)
        Content-Length, read an empty body, and blamed the payload with a
        confusing ``FormatError``.  The framing problem itself must be
        reported: HTTP 411 with a clear error envelope.
        """
        import http.client

        body = codec.encode(codec.upload_to_wire(codec.GraphUpload(graph=graph)))
        connection = http.client.HTTPConnection(server.host, server.port, timeout=30)
        try:
            connection.request(
                "POST",
                "/v2/graphs",
                body=iter([body]),
                headers={
                    "Content-Type": "application/json",
                    "Transfer-Encoding": "chunked",
                },
                encode_chunked=True,
            )
            response = connection.getresponse()
            payload = json.loads(response.read())
            assert response.status == 411
            # Unread chunked bytes are on the socket: keep-alive must end.
            assert response.getheader("Connection") == "close"
            assert payload["kind"] == "error"
            assert payload["type"] == "ServiceError"
            assert "chunked" in payload["message"]
            assert "Content-Length" in payload["message"]
        finally:
            connection.close()
        assert RemoteSession(server.url).health()["status"] == "ok"

    def test_missing_content_length_is_411(self, server):
        """A body-carrying POST without Content-Length is refused as 411."""
        import http.client

        connection = http.client.HTTPConnection(server.host, server.port, timeout=30)
        try:
            connection.putrequest("POST", "/v2/graphs")
            connection.putheader("Content-Type", "application/json")
            connection.endheaders()
            response = connection.getresponse()
            payload = json.loads(response.read())
            assert response.status == 411
            assert payload["type"] == "ServiceError"
            assert "Content-Length" in payload["message"]
        finally:
            connection.close()
        assert RemoteSession(server.url).health()["status"] == "ok"

    def test_explicit_zero_content_length_is_format_error(self, server):
        """Content-Length: 0 is a framing-correct but empty request: 400."""
        status, payload = post_raw(server, "/v2/graphs", b"")
        assert status == 400
        assert payload["type"] == "FormatError"
        assert "body is required" in payload["message"]

    def test_failed_requests_counted(self, server, remote):
        with pytest.raises(ReproError):
            remote._post("/v1/nope", {"schema": 1, "kind": "x"})
        assert remote.stats()["http"]["failed"] >= 1


class TestLifecycle:
    def test_close_is_idempotent(self, graph):
        server = MiningServer(graph, port=0).start()
        server.close()
        server.close()

    def test_close_without_start(self, graph):
        # Never served: close() must not hang on shutdown().
        server = MiningServer(graph, port=0)
        server.close()

    def test_server_on_empty_graph(self):
        with MiningServer(UncertainGraph(), port=0) as server:
            remote = RemoteSession(server.url)
            outcome = remote.enumerate(EnumerationRequest(algorithm="mule", alpha=0.5))
        assert outcome.num_cliques == 0

    def test_requests_after_close_fail_with_service_error(self, graph):
        with MiningServer(graph, port=0) as server:
            url = server.url
        remote = RemoteSession(url, timeout=2)
        with pytest.raises(ServiceError):
            remote.health()
