"""The async job pipeline — state machine, backpressure, cancellation.

These tests drive :class:`Job` / :class:`JobRegistry` through the
scheduler without any HTTP in the way, pinning the pipeline guarantees
the service endpoints build on:

* the state machine only moves ``queued → running → done|failed|cancelled``
  and every terminal state is sticky;
* ``cancel()`` returning ``True`` is a guarantee of ``cancelled``
  provenance — including for still-queued jobs and for cancellations
  racing a time budget in the same check window;
* the bounded page buffer blocks the producer deterministically, so a
  slow stream consumer caps server memory instead of growing it;
* streamed pages reassemble into the exact records of a synchronous run,
  and mid-stream cancellation truncates to a deterministic prefix;
* scheduler stats and the wire codec stay in lockstep with the job
  vocabulary (the ``JOB_STATES`` drift test lives here).
"""

from __future__ import annotations

import random
import threading
import time

import pytest

from repro.api import EnumerationRequest, MiningSession
from repro.core.engine import RunControls, StopReason
from repro.errors import JobError, JobNotFoundError, ParameterError, ServiceError
from repro.generators.erdos_renyi import random_uncertain_graph
from repro.service import EnumerationScheduler, JobState, codec
from repro.service.jobs import JobRegistry

REQUEST = EnumerationRequest(algorithm="mule", alpha=0.3)
#: Sentinel alpha the ``failing_compile`` fixture booby-traps.
FAILING_REQUEST = EnumerationRequest(algorithm="mule", alpha=0.99)
DEADLINE = 10.0  # generous cap for wait_for-style polling loops


@pytest.fixture
def graph():
    return random_uncertain_graph(16, 0.5, rng=random.Random(11))


@pytest.fixture
def scheduler(graph):
    sched = EnumerationScheduler(graph)
    yield sched
    sched.shutdown(wait=False, drain=True)


@pytest.fixture
def serial_outcome(graph):
    return MiningSession(graph).enumerate(REQUEST)


@pytest.fixture
def failing_compile(monkeypatch):
    """Make compiling at ``FAILING_REQUEST``'s alpha raise (compilation is
    the shared front of both job execution paths); other alphas run
    normally so failed jobs can coexist with successful ones."""
    real = MiningSession.compiled

    def maybe_boom(self, *args, **kwargs):
        if kwargs.get("alpha") == FAILING_REQUEST.alpha:
            raise ParameterError("injected compile failure")
        return real(self, *args, **kwargs)

    monkeypatch.setattr(MiningSession, "compiled", maybe_boom)


def wait_until(predicate, message: str) -> None:
    deadline = time.monotonic() + DEADLINE
    while not predicate():
        if time.monotonic() > deadline:
            pytest.fail(f"timed out waiting for {message}")
        time.sleep(0.001)


class TestStateMachine:
    def test_job_states_match_codec_vocabulary(self):
        # codec.JOB_STATES is a deliberate literal (the wire contract);
        # this is the drift alarm keeping it in lockstep with JobState.
        assert codec.JOB_STATES == JobState.ALL
        assert set(JobState.TERMINAL) <= set(JobState.ALL)
        assert StopReason.CANCELLED == JobState.CANCELLED

    def test_happy_path_reaches_done(self, scheduler, serial_outcome):
        job = scheduler.submit_job(REQUEST, max_pending_pages=None)
        outcome = job.wait(timeout=DEADLINE)
        assert job.state == JobState.DONE
        outcome.assert_matches(serial_outcome)
        assert job.records_total == len(serial_outcome.records)

    def test_ids_are_sequential_and_lookup_works(self, scheduler):
        first = scheduler.submit_job(REQUEST, max_pending_pages=None)
        second = scheduler.submit_job(REQUEST, max_pending_pages=None)
        assert first.id != second.id
        assert scheduler.jobs.get(first.id) is first
        assert scheduler.jobs.get(second.id) is second
        with pytest.raises(JobNotFoundError):
            scheduler.jobs.get("job-999999")

    def test_execution_failure_fails_the_job(self, scheduler, failing_compile):
        job = scheduler.submit_job(FAILING_REQUEST, max_pending_pages=None)
        with pytest.raises(ParameterError, match="injected"):
            job.wait(timeout=DEADLINE)
        assert job.state == JobState.FAILED
        assert isinstance(job.error, ParameterError)

    def test_failed_job_streams_its_error(self, scheduler, failing_compile):
        job = scheduler.submit_job(FAILING_REQUEST, max_pending_pages=None)
        chunks = list(job.stream_chunks())
        assert len(chunks) == 1 and chunks[0].final
        assert chunks[0].summary is None
        assert isinstance(chunks[0].error, ParameterError)

    def test_progress_is_monotonic(self, scheduler):
        job = scheduler.submit_job(REQUEST, max_pending_pages=None)
        snapshots = []
        while job.state not in JobState.TERMINAL:
            snapshots.append(job.progress())
        snapshots.append(job.progress())
        emitted = [s.cliques_emitted for s in snapshots]
        frames = [s.frames_expanded for s in snapshots]
        assert emitted == sorted(emitted)
        assert frames == sorted(frames)


class TestCancellation:
    def test_cancel_after_terminal_returns_false(self, scheduler):
        job = scheduler.submit_job(REQUEST, max_pending_pages=None)
        job.wait(timeout=DEADLINE)
        assert job.state == JobState.DONE
        assert job.cancel() is False
        assert job.state == JobState.DONE  # the terminal state stands

    def test_cancel_while_queued_settles_immediately(self, graph):
        with EnumerationScheduler(graph, max_workers=1) as scheduler:
            # Park the single worker: page_size=1 + max_pending_pages=1
            # blocks the producer after its first record until someone
            # streams, so the second submission stays queued.
            blocker = scheduler.submit_job(
                REQUEST, page_size=1, max_pending_pages=1
            )
            wait_until(
                lambda: blocker.records_total >= 1, "blocker to start producing"
            )
            queued = scheduler.submit_job(REQUEST, max_pending_pages=None)
            assert queued.state == JobState.QUEUED

            assert queued.cancel() is True
            assert queued.state == JobState.CANCELLED
            outcome = queued.wait(timeout=DEADLINE)
            assert outcome.records == []
            assert outcome.stop_reason == StopReason.CANCELLED

            # Unblock the parked job; the worker must also survive the
            # settled-while-queued job without flinching.
            blocker_records = [
                r for chunk in blocker.stream_chunks() for r in chunk.records
            ]
            assert blocker.state == JobState.DONE
            assert len(blocker_records) == blocker.records_total

    def test_cancel_beats_time_budget_in_same_window(self, graph):
        """A queued job with an already-expired budget that gets cancelled
        must settle ``cancelled``, not ``time-budget`` — one deterministic
        terminal state even when both limits land in the same window."""
        with EnumerationScheduler(graph, max_workers=1) as scheduler:
            blocker = scheduler.submit_job(
                REQUEST, page_size=1, max_pending_pages=1
            )
            wait_until(
                lambda: blocker.records_total >= 1, "blocker to start producing"
            )
            hurried = scheduler.submit_job(
                EnumerationRequest(
                    algorithm="mule",
                    alpha=0.3,
                    controls=RunControls(
                        time_budget_seconds=0.0, check_every_frames=1
                    ),
                ),
                max_pending_pages=None,
            )
            assert hurried.cancel() is True
            list(blocker.stream_chunks())
            outcome = hurried.wait(timeout=DEADLINE)
            assert hurried.state == JobState.CANCELLED
            assert outcome.stop_reason == StopReason.CANCELLED

    def test_mid_stream_cancel_truncates_to_a_prefix(
        self, scheduler, serial_outcome
    ):
        job = scheduler.submit_job(
            EnumerationRequest(
                algorithm="mule",
                alpha=0.3,
                controls=RunControls(check_every_frames=1),
            ),
            page_size=1,
            max_pending_pages=1,
        )
        records = []
        chunks = job.stream_chunks()
        final = None
        for chunk in chunks:
            if chunk.final:
                final = chunk
                break
            records.extend(chunk.records)
            if len(records) == 2:
                assert job.cancel() is True
        assert final is not None and final.error is None
        assert job.state == JobState.CANCELLED
        assert final.summary.stop_reason == StopReason.CANCELLED
        # Deterministic truncation: with a 1-record page buffer the
        # producer is exactly one record ahead of the acked stream, so a
        # cancel after 2 delivered records always lands at 2 produced.
        expected = [
            (r.vertices, r.probability) for r in serial_outcome.records[:2]
        ]
        assert [(r.vertices, r.probability) for r in records] == expected
        assert final.summary.report.cliques_emitted == len(records)


class TestBackpressure:
    def test_producer_blocks_at_the_page_bound(self, scheduler):
        job = scheduler.submit_job(REQUEST, page_size=1, max_pending_pages=2)
        wait_until(lambda: job.records_total >= 2, "buffer to fill")
        # Unconsumed stream: the producer must hold at exactly the bound.
        time.sleep(0.05)
        assert job.records_total == 2
        assert job.state == JobState.RUNNING

        records = [r for chunk in job.stream_chunks() for r in chunk.records]
        assert job.state == JobState.DONE
        assert len(records) == job.records_total

    def test_streamed_records_match_synchronous_run(
        self, scheduler, serial_outcome
    ):
        job = scheduler.submit_job(REQUEST, page_size=3, max_pending_pages=2)
        chunks = list(job.stream_chunks())
        assert chunks[-1].final and chunks[-1].error is None
        seqs = [c.seq for c in chunks]
        assert seqs == list(range(len(chunks)))
        records = [r for c in chunks[:-1] for r in c.records]
        assert [(r.vertices, r.probability) for r in records] == [
            (r.vertices, r.probability) for r in serial_outcome.records
        ]
        summary = chunks[-1].summary
        assert summary.records == []
        assert summary.report.stop_reason == serial_outcome.stop_reason

    def test_wait_after_streaming_raises_job_error(self, scheduler):
        job = scheduler.submit_job(REQUEST, page_size=1, max_pending_pages=2)
        list(job.stream_chunks())
        with pytest.raises(JobError):
            job.wait(timeout=DEADLINE)

    def test_cursor_below_released_floor_is_rejected_eagerly(self, scheduler):
        job = scheduler.submit_job(REQUEST, page_size=1, max_pending_pages=2)
        list(job.stream_chunks())
        with pytest.raises(JobError):
            job.stream_chunks(cursor=0)

    def test_cursor_resume_re_reads_unacked_pages(self, scheduler):
        job = scheduler.submit_job(REQUEST, page_size=1, max_pending_pages=4)
        first = job.stream_chunks()
        chunk0 = next(first)
        first.close()  # consumer died mid-delivery: chunk 0 never acked
        resumed = list(job.stream_chunks(cursor=chunk0.seq))
        assert resumed[0].records == chunk0.records
        assert resumed[-1].final


class TestRegistryAndStats:
    def test_counts_partition_terminal_states(self, scheduler, failing_compile):
        done = scheduler.submit_job(REQUEST, max_pending_pages=None)
        done.wait(timeout=DEADLINE)
        failed = scheduler.submit_job(FAILING_REQUEST, max_pending_pages=None)
        with pytest.raises(ParameterError):
            failed.wait(timeout=DEADLINE)
        cancelled = scheduler.submit_job(REQUEST, max_pending_pages=None)
        cancel_won = cancelled.cancel()
        wait_until(
            lambda: cancelled.state in JobState.TERMINAL, "cancel to settle"
        )
        if cancel_won:  # the True-return guarantee
            assert cancelled.state == JobState.CANCELLED

        counts = scheduler.jobs.counts()
        assert counts[JobState.DONE] == 1 + (0 if cancel_won else 1)
        assert counts[JobState.CANCELLED] == (1 if cancel_won else 0)
        assert counts[JobState.FAILED] == 1
        assert counts[JobState.QUEUED] == 0
        assert counts[JobState.RUNNING] == 0

        stats = scheduler.stats()
        assert stats.done == counts[JobState.DONE]
        assert stats.cancelled == counts[JobState.CANCELLED]
        assert stats.failed == 1
        assert stats.submitted == 3

    def test_registry_evicts_oldest_finished_jobs(self, graph):
        with EnumerationScheduler(graph) as scheduler:
            registry = scheduler.jobs
            registry._max_finished = 2
            ids = []
            for _ in range(4):
                job = scheduler.submit_job(REQUEST, max_pending_pages=None)
                job.wait(timeout=DEADLINE)
                ids.append(job.id)
            kept = {job.id for job in registry.list()}
            assert kept == set(ids[-2:])
            with pytest.raises(JobNotFoundError):
                registry.get(ids[0])

    def test_drain_fails_queued_jobs(self, graph):
        scheduler = EnumerationScheduler(graph, max_workers=1)
        blocker = scheduler.submit_job(REQUEST, page_size=1, max_pending_pages=1)
        wait_until(
            lambda: blocker.records_total >= 1, "blocker to start producing"
        )
        queued = scheduler.submit_job(REQUEST, max_pending_pages=None)

        scheduler.shutdown(wait=False, drain=True)
        wait_until(
            lambda: queued.state in JobState.TERMINAL, "queued job to settle"
        )
        assert queued.state == JobState.FAILED
        with pytest.raises(ServiceError, match="server shutdown"):
            queued.wait(timeout=DEADLINE)
        # The blocked producer is woken to fail the same way.
        wait_until(
            lambda: blocker.state in JobState.TERMINAL, "blocker to settle"
        )
        assert blocker.state == JobState.FAILED

    def test_submit_after_shutdown_is_rejected(self, graph):
        scheduler = EnumerationScheduler(graph)
        scheduler.shutdown(wait=True)
        with pytest.raises(ServiceError):
            scheduler.submit_job(REQUEST)
