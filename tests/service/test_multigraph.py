"""Multi-graph hosting tests — v2 endpoints, per-graph parity, v1 freeze.

The acceptance criteria of the resource-model redesign, pinned end to end
over real sockets:

* one server hosting **two datasets** answers v2 enumerate/sweep on both
  with cliques and counters bit-identical to local ``MiningSession`` runs;
* a ≥5-α remote sweep against either graph compiles exactly once,
  asserted via the **per-graph** ``/v1/stats`` counters (not the global
  total, which legitimately grows as other graphs compile);
* the ``/v2/graphs`` resource surface (upload by edge set, build by
  dataset name, list, get, delete) round-trips through
  :class:`RemoteStore`;
* the ``/v1`` surface keeps serving the default graph unchanged while all
  of the above happens.
"""

from __future__ import annotations

import threading

import pytest

from repro.api import EnumerationRequest, GraphStore, MiningSession
from repro.datasets.registry import load_dataset
from repro.errors import GraphNotFoundError, StoreError
from repro.service import MiningServer, RemoteSession, RemoteStore, connect
from repro.uncertain.graph import UncertainGraph

SWEEP_ALPHAS = [0.2, 0.3, 0.4, 0.5, 0.6, 0.7]
DATASETS = {"ppi": 0.012, "dblp-small": 1.0}


@pytest.fixture(scope="module")
def graphs():
    return {
        name: load_dataset(name, scale=scale, seed=7)
        for name, scale in DATASETS.items()
    }


@pytest.fixture()
def server(graphs):
    store = GraphStore()
    for name, graph in graphs.items():
        store.add(graph, name=name, pin=True)
    with MiningServer(store, port=0) as srv:
        yield srv


@pytest.fixture()
def remote(server) -> RemoteStore:
    return connect(server.url)


class TestAcceptance:
    def test_two_datasets_one_process_parity_and_per_graph_compiles(
        self, remote, graphs
    ):
        """The headline criterion: both graphs served concurrently, sweeps
        bit-identical to local sessions, exactly one compilation each."""
        assert len(SWEEP_ALPHAS) >= 5
        sessions = {name: remote.session(name) for name in graphs}
        outcomes = {name: sessions[name].sweep(SWEEP_ALPHAS) for name in graphs}

        for name, graph in graphs.items():
            # Per-graph counters: each graph compiled exactly once, even
            # though the server compiled len(graphs) times in total.
            info = sessions[name].cache_info()
            assert info.compilations == 1, (name, info)
            local = MiningSession(graph).sweep(SWEEP_ALPHAS)
            for ours, theirs in zip(outcomes[name], local):
                ours.assert_matches(theirs)

        stats = remote.stats()
        assert stats["cache"]["compilations"] == len(graphs)
        assert len(stats["graphs"]) == len(graphs)

    def test_concurrent_sweeps_across_graphs_stay_isolated(self, remote, graphs):
        results: dict[str, list] = {}
        errors: list = []
        barrier = threading.Barrier(len(graphs))

        def sweep(name):
            try:
                barrier.wait(timeout=10)
                results[name] = remote.session(name).sweep(SWEEP_ALPHAS)
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        threads = [
            threading.Thread(target=sweep, args=(name,)) for name in graphs
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors
        for name, graph in graphs.items():
            local = MiningSession(graph).sweep(SWEEP_ALPHAS)
            for ours, theirs in zip(results[name], local):
                ours.assert_matches(theirs)
            assert remote.session(name).cache_info().compilations == 1

    def test_v1_surface_still_serves_the_default_graph(self, remote, server, graphs):
        # Busy the non-default graphs first, then speak plain v1.
        names = list(graphs)
        remote.session(names[-1]).sweep(SWEEP_ALPHAS)
        v1 = RemoteSession(server.url)
        default_name = names[0]
        outcome = v1.enumerate(EnumerationRequest(algorithm="mule", alpha=0.4))
        outcome.assert_matches(
            MiningSession(graphs[default_name]).enumerate(
                EnumerationRequest(algorithm="mule", alpha=0.4)
            )
        )
        health = v1.health()
        assert health["graph"]["fingerprint"] == graphs[default_name].fingerprint()


class TestResourceEndpoints:
    def test_list_and_get(self, remote, graphs):
        infos = {info.name: info for info in remote.list()}
        assert set(infos) == set(graphs)
        for name, graph in graphs.items():
            assert infos[name].num_vertices == graph.num_vertices
            assert infos[name].fingerprint == graph.fingerprint()
            assert remote.get(name) == infos[name]
            # Fingerprint and 12-char prefix address the same resource.
            assert remote.get(infos[name].fingerprint[:12]) == infos[name]

    def test_upload_enumerate_delete_lifecycle(self, remote):
        graph = UncertainGraph(
            edges=[("a", "b", 0.9), ("b", "c", 0.8), ("a", "c", 0.7), ("c", "d", 0.4)]
        )
        info = remote.add(graph, name="uploaded")
        assert info.fingerprint == graph.fingerprint()
        assert not info.pinned

        outcome = remote.session("uploaded").enumerate(
            EnumerationRequest(algorithm="mule", alpha=0.5)
        )
        outcome.assert_matches(
            MiningSession(graph).enumerate(
                EnumerationRequest(algorithm="mule", alpha=0.5)
            )
        )
        removed = remote.remove("uploaded")
        assert removed.fingerprint == info.fingerprint
        assert "uploaded" not in remote
        with pytest.raises(GraphNotFoundError):
            remote.get("uploaded")

    def test_server_side_dataset_build(self, remote):
        info = remote.add_dataset("ba5000", scale=0.01, seed=11, name="ba-small")
        local = load_dataset("ba5000", scale=0.01, seed=11)
        assert info.fingerprint == local.fingerprint()
        assert info.num_edges == local.num_edges
        remote.session("ba-small").sweep(SWEEP_ALPHAS)
        assert remote.session("ba-small").cache_info().compilations == 1

    def test_unknown_graph_is_404_not_found_error(self, remote):
        with pytest.raises(GraphNotFoundError, match="unknown graph"):
            remote.session("nope").enumerate(
                EnumerationRequest(algorithm="mule", alpha=0.5)
            )
        with pytest.raises(GraphNotFoundError):
            remote.remove("nope")

    def test_body_ref_contradicting_url_rejected(self, remote, graphs):
        from repro.service import codec

        names = list(graphs)
        session = remote.session(names[0])
        payload = codec.ref_request_to_wire(
            EnumerationRequest(algorithm="mule", alpha=0.5), graph=names[1]
        )
        with pytest.raises(StoreError, match="body names graph"):
            session._post(f"/v2/graphs/{names[0]}/enumerate", payload)

    def test_default_graph_delete_rejected(self, remote, graphs):
        default = list(graphs)[0]
        with pytest.raises(StoreError, match="default"):
            remote.remove(default)

    def test_per_graph_stats_sections(self, remote, graphs):
        name = list(graphs)[0]
        remote.session(name).sweep(SWEEP_ALPHAS)
        stats = remote.stats()
        fingerprint = graphs[name].fingerprint()
        section = stats["graphs"][fingerprint]
        assert section["name"] == name
        assert section["cache"]["compilations"] == 1
        assert section["cache"]["derivations"] == len(SWEEP_ALPHAS) - 1
        # Scheduler queue depth is part of the stats contract.
        assert "queued" in stats["scheduler"]
