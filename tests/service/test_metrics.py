"""Observability integration tests: ``/v1/metrics``, parity, determinism.

The process-global registry accumulates across every test in the
process, so assertions here are written against *deltas* (snapshot
before, act, snapshot after) or against structural invariants — never
against absolute totals.
"""

from __future__ import annotations

import json
import random
import threading
import urllib.error
import urllib.request

import pytest

from repro.api import EnumerationRequest, MiningSession
from repro.errors import FormatError
from repro.generators.erdos_renyi import random_uncertain_graph
from repro.obs import registry as obs_registry
from repro.service import MiningServer, RemoteSession, codec


@pytest.fixture(scope="module")
def graph():
    return random_uncertain_graph(14, 0.5, rng=random.Random(21))


@pytest.fixture()
def server(graph):
    with MiningServer(graph, port=0) as srv:
        yield srv


@pytest.fixture()
def remote(server):
    return RemoteSession(server.url)


def get_raw(server, path: str):
    """GET raw bytes, returning (status, content-type, body)."""
    try:
        with urllib.request.urlopen(server.url + path, timeout=30) as response:
            return response.status, response.headers["Content-Type"], response.read()
    except urllib.error.HTTPError as exc:
        return exc.code, exc.headers["Content-Type"], exc.read()


class TestMetricsEndpoint:
    def test_json_payload_shape(self, server, remote):
        remote.enumerate(EnumerationRequest(algorithm="mule", alpha=0.5))
        status, content_type, body = get_raw(server, "/v1/metrics")
        assert status == 200
        assert content_type.startswith("application/json")
        payload = json.loads(body)
        assert payload["kind"] == "metrics"
        snapshot = codec.metrics_from_wire(payload)
        counters = snapshot["counters"]
        assert any(key.startswith("engine_runs_total") for key in counters)
        assert any(key.startswith("cache_lookups_total{") for key in counters)
        assert any(key.startswith("http_requests_total{") for key in counters)
        assert "sched_queue_depth" in snapshot["gauges"]
        enumerate_series = [
            data
            for key, data in snapshot["histograms"].items()
            if key.startswith("http_request_seconds{")
            and "endpoint=/v1/enumerate" in key
        ]
        assert enumerate_series, sorted(snapshot["histograms"])
        (series,) = enumerate_series
        assert series["count"] >= 1
        assert series["p50"] <= series["p99"]
        assert len(series["counts"]) == len(series["bounds"]) + 1

    def test_per_graph_cache_hit_rate_is_derivable(self, graph, server, remote):
        remote.sweep([0.2, 0.3, 0.4])
        snapshot = remote.metrics()
        fingerprint = graph.fingerprint()
        hits = snapshot["counters"].get(
            f"cache_lookups_total{{graph={fingerprint},outcome=hit}}", 0.0
        )
        misses = sum(
            value
            for key, value in snapshot["counters"].items()
            if key.startswith(f"cache_lookups_total{{graph={fingerprint}")
            and "outcome=hit" not in key
        )
        # A 3-α sweep on one session: ≥1 compile, the rest derive/hit —
        # either way the per-graph series exist and the rate is finite.
        assert misses >= 1
        assert 0.0 <= hits / (hits + misses) < 1.0

    def test_prometheus_format(self, server, remote):
        remote.enumerate(EnumerationRequest(algorithm="mule", alpha=0.5))
        status, content_type, body = get_raw(server, "/v1/metrics?format=prometheus")
        assert status == 200
        assert content_type.startswith("text/plain")
        text = body.decode("utf-8")
        assert "# TYPE engine_runs_total counter" in text
        assert "# TYPE sched_queue_depth gauge" in text
        assert "# TYPE http_request_seconds histogram" in text
        assert 'le="+Inf"' in text

    def test_explicit_json_format(self, server):
        status, _, body = get_raw(server, "/v1/metrics?format=json")
        assert status == 200
        assert json.loads(body)["kind"] == "metrics"

    def test_unknown_format_is_a_400(self, server):
        status, _, body = get_raw(server, "/v1/metrics?format=xml")
        assert status == 400
        payload = json.loads(body)
        assert payload["type"] == "FormatError"
        assert "expected 'json' or 'prometheus'" in payload["message"]

    def test_unknown_query_parameter_is_a_400(self, server):
        status, _, _ = get_raw(server, "/v1/metrics?fmt=json")
        assert status == 400

    def test_client_rejects_bad_format_clientside(self, remote):
        with pytest.raises(FormatError):
            remote._get("/v1/metrics?format=xml")


class TestRemoteLocalParity:
    def test_remote_metrics_match_the_registry(self, remote):
        remote.enumerate(EnumerationRequest(algorithm="mule", alpha=0.5))
        over_the_wire = remote.metrics()
        local = obs_registry().snapshot()
        # The server thread shares this process's registry; only the
        # http_* series may drift (the /v1/metrics request itself is
        # recorded after its response is written).
        stable = lambda d: {  # noqa: E731
            k: v for k, v in d.items() if not k.startswith("http_")
        }
        assert stable(over_the_wire["counters"]) == stable(local["counters"])
        assert over_the_wire["gauges"] == local["gauges"]
        assert stable(over_the_wire["histograms"]) == stable(local["histograms"])

    def test_prometheus_text_mirrors_the_json_series(self, remote):
        remote.enumerate(EnumerationRequest(algorithm="mule", alpha=0.5))
        snapshot = remote.metrics()
        text = remote.metrics_text()
        for flat in snapshot["counters"]:
            name = flat.partition("{")[0]
            assert f"# TYPE {name} counter" in text


class TestEnumerationDeterminism:
    def test_identical_runs_move_identical_counters(self, graph):
        request = EnumerationRequest(algorithm="mule", alpha=0.4)

        def engine_delta():
            before = {
                key: value
                for key, value in obs_registry().snapshot()["counters"].items()
                if key.startswith("engine_")
            }
            outcome = MiningSession(graph).enumerate(request)
            after = obs_registry().snapshot()["counters"]
            return outcome, {
                key: after.get(key, 0.0) - before.get(key, 0.0)
                for key in after
                if key.startswith("engine_")
            }

        first_outcome, first_delta = engine_delta()
        second_outcome, second_delta = engine_delta()
        second_outcome.assert_matches(first_outcome)
        assert first_delta == second_delta
        assert first_delta["engine_runs_total"] == 1.0
        assert first_delta["engine_cliques_emitted_total"] == float(
            first_outcome.num_cliques
        )

    def test_output_is_bit_identical_with_metrics_disabled(self, graph):
        request = EnumerationRequest(algorithm="mule", alpha=0.4)
        enabled = MiningSession(graph).enumerate(request)
        reg = obs_registry()
        reg.set_enabled(False)
        try:
            disabled = MiningSession(graph).enumerate(request)
        finally:
            reg.set_enabled(True)
        disabled.assert_matches(enabled)


class TestStatsTearResistance:
    def test_per_graph_counters_never_exceed_aggregate_under_churn(self, graph):
        """Regression for the stats tear: components snapshotted under
        separate locks let per-graph sums race past the aggregate."""
        with MiningServer(graph, port=0) as server:
            remote = RemoteSession(server.url)
            stop = threading.Event()
            errors: list[Exception] = []

            def churn():
                alphas = [0.2, 0.3, 0.4, 0.5, 0.6]
                i = 0
                while not stop.is_set():
                    try:
                        remote.enumerate(
                            EnumerationRequest(
                                algorithm="mule", alpha=alphas[i % len(alphas)]
                            )
                        )
                    except Exception as exc:  # pragma: no cover
                        errors.append(exc)
                        return
                    i += 1

            workers = [threading.Thread(target=churn) for _ in range(3)]
            for worker in workers:
                worker.start()
            try:
                for _ in range(50):
                    payload = server.stats_payload()
                    aggregate = payload["cache"]
                    for field in ("hits", "misses", "compilations", "derivations"):
                        total = sum(
                            entry["cache"][field]
                            for entry in payload["graphs"].values()
                        )
                        assert total <= aggregate[field], (field, payload)
                    # Within one atomic snapshot the taxonomy holds too.
                    assert (
                        aggregate["misses"]
                        == aggregate["compilations"] + aggregate["derivations"]
                    )
            finally:
                stop.set()
                for worker in workers:
                    worker.join()
            assert errors == []


class TestTraceDir:
    def test_each_request_writes_a_chrome_trace(self, graph, tmp_path):
        trace_dir = tmp_path / "traces"
        with MiningServer(graph, port=0, trace_dir=trace_dir) as server:
            remote = RemoteSession(server.url)
            remote.health()
            remote.enumerate(EnumerationRequest(algorithm="mule", alpha=0.5))
        files = sorted(trace_dir.glob("request-*.json"))
        assert len(files) == 2
        payload = json.loads(files[-1].read_text(encoding="utf-8"))
        names = [event["name"] for event in payload["traceEvents"]]
        assert names[0] == "http.request"
        args = payload["traceEvents"][0]["args"]
        assert args["endpoint"] == "/v1/enumerate"
        assert args["method"] == "POST"


class TestAccessLog:
    def test_access_line_has_status_and_duration(self, graph, capfd):
        with MiningServer(graph, port=0, quiet=False) as server:
            RemoteSession(server.url).health()
        err = capfd.readouterr().err
        (line,) = [l for l in err.splitlines() if "/v1/health" in l]
        assert '"GET /v1/health HTTP/1.1" 200 ' in line
        assert line.rstrip().endswith("s")

    def test_quiet_server_logs_nothing(self, graph, capfd):
        with MiningServer(graph, port=0, quiet=True) as server:
            RemoteSession(server.url).health()
        assert capfd.readouterr().err == ""
