"""Unit tests for the wire codec — strictness, envelopes, error mapping.

The seeded random round-trip coverage lives in
``test_property_service.py``; this module pins the *rejection* behaviour:
unknown keys, missing keys, wrong JSON types, schema-version mismatches
and non-encodable inputs must all fail loudly with
:class:`~repro.errors.FormatError` (never silently coerce), and error
envelopes must rebuild the exact library exception types.
"""

from __future__ import annotations

import pytest

from repro.api import EnumerationOutcome, EnumerationRequest
from repro.core.engine import RunControls, RunReport
from repro.core.result import CliqueRecord, SearchStatistics
from repro.errors import (
    FormatError,
    ParameterError,
    ProbabilityError,
    ReproError,
    ServiceError,
)
from repro.service import codec
from repro.uncertain.graph import UncertainGraph


def envelope_of(obj) -> dict:
    return codec.to_wire(obj)


class TestCanonicalEncoding:
    def test_encode_is_deterministic(self):
        request = EnumerationRequest(algorithm="mule", alpha=0.5)
        assert codec.encode(codec.to_wire(request)) == codec.encode(
            codec.to_wire(EnumerationRequest(algorithm="mule", alpha=0.5))
        )

    def test_encode_sorts_keys_and_ends_with_newline(self):
        data = codec.encode({"b": 1, "a": 2})
        assert data == b'{"a":2,"b":1}\n'

    def test_encode_rejects_nan(self):
        with pytest.raises(FormatError):
            codec.encode({"x": float("nan")})

    def test_encode_rejects_non_json_values(self):
        with pytest.raises(FormatError):
            codec.encode({"x": {1, 2}})

    def test_decode_rejects_invalid_json(self):
        with pytest.raises(FormatError):
            codec.decode(b"{not json")

    def test_decode_rejects_invalid_utf8(self):
        with pytest.raises(FormatError):
            codec.decode(b"\xff\xfe")

    def test_decode_rejects_non_object_payloads(self):
        with pytest.raises(FormatError):
            codec.decode(b"[1, 2, 3]")

    def test_floats_roundtrip_exactly(self):
        # repr-based shortest round-trip: losslessness for awkward floats.
        alpha = 0.30000000000000004
        request = EnumerationRequest(algorithm="mule", alpha=alpha)
        decoded = codec.from_wire(codec.decode(codec.encode(codec.to_wire(request))))
        assert decoded.alpha == alpha


class TestEnvelopeStrictness:
    def test_unknown_key_rejected(self):
        payload = envelope_of(EnumerationRequest(algorithm="mule", alpha=0.5))
        payload["surprise"] = 1
        with pytest.raises(FormatError, match="unknown keys.*surprise"):
            codec.from_wire(payload)

    def test_missing_key_rejected(self):
        payload = envelope_of(EnumerationRequest(algorithm="mule", alpha=0.5))
        del payload["alpha"]
        with pytest.raises(FormatError, match="missing keys.*alpha"):
            codec.from_wire(payload)

    def test_nested_envelope_is_strict_too(self):
        request = EnumerationRequest(
            algorithm="mule", alpha=0.5, controls=RunControls(max_cliques=3)
        )
        payload = envelope_of(request)
        payload["controls"]["surprise"] = 1
        with pytest.raises(FormatError, match="run-controls.*surprise"):
            codec.from_wire(payload)

    def test_wrong_schema_version_rejected(self):
        payload = envelope_of(EnumerationRequest(algorithm="mule", alpha=0.5))
        payload["schema"] = max(codec.SUPPORTED_SCHEMA_VERSIONS) + 1
        with pytest.raises(FormatError, match="unsupported schema version"):
            codec.from_wire(payload)

    def test_v1_kind_decodes_under_v2_stamp(self):
        # v2 is additive: a v1-shaped envelope sent by a v2 speaker (stamped
        # schema 2) decodes to the same object.
        request = EnumerationRequest(algorithm="mule", alpha=0.5)
        payload = envelope_of(request)
        payload["schema"] = codec.SCHEMA_VERSION_V2
        assert codec.from_wire(payload) == request

    def test_v2_only_kind_rejects_v1_stamp(self):
        from repro.uncertain.graph import UncertainGraph

        payload = codec.graph_to_wire(UncertainGraph(edges=[(1, 2, 0.5)]))
        payload["schema"] = codec.SCHEMA_VERSION
        with pytest.raises(FormatError, match="unsupported schema version"):
            codec.from_wire(payload)

    def test_missing_schema_version_rejected(self):
        payload = envelope_of(EnumerationRequest(algorithm="mule", alpha=0.5))
        del payload["schema"]
        with pytest.raises(FormatError, match="unsupported schema version"):
            codec.request_from_wire(payload)

    def test_unknown_kind_rejected(self):
        with pytest.raises(FormatError, match="unknown wire kind"):
            codec.from_wire({"schema": codec.SCHEMA_VERSION, "kind": "mystery"})

    def test_kind_mismatch_rejected(self):
        payload = envelope_of(EnumerationRequest(algorithm="mule", alpha=0.5))
        with pytest.raises(FormatError, match="expected a 'run-report'"):
            codec.report_from_wire(payload)

    def test_non_object_rejected(self):
        with pytest.raises(FormatError):
            codec.from_wire([1, 2])


class TestKernelField:
    """``kernel`` is the one additive v2 key of the request envelope."""

    def test_default_kernel_keeps_v1_envelope(self):
        payload = envelope_of(EnumerationRequest(algorithm="mule", alpha=0.5))
        assert payload["schema"] == codec.SCHEMA_VERSION
        assert "kernel" not in payload

    def test_non_default_kernel_promotes_to_v2(self):
        request = EnumerationRequest(algorithm="mule", alpha=0.5, kernel="vector")
        payload = envelope_of(request)
        assert payload["schema"] == codec.SCHEMA_VERSION_V2
        assert payload["kernel"] == "vector"
        assert codec.from_wire(payload) == request

    def test_python_kernel_roundtrips(self):
        request = EnumerationRequest(algorithm="mule", alpha=0.5, kernel="python")
        assert codec.request_from_wire(codec.request_to_wire(request)) == request

    def test_kernel_under_v1_stamp_rejected(self):
        payload = envelope_of(
            EnumerationRequest(algorithm="mule", alpha=0.5, kernel="vector")
        )
        payload["schema"] = codec.SCHEMA_VERSION
        with pytest.raises(FormatError, match="kernel requires schema"):
            codec.request_from_wire(payload)

    def test_absent_kernel_under_v2_stamp_decodes_to_auto(self):
        payload = envelope_of(EnumerationRequest(algorithm="mule", alpha=0.5))
        payload["schema"] = codec.SCHEMA_VERSION_V2
        assert codec.request_from_wire(payload).kernel == "auto"

    def test_invalid_kernel_value_uses_library_exception(self):
        payload = envelope_of(
            EnumerationRequest(algorithm="mule", alpha=0.5, kernel="vector")
        )
        payload["kernel"] = "simd"
        with pytest.raises(ParameterError, match="unknown kernel"):
            codec.request_from_wire(payload)

    def test_non_string_kernel_rejected(self):
        payload = envelope_of(
            EnumerationRequest(algorithm="mule", alpha=0.5, kernel="vector")
        )
        payload["kernel"] = 2
        with pytest.raises(FormatError, match="kernel must be str"):
            codec.request_from_wire(payload)

    def test_nested_request_carries_kernel(self):
        request = EnumerationRequest(algorithm="mule", alpha=0.5, kernel="vector")
        ref_payload = codec.ref_request_to_wire(request, graph="ppi")
        ref, decoded = codec.ref_request_from_wire(ref_payload)
        assert ref == "ppi"
        assert decoded.kernel == "vector"


class TestTypeStrictness:
    def test_string_alpha_rejected(self):
        payload = envelope_of(EnumerationRequest(algorithm="mule", alpha=0.5))
        payload["alpha"] = "0.5"
        with pytest.raises(FormatError, match="alpha must be int/float"):
            codec.from_wire(payload)

    def test_boolean_where_number_expected_rejected(self):
        payload = envelope_of(EnumerationRequest(algorithm="mule", alpha=0.5))
        payload["workers"] = True
        with pytest.raises(FormatError, match="must not be a boolean"):
            codec.from_wire(payload)

    def test_null_where_required_rejected(self):
        payload = envelope_of(EnumerationRequest(algorithm="mule", alpha=0.5))
        payload["backend"] = None
        with pytest.raises(FormatError, match="must not be null"):
            codec.from_wire(payload)

    def test_negative_counter_rejected(self):
        payload = envelope_of(SearchStatistics(recursive_calls=3))
        payload["recursive_calls"] = -1
        with pytest.raises(FormatError, match=">= 0"):
            codec.from_wire(payload)

    def test_unknown_stop_reason_rejected(self):
        payload = envelope_of(RunReport())
        payload["stop_reason"] = "bored"
        with pytest.raises(FormatError, match="stop_reason"):
            codec.from_wire(payload)

    def test_duplicate_vertices_rejected(self):
        payload = envelope_of(CliqueRecord(vertices=frozenset({1, 2}), probability=0.5))
        payload["vertices"] = [1, 1]
        with pytest.raises(FormatError, match="duplicate"):
            codec.from_wire(payload)

    def test_boolean_vertex_label_rejected(self):
        payload = envelope_of(CliqueRecord(vertices=frozenset({1}), probability=0.5))
        payload["vertices"] = [True]
        with pytest.raises(FormatError, match="vertex label"):
            codec.from_wire(payload)

    def test_unencodable_vertex_label_rejected_at_encode(self):
        record = CliqueRecord(vertices=frozenset({(1, 2)}), probability=0.5)
        with pytest.raises(FormatError, match="not wire-encodable"):
            codec.to_wire(record)

    def test_domain_validation_uses_library_exceptions(self):
        # Structurally valid wire payloads with out-of-domain values raise
        # the same types local construction raises — not FormatError.
        payload = envelope_of(EnumerationRequest(algorithm="mule", alpha=0.5))
        payload["alpha"] = 1.5
        with pytest.raises(ProbabilityError):
            codec.from_wire(payload)
        payload = envelope_of(EnumerationRequest(algorithm="mule", alpha=0.5))
        payload["algorithm"] = "quantum"
        with pytest.raises(ParameterError):
            codec.from_wire(payload)


class TestSweepEnvelope:
    def test_roundtrip(self):
        base = EnumerationRequest(algorithm="fast", alpha=0.3)
        request, alphas = codec.sweep_from_wire(
            codec.sweep_to_wire(base, [0.3, 0.5, 0.7])
        )
        assert request == base
        assert alphas == [0.3, 0.5, 0.7]

    def test_empty_alphas_rejected(self):
        payload = codec.sweep_to_wire(
            EnumerationRequest(algorithm="mule", alpha=0.5), [0.5]
        )
        payload["alphas"] = []
        with pytest.raises(FormatError, match="must not be empty"):
            codec.sweep_from_wire(payload)

    def test_non_numeric_alpha_rejected(self):
        payload = codec.sweep_to_wire(
            EnumerationRequest(algorithm="mule", alpha=0.5), [0.5]
        )
        payload["alphas"] = ["0.5"]
        with pytest.raises(FormatError, match="must be numbers"):
            codec.sweep_from_wire(payload)


class TestErrorEnvelope:
    def test_known_type_reconstructed(self):
        error = codec.from_wire(codec.to_wire(ParameterError("bad k")))
        assert isinstance(error, ParameterError)
        assert str(error) == "bad k"

    def test_unknown_type_degrades_to_repro_error(self):
        error = codec.error_from_wire(
            {
                "schema": codec.SCHEMA_VERSION,
                "kind": "error",
                "type": "KeyboardInterrupt",
                "message": "boom",
            }
        )
        assert type(error) is ReproError
        assert "KeyboardInterrupt" in str(error)

    def test_service_error_is_wire_codable(self):
        error = codec.from_wire(codec.to_wire(ServiceError("down")))
        assert isinstance(error, ServiceError)


class TestGenericDispatch:
    def test_to_wire_rejects_unknown_types(self):
        with pytest.raises(FormatError, match="not wire-codable"):
            codec.to_wire(object())

    def test_record_list_dispatch(self):
        records = [CliqueRecord(vertices=frozenset({1, 2}), probability=0.25)]
        assert codec.from_wire(codec.to_wire(records)) == records

    def test_every_wire_type_dispatches_back(self):
        objects = [
            EnumerationRequest(algorithm="mule", alpha=0.5),
            EnumerationOutcome(algorithm="mule", alpha=0.5),
            RunControls(max_cliques=5),
            RunReport(),
            SearchStatistics(),
            CliqueRecord(vertices=frozenset({1}), probability=1.0),
        ]
        for obj in objects:
            decoded = codec.from_wire(codec.to_wire(obj))
            assert type(decoded) is type(obj)


class TestGraphCodec:
    """The lossless graph envelope (schema v2) and its strictness rules."""

    def roundtrip(self, graph):
        wire = codec.graph_to_wire(graph)
        return codec.graph_from_wire(codec.decode(codec.encode(wire)))

    def test_roundtrip_preserves_everything(self):
        graph = UncertainGraph(
            vertices=["isolated", 99],
            edges=[(1, 2, 0.9), (2, "gene", 1 / 3), (2.5, "gene", 0.0625)],
        )
        back = self.roundtrip(graph)
        assert back == graph
        assert back.probability(2, "gene") == 1 / 3  # exact float survival
        assert set(back.vertices()) == set(graph.vertices())

    def test_empty_and_edgeless_graphs(self):
        assert self.roundtrip(UncertainGraph()) == UncertainGraph()
        lonely = UncertainGraph(vertices=[1, 2, 3])
        assert self.roundtrip(lonely) == lonely

    def test_encoding_is_canonical_regardless_of_insertion_order(self):
        a = UncertainGraph(edges=[(1, 2, 0.5), (2, 3, 0.25)])
        b = UncertainGraph(edges=[(3, 2, 0.25), (2, 1, 0.5)])
        assert codec.encode(codec.graph_to_wire(a)) == codec.encode(
            codec.graph_to_wire(b)
        )

    def test_unencodable_labels_rejected(self):
        graph = UncertainGraph(edges=[((1, 2), 3, 0.5)])
        with pytest.raises(FormatError, match="not wire-encodable"):
            codec.graph_to_wire(graph)

    def test_duplicate_vertices_rejected(self):
        payload = codec.graph_to_wire(UncertainGraph(vertices=[1, 2]))
        payload["vertices"] = [1, 1.0]
        with pytest.raises(FormatError, match="duplicate vertex"):
            codec.graph_from_wire(payload)

    def test_duplicate_edges_rejected(self):
        payload = codec.graph_to_wire(UncertainGraph(edges=[(1, 2, 0.5)]))
        payload["edges"] = [[1, 2, 0.5], [2, 1, 0.5]]
        with pytest.raises(FormatError, match="duplicate edge"):
            codec.graph_from_wire(payload)

    def test_edge_endpoint_missing_from_vertex_list_rejected(self):
        payload = codec.graph_to_wire(UncertainGraph(edges=[(1, 2, 0.5)]))
        payload["edges"] = [[1, 3, 0.5]]
        with pytest.raises(FormatError, match="endpoint missing"):
            codec.graph_from_wire(payload)

    def test_domain_errors_delegate_to_constructors(self):
        from repro.errors import ProbabilityError

        payload = codec.graph_to_wire(UncertainGraph(edges=[(1, 2, 0.5)]))
        payload["edges"] = [[1, 2, 1.5]]
        with pytest.raises(ProbabilityError):
            codec.graph_from_wire(payload)

    def test_boolean_probability_rejected_structurally(self):
        payload = codec.graph_to_wire(UncertainGraph(edges=[(1, 2, 0.5)]))
        payload["edges"] = [[1, 2, True]]
        with pytest.raises(FormatError, match="must be a number"):
            codec.graph_from_wire(payload)


class TestUploadAndRefEnvelopes:
    def test_upload_requires_exactly_one_source(self):
        with pytest.raises(FormatError, match="exactly one"):
            codec.upload_to_wire(codec.GraphUpload())
        with pytest.raises(FormatError, match="exactly one"):
            codec.upload_to_wire(
                codec.GraphUpload(
                    graph=UncertainGraph(edges=[(1, 2, 0.5)]), dataset="ppi"
                )
            )

    def test_upload_scale_requires_dataset(self):
        with pytest.raises(FormatError, match="only valid with dataset"):
            codec.upload_to_wire(
                codec.GraphUpload(
                    graph=UncertainGraph(edges=[(1, 2, 0.5)]), scale=0.5
                )
            )

    def test_upload_roundtrip_both_sources(self):
        by_dataset = codec.GraphUpload(dataset="ppi", scale=0.05, seed=1, name="x")
        assert codec.upload_from_wire(codec.upload_to_wire(by_dataset)) == by_dataset
        graph = UncertainGraph(edges=[("a", "b", 0.5)])
        by_graph = codec.upload_from_wire(
            codec.upload_to_wire(codec.GraphUpload(graph=graph))
        )
        assert by_graph.graph == graph and by_graph.dataset is None

    def test_ref_request_roundtrip(self):
        request = EnumerationRequest(algorithm="large", alpha=0.25, size_threshold=3)
        for ref in ("ppi", None):
            wire = codec.ref_request_to_wire(request, graph=ref)
            assert codec.ref_request_from_wire(wire) == (ref, request)

    def test_ref_sweep_roundtrip_and_empty_alphas_rejected(self):
        request = EnumerationRequest(algorithm="mule", alpha=0.5)
        wire = codec.ref_sweep_to_wire(request, [0.5, 0.75], graph="g")
        assert codec.ref_sweep_from_wire(wire) == ("g", request, [0.5, 0.75])
        wire["alphas"] = []
        with pytest.raises(FormatError, match="must not be empty"):
            codec.ref_sweep_from_wire(wire)

    def test_graph_info_and_list_roundtrip(self):
        from repro.api import GraphInfo

        infos = [
            GraphInfo(
                fingerprint="ab" * 32,
                name="a",
                num_vertices=3,
                num_edges=2,
                pinned=True,
                default=True,
            ),
            GraphInfo(
                fingerprint="cd" * 32,
                name=None,
                num_vertices=0,
                num_edges=0,
                pinned=False,
                default=False,
            ),
        ]
        assert codec.graph_list_from_wire(codec.graph_list_to_wire(infos)) == infos
        for info in infos:
            assert codec.from_wire(codec.graph_info_to_wire(info)) == info
