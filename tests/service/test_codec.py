"""Unit tests for the wire codec — strictness, envelopes, error mapping.

The seeded random round-trip coverage lives in
``test_property_service.py``; this module pins the *rejection* behaviour:
unknown keys, missing keys, wrong JSON types, schema-version mismatches
and non-encodable inputs must all fail loudly with
:class:`~repro.errors.FormatError` (never silently coerce), and error
envelopes must rebuild the exact library exception types.
"""

from __future__ import annotations

import pytest

from repro.api import EnumerationOutcome, EnumerationRequest
from repro.core.engine import RunControls, RunReport
from repro.core.result import CliqueRecord, SearchStatistics
from repro.errors import (
    FormatError,
    ParameterError,
    ProbabilityError,
    ReproError,
    ServiceError,
)
from repro.service import codec


def envelope_of(obj) -> dict:
    return codec.to_wire(obj)


class TestCanonicalEncoding:
    def test_encode_is_deterministic(self):
        request = EnumerationRequest(algorithm="mule", alpha=0.5)
        assert codec.encode(codec.to_wire(request)) == codec.encode(
            codec.to_wire(EnumerationRequest(algorithm="mule", alpha=0.5))
        )

    def test_encode_sorts_keys_and_ends_with_newline(self):
        data = codec.encode({"b": 1, "a": 2})
        assert data == b'{"a":2,"b":1}\n'

    def test_encode_rejects_nan(self):
        with pytest.raises(FormatError):
            codec.encode({"x": float("nan")})

    def test_encode_rejects_non_json_values(self):
        with pytest.raises(FormatError):
            codec.encode({"x": {1, 2}})

    def test_decode_rejects_invalid_json(self):
        with pytest.raises(FormatError):
            codec.decode(b"{not json")

    def test_decode_rejects_invalid_utf8(self):
        with pytest.raises(FormatError):
            codec.decode(b"\xff\xfe")

    def test_decode_rejects_non_object_payloads(self):
        with pytest.raises(FormatError):
            codec.decode(b"[1, 2, 3]")

    def test_floats_roundtrip_exactly(self):
        # repr-based shortest round-trip: losslessness for awkward floats.
        alpha = 0.30000000000000004
        request = EnumerationRequest(algorithm="mule", alpha=alpha)
        decoded = codec.from_wire(codec.decode(codec.encode(codec.to_wire(request))))
        assert decoded.alpha == alpha


class TestEnvelopeStrictness:
    def test_unknown_key_rejected(self):
        payload = envelope_of(EnumerationRequest(algorithm="mule", alpha=0.5))
        payload["surprise"] = 1
        with pytest.raises(FormatError, match="unknown keys.*surprise"):
            codec.from_wire(payload)

    def test_missing_key_rejected(self):
        payload = envelope_of(EnumerationRequest(algorithm="mule", alpha=0.5))
        del payload["alpha"]
        with pytest.raises(FormatError, match="missing keys.*alpha"):
            codec.from_wire(payload)

    def test_nested_envelope_is_strict_too(self):
        request = EnumerationRequest(
            algorithm="mule", alpha=0.5, controls=RunControls(max_cliques=3)
        )
        payload = envelope_of(request)
        payload["controls"]["surprise"] = 1
        with pytest.raises(FormatError, match="run-controls.*surprise"):
            codec.from_wire(payload)

    def test_wrong_schema_version_rejected(self):
        payload = envelope_of(EnumerationRequest(algorithm="mule", alpha=0.5))
        payload["schema"] = codec.SCHEMA_VERSION + 1
        with pytest.raises(FormatError, match="unsupported schema version"):
            codec.from_wire(payload)

    def test_missing_schema_version_rejected(self):
        payload = envelope_of(EnumerationRequest(algorithm="mule", alpha=0.5))
        del payload["schema"]
        with pytest.raises(FormatError, match="unsupported schema version"):
            codec.request_from_wire(payload)

    def test_unknown_kind_rejected(self):
        with pytest.raises(FormatError, match="unknown wire kind"):
            codec.from_wire({"schema": codec.SCHEMA_VERSION, "kind": "mystery"})

    def test_kind_mismatch_rejected(self):
        payload = envelope_of(EnumerationRequest(algorithm="mule", alpha=0.5))
        with pytest.raises(FormatError, match="expected a 'run-report'"):
            codec.report_from_wire(payload)

    def test_non_object_rejected(self):
        with pytest.raises(FormatError):
            codec.from_wire([1, 2])


class TestTypeStrictness:
    def test_string_alpha_rejected(self):
        payload = envelope_of(EnumerationRequest(algorithm="mule", alpha=0.5))
        payload["alpha"] = "0.5"
        with pytest.raises(FormatError, match="alpha must be int/float"):
            codec.from_wire(payload)

    def test_boolean_where_number_expected_rejected(self):
        payload = envelope_of(EnumerationRequest(algorithm="mule", alpha=0.5))
        payload["workers"] = True
        with pytest.raises(FormatError, match="must not be a boolean"):
            codec.from_wire(payload)

    def test_null_where_required_rejected(self):
        payload = envelope_of(EnumerationRequest(algorithm="mule", alpha=0.5))
        payload["backend"] = None
        with pytest.raises(FormatError, match="must not be null"):
            codec.from_wire(payload)

    def test_negative_counter_rejected(self):
        payload = envelope_of(SearchStatistics(recursive_calls=3))
        payload["recursive_calls"] = -1
        with pytest.raises(FormatError, match=">= 0"):
            codec.from_wire(payload)

    def test_unknown_stop_reason_rejected(self):
        payload = envelope_of(RunReport())
        payload["stop_reason"] = "bored"
        with pytest.raises(FormatError, match="stop_reason"):
            codec.from_wire(payload)

    def test_duplicate_vertices_rejected(self):
        payload = envelope_of(CliqueRecord(vertices=frozenset({1, 2}), probability=0.5))
        payload["vertices"] = [1, 1]
        with pytest.raises(FormatError, match="duplicate"):
            codec.from_wire(payload)

    def test_boolean_vertex_label_rejected(self):
        payload = envelope_of(CliqueRecord(vertices=frozenset({1}), probability=0.5))
        payload["vertices"] = [True]
        with pytest.raises(FormatError, match="vertex label"):
            codec.from_wire(payload)

    def test_unencodable_vertex_label_rejected_at_encode(self):
        record = CliqueRecord(vertices=frozenset({(1, 2)}), probability=0.5)
        with pytest.raises(FormatError, match="not wire-encodable"):
            codec.to_wire(record)

    def test_domain_validation_uses_library_exceptions(self):
        # Structurally valid wire payloads with out-of-domain values raise
        # the same types local construction raises — not FormatError.
        payload = envelope_of(EnumerationRequest(algorithm="mule", alpha=0.5))
        payload["alpha"] = 1.5
        with pytest.raises(ProbabilityError):
            codec.from_wire(payload)
        payload = envelope_of(EnumerationRequest(algorithm="mule", alpha=0.5))
        payload["algorithm"] = "quantum"
        with pytest.raises(ParameterError):
            codec.from_wire(payload)


class TestSweepEnvelope:
    def test_roundtrip(self):
        base = EnumerationRequest(algorithm="fast", alpha=0.3)
        request, alphas = codec.sweep_from_wire(
            codec.sweep_to_wire(base, [0.3, 0.5, 0.7])
        )
        assert request == base
        assert alphas == [0.3, 0.5, 0.7]

    def test_empty_alphas_rejected(self):
        payload = codec.sweep_to_wire(
            EnumerationRequest(algorithm="mule", alpha=0.5), [0.5]
        )
        payload["alphas"] = []
        with pytest.raises(FormatError, match="must not be empty"):
            codec.sweep_from_wire(payload)

    def test_non_numeric_alpha_rejected(self):
        payload = codec.sweep_to_wire(
            EnumerationRequest(algorithm="mule", alpha=0.5), [0.5]
        )
        payload["alphas"] = ["0.5"]
        with pytest.raises(FormatError, match="must be numbers"):
            codec.sweep_from_wire(payload)


class TestErrorEnvelope:
    def test_known_type_reconstructed(self):
        error = codec.from_wire(codec.to_wire(ParameterError("bad k")))
        assert isinstance(error, ParameterError)
        assert str(error) == "bad k"

    def test_unknown_type_degrades_to_repro_error(self):
        error = codec.error_from_wire(
            {
                "schema": codec.SCHEMA_VERSION,
                "kind": "error",
                "type": "KeyboardInterrupt",
                "message": "boom",
            }
        )
        assert type(error) is ReproError
        assert "KeyboardInterrupt" in str(error)

    def test_service_error_is_wire_codable(self):
        error = codec.from_wire(codec.to_wire(ServiceError("down")))
        assert isinstance(error, ServiceError)


class TestGenericDispatch:
    def test_to_wire_rejects_unknown_types(self):
        with pytest.raises(FormatError, match="not wire-codable"):
            codec.to_wire(object())

    def test_record_list_dispatch(self):
        records = [CliqueRecord(vertices=frozenset({1, 2}), probability=0.25)]
        assert codec.from_wire(codec.to_wire(records)) == records

    def test_every_wire_type_dispatches_back(self):
        objects = [
            EnumerationRequest(algorithm="mule", alpha=0.5),
            EnumerationOutcome(algorithm="mule", alpha=0.5),
            RunControls(max_cliques=5),
            RunReport(),
            SearchStatistics(),
            CliqueRecord(vertices=frozenset({1}), probability=1.0),
        ]
        for obj in objects:
            decoded = codec.from_wire(codec.to_wire(obj))
            assert type(decoded) is type(obj)
