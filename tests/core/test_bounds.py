"""Unit tests for the Section 3 counting bounds and extremal constructions."""

from __future__ import annotations

from math import comb

import pytest

from repro.core.bounds import (
    extremal_clique_size,
    extremal_uncertain_graph,
    is_non_redundant_family,
    moon_moser_bound,
    moon_moser_graph,
    stirling_output_lower_bound,
    uncertain_clique_bound,
)
from repro.core.brute_force import brute_force_alpha_maximal_cliques
from repro.core.mule import mule
from repro.deterministic.bron_kerbosch import bron_kerbosch_pivot
from repro.errors import ParameterError, ProbabilityError


class TestMoonMoserBound:
    @pytest.mark.parametrize(
        "n, expected",
        [(0, 1), (1, 1), (2, 2), (3, 3), (4, 4), (5, 6), (6, 9), (7, 12), (8, 18), (9, 27), (12, 81)],
    )
    def test_values(self, n, expected):
        assert moon_moser_bound(n) == expected

    def test_negative_rejected(self):
        with pytest.raises(ParameterError):
            moon_moser_bound(-1)

    @pytest.mark.parametrize("n", [3, 5, 6, 7, 8, 9])
    def test_moon_moser_graph_attains_bound(self, n):
        graph = moon_moser_graph(n)
        skeleton = graph.skeleton()
        count = sum(1 for _ in bron_kerbosch_pivot(skeleton))
        assert count == moon_moser_bound(n)

    def test_moon_moser_graph_all_certain(self):
        graph = moon_moser_graph(6)
        assert graph.min_probability() == 1.0

    def test_moon_moser_graph_invalid_n(self):
        with pytest.raises(ParameterError):
            moon_moser_graph(0)


class TestUncertainCliqueBound:
    @pytest.mark.parametrize("n", [2, 3, 4, 5, 6, 7, 10, 15])
    def test_matches_central_binomial(self, n):
        assert uncertain_clique_bound(n, 0.5) == comb(n, n // 2)

    def test_alpha_one_falls_back_to_moon_moser(self):
        assert uncertain_clique_bound(9, 1.0) == moon_moser_bound(9)

    def test_uncertain_bound_exceeds_deterministic_for_alpha_below_one(self):
        """Theorem 1's bound is strictly larger than Moon–Moser for n ≥ 5."""
        for n in (5, 6, 9, 12):
            assert uncertain_clique_bound(n, 0.5) > moon_moser_bound(n)

    def test_small_n(self):
        assert uncertain_clique_bound(0, 0.5) == 1
        assert uncertain_clique_bound(1, 0.5) == 1

    def test_invalid_inputs(self):
        with pytest.raises(ParameterError):
            uncertain_clique_bound(-3, 0.5)
        with pytest.raises(ProbabilityError):
            uncertain_clique_bound(5, 0.0)


class TestExtremalConstruction:
    @pytest.mark.parametrize("n", [2, 3, 4, 5, 6, 7, 8])
    @pytest.mark.parametrize("alpha", [0.3, 0.5, 0.9])
    def test_extremal_graph_attains_theorem1_bound(self, n, alpha):
        graph = extremal_uncertain_graph(n, alpha)
        # Guard against floating-point rounding in the κ-fold product.
        result = mule(graph, alpha * (1 - 1e-9))
        assert result.num_cliques == uncertain_clique_bound(n, alpha)

    @pytest.mark.parametrize("n", [4, 6])
    def test_every_maximal_clique_has_size_half_n(self, n):
        graph = extremal_uncertain_graph(n, 0.5)
        result = mule(graph, 0.5 * (1 - 1e-9))
        expected_size = extremal_clique_size(n)
        assert all(record.size == expected_size for record in result)

    def test_structure_is_complete_graph(self):
        graph = extremal_uncertain_graph(6, 0.5)
        assert graph.num_edges == comb(6, 2)

    def test_brute_force_agrees(self):
        graph = extremal_uncertain_graph(6, 0.4)
        alpha = 0.4 * (1 - 1e-9)
        assert (
            brute_force_alpha_maximal_cliques(graph, alpha).num_cliques
            == uncertain_clique_bound(6, 0.4)
        )

    def test_invalid_parameters(self):
        with pytest.raises(ParameterError):
            extremal_uncertain_graph(1, 0.5)
        with pytest.raises(ParameterError):
            extremal_uncertain_graph(5, 1.0)
        with pytest.raises(ProbabilityError):
            extremal_uncertain_graph(5, 0.0)
        with pytest.raises(ParameterError):
            extremal_clique_size(1)


class TestNoGraphExceedsBound:
    """The other half of Theorem 1: no uncertain graph beats C(n, ⌊n/2⌋)."""

    @pytest.mark.parametrize("seed", range(10))
    def test_random_graphs_respect_bound(self, random_graph_factory, seed):
        n = 9
        graph = random_graph_factory(n, density=0.8, seed=seed)
        for alpha in (0.5, 0.1, 0.01):
            result = mule(graph, alpha)
            assert result.num_cliques <= uncertain_clique_bound(n, alpha)

    def test_dense_uniform_graph_respects_bound(self):
        from repro.uncertain.graph import UncertainGraph

        n = 8
        g = UncertainGraph(
            edges=[(u, v, 0.7) for u in range(1, n + 1) for v in range(u + 1, n + 1)]
        )
        for alpha in (0.9, 0.5, 0.2, 0.05):
            assert mule(g, alpha).num_cliques <= uncertain_clique_bound(n, alpha)


class TestNonRedundantFamily:
    def test_antichain_accepted(self):
        assert is_non_redundant_family([{1, 2}, {2, 3}, {1, 3}])

    def test_nested_sets_rejected(self):
        assert not is_non_redundant_family([{1, 2}, {1, 2, 3}])

    def test_duplicate_sets_rejected(self):
        assert not is_non_redundant_family([{1, 2}, {2, 1}])

    def test_empty_family_is_non_redundant(self):
        assert is_non_redundant_family([])

    def test_enumeration_output_is_antichain(self, random_graph_factory):
        graph = random_graph_factory(10, density=0.6, seed=5)
        result = mule(graph, 0.1)
        assert is_non_redundant_family(result.vertex_sets())


class TestStirlingLowerBound:
    def test_equals_central_binomial(self):
        assert stirling_output_lower_bound(10) == float(comb(10, 5))

    def test_small_n(self):
        assert stirling_output_lower_bound(0) == 1.0
        assert stirling_output_lower_bound(1) == 1.0

    def test_growth_rate_close_to_2n_over_sqrt_n(self):
        import math

        n = 30
        ratio = stirling_output_lower_bound(n) / (2**n / math.sqrt(n))
        assert 0.1 < ratio < 1.0
