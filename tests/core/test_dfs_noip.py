"""Unit tests for the DFS-NOIP baseline (Algorithm 7)."""

from __future__ import annotations

import pytest

from repro.core.brute_force import brute_force_alpha_maximal_cliques
from repro.core.dfs_noip import dfs_noip, iter_alpha_maximal_cliques_noip
from repro.core.mule import mule
from repro.errors import ProbabilityError
from repro.uncertain.graph import UncertainGraph


class TestSmallGraphs:
    def test_triangle_with_weak_pendant(self, triangle):
        result = dfs_noip(triangle, 0.5)
        assert result.vertex_sets() == {frozenset({1, 2, 3}), frozenset({4})}

    def test_two_cliques(self, two_cliques):
        result = dfs_noip(two_cliques, 0.5)
        assert result.vertex_sets() == {frozenset({1, 2, 3}), frozenset({4, 5, 6})}

    def test_empty_graph(self):
        assert dfs_noip(UncertainGraph(), 0.5).num_cliques == 0

    def test_edgeless_graph(self):
        result = dfs_noip(UncertainGraph(vertices=[1, 2]), 0.5)
        assert result.vertex_sets() == {frozenset({1}), frozenset({2})}

    def test_no_duplicates(self, two_cliques):
        result = dfs_noip(two_cliques, 0.1)
        assert len(result.vertex_sets()) == result.num_cliques

    def test_invalid_alpha(self, triangle):
        with pytest.raises(ProbabilityError):
            dfs_noip(triangle, 0.0)

    def test_probabilities_recorded_exactly(self, two_cliques):
        for record in dfs_noip(two_cliques, 0.5):
            assert record.probability == pytest.approx(
                two_cliques.clique_probability(record.vertices)
            )


class TestEquivalenceWithMule:
    @pytest.mark.parametrize("seed", range(10))
    @pytest.mark.parametrize("alpha", [0.8, 0.3, 0.05])
    def test_same_output_as_mule(self, random_graph_factory, seed, alpha):
        graph = random_graph_factory(9, density=0.55, seed=seed)
        assert dfs_noip(graph, alpha).vertex_sets() == mule(graph, alpha).vertex_sets()

    @pytest.mark.parametrize("seed", range(5))
    def test_same_output_as_brute_force(self, random_graph_factory, seed):
        graph = random_graph_factory(7, density=0.6, seed=50 + seed)
        assert (
            dfs_noip(graph, 0.2).vertex_sets()
            == brute_force_alpha_maximal_cliques(graph, 0.2).vertex_sets()
        )

    def test_prune_edges_flag_does_not_change_output(self, two_cliques):
        assert (
            dfs_noip(two_cliques, 0.5, prune_edges=False).vertex_sets()
            == dfs_noip(two_cliques, 0.5, prune_edges=True).vertex_sets()
        )


class TestWorkCounters:
    def test_dfs_noip_does_more_probability_work_than_mule(self, random_graph_factory):
        """The whole point of MULE: fewer probability multiplications."""
        graph = random_graph_factory(14, density=0.5, seed=3)
        alpha = 0.05
        mule_result = mule(graph, alpha)
        noip_result = dfs_noip(graph, alpha)
        assert noip_result.vertex_sets() == mule_result.vertex_sets()
        assert (
            noip_result.statistics.probability_multiplications
            > mule_result.statistics.probability_multiplications
        )

    def test_statistics_populated(self, two_cliques):
        stats = dfs_noip(two_cliques, 0.5).statistics
        assert stats.recursive_calls > 0
        assert stats.maximality_checks > 0

    def test_algorithm_label(self, triangle):
        assert dfs_noip(triangle, 0.5).algorithm == "dfs-noip"


class TestGeneratorInterface:
    def test_iterator_yields_cliques(self, triangle):
        pairs = list(iter_alpha_maximal_cliques_noip(triangle, 0.5))
        assert {frozenset(c) for c, _ in pairs} == {frozenset({1, 2, 3}), frozenset({4})}
