"""Unit tests for LARGE-MULE (Algorithms 5–6)."""

from __future__ import annotations

import pytest

from repro.core.large_mule import (
    LargeMuleConfig,
    iter_large_alpha_maximal_cliques,
    large_mule,
)
from repro.core.mule import mule
from repro.errors import ParameterError, ProbabilityError
from repro.uncertain.graph import UncertainGraph


class TestSmallGraphs:
    def test_only_large_cliques_emitted(self, two_cliques):
        result = large_mule(two_cliques, 0.5, 3)
        assert result.vertex_sets() == {frozenset({1, 2, 3}), frozenset({4, 5, 6})}

    def test_threshold_above_largest_clique(self, two_cliques):
        assert large_mule(two_cliques, 0.5, 4).num_cliques == 0

    def test_threshold_two_drops_singletons(self, triangle):
        result = large_mule(triangle, 0.5, 2)
        assert result.vertex_sets() == {frozenset({1, 2, 3})}

    def test_exact_size_t_is_included(self):
        """The pseudo-code retains cliques of size exactly t (see module docstring)."""
        g = UncertainGraph(edges=[(1, 2, 0.9), (2, 3, 0.9), (1, 3, 0.9)])
        assert large_mule(g, 0.5, 3).num_cliques == 1

    def test_empty_graph(self):
        assert large_mule(UncertainGraph(), 0.5, 3).num_cliques == 0

    def test_everything_pruned_away(self):
        g = UncertainGraph(edges=[(1, 2, 0.9), (3, 4, 0.9)])
        assert large_mule(g, 0.5, 3).num_cliques == 0

    def test_probabilities_recorded(self, two_cliques):
        for record in large_mule(two_cliques, 0.5, 3):
            assert record.probability == pytest.approx(
                two_cliques.clique_probability(record.vertices)
            )


class TestParameters:
    def test_invalid_alpha(self, triangle):
        with pytest.raises(ProbabilityError):
            large_mule(triangle, 0.0, 3)

    def test_invalid_size_threshold(self, triangle):
        with pytest.raises(ParameterError):
            large_mule(triangle, 0.5, 1)

    def test_algorithm_label(self, two_cliques):
        assert large_mule(two_cliques, 0.5, 3).algorithm == "large-mule"


class TestEquivalenceWithFilteredMule:
    @pytest.mark.parametrize("seed", range(10))
    @pytest.mark.parametrize("t", [2, 3, 4, 5])
    def test_matches_filtered_full_enumeration(self, random_graph_factory, seed, t):
        graph = random_graph_factory(12, density=0.55, seed=seed)
        alpha = 0.1
        expected = {
            c for c in mule(graph, alpha).vertex_sets() if len(c) >= t
        }
        assert large_mule(graph, alpha, t).vertex_sets() == expected

    @pytest.mark.parametrize("seed", range(4))
    def test_shared_neighborhood_toggle_does_not_change_output(
        self, random_graph_factory, seed
    ):
        graph = random_graph_factory(12, density=0.6, seed=30 + seed)
        with_filter = large_mule(
            graph, 0.1, 3, config=LargeMuleConfig(shared_neighborhood_filtering=True)
        )
        without_filter = large_mule(
            graph, 0.1, 3, config=LargeMuleConfig(shared_neighborhood_filtering=False)
        )
        assert with_filter.vertex_sets() == without_filter.vertex_sets()


class TestSearchEffort:
    def test_branch_pruning_reduces_work(self, random_graph_factory):
        graph = random_graph_factory(16, density=0.45, seed=7)
        alpha = 0.05
        full = mule(graph, alpha)
        large = large_mule(graph, alpha, 4)
        assert large.statistics.recursive_calls <= full.statistics.recursive_calls

    def test_pruned_branch_counter(self, random_graph_factory):
        graph = random_graph_factory(14, density=0.5, seed=9)
        # Disable the pre-filter so the |C'| + |I'| < t cut itself is exercised.
        result = large_mule(
            graph,
            0.05,
            4,
            config=LargeMuleConfig(shared_neighborhood_filtering=False),
        )
        assert result.statistics.pruned_branches > 0


class TestGeneratorInterface:
    def test_iterator_yields_pairs(self, two_cliques):
        pairs = list(iter_large_alpha_maximal_cliques(two_cliques, 0.5, 3))
        assert {frozenset(c) for c, _ in pairs} == {
            frozenset({1, 2, 3}),
            frozenset({4, 5, 6}),
        }

    def test_pruning_report_collected(self, two_cliques):
        from repro.core.pruning import PruningReport

        report = PruningReport()
        list(
            iter_large_alpha_maximal_cliques(
                two_cliques, 0.5, 3, pruning_report=report
            )
        )
        assert report.rounds >= 1
