"""Unit tests for result containers and search statistics."""

from __future__ import annotations

import pytest

from repro.core.result import CliqueRecord, EnumerationResult, SearchStatistics, Stopwatch
from repro.uncertain.graph import UncertainGraph


def make_result() -> EnumerationResult:
    records = [
        CliqueRecord(vertices=frozenset({1, 2, 3}), probability=0.5),
        CliqueRecord(vertices=frozenset({4, 5}), probability=0.9),
        CliqueRecord(vertices=frozenset({6}), probability=1.0),
    ]
    return EnumerationResult(algorithm="mule", alpha=0.4, cliques=records)


class TestCliqueRecord:
    def test_size(self):
        record = CliqueRecord(vertices=frozenset({1, 2, 3}), probability=0.5)
        assert record.size == 3

    def test_as_tuple_sorted(self):
        record = CliqueRecord(vertices=frozenset({3, 1, 2}), probability=0.5)
        assert record.as_tuple() == (1, 2, 3)

    def test_ordering_by_size_then_members(self):
        small = CliqueRecord(vertices=frozenset({9}), probability=1.0)
        large = CliqueRecord(vertices=frozenset({1, 2}), probability=0.5)
        assert small < large

    def test_records_hashable_equality(self):
        a = CliqueRecord(vertices=frozenset({1, 2}), probability=0.5)
        b = CliqueRecord(vertices=frozenset({2, 1}), probability=0.5)
        assert a == b


class TestSearchStatistics:
    def test_defaults_are_zero(self):
        stats = SearchStatistics()
        assert stats.recursive_calls == 0
        assert stats.pruned_branches == 0

    def test_merge_sums_fields(self):
        merged = SearchStatistics(recursive_calls=2, candidates_examined=5).merge(
            SearchStatistics(recursive_calls=3, maximality_checks=1)
        )
        assert merged.recursive_calls == 5
        assert merged.candidates_examined == 5
        assert merged.maximality_checks == 1


class TestStopwatch:
    def test_measures_positive_time(self):
        with Stopwatch() as timer:
            sum(range(1000))
        assert timer.elapsed >= 0.0


class TestEnumerationResult:
    def test_len_iter_contains(self):
        result = make_result()
        assert len(result) == 3
        assert {1, 2, 3} in result
        assert {1, 2} not in result
        assert len(list(iter(result))) == 3

    def test_cliques_sorted_by_size(self):
        result = make_result()
        assert [record.size for record in result.cliques] == [1, 2, 3]

    def test_vertex_sets(self):
        assert frozenset({4, 5}) in make_result().vertex_sets()

    def test_size_histogram(self):
        assert make_result().size_histogram() == {1: 1, 2: 1, 3: 1}

    def test_largest(self):
        assert make_result().largest().vertices == frozenset({1, 2, 3})

    def test_largest_of_empty_result(self):
        empty = EnumerationResult("mule", 0.5, [])
        assert empty.largest() is None
        assert empty.num_cliques == 0

    def test_filter_minimum_size(self):
        filtered = make_result().filter_minimum_size(2)
        assert filtered.num_cliques == 2
        assert all(record.size >= 2 for record in filtered)

    def test_top_k_by_probability(self):
        top = make_result().top_k_by_probability(2)
        assert [record.probability for record in top] == [1.0, 0.9]

    def test_top_k_larger_than_output(self):
        assert len(make_result().top_k_by_probability(10)) == 3

    def test_summary_keys(self):
        summary = make_result().summary()
        assert summary["algorithm"] == "mule"
        assert summary["num_cliques"] == 3

    def test_repr(self):
        assert "mule" in repr(make_result())


class TestVerify:
    def test_verify_accepts_correct_output(self):
        g = UncertainGraph(edges=[(1, 2, 0.9), (2, 3, 0.9), (1, 3, 0.9), (3, 4, 0.4)])
        result = EnumerationResult(
            "manual",
            0.5,
            [
                CliqueRecord(vertices=frozenset({1, 2, 3}), probability=0.9**3),
                CliqueRecord(vertices=frozenset({4}), probability=1.0),
            ],
        )
        result.verify(g)  # should not raise

    def test_verify_rejects_non_maximal_clique(self):
        g = UncertainGraph(edges=[(1, 2, 0.9), (2, 3, 0.9), (1, 3, 0.9)])
        result = EnumerationResult(
            "manual",
            0.5,
            [CliqueRecord(vertices=frozenset({1, 2}), probability=0.9)],
        )
        with pytest.raises(AssertionError):
            result.verify(g)

    def test_verify_rejects_below_threshold(self):
        g = UncertainGraph(edges=[(1, 2, 0.3)])
        result = EnumerationResult(
            "manual",
            0.5,
            [CliqueRecord(vertices=frozenset({1, 2}), probability=0.3)],
        )
        with pytest.raises(AssertionError):
            result.verify(g)
