"""Unit tests for the I/X candidate-set machinery (Algorithms 3 and 4)."""

from __future__ import annotations

import pytest

from repro.core.candidates import CandidateSet, generate_i, generate_x, initial_candidates
from repro.uncertain.graph import UncertainGraph


@pytest.fixture
def diamond() -> UncertainGraph:
    """A 4-clique on {1,2,3,4} with assorted probabilities plus a pendant 5."""
    return UncertainGraph(
        edges=[
            (1, 2, 0.9),
            (1, 3, 0.8),
            (1, 4, 0.7),
            (2, 3, 0.9),
            (2, 4, 0.6),
            (3, 4, 0.5),
            (4, 5, 0.9),
        ]
    )


class TestCandidateSet:
    def test_iteration_in_increasing_order(self):
        cs = CandidateSet({5: 0.2, 1: 0.9, 3: 0.5})
        assert list(cs) == [1, 3, 5]
        assert cs.items_sorted() == [(1, 0.9), (3, 0.5), (5, 0.2)]

    def test_membership_and_len(self):
        cs = CandidateSet({2: 1.0})
        assert 2 in cs
        assert 3 not in cs
        assert len(cs) == 1
        assert bool(cs)
        assert not CandidateSet()

    def test_add_and_factor(self):
        cs = CandidateSet()
        cs.add(7, 0.25)
        assert cs.factor(7) == 0.25

    def test_copy_is_independent(self):
        cs = CandidateSet({1: 0.5})
        clone = cs.copy()
        clone.add(2, 0.4)
        assert 2 not in cs

    def test_from_pairs_and_equality(self):
        assert CandidateSet.from_pairs([(1, 0.5)]) == CandidateSet({1: 0.5})

    def test_vertices_view(self):
        assert CandidateSet({1: 0.5, 9: 0.1}).vertices() == {1, 9}


class TestInitialCandidates:
    def test_every_vertex_with_factor_one(self, diamond):
        initial = initial_candidates(diamond)
        assert initial.vertices() == set(diamond.vertices())
        assert all(factor == 1.0 for _, factor in initial.items_sorted())


class TestGenerateI:
    def test_only_larger_adjacent_vertices_kept(self, diamond):
        initial = initial_candidates(diamond)
        # Extend the empty clique with vertex 2: q' = 1.0.
        result = generate_i(diamond, 2, 1.0, initial, alpha=0.01)
        assert result.vertices() == {3, 4}

    def test_factors_are_edge_probabilities(self, diamond):
        initial = initial_candidates(diamond)
        result = generate_i(diamond, 2, 1.0, initial, alpha=0.01)
        assert result.factor(3) == pytest.approx(0.9)
        assert result.factor(4) == pytest.approx(0.6)

    def test_alpha_filtering(self, diamond):
        initial = initial_candidates(diamond)
        result = generate_i(diamond, 2, 1.0, initial, alpha=0.7)
        assert result.vertices() == {3}

    def test_invariant_lemma6(self, diamond):
        """Every surviving candidate u satisfies clq(C' ∪ {u}) = q' · r' ≥ α."""
        alpha = 0.3
        initial = initial_candidates(diamond)
        # C' = {1}: q' = 1.0
        level1 = generate_i(diamond, 1, 1.0, initial, alpha)
        for u, r in level1.items_sorted():
            assert diamond.clique_probability({1, u}) == pytest.approx(r)
            assert r >= alpha
        # C' = {1, 2}: q' = 0.9
        q2 = diamond.clique_probability({1, 2})
        level2 = generate_i(diamond, 2, q2, level1, alpha)
        for u, r in level2.items_sorted():
            assert diamond.clique_probability({1, 2, u}) == pytest.approx(q2 * r)
            assert q2 * r >= alpha

    def test_non_adjacent_vertices_dropped(self, diamond):
        initial = initial_candidates(diamond)
        result = generate_i(diamond, 1, 1.0, initial, alpha=0.01)
        assert 5 not in result  # 5 is only adjacent to 4


class TestGenerateX:
    def test_keeps_smaller_vertices_that_still_extend(self, diamond):
        # Simulate the state where C = {2} and vertex 1 has been processed.
        exclusions = CandidateSet({1: 0.9})  # clq({2, 1}) = 0.9
        q_prime = diamond.clique_probability({2, 3})
        result = generate_x(diamond, 3, q_prime, exclusions, alpha=0.1)
        assert 1 in result
        assert result.factor(1) == pytest.approx(0.9 * 0.8)

    def test_drops_vertices_below_alpha(self, diamond):
        exclusions = CandidateSet({1: 0.9})
        q_prime = diamond.clique_probability({2, 3})
        result = generate_x(diamond, 3, q_prime, exclusions, alpha=0.9)
        assert 1 not in result

    def test_drops_non_adjacent_vertices(self, diamond):
        exclusions = CandidateSet({1: 0.7})  # pretend 1 extends {4}
        result = generate_x(diamond, 5, 0.9, exclusions, alpha=0.01)
        assert len(result) == 0

    def test_empty_exclusions_stay_empty(self, diamond):
        assert len(generate_x(diamond, 2, 1.0, CandidateSet(), alpha=0.5)) == 0
