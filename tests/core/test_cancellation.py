"""Cooperative cancellation of streaming kernel runs.

The :class:`CancellationToken` contract has three load-bearing pieces:

* cancellation stops the run with ``StopReason.CANCELLED`` and the
  emitted records are a depth-first **prefix** of the full enumeration —
  exactly the truncation shape ``max_cliques`` produces;
* a token that is never cancelled is invisible: counters, statistics and
  emission order are bit-identical to a run without a token;
* when cancellation and an expired time budget land in the same check
  window, cancellation wins deterministically (the kernel checks the
  token *before* the deadline), so a cancelled job can never race into
  ``time-budget`` provenance.
"""

from __future__ import annotations

import pytest

from repro.api import EnumerationRequest, MiningSession
from repro.core.engine import (
    CancellationToken,
    ProgressSnapshot,
    RunControls,
    RunReport,
    StopReason,
)
from repro.core.result import SearchStatistics

KERNELS = ["python", "vector"]


@pytest.fixture
def graph(random_graph_factory):
    return random_graph_factory(18, density=0.5, seed=5)


@pytest.fixture
def session(graph):
    return MiningSession(graph)


def request_for(kernel: str, **overrides) -> EnumerationRequest:
    params = dict(algorithm="mule", alpha=0.3, kernel=kernel)
    params.update(overrides)
    return EnumerationRequest(**params)


class TestTokenBasics:
    def test_starts_uncancelled_and_is_idempotent(self):
        token = CancellationToken()
        assert not token.cancelled
        token.cancel()
        token.cancel()
        assert token.cancelled

    def test_progress_snapshot_defaults(self):
        snap = ProgressSnapshot()
        assert snap.cliques_emitted == 0
        assert snap.frames_expanded == 0
        assert snap.elapsed_seconds == 0.0


class TestCancellationStopsTheRun:
    @pytest.mark.parametrize("kernel", KERNELS)
    def test_cancel_mid_stream_yields_a_prefix(self, session, kernel):
        request = request_for(kernel, controls=RunControls(check_every_frames=1))
        full = session.enumerate(request)
        assert len(full.records) > 6  # enough slack for truncation to bite

        token = CancellationToken()
        report = RunReport()
        emitted = []
        for members, probability in session.stream(
            request, report=report, cancel=token
        ):
            emitted.append((members, probability))
            if len(emitted) == 3:
                token.cancel()

        assert report.stop_reason == StopReason.CANCELLED
        assert 3 <= len(emitted) < len(full.records)
        prefix = [(r.vertices, r.probability) for r in full.records[: len(emitted)]]
        assert emitted == prefix
        assert report.cliques_emitted == len(emitted)

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_pre_cancelled_token_emits_nothing(self, session, kernel):
        token = CancellationToken()
        token.cancel()
        report = RunReport()
        request = request_for(kernel, controls=RunControls(check_every_frames=1))
        assert list(session.stream(request, report=report, cancel=token)) == []
        assert report.stop_reason == StopReason.CANCELLED
        assert report.cliques_emitted == 0


class TestUncancelledTokenIsInvisible:
    @pytest.mark.parametrize("kernel", KERNELS)
    def test_counters_and_emissions_unperturbed(self, session, kernel):
        request = request_for(kernel, controls=RunControls(check_every_frames=4))
        baseline = session.enumerate(request)

        statistics = SearchStatistics()
        report = RunReport()
        token = CancellationToken()
        emitted = list(
            session.stream(
                request, statistics=statistics, report=report, cancel=token
            )
        )

        assert emitted == [
            (r.vertices, r.probability) for r in baseline.records
        ]
        assert statistics == baseline.statistics
        assert report.stop_reason == baseline.report.stop_reason
        assert report.cliques_emitted == baseline.report.cliques_emitted
        assert report.frames_expanded == baseline.report.frames_expanded
        assert not token.cancelled


class TestCancelBeatsDeadline:
    @pytest.mark.parametrize("kernel", KERNELS)
    def test_same_window_resolves_to_cancelled(self, session, kernel):
        """An already-expired budget and a cancelled token hit the same
        check window; provenance must deterministically be ``cancelled``."""
        token = CancellationToken()
        token.cancel()
        report = RunReport()
        request = request_for(
            kernel,
            controls=RunControls(time_budget_seconds=0.0, check_every_frames=1),
        )
        list(session.stream(request, report=report, cancel=token))
        assert report.stop_reason == StopReason.CANCELLED

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_deadline_alone_still_reports_time_budget(self, session, kernel):
        report = RunReport()
        request = request_for(
            kernel,
            controls=RunControls(time_budget_seconds=0.0, check_every_frames=1),
        )
        list(session.stream(request, report=report, cancel=CancellationToken()))
        assert report.stop_reason == StopReason.TIME_BUDGET
