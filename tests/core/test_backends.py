"""The kernel backend layer: capabilities, vector form, dispatch, parity.

The vector backend's contract is *bit-identical observability*: for every
algorithm it supports, ``run_vector_search`` must emit the same cliques in
the same order with the same float probabilities, the same
:class:`SearchStatistics` counters and the same :class:`RunReport` as the
reference python kernel.  These tests pin that on fixed graphs (the
property suite covers random ones), plus the plumbing around it: the
capability probe, kernel resolution, the numpy-free fallback and the
shard inheritance of the compiled word arrays.
"""

from __future__ import annotations

import pytest

from repro.core.engine import (
    KERNELS,
    LargeCliqueStrategy,
    MuleStrategy,
    NoIncrementalStrategy,
    RunControls,
    RunReport,
    TopKStrategy,
    compile_graph,
    kernel_capabilities,
    resolve_kernel,
    run_kernel_search,
    run_search,
    run_vector_search,
)
import importlib

# ``backends.__init__`` re-exports the ``vector_form`` *function* under the
# same name as its defining submodule, so plain attribute-style imports
# resolve to the function; the module itself is fetched explicitly.
vector_form_module = importlib.import_module(
    "repro.core.engine.backends.vector_form"
)

from repro.core.engine.backends import vector_form
from repro.core.engine.backends.vector_form import (
    VectorForm,
    numpy_or_none,
    reset_numpy_probe,
)
from repro.core.result import SearchStatistics
from repro.errors import ParameterError
from repro.uncertain.graph import UncertainGraph


@pytest.fixture
def medium_graph() -> UncertainGraph:
    """A 70-vertex pseudo-random graph (spans multiple uint64 words)."""
    import random

    rng = random.Random(20150413)
    graph = UncertainGraph(vertices=range(70))
    for u in range(70):
        for v in range(u + 1, 70):
            if rng.random() < 0.12:
                graph.add_edge(u, v, round(rng.uniform(0.05, 1.0), 6))
    return graph


def _observed(kernel_run):
    """Full observable behaviour of one run: emissions, stats, report."""
    stats = SearchStatistics()
    report = RunReport()
    pairs = list(kernel_run(stats, report))
    return pairs, stats, report


def _assert_bit_identical(compiled, alpha, strategy_factory, controls=None):
    py = _observed(
        lambda s, r: run_search(
            compiled, alpha, strategy_factory(),
            statistics=s, controls=controls, report=r,
        )
    )
    vec = _observed(
        lambda s, r: run_vector_search(
            compiled, alpha, strategy_factory(),
            statistics=s, controls=controls, report=r,
        )
    )
    assert vec[0] == py[0]  # same cliques, same order, same exact floats
    assert vec[1] == py[1]
    assert vec[2].stop_reason == py[2].stop_reason
    assert vec[2].cliques_emitted == py[2].cliques_emitted
    assert vec[2].frames_expanded == py[2].frames_expanded
    return py


class TestCapabilities:
    def test_probe_lists_both_kernels(self):
        caps = {c.name: c for c in kernel_capabilities()}
        assert set(caps) == {"python", "vector"}
        assert all(c.available for c in caps.values())
        assert caps["python"].accelerated is False

    def test_vector_acceleration_tracks_numpy(self):
        vector = next(c for c in kernel_capabilities() if c.name == "vector")
        assert vector.accelerated == (numpy_or_none() is not None)

    def test_numpy_masked_probe(self, monkeypatch):
        monkeypatch.setenv("REPRO_DISABLE_NUMPY", "1")
        reset_numpy_probe()
        try:
            assert numpy_or_none() is None
            vector = next(
                c for c in kernel_capabilities() if c.name == "vector"
            )
            assert vector.available
            assert not vector.accelerated
        finally:
            monkeypatch.delenv("REPRO_DISABLE_NUMPY")
            reset_numpy_probe()


class TestResolution:
    def test_known_kernels_constant(self):
        assert KERNELS == ("auto", "python", "vector")

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ParameterError, match="unknown kernel"):
            resolve_kernel("simd", MuleStrategy())

    @pytest.mark.parametrize(
        "strategy",
        [MuleStrategy(), TopKStrategy(min_size=2), LargeCliqueStrategy(3)],
    )
    def test_auto_prefers_vector_for_supported(self, strategy):
        assert resolve_kernel("auto", strategy) == "vector"
        assert resolve_kernel("vector", strategy) == "vector"
        assert resolve_kernel("python", strategy) == "python"

    def test_auto_falls_back_for_baseline(self):
        assert resolve_kernel("auto", NoIncrementalStrategy()) == "python"

    def test_vector_rejected_for_baseline(self):
        with pytest.raises(ParameterError, match="dfs-noip"):
            resolve_kernel("vector", NoIncrementalStrategy())

    def test_strategy_subclasses_are_not_assumed_supported(self):
        # The drivers bake in the exact semantics of the stock strategies;
        # a subclass may override any hook, so only exact types vectorise.
        class Sneaky(MuleStrategy):
            pass

        assert resolve_kernel("auto", Sneaky()) == "python"
        with pytest.raises(ParameterError):
            resolve_kernel("vector", Sneaky())

    def test_run_vector_search_rejects_unsupported(self, triangle):
        compiled = compile_graph(triangle, alpha=0.5)
        with pytest.raises(ParameterError):
            list(run_vector_search(compiled, 0.5, NoIncrementalStrategy()))


class TestVectorForm:
    def test_words_roundtrip_adjacency(self, medium_graph):
        compiled = compile_graph(medium_graph, alpha=0.1)
        form = vector_form(compiled)
        assert form.word_count == 2  # 70 vertices -> two uint64 words
        for u in range(compiled.n):
            assert form.mask_of(u) == compiled.adjacency_mask[u]
            assert form.degrees[u] == compiled.adjacency_mask[u].bit_count()

    def test_form_is_cached_on_compiled(self, triangle):
        compiled = compile_graph(triangle, alpha=0.5)
        assert vector_form(compiled) is vector_form(compiled)
        assert compiled.vector_form is vector_form(compiled)

    def test_shards_inherit_form(self, medium_graph):
        compiled = compile_graph(medium_graph, alpha=0.1)
        form = vector_form(compiled)
        shard = compiled.restrict_roots(0b1111)
        assert shard.vector_form is form

    def test_root_plan_cache_is_bounded(self, triangle):
        compiled = compile_graph(triangle, alpha=0.01)
        form = vector_form(compiled)
        for k in range(1, 20):
            form.root_plan(k / 40.0)
        assert len(form._root_plans) <= 8

    def test_pure_fallback_matches_numpy_form(self, medium_graph, monkeypatch):
        compiled = compile_graph(medium_graph, alpha=0.1)
        accelerated = VectorForm(compiled)
        monkeypatch.setattr(vector_form_module, "_numpy_module", None)
        pure = VectorForm(compiled)
        assert not pure.uses_numpy
        assert pure.degrees == accelerated.degrees
        for u in range(compiled.n):
            assert pure.mask_of(u) == accelerated.mask_of(u)
        assert pure.items == accelerated.items
        assert pure.items_higher == accelerated.items_higher


class TestParity:
    ALPHAS = [0.9, 0.5, 0.1, 0.01]

    @pytest.mark.parametrize("alpha", ALPHAS)
    def test_mule_bit_identical(self, medium_graph, alpha):
        compiled = compile_graph(medium_graph, alpha=alpha)
        pairs, _, _ = _assert_bit_identical(compiled, alpha, MuleStrategy)
        assert pairs  # the cell must exercise real work

    @pytest.mark.parametrize("alpha", ALPHAS)
    def test_mule_bit_identical_without_edge_pruning(self, medium_graph, alpha):
        compiled = compile_graph(medium_graph, alpha=None)
        _assert_bit_identical(compiled, alpha, MuleStrategy)

    @pytest.mark.parametrize("threshold", [2, 3, 4])
    def test_large_bit_identical(self, medium_graph, threshold):
        compiled = compile_graph(medium_graph, alpha=0.1)
        _assert_bit_identical(
            compiled, 0.1, lambda: LargeCliqueStrategy(threshold)
        )

    @pytest.mark.parametrize("min_size", [1, 2, 3])
    def test_top_k_bit_identical(self, medium_graph, min_size):
        compiled = compile_graph(medium_graph, alpha=0.1)
        _assert_bit_identical(
            compiled, 0.1, lambda: TopKStrategy(min_size=min_size)
        )

    @pytest.mark.parametrize("max_cliques", [1, 7, 50])
    def test_max_cliques_bit_identical(self, medium_graph, max_cliques):
        compiled = compile_graph(medium_graph, alpha=0.05)
        _assert_bit_identical(
            compiled,
            0.05,
            MuleStrategy,
            controls=RunControls(max_cliques=max_cliques),
        )

    @pytest.mark.parametrize("check_every", [1, 3, 64])
    def test_expired_time_budget_bit_identical(self, medium_graph, check_every):
        # A zero budget makes the deadline path deterministic: both kernels
        # must stop at exactly the same frame for every check cadence.
        compiled = compile_graph(medium_graph, alpha=0.05)
        _assert_bit_identical(
            compiled,
            0.05,
            MuleStrategy,
            controls=RunControls(
                time_budget_seconds=0.0, check_every_frames=check_every
            ),
        )

    def test_sharded_roots_bit_identical(self, medium_graph):
        compiled = compile_graph(medium_graph, alpha=0.1)
        full_mask = compiled.all_mask
        shard_masks = [full_mask & 0x3FF, full_mask & ~0x3FF]
        merged = []
        for mask in shard_masks:
            shard = compiled.restrict_roots(mask)
            pairs, _, _ = _assert_bit_identical(shard, 0.1, MuleStrategy)
            merged.extend(pairs)
        reference = list(run_search(compiled, 0.1, MuleStrategy()))
        assert sorted(
            (tuple(sorted(c, key=repr)), p) for c, p in merged
        ) == sorted((tuple(sorted(c, key=repr)), p) for c, p in reference)

    def test_parity_on_pure_fallback(self, medium_graph, monkeypatch):
        monkeypatch.setattr(vector_form_module, "_numpy_module", None)
        compiled = compile_graph(medium_graph, alpha=0.1)
        assert not vector_form(compiled).uses_numpy
        _assert_bit_identical(compiled, 0.1, MuleStrategy)

    def test_empty_graph(self):
        compiled = compile_graph(UncertainGraph(), alpha=0.5)
        stats = SearchStatistics()
        assert list(
            run_vector_search(compiled, 0.5, MuleStrategy(), statistics=stats)
        ) == []
        assert stats == SearchStatistics()


class TestFrontDoor:
    def test_run_kernel_search_dispatches(self, two_cliques):
        compiled = compile_graph(two_cliques, alpha=0.5)
        runs = {
            kernel: list(
                run_kernel_search(compiled, 0.5, MuleStrategy(), kernel=kernel)
            )
            for kernel in KERNELS
        }
        assert runs["auto"] == runs["python"] == runs["vector"]
        assert runs["auto"]

    def test_front_door_propagates_resolution_errors(self, two_cliques):
        compiled = compile_graph(two_cliques, alpha=0.5)
        with pytest.raises(ParameterError):
            run_kernel_search(
                compiled, 0.5, NoIncrementalStrategy(), kernel="vector"
            )
