"""Unit tests for the brute-force enumeration oracle."""

from __future__ import annotations

import pytest

from repro.core.brute_force import (
    brute_force_alpha_maximal_cliques,
    is_alpha_maximal_clique,
)
from repro.errors import ParameterError, ProbabilityError
from repro.uncertain.graph import UncertainGraph


class TestIsAlphaMaximalClique:
    def test_maximal_triangle(self, triangle):
        assert is_alpha_maximal_clique(triangle, {1, 2, 3}, 0.5)

    def test_extendable_pair_is_not_maximal(self, triangle):
        assert not is_alpha_maximal_clique(triangle, {1, 2}, 0.5)

    def test_below_threshold_is_not_maximal(self, triangle):
        assert not is_alpha_maximal_clique(triangle, {1, 2, 3}, 0.99)

    def test_singleton_isolated_by_pruning(self, triangle):
        # Vertex 4's only edge has probability 0.4 < alpha, so {4} is maximal.
        assert is_alpha_maximal_clique(triangle, {4}, 0.5)

    def test_alpha_validation(self, triangle):
        with pytest.raises(ProbabilityError):
            is_alpha_maximal_clique(triangle, {1}, 0.0)


class TestBruteForce:
    def test_triangle_output(self, triangle):
        result = brute_force_alpha_maximal_cliques(triangle, 0.5)
        assert result.vertex_sets() == {frozenset({1, 2, 3}), frozenset({4})}

    def test_two_cliques_output(self, two_cliques):
        result = brute_force_alpha_maximal_cliques(two_cliques, 0.5)
        assert result.vertex_sets() == {frozenset({1, 2, 3}), frozenset({4, 5, 6})}

    def test_low_alpha_merges_cliques(self, two_cliques):
        # At a very low threshold the weak 3-4 edge becomes usable.
        result = brute_force_alpha_maximal_cliques(two_cliques, 1e-6)
        assert frozenset({3, 4}) in result.vertex_sets()

    def test_alpha_one_gives_deterministic_cliques(self):
        g = UncertainGraph(edges=[(1, 2, 1.0), (2, 3, 1.0), (1, 3, 0.5)])
        result = brute_force_alpha_maximal_cliques(g, 1.0)
        assert result.vertex_sets() == {frozenset({1, 2}), frozenset({2, 3})}

    def test_empty_graph(self):
        result = brute_force_alpha_maximal_cliques(UncertainGraph(), 0.5)
        assert result.num_cliques == 0

    def test_edgeless_graph_yields_singletons(self):
        g = UncertainGraph(vertices=[1, 2, 3])
        result = brute_force_alpha_maximal_cliques(g, 0.5)
        assert result.vertex_sets() == {frozenset({1}), frozenset({2}), frozenset({3})}

    def test_probabilities_recorded(self, triangle):
        result = brute_force_alpha_maximal_cliques(triangle, 0.5)
        by_set = {record.vertices: record.probability for record in result}
        assert by_set[frozenset({1, 2, 3})] == pytest.approx(0.9**3)
        assert by_set[frozenset({4})] == 1.0

    def test_size_limit_enforced(self):
        g = UncertainGraph(vertices=range(30))
        with pytest.raises(ParameterError):
            brute_force_alpha_maximal_cliques(g, 0.5)

    def test_algorithm_label(self, triangle):
        assert brute_force_alpha_maximal_cliques(triangle, 0.5).algorithm == "brute-force"

    def test_verify_passes_on_own_output(self, two_cliques):
        result = brute_force_alpha_maximal_cliques(two_cliques, 0.3)
        result.verify(two_cliques)
