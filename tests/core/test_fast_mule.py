"""Unit tests for the bitset-accelerated FAST-MULE variant."""

from __future__ import annotations

import pytest

from repro.core.brute_force import brute_force_alpha_maximal_cliques
from repro.core.fast_mule import fast_mule, iter_alpha_maximal_cliques_fast
from repro.core.mule import mule
from repro.errors import ProbabilityError
from repro.uncertain.graph import UncertainGraph


class TestSmallGraphs:
    def test_triangle_with_weak_pendant(self, triangle):
        result = fast_mule(triangle, 0.5)
        assert result.vertex_sets() == {frozenset({1, 2, 3}), frozenset({4})}

    def test_two_cliques(self, two_cliques):
        result = fast_mule(two_cliques, 0.5)
        assert result.vertex_sets() == {frozenset({1, 2, 3}), frozenset({4, 5, 6})}

    def test_empty_graph(self):
        assert fast_mule(UncertainGraph(), 0.5).num_cliques == 0

    def test_edgeless_graph(self):
        result = fast_mule(UncertainGraph(vertices=[1, 2, 3]), 0.5)
        assert result.num_cliques == 3

    def test_string_labels(self):
        g = UncertainGraph(
            edges=[("a", "b", 0.9), ("b", "c", 0.9), ("a", "c", 0.9)]
        )
        assert fast_mule(g, 0.5).vertex_sets() == {frozenset({"a", "b", "c"})}

    def test_invalid_alpha(self, triangle):
        with pytest.raises(ProbabilityError):
            fast_mule(triangle, 0.0)

    def test_algorithm_label(self, triangle):
        assert fast_mule(triangle, 0.5).algorithm == "fast-mule"

    def test_probabilities_recorded_exactly(self, two_cliques):
        for record in fast_mule(two_cliques, 0.5):
            assert record.probability == pytest.approx(
                two_cliques.clique_probability(record.vertices)
            )

    def test_generator_interface(self, triangle):
        pairs = list(iter_alpha_maximal_cliques_fast(triangle, 0.5))
        assert {frozenset(c) for c, _ in pairs} == {frozenset({1, 2, 3}), frozenset({4})}


class TestEquivalenceWithReferenceMule:
    @pytest.mark.parametrize("seed", range(15))
    @pytest.mark.parametrize("alpha", [0.9, 0.3, 0.05, 0.001])
    def test_same_output_as_mule(self, random_graph_factory, seed, alpha):
        graph = random_graph_factory(10, density=0.55, seed=seed)
        assert fast_mule(graph, alpha).vertex_sets() == mule(graph, alpha).vertex_sets()

    @pytest.mark.parametrize("seed", range(5))
    def test_same_output_as_brute_force(self, random_graph_factory, seed):
        graph = random_graph_factory(8, density=0.6, seed=40 + seed)
        assert (
            fast_mule(graph, 0.1).vertex_sets()
            == brute_force_alpha_maximal_cliques(graph, 0.1).vertex_sets()
        )

    def test_verify_passes(self, random_graph_factory):
        graph = random_graph_factory(14, density=0.6, seed=3)
        fast_mule(graph, 0.05).verify(graph)

    def test_prune_edges_flag_does_not_change_output(self, two_cliques):
        assert (
            fast_mule(two_cliques, 0.5, prune_edges=False).vertex_sets()
            == fast_mule(two_cliques, 0.5, prune_edges=True).vertex_sets()
        )

    def test_matches_mule_on_larger_graph(self):
        from repro.generators.barabasi_albert import barabasi_albert_uncertain

        graph = barabasi_albert_uncertain(120, 5, rng=9)
        for alpha in (0.5, 0.01):
            assert (
                fast_mule(graph, alpha).vertex_sets()
                == mule(graph, alpha).vertex_sets()
            )
