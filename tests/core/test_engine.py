"""Unit tests for the shared enumeration engine (compiled graph, kernel, controls)."""

from __future__ import annotations

import sys

import pytest

from repro.core.engine import (
    CompiledGraph,
    MuleStrategy,
    RunControls,
    RunReport,
    StopReason,
    compile_graph,
    run_search,
)
from repro.core.engine.strategies import bit_list
from repro.core.dfs_noip import dfs_noip
from repro.core.fast_mule import fast_mule
from repro.core.large_mule import large_mule
from repro.core.mule import mule
from repro.core.result import SearchStatistics
from repro.core.top_k import top_k_maximal_cliques
from repro.errors import ParameterError
from repro.uncertain.graph import UncertainGraph


class TestCompiledGraph:
    def test_labels_sorted_and_indexed(self):
        g = UncertainGraph(edges=[(3, 1, 0.5), (1, 2, 0.9)])
        cg = CompiledGraph.from_graph(g)
        assert cg.labels == [1, 2, 3]
        assert cg.index_of == {1: 0, 2: 1, 3: 2}
        assert cg.n == 3

    def test_adjacency_masks_symmetric(self):
        g = UncertainGraph(edges=[(1, 2, 0.5), (2, 3, 0.5)])
        cg = CompiledGraph.from_graph(g)
        for i in range(cg.n):
            for j in range(cg.n):
                assert bool(cg.adjacency_mask[i] >> j & 1) == bool(
                    cg.adjacency_mask[j] >> i & 1
                )

    def test_probabilities_stored_both_directions(self):
        g = UncertainGraph(edges=[(1, 2, 0.75)])
        cg = CompiledGraph.from_graph(g)
        assert cg.probability(0, 1) == 0.75
        assert cg.probability(1, 0) == 0.75
        assert cg.probability(0, 0) == 0.0

    def test_min_probability_filter_drops_light_edges(self):
        g = UncertainGraph(edges=[(1, 2, 0.9), (2, 3, 0.1)])
        cg = CompiledGraph.from_graph(g, min_probability=0.5)
        assert cg.n == 3  # vertices always survive
        assert cg.adjacency_mask[cg.index_of[3]] == 0

    def test_decode_round_trip(self):
        g = UncertainGraph(edges=[("b", "a", 0.5)])
        cg = CompiledGraph.from_graph(g)
        assert cg.decode([0, 1]) == frozenset({"a", "b"})

    def test_subset_probability_matches_graph(self):
        g = UncertainGraph(edges=[(1, 2, 0.5), (2, 3, 0.4), (1, 3, 0.25)])
        cg = CompiledGraph.from_graph(g)
        indices = [cg.index_of[v] for v in (1, 2, 3)]
        assert cg.subset_probability(indices) == pytest.approx(
            g.clique_probability([1, 2, 3])
        )

    def test_subset_probability_zero_on_missing_edge(self):
        g = UncertainGraph(edges=[(1, 2, 0.5)], vertices=[3])
        cg = CompiledGraph.from_graph(g)
        assert cg.subset_probability([0, 2]) == 0.0

    def test_higher_masks(self):
        g = UncertainGraph(vertices=[1, 2, 3, 4])
        cg = CompiledGraph.from_graph(g)
        assert bit_list(cg.higher_masks[1]) == [2, 3]
        assert cg.higher_masks[3] == 0

    def test_compile_graph_with_size_threshold_prunes(self):
        # 3-4 cannot be in a clique of size >= 3, so SNF removes it.
        g = UncertainGraph(
            edges=[(1, 2, 0.9), (2, 3, 0.9), (1, 3, 0.9), (3, 4, 0.9)]
        )
        cg = compile_graph(g, alpha=0.5, size_threshold=3)
        assert cg.labels == [1, 2, 3]


class TestRunControls:
    def test_rejects_non_positive_max_cliques(self):
        with pytest.raises(ParameterError):
            RunControls(max_cliques=0)

    def test_rejects_negative_time_budget(self):
        with pytest.raises(ParameterError):
            RunControls(time_budget_seconds=-1.0)

    def test_rejects_non_positive_check_interval(self):
        with pytest.raises(ParameterError):
            RunControls(check_every_frames=0)

    def test_unlimited(self):
        assert RunControls().unlimited
        assert not RunControls(max_cliques=5).unlimited


class TestMaxCliques:
    def test_truncates_to_prefix_of_full_enumeration(self, two_cliques):
        full = [c for c, _ in run_search(
            compile_graph(two_cliques, alpha=0.5), 0.5, MuleStrategy()
        )]
        report = RunReport()
        partial = [c for c, _ in run_search(
            compile_graph(two_cliques, alpha=0.5),
            0.5,
            MuleStrategy(),
            controls=RunControls(max_cliques=1),
            report=report,
        )]
        assert partial == full[:1]
        assert report.stop_reason == StopReason.MAX_CLIQUES
        assert report.truncated
        assert report.cliques_emitted == 1

    def test_reused_report_is_reset_between_runs(self, two_cliques):
        """A RunReport carried across runs must not leak counters: stale
        cliques_emitted would trip the max_cliques check prematurely."""
        report = RunReport()
        compiled = compile_graph(two_cliques, alpha=0.5)
        controls = RunControls(max_cliques=2)
        first = list(
            run_search(compiled, 0.5, MuleStrategy(), controls=controls, report=report)
        )
        second = list(
            run_search(compiled, 0.5, MuleStrategy(), controls=controls, report=report)
        )
        assert [c for c, _ in second] == [c for c, _ in first]
        assert report.cliques_emitted == 2

    def test_wrappers_record_stop_reason(self, two_cliques):
        result = mule(two_cliques, 0.5, controls=RunControls(max_cliques=1))
        assert result.num_cliques == 1
        assert result.stop_reason == StopReason.MAX_CLIQUES
        assert result.truncated

    def test_limit_above_output_size_completes(self, two_cliques):
        result = mule(two_cliques, 0.5, controls=RunControls(max_cliques=100))
        assert result.stop_reason == StopReason.COMPLETED
        assert not result.truncated

    @pytest.mark.parametrize("runner", [mule, fast_mule, dfs_noip])
    def test_all_wrappers_accept_controls(self, two_cliques, runner):
        result = runner(two_cliques, 0.5, controls=RunControls(max_cliques=1))
        assert result.num_cliques == 1
        assert result.truncated

    def test_large_mule_accepts_controls(self, two_cliques):
        result = large_mule(
            two_cliques, 0.5, 3, controls=RunControls(max_cliques=1)
        )
        assert result.num_cliques == 1
        assert result.truncated


class TestTimeBudget:
    def test_exhausted_budget_stops_run(self, random_graph_factory):
        graph = random_graph_factory(14, density=0.6, seed=11)
        report = RunReport()
        list(
            run_search(
                compile_graph(graph, alpha=0.01),
                0.01,
                MuleStrategy(),
                controls=RunControls(
                    time_budget_seconds=0.0, check_every_frames=1
                ),
                report=report,
            )
        )
        assert report.stop_reason == StopReason.TIME_BUDGET

    def test_generous_budget_completes(self, two_cliques):
        result = mule(
            two_cliques, 0.5, controls=RunControls(time_budget_seconds=60.0)
        )
        assert result.stop_reason == StopReason.COMPLETED
        assert result.vertex_sets() == {
            frozenset({1, 2, 3}),
            frozenset({4, 5, 6}),
        }


class TestStreaming:
    def test_kernel_is_lazy(self, two_cliques):
        iterator = run_search(
            compile_graph(two_cliques, alpha=0.5), 0.5, MuleStrategy()
        )
        first_clique, first_probability = next(iterator)
        assert isinstance(first_clique, frozenset)
        assert 0.0 < first_probability <= 1.0
        # Abandoning the iterator mid-run must be safe (pause/early stop).
        iterator.close()

    def test_emission_order_is_depth_first(self):
        g = UncertainGraph(
            vertices=[3], edges=[(1, 2, 0.9), (4, 5, 0.9)]
        )
        emitted = [
            sorted(c)
            for c, _ in run_search(
                compile_graph(g, alpha=0.5), 0.5, MuleStrategy()
            )
        ]
        assert emitted == [[1, 2], [3], [4, 5]]


class TestInterpreterStateUntouched:
    """Satellite requirement: no enumerator mutates interpreter state."""

    @pytest.mark.parametrize(
        "runner",
        [
            lambda g: mule(g, 0.5),
            lambda g: fast_mule(g, 0.5),
            lambda g: dfs_noip(g, 0.5),
            lambda g: large_mule(g, 0.5, 2),
            lambda g: top_k_maximal_cliques(g, 2, 0.5),
        ],
    )
    def test_recursion_limit_unchanged(self, two_cliques, runner):
        before = sys.getrecursionlimit()
        runner(two_cliques)
        assert sys.getrecursionlimit() == before

    def test_search_deeper_than_recursion_limit(self):
        """A certain 150-clique under a recursion limit of 80: the first
        depth-first chain is 150 frames deep, which would crash any
        recursive implementation but is a plain list for the iterative
        kernel.  ``max_cliques=1`` stops after that first chain (a full
        enumeration of a complete certain graph visits exponentially many
        search nodes)."""
        n = 150
        g = UncertainGraph(
            edges=[(u, v, 1.0) for u in range(n) for v in range(u + 1, n)]
        )
        old_limit = sys.getrecursionlimit()
        sys.setrecursionlimit(80)
        try:
            result = mule(g, 0.5, controls=RunControls(max_cliques=1))
        finally:
            sys.setrecursionlimit(old_limit)
        assert result.vertex_sets() == {frozenset(range(n))}


class TestStrategyPluggability:
    def test_custom_strategy_via_subclassing(self, two_cliques):
        """The documented extension point: override the emission test."""

        class EvenSizeStrategy(MuleStrategy):
            algorithm = "even-only"

            def expand(self, state, clique):
                candidates, probability = super().expand(state, clique)
                if probability is not None and len(clique) % 2 != 0:
                    return candidates, None
                return candidates, probability

        emitted = {
            c
            for c, _ in run_search(
                compile_graph(two_cliques, alpha=0.5),
                0.5,
                EvenSizeStrategy(),
            )
        }
        full = mule(two_cliques, 0.5).vertex_sets()
        assert emitted == {c for c in full if len(c) % 2 == 0}

    def test_statistics_shared_across_strategies(self, two_cliques):
        stats = SearchStatistics()
        list(
            run_search(
                compile_graph(two_cliques, alpha=0.5),
                0.5,
                MuleStrategy(),
                statistics=stats,
            )
        )
        assert stats.recursive_calls > 0
        assert stats.candidates_examined > 0
        assert stats.probability_multiplications > 0

    def test_report_frame_counter(self, two_cliques):
        report = RunReport()
        list(
            run_search(
                compile_graph(two_cliques, alpha=0.5),
                0.5,
                MuleStrategy(),
                report=report,
            )
        )
        assert report.frames_expanded > 0
        assert report.cliques_emitted == 2


class TestTimeBudgetOnPrunedDescents:
    """Regression: the deadline check used to run only after a *successful*
    descend, so a search whose strategy pruned every branch (descend
    returning None) never saw the check and blew past its budget."""

    @staticmethod
    def _prune_heavy_graph():
        # Dense 40-vertex certain graph: a LARGE-MULE run with an
        # unreachable size threshold prunes every one of the ~40 root
        # descents without ever expanding a child frame.
        return UncertainGraph(
            edges=[
                (u, v, 0.9)
                for u in range(1, 41)
                for v in range(u + 1, 41)
                if (u + v) % 3
            ]
        )

    def test_deadline_fires_while_only_pruning(self):
        from repro.core.engine import LargeCliqueStrategy

        # Drive the kernel directly (the large_mule wrapper's shared
        # neighborhood filter would empty the graph before the search):
        # with an unreachable size threshold every root descend prunes.
        graph = self._prune_heavy_graph()
        report = RunReport()
        emitted = list(
            run_search(
                compile_graph(graph, alpha=0.5),
                0.5,
                LargeCliqueStrategy(1000),
                controls=RunControls(time_budget_seconds=0.0, check_every_frames=1),
                report=report,
            )
        )
        assert emitted == []
        assert report.stop_reason == StopReason.TIME_BUDGET

    def test_prune_only_search_completes_within_generous_budget(self):
        from repro.core.engine import LargeCliqueStrategy

        graph = self._prune_heavy_graph()
        report = RunReport()
        emitted = list(
            run_search(
                compile_graph(graph, alpha=0.5),
                0.5,
                LargeCliqueStrategy(1000),
                controls=RunControls(time_budget_seconds=60.0),
                report=report,
            )
        )
        assert emitted == []
        assert report.stop_reason == StopReason.COMPLETED

    def test_sharded_root_skips_count_toward_deadline(self, random_graph_factory):
        # A shard view prunes every root branch outside its mask; those
        # skips must also count toward the check window.
        graph = random_graph_factory(16, density=0.6, seed=19)
        compiled = compile_graph(graph, alpha=0.05).restrict_roots(0)
        report = RunReport()
        list(
            run_search(
                compiled,
                0.05,
                MuleStrategy(),
                controls=RunControls(time_budget_seconds=0.0, check_every_frames=1),
                report=report,
            )
        )
        assert report.stop_reason == StopReason.TIME_BUDGET


class TestRootMaskRestriction:
    def test_restrict_roots_shares_arrays(self, two_cliques):
        compiled = compile_graph(two_cliques, alpha=0.5)
        view = compiled.restrict_roots(0b11)
        assert view.root_mask == 0b11
        assert view.adjacency_mask is compiled.adjacency_mask
        assert view.labels is compiled.labels
        assert compiled.root_mask == compiled.all_mask  # original untouched

    def test_restrict_roots_clips_to_vertex_range(self, triangle):
        compiled = compile_graph(triangle, alpha=0.5)
        view = compiled.restrict_roots(~0)
        assert view.root_mask == compiled.all_mask

    def test_shard_union_equals_full_search(self, random_graph_factory):
        graph = random_graph_factory(14, density=0.5, seed=23)
        compiled = compile_graph(graph, alpha=0.1)
        full = {
            members: probability
            for members, probability in run_search(compiled, 0.1, MuleStrategy())
        }
        merged: dict = {}
        half = compiled.n // 2
        low = (1 << half) - 1
        for mask in (low, compiled.all_mask ^ low):
            for members, probability in run_search(
                compiled.restrict_roots(mask), 0.1, MuleStrategy()
            ):
                assert members not in merged, "shards emitted a duplicate"
                merged[members] = probability
        assert merged == full

    def test_empty_root_mask_emits_nothing(self, two_cliques):
        compiled = compile_graph(two_cliques, alpha=0.5)
        assert list(run_search(compiled.restrict_roots(0), 0.5, MuleStrategy())) == []
