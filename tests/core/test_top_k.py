"""Unit tests for the top-k maximal clique extension."""

from __future__ import annotations

import pytest

from repro.core.engine import RunControls, StopReason
from repro.core.mule import mule
from repro.core.top_k import top_k_by_threshold_search, top_k_maximal_cliques
from repro.errors import ParameterError
from repro.uncertain.graph import UncertainGraph


@pytest.fixture
def ranked_graph() -> UncertainGraph:
    """Three disjoint cliques with clearly ordered probabilities."""
    return UncertainGraph(
        edges=[
            # Triangle A: probability 0.9^3 = 0.729
            (1, 2, 0.9),
            (2, 3, 0.9),
            (1, 3, 0.9),
            # Edge B: probability 0.8
            (4, 5, 0.8),
            # Triangle C: probability 0.6^3 = 0.216
            (6, 7, 0.6),
            (7, 8, 0.6),
            (6, 8, 0.6),
        ]
    )


class TestTopK:
    def test_returns_k_most_probable(self, ranked_graph):
        top2 = top_k_maximal_cliques(ranked_graph, 2, alpha=0.1)
        assert [record.vertices for record in top2] == [
            frozenset({4, 5}),
            frozenset({1, 2, 3}),
        ]

    def test_k_larger_than_output(self, ranked_graph):
        top10 = top_k_maximal_cliques(ranked_graph, 10, alpha=0.1)
        assert len(top10) == 3

    def test_probabilities_sorted_descending(self, ranked_graph):
        top = top_k_maximal_cliques(ranked_graph, 3, alpha=0.1)
        probabilities = [record.probability for record in top]
        assert probabilities == sorted(probabilities, reverse=True)

    def test_invalid_k(self, ranked_graph):
        with pytest.raises(ParameterError):
            top_k_maximal_cliques(ranked_graph, 0, alpha=0.5)

    def test_consistent_with_full_enumeration(self, random_graph_factory):
        graph = random_graph_factory(10, density=0.5, seed=17)
        alpha = 0.05
        full = mule(graph, alpha)
        top3 = top_k_maximal_cliques(graph, 3, alpha)
        expected = full.filter_minimum_size(2).top_k_by_probability(3)
        assert [r.vertices for r in top3] == [r.vertices for r in expected]

    def test_min_size_one_includes_singletons(self):
        g = UncertainGraph(edges=[(1, 2, 0.4)], vertices=[9])
        top = top_k_maximal_cliques(g, 1, alpha=0.3, min_size=1)
        assert top[0].probability == 1.0
        assert top[0].size == 1

    def test_invalid_min_size(self, ranked_graph):
        with pytest.raises(ParameterError):
            top_k_maximal_cliques(ranked_graph, 2, alpha=0.5, min_size=0)


class TestThresholdSearch:
    def test_finds_k_without_alpha(self, ranked_graph):
        top = top_k_by_threshold_search(ranked_graph, 3)
        assert len(top) == 3
        assert top[0].vertices == frozenset({4, 5})

    def test_stops_when_enough_found_at_initial_alpha(self, ranked_graph):
        top = top_k_by_threshold_search(ranked_graph, 1, initial_alpha=0.7)
        assert top[0].vertices == frozenset({4, 5})

    def test_lowers_threshold_when_needed(self):
        # Only low-probability cliques exist; the search must descend to find 2.
        g = UncertainGraph(edges=[(1, 2, 0.05), (3, 4, 0.02)])
        top = top_k_by_threshold_search(g, 2, initial_alpha=0.5)
        probabilities = [record.probability for record in top]
        assert probabilities == sorted(probabilities, reverse=True)
        assert len(top) == 2

    def test_returns_fewer_when_graph_is_tiny(self):
        g = UncertainGraph(vertices=[1])
        assert top_k_by_threshold_search(g, 5) == []
        with_singletons = top_k_by_threshold_search(g, 5, min_size=1)
        assert len(with_singletons) == 1  # only the singleton {1}

    def test_parameter_validation(self, ranked_graph):
        with pytest.raises(ParameterError):
            top_k_by_threshold_search(ranked_graph, 0)
        with pytest.raises(ParameterError):
            top_k_by_threshold_search(ranked_graph, 2, shrink_factor=1.5)
        with pytest.raises(ParameterError):
            top_k_by_threshold_search(ranked_graph, 2, initial_alpha=0.0)


class TestTopKRunControls:
    """Regression: top-k used to silently ignore run controls entirely."""

    def test_max_cliques_truncates_and_is_surfaced(self, random_graph_factory):
        graph = random_graph_factory(12, density=0.6, seed=3)
        full = top_k_maximal_cliques(graph, 50, alpha=0.05)
        assert len(full) > 3
        assert not full.truncated

        capped = top_k_maximal_cliques(
            graph, 50, alpha=0.05, controls=RunControls(max_cliques=3)
        )
        assert len(capped) == 3
        assert capped.truncated
        assert capped.stop_reason == StopReason.MAX_CLIQUES

    def test_time_budget_truncates_and_is_surfaced(self, random_graph_factory):
        graph = random_graph_factory(14, density=0.6, seed=9)
        result = top_k_maximal_cliques(
            graph,
            10,
            alpha=0.05,
            controls=RunControls(time_budget_seconds=0.0, check_every_frames=1),
        )
        assert result.truncated
        assert result.stop_reason == StopReason.TIME_BUDGET

    def test_unlimited_controls_behave_like_no_controls(self, ranked_graph):
        plain = top_k_maximal_cliques(ranked_graph, 3, alpha=0.1)
        controlled = top_k_maximal_cliques(
            ranked_graph, 3, alpha=0.1, controls=RunControls()
        )
        assert list(plain) == list(controlled)
        assert not controlled.truncated

    def test_threshold_search_stops_on_exhausted_budget(self, random_graph_factory):
        graph = random_graph_factory(14, density=0.6, seed=2)
        result = top_k_by_threshold_search(
            graph,
            1000,
            controls=RunControls(time_budget_seconds=0.0, check_every_frames=1),
        )
        assert result.truncated
        assert result.stop_reason == StopReason.TIME_BUDGET

    def test_threshold_search_forwards_max_cliques(self, ranked_graph):
        result = top_k_by_threshold_search(
            ranked_graph, 2, controls=RunControls(max_cliques=1)
        )
        # Each pass emits at most one clique; the descent stops at the
        # first truncated pass and reports it instead of looping forever.
        assert len(result) <= 1
        assert result.truncated
        assert result.stop_reason == StopReason.MAX_CLIQUES

    def test_result_provenance_records_final_alpha(self, ranked_graph):
        result = top_k_by_threshold_search(ranked_graph, 3, initial_alpha=0.5)
        assert result.alpha <= 0.5
        assert not result.truncated

    def test_result_is_still_a_plain_list(self, ranked_graph):
        result = top_k_maximal_cliques(ranked_graph, 2, alpha=0.1)
        assert isinstance(result, list)
        assert result == list(result)
        assert result[0].vertices == frozenset({4, 5})
