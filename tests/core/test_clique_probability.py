"""Unit tests for the clique probability engine."""

from __future__ import annotations

import math

import pytest

from repro.core.clique_probability import (
    clique_probability,
    extension_factor,
    is_alpha_clique,
    log_clique_probability,
)
from repro.errors import VertexError
from repro.uncertain.graph import UncertainGraph


@pytest.fixture
def weighted_triangle() -> UncertainGraph:
    return UncertainGraph(edges=[(1, 2, 0.5), (1, 3, 0.4), (2, 3, 0.8), (3, 4, 0.9)])


class TestCliqueProbability:
    def test_matches_graph_method(self, weighted_triangle):
        for subset in ([1, 2], [1, 2, 3], [2, 3, 4], []):
            assert clique_probability(weighted_triangle, subset) == pytest.approx(
                weighted_triangle.clique_probability(subset)
            )

    def test_empty_and_singleton_are_one(self, weighted_triangle):
        assert clique_probability(weighted_triangle, []) == 1.0
        assert clique_probability(weighted_triangle, [4]) == 1.0

    def test_non_clique_is_zero(self, weighted_triangle):
        assert clique_probability(weighted_triangle, [1, 4]) == 0.0


class TestExtensionFactor:
    def test_product_of_connecting_edges(self, weighted_triangle):
        factor = extension_factor(weighted_triangle, [1, 2], 3)
        assert factor == pytest.approx(0.4 * 0.8)

    def test_extension_identity(self, weighted_triangle):
        """clq(C ∪ {v}) == clq(C) * extension_factor(C, v) — the MULE invariant."""
        clique = [1, 2]
        for v in (3, 4):
            lhs = clique_probability(weighted_triangle, clique + [v])
            rhs = clique_probability(weighted_triangle, clique) * extension_factor(
                weighted_triangle, clique, v
            )
            assert lhs == pytest.approx(rhs)

    def test_missing_edge_gives_zero(self, weighted_triangle):
        assert extension_factor(weighted_triangle, [1, 2], 4) == 0.0

    def test_extension_of_empty_clique_is_one(self, weighted_triangle):
        assert extension_factor(weighted_triangle, [], 1) == 1.0

    def test_unknown_vertex_raises(self, weighted_triangle):
        with pytest.raises(VertexError):
            extension_factor(weighted_triangle, [1], 99)


class TestLogCliqueProbability:
    def test_matches_log_of_product(self, weighted_triangle):
        expected = math.log(weighted_triangle.clique_probability([1, 2, 3]))
        assert log_clique_probability(weighted_triangle, [1, 2, 3]) == pytest.approx(expected)

    def test_impossible_clique_is_minus_infinity(self, weighted_triangle):
        assert log_clique_probability(weighted_triangle, [1, 4]) == float("-inf")

    def test_empty_set_is_zero(self, weighted_triangle):
        assert log_clique_probability(weighted_triangle, []) == 0.0

    def test_avoids_underflow(self):
        """A 60-vertex clique of probability-0.1 edges underflows the plain product."""
        n = 60
        g = UncertainGraph(
            edges=[(u, v, 0.1) for u in range(1, n + 1) for v in range(u + 1, n + 1)]
        )
        log_p = log_clique_probability(g, range(1, n + 1))
        assert log_p == pytest.approx(math.log(0.1) * n * (n - 1) / 2)
        assert math.isfinite(log_p)


class TestIsAlphaClique:
    def test_threshold_inclusive(self, weighted_triangle):
        p = weighted_triangle.clique_probability([1, 2, 3])
        assert is_alpha_clique(weighted_triangle, [1, 2, 3], p)
        assert not is_alpha_clique(weighted_triangle, [1, 2, 3], p + 1e-9)

    def test_singletons_always_alpha_cliques(self, weighted_triangle):
        assert is_alpha_clique(weighted_triangle, [1], 1.0)
