"""Unit tests for the MULE enumerator (Algorithms 1–4)."""

from __future__ import annotations

import pytest

from repro.core.brute_force import brute_force_alpha_maximal_cliques
from repro.core.mule import MuleConfig, iter_alpha_maximal_cliques, mule
from repro.errors import ParameterError, ProbabilityError
from repro.uncertain.graph import UncertainGraph


class TestSmallGraphs:
    def test_triangle_with_weak_pendant(self, triangle):
        result = mule(triangle, 0.5)
        assert result.vertex_sets() == {frozenset({1, 2, 3}), frozenset({4})}

    def test_two_cliques(self, two_cliques):
        result = mule(two_cliques, 0.5)
        assert result.vertex_sets() == {frozenset({1, 2, 3}), frozenset({4, 5, 6})}

    def test_path_graph_high_alpha(self, path_graph):
        result = mule(path_graph, 0.8)
        assert result.vertex_sets() == {
            frozenset({1, 2}),
            frozenset({3}),
            frozenset({4}),
            frozenset({5}),
        }

    def test_path_graph_low_alpha(self, path_graph):
        result = mule(path_graph, 0.2)
        assert result.vertex_sets() == {
            frozenset({1, 2}),
            frozenset({2, 3}),
            frozenset({3, 4}),
            frozenset({4, 5}),
        }

    def test_empty_graph(self):
        assert mule(UncertainGraph(), 0.5).num_cliques == 0

    def test_edgeless_graph(self):
        result = mule(UncertainGraph(vertices=["a", "b"]), 0.5)
        assert result.vertex_sets() == {frozenset({"a"}), frozenset({"b"})}

    def test_single_certain_edge(self):
        result = mule(UncertainGraph(edges=[(1, 2, 1.0)]), 0.9)
        assert result.vertex_sets() == {frozenset({1, 2})}

    def test_complete_graph_at_moderate_alpha(self):
        g = UncertainGraph(
            edges=[(u, v, 0.9) for u in range(1, 5) for v in range(u + 1, 5)]
        )
        # clq of the 4-clique is 0.9^6 ≈ 0.531 ≥ 0.5.
        result = mule(g, 0.5)
        assert result.vertex_sets() == {frozenset({1, 2, 3, 4})}

    def test_complete_graph_at_high_alpha_splits(self):
        g = UncertainGraph(
            edges=[(u, v, 0.9) for u in range(1, 5) for v in range(u + 1, 5)]
        )
        # 0.9^6 < 0.6 but every triangle has 0.9^3 = 0.729 ≥ 0.6.
        result = mule(g, 0.6)
        assert result.vertex_sets() == {
            frozenset(c) for c in ([1, 2, 3], [1, 2, 4], [1, 3, 4], [2, 3, 4])
        }


class TestRecordedProbabilities:
    def test_probability_matches_exact(self, two_cliques):
        result = mule(two_cliques, 0.5)
        for record in result:
            assert record.probability == pytest.approx(
                two_cliques.clique_probability(record.vertices)
            )

    def test_every_record_at_least_alpha(self, two_cliques):
        alpha = 0.3
        for record in mule(two_cliques, alpha):
            assert record.probability >= alpha


class TestParameters:
    @pytest.mark.parametrize("alpha", [0.0, -0.5, 1.0001])
    def test_invalid_alpha_rejected(self, triangle, alpha):
        with pytest.raises(ProbabilityError):
            mule(triangle, alpha)

    def test_alpha_one_accepted(self):
        g = UncertainGraph(edges=[(1, 2, 1.0), (2, 3, 0.9)])
        result = mule(g, 1.0)
        assert result.vertex_sets() == {frozenset({1, 2}), frozenset({3})}

    def test_negative_headroom_rejected(self):
        with pytest.raises(ParameterError):
            MuleConfig(min_recursion_headroom=-1)

    def test_prune_edges_flag_does_not_change_output(self, two_cliques):
        pruned = mule(two_cliques, 0.5, config=MuleConfig(prune_edges=True))
        unpruned = mule(two_cliques, 0.5, config=MuleConfig(prune_edges=False))
        assert pruned.vertex_sets() == unpruned.vertex_sets()


class TestGeneratorInterface:
    def test_iterator_yields_pairs(self, triangle):
        pairs = list(iter_alpha_maximal_cliques(triangle, 0.5))
        assert {frozenset(c) for c, _ in pairs} == {frozenset({1, 2, 3}), frozenset({4})}
        for members, probability in pairs:
            assert probability == pytest.approx(triangle.clique_probability(members))

    def test_iterator_is_lazy(self, two_cliques):
        iterator = iter_alpha_maximal_cliques(two_cliques, 0.5)
        first = next(iterator)
        assert isinstance(first[0], frozenset)

    def test_statistics_populated(self, two_cliques):
        from repro.core.result import SearchStatistics

        stats = SearchStatistics()
        list(iter_alpha_maximal_cliques(two_cliques, 0.5, statistics=stats))
        assert stats.recursive_calls > 0
        assert stats.candidates_examined > 0


class TestStatisticsAndMetadata:
    def test_algorithm_label_and_alpha(self, triangle):
        result = mule(triangle, 0.5)
        assert result.algorithm == "mule"
        assert result.alpha == 0.5

    def test_elapsed_time_non_negative(self, triangle):
        assert mule(triangle, 0.5).elapsed_seconds >= 0.0

    def test_recursion_counters_positive(self, two_cliques):
        stats = mule(two_cliques, 0.5).statistics
        assert stats.recursive_calls >= 2
        assert stats.probability_multiplications > 0


class TestAgainstBruteForce:
    @pytest.mark.parametrize("seed", range(12))
    @pytest.mark.parametrize("alpha", [0.9, 0.5, 0.1, 0.01])
    def test_matches_oracle_on_random_graphs(self, random_graph_factory, seed, alpha):
        graph = random_graph_factory(8, density=0.5, seed=seed)
        assert (
            mule(graph, alpha).vertex_sets()
            == brute_force_alpha_maximal_cliques(graph, alpha).vertex_sets()
        )

    @pytest.mark.parametrize("seed", range(6))
    def test_verify_passes_on_denser_graphs(self, random_graph_factory, seed):
        graph = random_graph_factory(12, density=0.7, seed=100 + seed)
        result = mule(graph, 0.05)
        result.verify(graph)


class TestStringVertexLabels:
    def test_arbitrary_hashable_labels(self):
        g = UncertainGraph(
            edges=[("alice", "bob", 0.9), ("bob", "carol", 0.9), ("alice", "carol", 0.9)]
        )
        result = mule(g, 0.5)
        assert result.vertex_sets() == {frozenset({"alice", "bob", "carol"})}

    def test_mixed_label_types(self):
        g = UncertainGraph(edges=[(1, "x", 0.9), ("x", 2.5, 0.9), (1, 2.5, 0.9)])
        result = mule(g, 0.5)
        assert result.num_cliques == 1
        assert result.cliques[0].size == 3


class TestDeepRecursion:
    def test_large_clique_chain_does_not_hit_recursion_limit(self):
        """A certain 600-vertex clique forces a 600-deep recursion."""
        n = 600
        edges = [(u, u + 1, 1.0) for u in range(1, n)]
        # A path, not a clique (a clique would be O(n^2) edges); depth equals
        # path length only if cliques chain — use a clique on fewer vertices
        # plus this path to keep the test fast while still exceeding the
        # default recursion guard headroom of small limits.
        g = UncertainGraph(edges=edges)
        result = mule(g, 0.5)
        assert result.num_cliques == n - 1
