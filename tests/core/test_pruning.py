"""Unit tests for Shared Neighborhood Filtering (Modani & Dey pre-pruning)."""

from __future__ import annotations

import pytest

from repro.core.mule import mule
from repro.core.pruning import PruningReport, shared_neighborhood_filter
from repro.errors import ParameterError
from repro.generators.erdos_renyi import random_uncertain_graph
from repro.uncertain.graph import UncertainGraph


@pytest.fixture
def triangle_with_tail() -> UncertainGraph:
    return UncertainGraph(
        edges=[(1, 2, 0.9), (2, 3, 0.9), (1, 3, 0.9), (3, 4, 0.9), (4, 5, 0.9)]
    )


class TestFilterBehaviour:
    def test_t2_keeps_everything_with_edges(self, triangle_with_tail):
        pruned = shared_neighborhood_filter(triangle_with_tail, 2)
        assert pruned.num_edges == triangle_with_tail.num_edges

    def test_t3_keeps_only_the_triangle(self, triangle_with_tail):
        pruned = shared_neighborhood_filter(triangle_with_tail, 3)
        assert sorted(pruned.vertices()) == [1, 2, 3]
        assert pruned.num_edges == 3

    def test_t4_removes_everything(self, triangle_with_tail):
        pruned = shared_neighborhood_filter(triangle_with_tail, 4)
        assert pruned.num_vertices == 0

    def test_probabilities_preserved(self, triangle_with_tail):
        pruned = shared_neighborhood_filter(triangle_with_tail, 3)
        assert pruned.probability(1, 2) == 0.9

    def test_input_not_modified(self, triangle_with_tail):
        shared_neighborhood_filter(triangle_with_tail, 4)
        assert triangle_with_tail.num_edges == 5

    def test_invalid_threshold(self, triangle_with_tail):
        with pytest.raises(ParameterError):
            shared_neighborhood_filter(triangle_with_tail, 1)

    def test_report_counts(self, triangle_with_tail):
        report = PruningReport()
        shared_neighborhood_filter(triangle_with_tail, 3, report=report)
        assert report.rounds >= 1
        assert report.edges_removed >= 2
        assert report.vertices_removed >= 2
        assert "PruningReport" in repr(report)

    def test_cascading_removals(self):
        """Removing one layer must trigger re-evaluation of the next (fixed point)."""
        # A "fan": triangles sharing consecutive edges; t = 4 unravels it fully.
        g = UncertainGraph(
            edges=[
                (1, 2, 0.9),
                (2, 3, 0.9),
                (1, 3, 0.9),
                (3, 4, 0.9),
                (2, 4, 0.9),
                (4, 5, 0.9),
                (3, 5, 0.9),
            ]
        )
        pruned = shared_neighborhood_filter(g, 4)
        assert pruned.num_vertices == 0


class TestSafety:
    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("t", [3, 4])
    def test_filter_preserves_large_alpha_maximal_cliques(self, seed, t):
        """Filtering must not lose any α-maximal clique of size ≥ t."""
        graph = random_uncertain_graph(14, 0.55, rng=seed)
        alpha = 0.05
        full = {c for c in mule(graph, alpha).vertex_sets() if len(c) >= t}
        pruned_graph = shared_neighborhood_filter(graph, t)
        pruned_out = {
            c for c in mule(pruned_graph, alpha).vertex_sets() if len(c) >= t
        }
        assert full == pruned_out
