"""Property-based tests for possible-world semantics and counting bounds."""

from __future__ import annotations

from math import comb

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.bounds import (
    extremal_uncertain_graph,
    moon_moser_bound,
    uncertain_clique_bound,
)
from repro.core.mule import mule
from repro.uncertain.sampling import enumerate_possible_worlds, sample_possible_world

from .strategies import uncertain_graphs

RELAXED = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


class TestSamplingProperties:
    @RELAXED
    @given(graph=uncertain_graphs(max_vertices=7), seed=st.integers(0, 2**16))
    def test_sampled_world_is_a_subgraph(self, graph, seed):
        world = sample_possible_world(graph, rng=seed)
        assert set(world.vertices()) == set(graph.vertices())
        for u, v in world.edges():
            assert graph.has_edge(u, v)

    @RELAXED
    @given(graph=uncertain_graphs(max_vertices=5))
    def test_world_probabilities_form_a_distribution(self, graph):
        if graph.num_edges > 12:
            return
        total = sum(p for _, p in enumerate_possible_worlds(graph))
        assert abs(total - 1.0) <= 1e-9

    @RELAXED
    @given(graph=uncertain_graphs(max_vertices=5))
    def test_clique_probability_equals_world_mass(self, graph):
        """clq(C, G) equals the total probability of worlds where C is a clique."""
        if graph.num_edges > 12 or graph.num_vertices < 2:
            return
        vertices = sorted(graph.vertices())[:3]
        mass = sum(
            p
            for world, p in enumerate_possible_worlds(graph)
            if world.is_clique(vertices)
        )
        assert abs(mass - graph.clique_probability(vertices)) <= 1e-9


class TestBoundProperties:
    @RELAXED
    @given(n=st.integers(min_value=2, max_value=40))
    def test_uncertain_bound_is_central_binomial(self, n):
        assert uncertain_clique_bound(n, 0.5) == comb(n, n // 2)

    @RELAXED
    @given(n=st.integers(min_value=2, max_value=30))
    def test_uncertain_bound_dominates_moon_moser(self, n):
        assert uncertain_clique_bound(n, 0.5) >= moon_moser_bound(n)

    @RELAXED
    @given(
        n=st.integers(min_value=2, max_value=7),
        alpha=st.floats(min_value=0.1, max_value=0.9),
    )
    def test_extremal_graph_attains_bound(self, n, alpha):
        graph = extremal_uncertain_graph(n, alpha)
        result = mule(graph, alpha * (1 - 1e-9))
        assert result.num_cliques == uncertain_clique_bound(n, alpha)

    @RELAXED
    @given(n=st.integers(min_value=1, max_value=60))
    def test_moon_moser_recurrence(self, n):
        """Moon–Moser numbers grow by exactly 3× every 3 vertices."""
        if n <= 2:
            return
        assert moon_moser_bound(n + 3) == 3 * moon_moser_bound(n)
