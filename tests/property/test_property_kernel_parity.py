"""Cross-backend kernel parity on random graphs (hypothesis).

The vector backend must be observationally indistinguishable from the
python kernel: same emission stream (order included), bit-identical
probabilities, equal :class:`SearchStatistics` and equal
:class:`RunReport` — for every supported algorithm, under run controls,
under sharding, and on the numpy-free fallback.  The fixed-graph versions
of these checks live in ``tests/core/test_backends.py``; here hypothesis
supplies the graphs.

All five algorithms are covered: MULE, FAST-MULE and top-k drive the
vector kernel directly (``fast`` shares ``MuleStrategy``), LARGE-MULE
drives ``_drive_large``, and DFS-NOIP pins the *resolution* contract —
``auto`` must route it to the python kernel rather than accelerating the
from-scratch baseline.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api import EnumerationRequest, MiningSession
from repro.core.engine import (
    LargeCliqueStrategy,
    MuleStrategy,
    NoIncrementalStrategy,
    RunControls,
    RunReport,
    TopKStrategy,
    compile_graph,
    resolve_kernel,
    run_search,
    run_vector_search,
)
from repro.core.result import SearchStatistics

from .strategies import alphas, uncertain_graphs

RELAXED = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def _both(compiled, alpha, strategy_factory, controls=None):
    out = []
    for runner in (run_search, run_vector_search):
        stats = SearchStatistics()
        report = RunReport()
        pairs = list(
            runner(
                compiled,
                alpha,
                strategy_factory(),
                statistics=stats,
                controls=controls,
                report=report,
            )
        )
        out.append((pairs, stats, report))
    return out


def _assert_identical(compiled, alpha, strategy_factory, controls=None):
    py, vec = _both(compiled, alpha, strategy_factory, controls)
    assert vec[0] == py[0]
    assert vec[1] == py[1]
    assert vec[2].stop_reason == py[2].stop_reason
    assert vec[2].cliques_emitted == py[2].cliques_emitted
    assert vec[2].frames_expanded == py[2].frames_expanded


class TestKernelParity:
    @RELAXED
    @given(graph=uncertain_graphs(), alpha=alphas)
    def test_mule(self, graph, alpha):
        _assert_identical(compile_graph(graph, alpha=alpha), alpha, MuleStrategy)

    @RELAXED
    @given(graph=uncertain_graphs(), alpha=alphas)
    def test_mule_unpruned_compile(self, graph, alpha):
        # prune_edges=False: sub-α edges reach the kernels, exercising the
        # root-plan filter instead of the Observation 3 compile filter.
        _assert_identical(compile_graph(graph, alpha=None), alpha, MuleStrategy)

    @RELAXED
    @given(
        graph=uncertain_graphs(),
        alpha=alphas,
        threshold=st.integers(min_value=2, max_value=5),
    )
    def test_large(self, graph, alpha, threshold):
        _assert_identical(
            compile_graph(graph, alpha=alpha),
            alpha,
            lambda: LargeCliqueStrategy(threshold),
        )

    @RELAXED
    @given(
        graph=uncertain_graphs(),
        alpha=alphas,
        min_size=st.integers(min_value=1, max_value=4),
    )
    def test_top_k(self, graph, alpha, min_size):
        _assert_identical(
            compile_graph(graph, alpha=alpha),
            alpha,
            lambda: TopKStrategy(min_size=min_size),
        )

    @RELAXED
    @given(
        graph=uncertain_graphs(),
        alpha=alphas,
        max_cliques=st.integers(min_value=1, max_value=6),
    )
    def test_max_cliques_truncation(self, graph, alpha, max_cliques):
        _assert_identical(
            compile_graph(graph, alpha=alpha),
            alpha,
            MuleStrategy,
            controls=RunControls(max_cliques=max_cliques),
        )

    @RELAXED
    @given(
        graph=uncertain_graphs(),
        alpha=alphas,
        check_every=st.integers(min_value=1, max_value=17),
    )
    def test_expired_time_budget(self, graph, alpha, check_every):
        # budget=0 expires deterministically: both kernels must stop at the
        # same frame for any deadline-check cadence.
        _assert_identical(
            compile_graph(graph, alpha=alpha),
            alpha,
            MuleStrategy,
            controls=RunControls(
                time_budget_seconds=0.0, check_every_frames=check_every
            ),
        )

    @RELAXED
    @given(graph=uncertain_graphs(), alpha=alphas, mask_seed=st.integers())
    def test_sharded_roots(self, graph, alpha, mask_seed):
        compiled = compile_graph(graph, alpha=alpha)
        if compiled.n == 0:
            return
        mask = mask_seed & compiled.all_mask
        shard = compiled.restrict_roots(mask)
        _assert_identical(shard, alpha, MuleStrategy)

    @RELAXED
    @given(graph=uncertain_graphs(), alpha=alphas)
    def test_numpy_free_fallback(self, graph, alpha):
        import importlib

        module = importlib.import_module(
            "repro.core.engine.backends.vector_form"
        )
        saved = module._numpy_module
        module._numpy_module = None
        try:
            _assert_identical(
                compile_graph(graph, alpha=alpha), alpha, MuleStrategy
            )
        finally:
            module._numpy_module = saved


class TestSessionParity:
    """The request-level surface: both kernels, serial and sharded."""

    @RELAXED
    @given(graph=uncertain_graphs(min_vertices=1), alpha=alphas)
    def test_request_kernels_agree(self, graph, alpha):
        outcomes = {}
        for kernel in ("python", "vector"):
            for execution, workers in (("serial", 1), ("parallel", 2)):
                request = EnumerationRequest(
                    algorithm="mule",
                    alpha=alpha,
                    execution=execution,
                    workers=workers,
                    backend="inline",
                    kernel=kernel,
                )
                outcome = MiningSession(graph).enumerate(request)
                outcomes[(kernel, execution)] = sorted(
                    (tuple(sorted(r.vertices)), r.probability)
                    for r in outcome.records
                )
        reference = outcomes[("python", "serial")]
        assert all(value == reference for value in outcomes.values())

    def test_noip_resolution_contract(self):
        assert resolve_kernel("auto", NoIncrementalStrategy()) == "python"
        with pytest.raises(Exception):
            EnumerationRequest(algorithm="noip", alpha=0.5, kernel="vector")
