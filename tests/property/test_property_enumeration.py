"""Property-based tests for the enumeration algorithms (hypothesis).

Every property below is an invariant stated in (or directly implied by) the
paper's definitions and theorems, checked on randomly generated uncertain
graphs against the literal brute-force oracle.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.bounds import is_non_redundant_family, uncertain_clique_bound
from repro.core.brute_force import brute_force_alpha_maximal_cliques
from repro.core.dfs_noip import dfs_noip
from repro.core.large_mule import large_mule
from repro.core.mule import mule

from .strategies import alphas, uncertain_graphs

RELAXED = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


class TestDefinitionInvariants:
    @RELAXED
    @given(graph=uncertain_graphs(), alpha=alphas)
    def test_every_emitted_clique_is_an_alpha_clique(self, graph, alpha):
        for record in mule(graph, alpha):
            assert graph.clique_probability(record.vertices) >= alpha

    @RELAXED
    @given(graph=uncertain_graphs(), alpha=alphas)
    def test_every_emitted_clique_is_maximal(self, graph, alpha):
        result = mule(graph, alpha)
        emitted = result.vertex_sets()
        for clique in emitted:
            for v in graph.vertices():
                if v in clique:
                    continue
                assert graph.clique_probability(set(clique) | {v}) < alpha

    @RELAXED
    @given(graph=uncertain_graphs(), alpha=alphas)
    def test_no_duplicates_and_antichain(self, graph, alpha):
        result = mule(graph, alpha)
        assert len(result.vertex_sets()) == result.num_cliques
        assert is_non_redundant_family(result.vertex_sets())

    @RELAXED
    @given(graph=uncertain_graphs(), alpha=alphas)
    def test_recorded_probabilities_are_exact(self, graph, alpha):
        for record in mule(graph, alpha):
            exact = graph.clique_probability(record.vertices)
            assert abs(record.probability - exact) <= 1e-9 * max(1.0, exact)

    @RELAXED
    @given(graph=uncertain_graphs(), alpha=alphas)
    def test_every_vertex_belongs_to_some_clique(self, graph, alpha):
        """Each vertex is a 1-probability clique, so it must appear somewhere."""
        result = mule(graph, alpha)
        covered = set()
        for record in result:
            covered |= set(record.vertices)
        assert covered == set(graph.vertices())


class TestOracleAgreement:
    @RELAXED
    @given(graph=uncertain_graphs(max_vertices=8), alpha=alphas)
    def test_mule_equals_brute_force(self, graph, alpha):
        assert (
            mule(graph, alpha).vertex_sets()
            == brute_force_alpha_maximal_cliques(graph, alpha).vertex_sets()
        )

    @RELAXED
    @given(graph=uncertain_graphs(max_vertices=8), alpha=alphas)
    def test_dfs_noip_equals_mule(self, graph, alpha):
        assert dfs_noip(graph, alpha).vertex_sets() == mule(graph, alpha).vertex_sets()

    @RELAXED
    @given(
        graph=uncertain_graphs(max_vertices=8),
        alpha=alphas,
        threshold=st.integers(min_value=2, max_value=5),
    )
    def test_large_mule_equals_filtered_mule(self, graph, alpha, threshold):
        expected = {
            c for c in mule(graph, alpha).vertex_sets() if len(c) >= threshold
        }
        assert large_mule(graph, alpha, threshold).vertex_sets() == expected


class TestStructuralTheorems:
    @RELAXED
    @given(graph=uncertain_graphs(), alpha=alphas)
    def test_theorem1_bound_never_exceeded(self, graph, alpha):
        bound_alpha = alpha if alpha < 1.0 else 1.0
        assert mule(graph, alpha).num_cliques <= uncertain_clique_bound(
            graph.num_vertices, bound_alpha
        )

    @RELAXED
    @given(graph=uncertain_graphs(), low=alphas, high=alphas)
    def test_higher_alpha_cliques_are_subsets_of_lower_alpha_cliques(
        self, graph, low, high
    ):
        """Every α₂-maximal clique (α₂ ≥ α₁) is contained in some α₁-maximal clique."""
        if low > high:
            low, high = high, low
        low_sets = mule(graph, low).vertex_sets()
        for clique in mule(graph, high).vertex_sets():
            assert any(clique <= bigger for bigger in low_sets)

    @RELAXED
    @given(graph=uncertain_graphs(), alpha=alphas)
    def test_pruning_flag_never_changes_output(self, graph, alpha):
        from repro.core.mule import MuleConfig

        assert (
            mule(graph, alpha, config=MuleConfig(prune_edges=False)).vertex_sets()
            == mule(graph, alpha, config=MuleConfig(prune_edges=True)).vertex_sets()
        )
