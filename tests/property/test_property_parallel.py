"""Property tests: sharded parallel enumeration is bit-identical to serial MULE.

The sharding/merge machinery is exercised on the deterministic in-process
backend (the shard mathematics is identical on every backend; the process
pool is covered by the fixed-seed tests in ``tests/parallel``), at 1, 2 and
4 workers, on random Erdős–Rényi uncertain graphs.  "Bit-identical" means
the clique *sets* agree and every clique's probability compares equal with
``==`` — the incremental factor products must multiply in the same order,
which the root-subtree partition guarantees.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import StopReason
from repro.core.mule import mule
from repro.parallel import parallel_mule

from .strategies import alphas, uncertain_graphs


@settings(max_examples=60, deadline=None)
@given(graph=uncertain_graphs(max_vertices=9), alpha=alphas)
def test_parallel_matches_serial_at_1_2_4_workers(graph, alpha):
    serial = mule(graph, alpha)
    expected = {record.vertices: record.probability for record in serial}
    for workers in (1, 2, 4):
        parallel = parallel_mule(graph, alpha, workers=workers, backend="inline")
        produced = {record.vertices: record.probability for record in parallel}
        assert produced == expected, f"workers={workers}"
        assert parallel.stop_reason == StopReason.COMPLETED


@settings(max_examples=30, deadline=None)
@given(
    graph=uncertain_graphs(min_vertices=1, max_vertices=9),
    alpha=alphas,
    num_shards=st.integers(min_value=1, max_value=12),
)
def test_output_is_invariant_under_shard_count(graph, alpha, num_shards):
    serial = mule(graph, alpha)
    parallel = parallel_mule(
        graph, alpha, workers=2, backend="inline", num_shards=num_shards
    )
    assert parallel.vertex_sets() == serial.vertex_sets()
    assert {r.vertices: r.probability for r in parallel} == {
        r.vertices: r.probability for r in serial
    }
