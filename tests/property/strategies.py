"""Hypothesis strategies shared by the property-based tests."""

from __future__ import annotations

from hypothesis import strategies as st

from repro.uncertain.graph import UncertainGraph

__all__ = ["uncertain_graphs", "probabilities", "alphas"]

#: Edge probabilities bounded away from 0 so products stay representable.
probabilities = st.floats(
    min_value=0.05, max_value=1.0, allow_nan=False, allow_infinity=False
)

#: Thresholds used by the enumeration algorithms.
alphas = st.floats(min_value=0.001, max_value=1.0, allow_nan=False, allow_infinity=False)


@st.composite
def uncertain_graphs(
    draw, *, min_vertices: int = 0, max_vertices: int = 9, max_density: float = 1.0
):
    """Generate small random uncertain graphs with integer vertices ``1..n``.

    Each possible edge is included with a drawn per-graph density and gets an
    independent probability in [0.05, 1.0].  Graphs are small enough that the
    brute-force oracle stays fast.
    """
    n = draw(st.integers(min_value=min_vertices, max_value=max_vertices))
    graph = UncertainGraph(vertices=range(1, n + 1))
    if n >= 2:
        density = draw(st.floats(min_value=0.0, max_value=max_density))
        for u in range(1, n + 1):
            for v in range(u + 1, n + 1):
                if draw(st.floats(min_value=0.0, max_value=1.0)) < density:
                    graph.add_edge(u, v, draw(probabilities))
    return graph
