"""Property-based tests for the graph substrates and probability engine."""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.clique_probability import extension_factor
from repro.uncertain.io import from_json, to_json
from repro.uncertain.operations import prune_edges_below_alpha

from .strategies import alphas, uncertain_graphs

RELAXED = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


class TestGraphInvariants:
    @RELAXED
    @given(graph=uncertain_graphs())
    def test_degree_sum_equals_twice_edges(self, graph):
        assert sum(graph.degree(v) for v in graph.vertices()) == 2 * graph.num_edges

    @RELAXED
    @given(graph=uncertain_graphs())
    def test_expected_degree_at_most_degree(self, graph):
        for v in graph.vertices():
            assert graph.expected_degree(v) <= graph.degree(v) + 1e-9

    @RELAXED
    @given(graph=uncertain_graphs())
    def test_skeleton_preserves_counts(self, graph):
        skeleton = graph.skeleton()
        assert skeleton.num_vertices == graph.num_vertices
        assert skeleton.num_edges == graph.num_edges

    @RELAXED
    @given(graph=uncertain_graphs())
    def test_relabeling_preserves_structure(self, graph):
        relabeled, forward, backward = graph.relabeled()
        assert relabeled.num_vertices == graph.num_vertices
        assert relabeled.num_edges == graph.num_edges
        for u, v, p in graph.edges():
            assert relabeled.probability(forward[u], forward[v]) == p
        assert all(backward[forward[v]] == v for v in graph.vertices())

    @RELAXED
    @given(graph=uncertain_graphs())
    def test_json_round_trip_identity(self, graph):
        assert from_json(to_json(graph)) == graph


class TestCliqueProbabilityProperties:
    @RELAXED
    @given(graph=uncertain_graphs(), alpha=alphas)
    def test_monotonicity_under_subsets(self, graph, alpha):
        """Observation 2: subsets of a vertex set have at least its probability."""
        vertices = sorted(graph.vertices())
        if len(vertices) < 3:
            return
        big = vertices[:4]
        small = big[:-1]
        assert graph.clique_probability(small) >= graph.clique_probability(big)

    @RELAXED
    @given(graph=uncertain_graphs())
    def test_extension_factor_identity(self, graph):
        """clq(C ∪ {v}) == clq(C) · factor(C, v) for every vertex pair sample."""
        vertices = sorted(graph.vertices())
        if len(vertices) < 3:
            return
        base = vertices[:2]
        for v in vertices[2:5]:
            lhs = graph.clique_probability(base + [v])
            rhs = graph.clique_probability(base) * extension_factor(graph, base, v)
            assert abs(lhs - rhs) <= 1e-12

    @RELAXED
    @given(graph=uncertain_graphs())
    def test_probability_bounds(self, graph):
        vertices = sorted(graph.vertices())
        assert 0.0 <= graph.clique_probability(vertices[:3]) <= 1.0


class TestPruningProperties:
    @RELAXED
    @given(graph=uncertain_graphs(), alpha=alphas)
    def test_pruning_is_idempotent(self, graph, alpha):
        once = prune_edges_below_alpha(graph, alpha)
        twice = prune_edges_below_alpha(once, alpha)
        assert once == twice

    @RELAXED
    @given(graph=uncertain_graphs(), alpha=alphas)
    def test_pruning_never_adds_edges(self, graph, alpha):
        pruned = prune_edges_below_alpha(graph, alpha)
        assert pruned.num_edges <= graph.num_edges
        for u, v, p in pruned.edges():
            assert graph.probability(u, v) == p
            assert p >= alpha

    @RELAXED
    @given(graph=uncertain_graphs(), alpha=alphas)
    def test_pruning_preserves_alpha_clique_status(self, graph, alpha):
        """Observation 3: no α-clique is lost or created by pruning."""
        pruned = prune_edges_below_alpha(graph, alpha)
        vertices = sorted(graph.vertices())
        for size in (2, 3):
            subset = vertices[:size]
            if len(subset) < size:
                continue
            assert (graph.clique_probability(subset) >= alpha) == (
                pruned.clique_probability(subset) >= alpha
            )
