"""Engine parity: all strategies agree on every graph (hypothesis + golden).

The tentpole guarantee of the engine refactor is that the four enumeration
strategies — MULE, the non-incremental baseline, LARGE-MULE and top-k — and
the legacy public wrappers all enumerate **exactly** the same α-maximal
cliques with identical probabilities.  The properties below check that on
random uncertain graphs; the golden test pins the worked example by hand.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.dfs_noip import dfs_noip
from repro.core.engine import (
    LargeCliqueStrategy,
    MuleStrategy,
    NoIncrementalStrategy,
    TopKStrategy,
    compile_graph,
    run_search,
)
from repro.core.fast_mule import fast_mule
from repro.core.large_mule import large_mule
from repro.core.mule import mule
from repro.core.top_k import top_k_maximal_cliques
from repro.uncertain.graph import UncertainGraph

from .strategies import alphas, uncertain_graphs

RELAXED = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def _run(graph, alpha, strategy, **compile_kwargs):
    """Run the kernel directly and return {clique: probability}."""
    compiled = compile_graph(graph, alpha=alpha, **compile_kwargs)
    return dict(run_search(compiled, alpha, strategy))


class TestStrategyParity:
    @RELAXED
    @given(graph=uncertain_graphs(), alpha=alphas)
    def test_incremental_and_baseline_strategies_agree(self, graph, alpha):
        """MuleStrategy and NoIncrementalStrategy: same cliques, same probabilities."""
        if graph.num_vertices == 0:
            return
        by_mule = _run(graph, alpha, MuleStrategy())
        by_noip = _run(graph, alpha, NoIncrementalStrategy())
        assert set(by_mule) == set(by_noip)
        for clique, probability in by_mule.items():
            assert by_noip[clique] == pytest.approx(probability)

    @RELAXED
    @given(
        graph=uncertain_graphs(),
        alpha=alphas,
        threshold=st.integers(min_value=2, max_value=5),
    )
    def test_large_strategy_is_filtered_mule(self, graph, alpha, threshold):
        if graph.num_vertices == 0:
            return
        by_mule = _run(graph, alpha, MuleStrategy())
        by_large = _run(
            graph,
            alpha,
            LargeCliqueStrategy(threshold),
            size_threshold=threshold,
        )
        expected = {c: p for c, p in by_mule.items() if len(c) >= threshold}
        assert set(by_large) == set(expected)
        for clique, probability in expected.items():
            assert by_large[clique] == pytest.approx(probability)

    @RELAXED
    @given(
        graph=uncertain_graphs(),
        alpha=alphas,
        min_size=st.integers(min_value=1, max_value=4),
    )
    def test_top_k_strategy_is_size_filtered_mule(self, graph, alpha, min_size):
        if graph.num_vertices == 0:
            return
        by_mule = _run(graph, alpha, MuleStrategy())
        by_top_k = _run(graph, alpha, TopKStrategy(min_size=min_size))
        assert set(by_top_k) == {c for c in by_mule if len(c) >= min_size}


class TestWrapperParity:
    @RELAXED
    @given(graph=uncertain_graphs(), alpha=alphas)
    def test_all_full_enumeration_wrappers_agree(self, graph, alpha):
        """mule, fast_mule and dfs_noip: identical sets and probabilities."""
        results = [mule(graph, alpha), fast_mule(graph, alpha), dfs_noip(graph, alpha)]
        reference = {r.vertices: r.probability for r in results[0]}
        for result in results[1:]:
            assert result.vertex_sets() == set(reference)
            for record in result:
                assert record.probability == pytest.approx(
                    reference[record.vertices]
                )

    @RELAXED
    @given(
        graph=uncertain_graphs(),
        alpha=alphas,
        threshold=st.integers(min_value=2, max_value=5),
    )
    def test_large_mule_wrapper_agrees(self, graph, alpha, threshold):
        expected = {
            c for c in mule(graph, alpha).vertex_sets() if len(c) >= threshold
        }
        assert large_mule(graph, alpha, threshold).vertex_sets() == expected


class TestWorkedExample:
    """Golden test: the 5-vertex worked example, solved by hand.

    Edges: 1–2 (0.8), 1–3 (0.9), 2–3 (0.7), 2–4 (0.6), 3–4 (0.9), 4–5 (0.5).

    At α = 0.25 the α-maximal cliques are
      {1,2,3} with clq = 0.8·0.9·0.7 = 0.504,
      {2,3,4} with clq = 0.7·0.6·0.9 = 0.378,
      {4,5}   with clq = 0.5
    ({1,2,3,4} requires the absent edge 1–4; every pair inside the triangles
    is non-maximal because its triangle stays above α).

    At α = 0.45 the triangle {2,3,4} falls below the threshold and splits:
      {1,2,3} (0.504), {3,4} (0.9), {2,4} (0.6), {4,5} (0.5).
    """

    @pytest.fixture
    def worked_example(self) -> UncertainGraph:
        return UncertainGraph(
            edges=[
                (1, 2, 0.8),
                (1, 3, 0.9),
                (2, 3, 0.7),
                (2, 4, 0.6),
                (3, 4, 0.9),
                (4, 5, 0.5),
            ]
        )

    EXPECTED_LOW = {
        frozenset({1, 2, 3}): 0.504,
        frozenset({2, 3, 4}): 0.378,
        frozenset({4, 5}): 0.5,
    }
    EXPECTED_HIGH = {
        frozenset({1, 2, 3}): 0.504,
        frozenset({3, 4}): 0.9,
        frozenset({2, 4}): 0.6,
        frozenset({4, 5}): 0.5,
    }

    @pytest.mark.parametrize(
        "alpha,expected",
        [(0.25, "EXPECTED_LOW"), (0.45, "EXPECTED_HIGH")],
    )
    @pytest.mark.parametrize("runner", [mule, fast_mule, dfs_noip])
    def test_full_enumerators_match_hand_solution(
        self, worked_example, alpha, expected, runner
    ):
        expected = getattr(self, expected)
        result = runner(worked_example, alpha)
        assert result.vertex_sets() == set(expected)
        for record in result:
            assert record.probability == pytest.approx(
                expected[record.vertices]
            )

    def test_large_mule_matches_hand_solution(self, worked_example):
        result = large_mule(worked_example, 0.25, 3)
        assert result.vertex_sets() == {
            frozenset({1, 2, 3}),
            frozenset({2, 3, 4}),
        }

    def test_top_k_matches_hand_solution(self, worked_example):
        top2 = top_k_maximal_cliques(worked_example, 2, 0.25)
        assert [r.vertices for r in top2] == [
            frozenset({1, 2, 3}),
            frozenset({4, 5}),
        ]
        assert top2[0].probability == pytest.approx(0.504)
        assert top2[1].probability == pytest.approx(0.5)
