"""Unit tests for the shard planner."""

from __future__ import annotations

import pytest

from repro.core.engine import compile_graph
from repro.errors import ParameterError
from repro.parallel import Shard, ShardPlanner, plan_shards
from repro.uncertain.graph import UncertainGraph


def star(center: int, leaves: range, p: float = 0.9) -> list[tuple]:
    return [(center, leaf, p) for leaf in leaves]


class TestShardPlanner:
    def test_rejects_non_positive_shard_count(self):
        with pytest.raises(ParameterError):
            ShardPlanner(0)

    def test_empty_graph_plans_no_shards(self):
        compiled = compile_graph(UncertainGraph())
        assert ShardPlanner(4).plan(compiled) == []

    def test_partition_is_exact(self, random_graph_factory):
        compiled = compile_graph(random_graph_factory(20, density=0.4, seed=5))
        shards = ShardPlanner(4).plan(compiled)
        union = 0
        for shard in shards:
            assert union & shard.root_mask == 0, "shards overlap"
            union |= shard.root_mask
        assert union == compiled.all_mask

    def test_no_empty_shards_even_when_over_provisioned(self):
        graph = UncertainGraph(vertices=[1, 2, 3])
        shards = ShardPlanner(10).plan(compile_graph(graph))
        assert len(shards) == 3
        assert all(len(shard) == 1 for shard in shards)

    def test_roots_match_mask(self, random_graph_factory):
        compiled = compile_graph(random_graph_factory(15, density=0.5, seed=1))
        for shard in ShardPlanner(3).plan(compiled):
            assert sum(1 << v for v in shard.roots) == shard.root_mask
            assert list(shard.roots) == sorted(shard.roots)

    def test_hub_does_not_drag_everything_into_one_shard(self):
        # Vertex 0 (label 1) is a hub over 20 higher leaves; the remaining
        # roots must land in the other shard rather than riding with it.
        graph = UncertainGraph(edges=star(1, range(2, 22)))
        shards = ShardPlanner(2).plan(compile_graph(graph))
        hub_shard = next(s for s in shards if 0 in s.roots)
        other = next(s for s in shards if 0 not in s.roots)
        assert len(other) > len(hub_shard)

    def test_weights_balanced_on_random_graph(self, random_graph_factory):
        compiled = compile_graph(random_graph_factory(30, density=0.5, seed=9))
        shards = ShardPlanner(4).plan(compiled)
        weights = [shard.weight for shard in shards]
        # LPT guarantees the heaviest shard is within one max-item of the
        # mean; for this graph a loose 2x spread bound suffices.
        assert max(weights) <= 2 * max(1, min(weights))

    def test_respects_existing_root_restriction(self, random_graph_factory):
        compiled = compile_graph(random_graph_factory(12, density=0.5, seed=3))
        restricted = compiled.restrict_roots(0b111)
        shards = ShardPlanner(2).plan(restricted)
        union = 0
        for shard in shards:
            union |= shard.root_mask
        assert union == 0b111

    def test_plan_is_deterministic(self, random_graph_factory):
        compiled = compile_graph(random_graph_factory(20, density=0.4, seed=2))
        assert ShardPlanner(4).plan(compiled) == ShardPlanner(4).plan(compiled)

    def test_plan_shards_convenience_wrapper(self, random_graph_factory):
        compiled = compile_graph(random_graph_factory(10, density=0.4, seed=2))
        assert plan_shards(compiled, 3) == ShardPlanner(3).plan(compiled)

    def test_shard_is_sized(self):
        shard = Shard(index=0, root_mask=0b101, roots=(0, 2), weight=7)
        assert len(shard) == 2
