"""Unit tests for the sharded parallel runner."""

from __future__ import annotations

import pytest

from repro.core.engine import RunControls, StopReason, compile_graph
from repro.core.mule import mule
from repro.errors import ParameterError
from repro.parallel import ShardPlanner, parallel_mule, run_shards
from repro.parallel.runner import _merge_stop_reasons, _process_backend_available
from repro.uncertain.graph import UncertainGraph


def records_by_vertices(result):
    return {record.vertices: record.probability for record in result}


class TestParallelMuleInline:
    """Shard/merge correctness on the deterministic in-process backend."""

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_identical_to_serial(self, random_graph_factory, workers):
        graph = random_graph_factory(18, density=0.5, seed=11)
        serial = mule(graph, 0.1)
        parallel = parallel_mule(graph, 0.1, workers=workers, backend="inline")
        assert records_by_vertices(parallel) == records_by_vertices(serial)
        assert parallel.stop_reason == StopReason.COMPLETED
        assert parallel.algorithm == "parallel-mule"

    def test_statistics_are_merged(self, random_graph_factory):
        graph = random_graph_factory(15, density=0.5, seed=4)
        serial = mule(graph, 0.2)
        parallel = parallel_mule(graph, 0.2, workers=4, backend="inline")
        # Root candidates are partitioned across shards, so the merged
        # candidate count matches serial exactly; each shard expands the
        # root frame once, so recursive_calls grows by (shards - 1).
        assert (
            parallel.statistics.candidates_examined
            == serial.statistics.candidates_examined
        )
        assert parallel.statistics.recursive_calls >= serial.statistics.recursive_calls

    def test_empty_graph(self):
        result = parallel_mule(UncertainGraph(), 0.5, workers=4)
        assert len(result) == 0
        assert result.stop_reason == StopReason.COMPLETED

    def test_singleton_graph(self):
        result = parallel_mule(UncertainGraph(vertices=["a"]), 0.5, workers=4)
        assert [sorted(r.vertices) for r in result] == [["a"]]

    def test_invalid_workers(self, triangle):
        with pytest.raises(ParameterError):
            parallel_mule(triangle, 0.5, workers=0)

    def test_invalid_backend(self, triangle):
        with pytest.raises(ParameterError):
            parallel_mule(triangle, 0.5, workers=2, backend="threads")

    def test_num_shards_override_does_not_change_output(self, random_graph_factory):
        graph = random_graph_factory(16, density=0.5, seed=8)
        serial = mule(graph, 0.15)
        for num_shards in (1, 3, 7, 16, 40):
            parallel = parallel_mule(
                graph, 0.15, workers=2, backend="inline", num_shards=num_shards
            )
            assert records_by_vertices(parallel) == records_by_vertices(serial)

    def test_max_cliques_caps_merged_output(self, random_graph_factory):
        graph = random_graph_factory(15, density=0.6, seed=6)
        full = mule(graph, 0.1)
        assert full.num_cliques > 5
        capped = parallel_mule(
            graph,
            0.1,
            workers=2,
            backend="inline",
            controls=RunControls(max_cliques=5),
        )
        assert capped.num_cliques == 5
        assert capped.stop_reason == StopReason.MAX_CLIQUES
        assert capped.truncated
        # Every retained clique is genuinely alpha-maximal (a subset of the
        # full output), even though the prefix is sorted, not depth-first.
        assert capped.vertex_sets() <= full.vertex_sets()

    def test_exhausted_time_budget_flags_truncation(self, random_graph_factory):
        graph = random_graph_factory(20, density=0.6, seed=3)
        result = parallel_mule(
            graph,
            0.05,
            workers=2,
            backend="inline",
            controls=RunControls(time_budget_seconds=0.0, check_every_frames=1),
        )
        assert result.stop_reason == StopReason.TIME_BUDGET
        assert result.truncated

    def test_generous_controls_complete(self, two_cliques):
        serial = mule(two_cliques, 0.5)
        parallel = parallel_mule(
            two_cliques,
            0.5,
            workers=2,
            backend="inline",
            controls=RunControls(max_cliques=10_000, time_budget_seconds=60.0),
        )
        assert records_by_vertices(parallel) == records_by_vertices(serial)
        assert parallel.stop_reason == StopReason.COMPLETED


@pytest.mark.skipif(
    not _process_backend_available(), reason="fork start method unavailable"
)
class TestParallelMuleProcesses:
    """The real ProcessPoolExecutor path (fork platforms only)."""

    @pytest.mark.parametrize("workers", [2, 4])
    def test_identical_to_serial(self, random_graph_factory, workers):
        graph = random_graph_factory(25, density=0.4, seed=13)
        serial = mule(graph, 0.1)
        parallel = parallel_mule(graph, 0.1, workers=workers, backend="process")
        assert records_by_vertices(parallel) == records_by_vertices(serial)
        assert parallel.stop_reason == StopReason.COMPLETED

    def test_auto_backend_matches_serial(self, random_graph_factory):
        graph = random_graph_factory(20, density=0.5, seed=21)
        serial = mule(graph, 0.15)
        parallel = parallel_mule(graph, 0.15, workers=2)
        assert records_by_vertices(parallel) == records_by_vertices(serial)

    def test_string_labels_cross_process(self):
        graph = UncertainGraph(
            edges=[("a", "b", 0.9), ("b", "c", 0.9), ("a", "c", 0.9), ("c", "d", 0.4)]
        )
        serial = mule(graph, 0.5)
        parallel = parallel_mule(graph, 0.5, workers=2, backend="process")
        assert records_by_vertices(parallel) == records_by_vertices(serial)


class TestRunShards:
    def test_outcomes_arrive_in_shard_order(self, random_graph_factory):
        graph = random_graph_factory(14, density=0.5, seed=2)
        compiled = compile_graph(graph, alpha=0.2)
        shards = ShardPlanner(4).plan(compiled)
        outcomes = run_shards(compiled, 0.2, shards, workers=1)
        assert [outcome.shard.index for outcome in outcomes] == [
            shard.index for shard in shards
        ]

    def test_shards_emit_disjoint_cliques(self, random_graph_factory):
        graph = random_graph_factory(16, density=0.5, seed=7)
        compiled = compile_graph(graph, alpha=0.15)
        shards = ShardPlanner(4).plan(compiled)
        outcomes = run_shards(compiled, 0.15, shards, workers=1)
        seen = set()
        for outcome in outcomes:
            for members, _ in outcome.pairs:
                assert members not in seen
                seen.add(members)
        assert seen == mule(graph, 0.15).vertex_sets()

    def test_each_shard_reports_its_own_stop_reason(self, random_graph_factory):
        graph = random_graph_factory(14, density=0.6, seed=5)
        compiled = compile_graph(graph, alpha=0.1)
        shards = ShardPlanner(2).plan(compiled)
        outcomes = run_shards(
            compiled,
            0.1,
            shards,
            workers=1,
            controls=RunControls(max_cliques=1),
        )
        assert all(
            outcome.report.stop_reason
            in (StopReason.MAX_CLIQUES, StopReason.COMPLETED)
            for outcome in outcomes
        )


class TestMergeStopReasons:
    def test_completed_when_all_complete(self):
        assert _merge_stop_reasons(["completed", "completed"]) == StopReason.COMPLETED

    def test_time_budget_dominates(self):
        assert (
            _merge_stop_reasons(["completed", "max-cliques", "time-budget"])
            == StopReason.TIME_BUDGET
        )

    def test_max_cliques_propagates(self):
        assert (
            _merge_stop_reasons(["completed", "max-cliques"])
            == StopReason.MAX_CLIQUES
        )

    def test_cancelled_dominates_every_other_reason(self):
        # Historically a cancelled shard collapsed to COMPLETED because the
        # merge only special-cased TIME_BUDGET; cancellation is the
        # strongest reason and must survive any mix.
        assert (
            _merge_stop_reasons(
                ["completed", "max-cliques", "cancelled", "time-budget"]
            )
            == StopReason.CANCELLED
        )

    def test_cap_trim_does_not_mask_cancellation(self):
        from repro.parallel.runner import _strongest

        assert (
            _strongest(StopReason.CANCELLED, StopReason.MAX_CLIQUES)
            == StopReason.CANCELLED
        )

    def test_unknown_reason_is_never_downgraded(self):
        assert _merge_stop_reasons(["completed", "wedged"]) == "wedged"


class TestStopReasonPrecedence:
    def test_time_budget_survives_merged_cap_trim(self, random_graph_factory):
        # A run that hit the time budget must not be relabelled max-cliques
        # by the merged-output trim: its output is not the cap-bounded set.
        graph = random_graph_factory(20, density=0.6, seed=3)
        result = parallel_mule(
            graph,
            0.05,
            workers=2,
            backend="inline",
            controls=RunControls(
                max_cliques=1, time_budget_seconds=0.0, check_every_frames=6
            ),
        )
        assert result.truncated
        assert result.stop_reason == StopReason.TIME_BUDGET
        assert result.num_cliques <= 1


class TestShardingIsStrategyAgnostic:
    def test_custom_strategy_honours_root_mask(self, random_graph_factory):
        # The kernel, not the strategy, enforces the shard restriction: a
        # strategy that overrides descend without any shard-awareness still
        # produces a duplicate-free union across shards.
        from repro.core.engine import MuleStrategy, run_search
        from repro.core.engine.kernel import run_search as kernel_run

        class PlainStrategy(MuleStrategy):
            algorithm = "custom-no-shard-code"

            def descend(self, state, u, clique):
                return MuleStrategy.descend(self, state, u, clique)

        graph = random_graph_factory(14, density=0.5, seed=31)
        compiled = compile_graph(graph, alpha=0.1)
        full = {m: p for m, p in run_search(compiled, 0.1, PlainStrategy())}
        merged = {}
        half = (1 << (compiled.n // 2)) - 1
        for mask in (half, compiled.all_mask ^ half):
            for members, probability in kernel_run(
                compiled.restrict_roots(mask), 0.1, PlainStrategy()
            ):
                assert members not in merged
                merged[members] = probability
        assert merged == full


class TestPrecompiledForwarding:
    """parallel_mule(compiled=...) skips every compilation (satellite of the
    session-API PR: the artifact is adopted by the session and shipped to
    the shard workers as-is)."""

    def test_precompiled_parity(self, random_graph_factory):
        graph = random_graph_factory(16, density=0.5, seed=13)
        precompiled = compile_graph(graph, alpha=0.1)
        reference = parallel_mule(graph, 0.1, workers=2, backend="inline")
        result = parallel_mule(
            graph, 0.1, workers=2, backend="inline", compiled=precompiled
        )
        assert records_by_vertices(result) == records_by_vertices(reference)
        assert result.statistics == reference.statistics

    def test_precompiled_skips_compilation(self, random_graph_factory, monkeypatch):
        graph = random_graph_factory(12, density=0.5, seed=14)
        precompiled = compile_graph(graph, alpha=0.2)
        expected = mule(graph, 0.2).num_cliques
        monkeypatch.setattr(
            "repro.api.cache.compile_graph",
            lambda *args, **kwargs: pytest.fail(
                "parallel_mule(compiled=...) must not compile"
            ),
        )
        result = parallel_mule(
            graph, 0.2, workers=2, backend="inline", compiled=precompiled
        )
        assert result.num_cliques == expected

    def test_parallel_enumerate_is_compile_free(self, random_graph_factory):
        from repro.parallel import parallel_enumerate

        graph = random_graph_factory(12, density=0.5, seed=15)
        compiled = compile_graph(graph, alpha=0.1)
        records, statistics, stop_reason = parallel_enumerate(
            compiled, 0.1, workers=2, backend="inline"
        )
        serial = mule(graph, 0.1)
        assert {r.vertices: r.probability for r in records} == records_by_vertices(
            serial
        )
        assert stop_reason == StopReason.COMPLETED
        assert statistics.candidates_examined == serial.statistics.candidates_examined
