"""Unit tests for the metric instruments and the registry seam.

Everything here runs against *private* :class:`MetricsRegistry`
instances so the process-global seam (which the instrumented modules
write to) is never perturbed.  Observed values are exact binary
fractions throughout, so float equality is deliberate.
"""

from __future__ import annotations

import math
import threading

import pytest

from repro.errors import ParameterError
from repro.obs import (
    DEFAULT_LATENCY_BUCKETS,
    MetricsRegistry,
    registry,
    render_prometheus,
    set_registry,
)


@pytest.fixture
def reg():
    return MetricsRegistry(enabled=True)


class TestCounter:
    def test_inc_accumulates(self, reg):
        c = reg.counter("http_requests_total", "Requests.")
        c.inc()
        c.inc(2.0)
        assert c.value() == 3.0

    def test_never_incremented_reads_zero(self, reg):
        assert reg.counter("jobs_noop_total", "Never touched.").value() == 0.0

    def test_decrease_is_rejected(self, reg):
        c = reg.counter("http_requests_total", "Requests.")
        with pytest.raises(ParameterError, match="cannot decrease"):
            c.inc(-1.0)

    def test_labelled_series_are_independent(self, reg):
        c = reg.counter("http_requests_total", "Requests.", labelnames=("code",))
        c.labels(code=200).inc(3.0)
        c.labels(code=500).inc()
        assert c.value(code=200) == 3.0
        assert c.value(code=500) == 1.0
        assert c.collect() == {
            "http_requests_total{code=200}": 3.0,
            "http_requests_total{code=500}": 1.0,
        }

    def test_unlabelled_call_on_labelled_counter_is_rejected(self, reg):
        c = reg.counter("http_requests_total", "Requests.", labelnames=("code",))
        with pytest.raises(ParameterError, match="use .labels"):
            c.inc()

    def test_wrong_label_set_is_rejected(self, reg):
        c = reg.counter("http_requests_total", "Requests.", labelnames=("code",))
        with pytest.raises(ParameterError, match="takes labels"):
            c.labels(status=200)

    def test_concurrent_increments_do_not_lose_updates(self, reg):
        c = reg.counter("jobs_hammer_total", "Contended counter.")

        def worker():
            for _ in range(1000):
                c.inc()

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert c.value() == 8000.0


class TestGauge:
    def test_set_inc_dec(self, reg):
        g = reg.gauge("sched_queue_depth", "Depth.")
        g.set(5.0)
        g.inc(2.0)
        g.dec()
        assert g.value() == 6.0

    def test_labelled_gauge(self, reg):
        g = reg.gauge("dist_workers", "Workers.", labelnames=("state",))
        g.labels(state="healthy").set(3.0)
        g.labels(state="failed").set(1.0)
        assert g.collect() == {
            "dist_workers{state=failed}": 1.0,
            "dist_workers{state=healthy}": 3.0,
        }


class TestHistogram:
    def test_bucket_assignment_and_overflow(self, reg):
        h = reg.histogram("http_lap_seconds", "Laps.", buckets=(0.25, 0.5, 1.0))
        for value in (0.125, 0.25, 0.375, 2.0):
            h.observe(value)
        (series,) = h.collect().values()
        # Edges are inclusive upper bounds; 2.0 lands in the +Inf bucket.
        assert series["counts"] == [2, 1, 0, 1]
        assert series["count"] == 4
        assert series["sum"] == 2.75
        assert series["bounds"] == [0.25, 0.5, 1.0]

    def test_quantiles_are_pure_functions_of_counts(self, reg):
        h = reg.histogram("http_lap_seconds", "Laps.", buckets=(0.25, 0.5, 1.0))
        g = reg.histogram("jobs_lap_seconds", "Laps.", buckets=(0.25, 0.5, 1.0))
        for value in (0.125, 0.375, 0.375, 0.75):
            h.observe(value)
        # Different raw values, same buckets -> identical quantiles.
        for value in (0.0625, 0.3125, 0.4375, 0.625):
            g.observe(value)
        assert h.quantile(0.5) == g.quantile(0.5)
        assert h.quantile(0.99) == g.quantile(0.99)

    def test_overflow_quantile_is_clamped_to_last_edge(self, reg):
        h = reg.histogram("http_lap_seconds", "Laps.", buckets=(0.25, 0.5))
        h.observe(100.0)
        assert h.quantile(0.99) == 0.5

    def test_empty_histogram_quantile_is_zero(self, reg):
        h = reg.histogram("http_lap_seconds", "Laps.")
        assert h.quantile(0.5) == 0.0
        assert h.collect() == {}

    def test_quantile_out_of_range_is_rejected(self, reg):
        h = reg.histogram("http_lap_seconds", "Laps.")
        with pytest.raises(ParameterError, match="quantile"):
            h.quantile(1.5)

    def test_bounds_must_increase(self, reg):
        with pytest.raises(ParameterError, match="strictly increasing"):
            reg.histogram("http_bad_seconds", "Bad.", buckets=(0.5, 0.5))
        with pytest.raises(ParameterError, match="at least one bucket"):
            reg.histogram("http_none_seconds", "Bad.", buckets=())

    def test_default_buckets_span_millis_to_ten_seconds(self):
        assert DEFAULT_LATENCY_BUCKETS[0] == 0.001
        assert DEFAULT_LATENCY_BUCKETS[-1] == 10.0
        assert list(DEFAULT_LATENCY_BUCKETS) == sorted(DEFAULT_LATENCY_BUCKETS)


class TestRegistry:
    def test_registration_is_idempotent(self, reg):
        first = reg.counter("http_requests_total", "Requests.")
        second = reg.counter("http_requests_total", "Requests.")
        assert first is second

    def test_conflicting_reregistration_raises(self, reg):
        reg.counter("http_requests_total", "Requests.")
        with pytest.raises(ParameterError, match="already registered"):
            reg.gauge("http_requests_total", "Requests.")
        with pytest.raises(ParameterError, match="already registered"):
            reg.counter("http_requests_total", "Requests.", labelnames=("code",))

    def test_bad_names_are_rejected(self, reg):
        with pytest.raises(ParameterError, match="snake_case"):
            reg.counter("HttpRequests", "Camels.")
        with pytest.raises(ParameterError, match="snake_case"):
            reg.counter("http_ok_total", "Bad label.", labelnames=("Code",))

    def test_snapshot_shape(self, reg):
        reg.counter("http_requests_total", "Requests.").inc(2.0)
        reg.gauge("sched_queue_depth", "Depth.").set(1.0)
        reg.histogram("http_lap_seconds", "Laps.", buckets=(1.0,)).observe(0.5)
        snap = reg.snapshot()
        assert set(snap) == {"counters", "gauges", "histograms"}
        assert snap["counters"] == {"http_requests_total": 2.0}
        assert snap["gauges"] == {"sched_queue_depth": 1.0}
        assert snap["histograms"]["http_lap_seconds"]["counts"] == [1, 0]

    def test_reset_zeroes_series_but_keeps_registrations(self, reg):
        c = reg.counter("http_requests_total", "Requests.")
        c.inc()
        reg.reset()
        assert c.value() == 0.0
        assert reg.get("http_requests_total") is c

    def test_disabled_registry_is_a_noop(self):
        reg = MetricsRegistry(enabled=False)
        c = reg.counter("http_requests_total", "Requests.")
        h = reg.histogram("http_lap_seconds", "Laps.")
        g = reg.gauge("sched_queue_depth", "Depth.")
        c.inc()
        h.observe(0.5)
        g.set(9.0)
        assert reg.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}
        reg.set_enabled(True)
        c.inc()
        assert c.value() == 1.0

    def test_env_gate_disables_new_registries(self, monkeypatch):
        monkeypatch.setenv("REPRO_DISABLE_METRICS", "1")
        assert MetricsRegistry().enabled is False
        monkeypatch.setenv("REPRO_DISABLE_METRICS", "0")
        assert MetricsRegistry().enabled is True

    def test_global_seam_swap(self):
        original = registry()
        try:
            replacement = MetricsRegistry(enabled=True)
            assert set_registry(replacement) is replacement
            assert registry() is replacement
        finally:
            set_registry(original)
        assert registry() is original


class TestPrometheusRendering:
    def test_counter_gauge_and_histogram_lines(self, reg):
        c = reg.counter("http_requests_total", "Requests.", labelnames=("code",))
        c.labels(code=200).inc(3.0)
        reg.gauge("sched_queue_depth", "Depth.").set(2.0)
        h = reg.histogram("http_lap_seconds", "Laps.", buckets=(0.25, 0.5))
        h.observe(0.125)
        h.observe(2.0)
        text = render_prometheus(reg)
        lines = text.splitlines()
        assert "# TYPE http_requests_total counter" in lines
        assert 'http_requests_total{code="200"} 3' in lines
        assert "sched_queue_depth 2" in lines
        # Cumulative buckets: 0.125 <= 0.25, 2.0 overflows to +Inf.
        assert 'http_lap_seconds_bucket{le="0.25"} 1' in lines
        assert 'http_lap_seconds_bucket{le="0.5"} 1' in lines
        assert 'http_lap_seconds_bucket{le="+Inf"} 2' in lines
        assert "http_lap_seconds_sum 2.125" in lines
        assert "http_lap_seconds_count 2" in lines
        assert text.endswith("\n")

    def test_label_values_are_escaped(self, reg):
        c = reg.counter("http_requests_total", "Requests.", labelnames=("path",))
        c.labels(path='a"b').inc()
        assert 'path="a\\"b"' in render_prometheus(reg)

    def test_histogram_bucket_counts_are_cumulative_and_finite(self, reg):
        h = reg.histogram("http_lap_seconds", "Laps.", buckets=(0.25, 0.5, 1.0))
        for value in (0.125, 0.375, 0.75, 4.0):
            h.observe(value)
        (series,) = h.collect().values()
        cumulative = 0
        for count in series["counts"]:
            cumulative += count
        assert cumulative == series["count"] == 4
        assert all(math.isfinite(edge) for edge in series["bounds"])
