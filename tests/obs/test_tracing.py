"""Unit tests for span tracing and the Chrome trace-event export."""

from __future__ import annotations

import json
import threading

from repro.obs import (
    Tracer,
    chrome_trace_events,
    set_tracer,
    tracer,
    trace_span,
    write_chrome_trace,
)


class TestSpans:
    def test_nesting_builds_a_tree(self):
        t = Tracer()
        with t.span("request", endpoint="/v1/enumerate") as root:
            with t.span("decode"):
                pass
            with t.span("run") as run:
                with t.span("encode"):
                    pass
        assert root.name == "request"
        assert [child.name for child in root.children] == ["decode", "run"]
        assert [child.name for child in run.children] == ["encode"]
        assert root.tree_size() == 4
        assert root.attrs == {"endpoint": "/v1/enumerate"}

    def test_durations_are_monotone(self):
        t = Tracer()
        with t.span("outer") as outer:
            with t.span("inner") as inner:
                pass
        assert outer.duration >= inner.duration >= 0.0

    def test_only_roots_are_recorded(self):
        t = Tracer()
        with t.span("root"):
            with t.span("child"):
                pass
        assert [span.name for span in t.roots()] == ["root"]

    def test_root_retention_is_bounded(self):
        t = Tracer(max_roots=3)
        for i in range(5):
            with t.span(f"r{i}"):
                pass
        assert [span.name for span in t.roots()] == ["r2", "r3", "r4"]

    def test_disabled_tracer_yields_none(self):
        t = Tracer(enabled=False)
        with t.span("request") as span:
            assert span is None
        assert t.roots() == []
        t.set_enabled(True)
        with t.span("request") as span:
            assert span is not None

    def test_span_survives_exceptions(self):
        t = Tracer()
        try:
            with t.span("boom"):
                raise RuntimeError("planted")
        except RuntimeError:
            pass
        (root,) = t.roots()
        assert root.end >= root.start

    def test_threads_trace_independently(self):
        t = Tracer()

        def worker(tag):
            with t.span(tag):
                pass

        threads = [
            threading.Thread(target=worker, args=(f"t{i}",)) for i in range(4)
        ]
        with t.span("main"):
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        names = sorted(span.name for span in t.roots())
        # Worker spans are roots of their own threads, not children of
        # the main-thread span.
        assert names == ["main", "t0", "t1", "t2", "t3"]
        main = next(span for span in t.roots() if span.name == "main")
        assert main.children == []


class TestSinks:
    def test_sinks_see_finished_roots(self):
        t = Tracer()
        seen = []
        t.add_sink(seen.append)
        with t.span("request"):
            pass
        assert [span.name for span in seen] == ["request"]

    def test_broken_sink_is_swallowed(self):
        t = Tracer()

        def explode(_span):
            raise OSError("disk full")

        t.add_sink(explode)
        with t.span("request"):
            pass
        assert len(t.roots()) == 1

    def test_remove_sink(self):
        t = Tracer()
        seen = []
        t.add_sink(seen.append)
        t.remove_sink(seen.append)
        with t.span("request"):
            pass
        assert seen == []


class TestChromeExport:
    def test_events_flatten_the_tree(self):
        t = Tracer()
        with t.span("request", endpoint="/v1/metrics") as root:
            with t.span("render"):
                pass
        events = chrome_trace_events(root)
        assert [event["name"] for event in events] == ["request", "render"]
        assert all(event["ph"] == "X" for event in events)
        assert events[0]["args"] == {"endpoint": "/v1/metrics"}
        assert events[0]["dur"] >= events[1]["dur"]

    def test_write_chrome_trace_is_loadable_json(self, tmp_path):
        t = Tracer()
        with t.span("a") as a:
            pass
        with t.span("b") as b:
            pass
        path = tmp_path / "trace.json"
        write_chrome_trace(path, [a, b])
        payload = json.loads(path.read_text(encoding="utf-8"))
        assert payload["displayTimeUnit"] == "ms"
        assert [event["name"] for event in payload["traceEvents"]] == ["a", "b"]


class TestGlobalSeam:
    def test_trace_span_uses_the_global_tracer(self):
        original = tracer()
        replacement = Tracer()
        try:
            set_tracer(replacement)
            with trace_span("request") as span:
                assert span is not None
            assert [root.name for root in replacement.roots()] == ["request"]
        finally:
            set_tracer(original)
