"""Unit tests for uncertain-graph operations (pruning, components, filtering)."""

from __future__ import annotations

import pytest

from repro.errors import ProbabilityError
from repro.uncertain.graph import UncertainGraph
from repro.uncertain.operations import (
    connected_components,
    filter_edges,
    largest_component,
    neighborhood_subgraph,
    prune_edges_below_alpha,
    prune_isolated_vertices,
)


class TestAlphaPruning:
    def test_drops_only_light_edges(self, triangle):
        pruned = prune_edges_below_alpha(triangle, 0.5)
        assert pruned.num_edges == 3
        assert not pruned.has_edge(3, 4)

    def test_keeps_vertices_by_default(self, triangle):
        pruned = prune_edges_below_alpha(triangle, 0.5)
        assert pruned.num_vertices == 4

    def test_drop_isolated(self, triangle):
        pruned = prune_edges_below_alpha(triangle, 0.5, drop_isolated=True)
        assert pruned.num_vertices == 3

    def test_threshold_is_inclusive(self):
        g = UncertainGraph(edges=[(1, 2, 0.5)])
        assert prune_edges_below_alpha(g, 0.5).num_edges == 1

    def test_original_not_modified(self, triangle):
        prune_edges_below_alpha(triangle, 0.99)
        assert triangle.num_edges == 4

    def test_invalid_alpha(self, triangle):
        with pytest.raises(ProbabilityError):
            prune_edges_below_alpha(triangle, 0.0)
        with pytest.raises(ProbabilityError):
            prune_edges_below_alpha(triangle, 1.5)

    def test_observation3_preserves_alpha_cliques(self, two_cliques):
        """Pruning must not change which vertex sets are α-cliques."""
        alpha = 0.5
        pruned = prune_edges_below_alpha(two_cliques, alpha)
        for subset in [{1, 2, 3}, {4, 5, 6}, {1, 2}, {3, 4}]:
            original = two_cliques.clique_probability(subset) >= alpha
            after = pruned.clique_probability(subset) >= alpha
            assert original == after


class TestIsolatedAndFilter:
    def test_prune_isolated_vertices(self):
        g = UncertainGraph(edges=[(1, 2, 0.5)], vertices=[3, 4])
        pruned = prune_isolated_vertices(g)
        assert sorted(pruned.vertices()) == [1, 2]

    def test_filter_edges_by_predicate(self, path_graph):
        heavy = filter_edges(path_graph, lambda u, v, p: p >= 0.6)
        assert heavy.num_edges == 2
        assert heavy.num_vertices == path_graph.num_vertices


class TestNeighborhoodSubgraph:
    def test_ego_network_includes_center(self, triangle):
        ego = neighborhood_subgraph(triangle, 3)
        assert sorted(ego.vertices()) == [1, 2, 3, 4]

    def test_ego_network_without_center(self, triangle):
        ego = neighborhood_subgraph(triangle, 3, include_center=False)
        assert 3 not in ego.vertices()
        assert sorted(ego.vertices()) == [1, 2, 4]


class TestComponents:
    def test_connected_components(self, two_cliques):
        components = connected_components(two_cliques)
        assert len(components) == 1  # joined by the weak 3-4 edge

    def test_components_after_pruning(self, two_cliques):
        pruned = prune_edges_below_alpha(two_cliques, 0.5)
        components = sorted(connected_components(pruned), key=lambda c: min(c))
        assert components == [{1, 2, 3}, {4, 5, 6}]

    def test_isolated_vertices_are_components(self):
        g = UncertainGraph(edges=[(1, 2, 0.5)], vertices=[7])
        components = connected_components(g)
        assert {7} in components

    def test_largest_component(self):
        g = UncertainGraph(
            edges=[(1, 2, 0.5), (2, 3, 0.5), (10, 11, 0.5)]
        )
        largest = largest_component(g)
        assert sorted(largest.vertices()) == [1, 2, 3]

    def test_largest_component_empty_graph(self):
        assert largest_component(UncertainGraph()).num_vertices == 0
