"""Unit tests for the UncertainGraph data structure."""

from __future__ import annotations

import math

import pytest

from repro.errors import EdgeError, ProbabilityError, VertexError
from repro.uncertain.graph import UncertainGraph, validate_probability


class TestValidateProbability:
    @pytest.mark.parametrize("p", [1e-9, 0.25, 0.5, 1.0])
    def test_valid_values_pass_through(self, p):
        assert validate_probability(p) == pytest.approx(p)

    @pytest.mark.parametrize("p", [0.0, -0.1, 1.0001, 5])
    def test_out_of_range_rejected(self, p):
        with pytest.raises(ProbabilityError):
            validate_probability(p)

    @pytest.mark.parametrize("p", [float("nan"), float("inf"), float("-inf")])
    def test_non_finite_rejected(self, p):
        with pytest.raises(ProbabilityError):
            validate_probability(p)

    def test_non_numeric_rejected(self):
        with pytest.raises(ProbabilityError):
            validate_probability("high")

    def test_integer_one_accepted(self):
        assert validate_probability(1) == 1.0


class TestConstruction:
    def test_empty(self):
        g = UncertainGraph()
        assert g.num_vertices == 0
        assert g.num_edges == 0
        assert g.num_possible_worlds == 1

    def test_edges_create_vertices(self):
        g = UncertainGraph(edges=[(1, 2, 0.5), (2, 3, 0.25)])
        assert g.num_vertices == 3
        assert g.num_edges == 2
        assert g.num_possible_worlds == 4

    def test_self_loop_rejected(self):
        with pytest.raises(EdgeError):
            UncertainGraph(edges=[(1, 1, 0.5)])

    def test_invalid_probability_rejected(self):
        with pytest.raises(ProbabilityError):
            UncertainGraph(edges=[(1, 2, 0.0)])
        with pytest.raises(ProbabilityError):
            UncertainGraph(edges=[(1, 2, 1.5)])

    def test_readding_edge_overwrites_probability(self):
        g = UncertainGraph(edges=[(1, 2, 0.5)])
        g.add_edge(1, 2, 0.75)
        assert g.probability(1, 2) == 0.75
        assert g.num_edges == 1


class TestQueries:
    def test_probability_symmetric(self):
        g = UncertainGraph(edges=[(1, 2, 0.6)])
        assert g.probability(1, 2) == 0.6
        assert g.probability(2, 1) == 0.6

    def test_probability_missing_edge(self):
        g = UncertainGraph(edges=[(1, 2, 0.6)])
        with pytest.raises(EdgeError):
            g.probability(1, 3)

    def test_probability_or_default(self):
        g = UncertainGraph(edges=[(1, 2, 0.6)])
        assert g.probability_or(1, 3) == 0.0
        assert g.probability_or(9, 10, default=-1.0) == -1.0

    def test_neighbors_and_degree(self):
        g = UncertainGraph(edges=[(1, 2, 0.5), (1, 3, 0.5)])
        assert g.neighbors(1) == {2, 3}
        assert g.degree(1) == 2
        assert g.degree(3) == 1

    def test_neighbor_probabilities_is_copy(self):
        g = UncertainGraph(edges=[(1, 2, 0.5)])
        mapping = g.neighbor_probabilities(1)
        mapping[2] = 0.1
        assert g.probability(1, 2) == 0.5

    def test_missing_vertex_raises(self):
        g = UncertainGraph()
        with pytest.raises(VertexError):
            g.neighbors(1)
        with pytest.raises(VertexError):
            g.degree(1)
        with pytest.raises(VertexError):
            g.expected_degree(1)

    def test_expected_degree(self):
        g = UncertainGraph(edges=[(1, 2, 0.5), (1, 3, 0.25)])
        assert g.expected_degree(1) == pytest.approx(0.75)

    def test_edges_iteration_unique(self):
        g = UncertainGraph(edges=[(1, 2, 0.5), (2, 3, 0.4)])
        edges = list(g.edges())
        assert len(edges) == 2
        assert all(len(e) == 3 for e in edges)

    def test_common_neighbors(self):
        g = UncertainGraph(edges=[(1, 3, 0.5), (2, 3, 0.5), (1, 4, 0.5), (2, 4, 0.5)])
        assert g.common_neighbors(1, 2) == {3, 4}

    def test_container_protocol(self):
        g = UncertainGraph(edges=[(1, 2, 0.5)])
        assert 1 in g
        assert 5 not in g
        assert len(g) == 2
        assert set(iter(g)) == {1, 2}

    def test_equality(self):
        a = UncertainGraph(edges=[(1, 2, 0.5)])
        b = UncertainGraph(edges=[(2, 1, 0.5)])
        c = UncertainGraph(edges=[(1, 2, 0.6)])
        assert a == b
        assert a != c


class TestCliqueProbability:
    def test_empty_and_singleton(self):
        g = UncertainGraph(vertices=[1])
        assert g.clique_probability([]) == 1.0
        assert g.clique_probability([1]) == 1.0

    def test_observation_one_product(self):
        g = UncertainGraph(edges=[(1, 2, 0.5), (1, 3, 0.5), (2, 3, 0.5)])
        assert g.clique_probability([1, 2, 3]) == pytest.approx(0.125)

    def test_missing_edge_gives_zero(self):
        g = UncertainGraph(edges=[(1, 2, 0.5), (2, 3, 0.5)])
        assert g.clique_probability([1, 2, 3]) == 0.0

    def test_observation_two_monotonicity(self):
        g = UncertainGraph(
            edges=[(1, 2, 0.9), (1, 3, 0.8), (2, 3, 0.7), (1, 4, 0.6), (2, 4, 0.6), (3, 4, 0.6)]
        )
        assert g.clique_probability([1, 2]) >= g.clique_probability([1, 2, 3])
        assert g.clique_probability([1, 2, 3]) >= g.clique_probability([1, 2, 3, 4])

    def test_is_alpha_clique(self):
        g = UncertainGraph(edges=[(1, 2, 0.5)])
        assert g.is_alpha_clique([1, 2], 0.5)
        assert not g.is_alpha_clique([1, 2], 0.51)

    def test_is_alpha_clique_validates_alpha(self):
        g = UncertainGraph(edges=[(1, 2, 0.5)])
        with pytest.raises(ProbabilityError):
            g.is_alpha_clique([1, 2], 0.0)

    def test_unknown_vertex_raises(self):
        g = UncertainGraph(edges=[(1, 2, 0.5)])
        with pytest.raises(VertexError):
            g.clique_probability([1, 99])


class TestDerivedGraphs:
    def test_skeleton_preserves_structure(self, triangle):
        skeleton = triangle.skeleton()
        assert skeleton.num_vertices == triangle.num_vertices
        assert skeleton.num_edges == triangle.num_edges
        assert skeleton.has_edge(3, 4)

    def test_subgraph(self, triangle):
        sub = triangle.subgraph([1, 2, 3])
        assert sub.num_vertices == 3
        assert sub.num_edges == 3
        assert sub.probability(1, 2) == 0.9

    def test_copy_independent(self, triangle):
        clone = triangle.copy()
        clone.add_edge(1, 4, 0.5)
        assert not triangle.has_edge(1, 4)

    def test_relabeled_round_trip(self):
        g = UncertainGraph(edges=[("x", "y", 0.4), ("y", "z", 0.6)])
        relabeled, forward, backward = g.relabeled()
        assert sorted(relabeled.vertices()) == [1, 2, 3]
        for original, new in forward.items():
            assert backward[new] == original
        assert relabeled.probability(forward["x"], forward["y"]) == 0.4

    def test_remove_edge_and_vertex(self):
        g = UncertainGraph(edges=[(1, 2, 0.5), (2, 3, 0.5)])
        g.remove_edge(1, 2)
        assert not g.has_edge(1, 2)
        g.remove_vertex(2)
        assert g.num_vertices == 2
        assert g.num_edges == 0

    def test_remove_missing_raises(self):
        g = UncertainGraph(edges=[(1, 2, 0.5)])
        with pytest.raises(EdgeError):
            g.remove_edge(1, 3)
        with pytest.raises(VertexError):
            g.remove_vertex(42)


class TestSummaries:
    def test_density(self):
        g = UncertainGraph(edges=[(1, 2, 0.5), (2, 3, 0.5), (1, 3, 0.5)])
        assert g.density() == pytest.approx(1.0)

    def test_expected_num_edges(self, path_graph):
        assert path_graph.expected_num_edges() == pytest.approx(0.9 + 0.7 + 0.5 + 0.3)

    def test_probability_extremes(self, path_graph):
        assert path_graph.min_probability() == pytest.approx(0.3)
        assert path_graph.max_probability() == pytest.approx(0.9)

    def test_probability_extremes_empty_graph(self):
        g = UncertainGraph(vertices=[1])
        assert g.min_probability() == 1.0
        assert g.max_probability() == 1.0

    def test_repr(self, triangle):
        assert "n=4" in repr(triangle)
        assert "m=4" in repr(triangle)
