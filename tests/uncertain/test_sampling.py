"""Unit tests for possible-world sampling and exact world enumeration."""

from __future__ import annotations

import random

import pytest

from repro.errors import ParameterError
from repro.uncertain.graph import UncertainGraph
from repro.uncertain.sampling import (
    enumerate_possible_worlds,
    estimate_clique_probability,
    sample_possible_world,
    sample_possible_worlds,
    world_probability,
)


class TestSampleWorld:
    def test_world_has_same_vertices(self, triangle):
        world = sample_possible_world(triangle, rng=1)
        assert set(world.vertices()) == set(triangle.vertices())

    def test_world_edges_subset_of_possible(self, triangle):
        world = sample_possible_world(triangle, rng=2)
        for u, v in world.edges():
            assert triangle.has_edge(u, v)

    def test_certain_edges_always_present(self):
        g = UncertainGraph(edges=[(1, 2, 1.0), (2, 3, 1.0)])
        for seed in range(5):
            world = sample_possible_world(g, rng=seed)
            assert world.num_edges == 2

    def test_seeded_sampling_is_reproducible(self, triangle):
        first = sample_possible_world(triangle, rng=42)
        second = sample_possible_world(triangle, rng=42)
        assert first == second

    def test_accepts_random_instance(self, triangle):
        rng = random.Random(7)
        world = sample_possible_world(triangle, rng=rng)
        assert world.num_vertices == 4

    def test_sample_many(self, triangle):
        worlds = list(sample_possible_worlds(triangle, 10, rng=3))
        assert len(worlds) == 10

    def test_negative_count_rejected(self, triangle):
        with pytest.raises(ParameterError):
            list(sample_possible_worlds(triangle, -1))


class TestEnumerateWorlds:
    def test_number_of_worlds(self):
        g = UncertainGraph(edges=[(1, 2, 0.5), (2, 3, 0.25)])
        worlds = list(enumerate_possible_worlds(g))
        assert len(worlds) == 4

    def test_probabilities_sum_to_one(self, path_graph):
        total = sum(p for _, p in enumerate_possible_worlds(path_graph))
        assert total == pytest.approx(1.0)

    def test_single_edge_probabilities(self):
        g = UncertainGraph(edges=[(1, 2, 0.25)])
        by_edges = {world.num_edges: p for world, p in enumerate_possible_worlds(g)}
        assert by_edges[1] == pytest.approx(0.25)
        assert by_edges[0] == pytest.approx(0.75)

    def test_refuses_large_graphs(self):
        g = UncertainGraph(
            edges=[(i, i + 1, 0.5) for i in range(1, 30)]
        )
        with pytest.raises(ParameterError):
            list(enumerate_possible_worlds(g, max_edges=20))

    def test_exact_clique_probability_matches_world_sum(self, two_cliques):
        """Σ P(world) over worlds where C is a clique equals clq(C, G)."""
        target = {1, 2, 3}
        total = sum(
            p
            for world, p in enumerate_possible_worlds(two_cliques)
            if world.is_clique(target)
        )
        assert total == pytest.approx(two_cliques.clique_probability(target))


class TestWorldProbability:
    def test_full_world(self):
        g = UncertainGraph(edges=[(1, 2, 0.5), (2, 3, 0.4)])
        world = sample_possible_world(g, rng=0)
        p = world_probability(g, world)
        assert 0.0 <= p <= 1.0

    def test_empty_world_probability(self):
        g = UncertainGraph(edges=[(1, 2, 0.5), (2, 3, 0.4)])
        from repro.deterministic.graph import Graph

        empty = Graph(vertices=[1, 2, 3])
        assert world_probability(g, empty) == pytest.approx(0.5 * 0.6)

    def test_impossible_world_is_zero(self):
        g = UncertainGraph(edges=[(1, 2, 0.5)], vertices=[3])
        from repro.deterministic.graph import Graph

        impossible = Graph(edges=[(1, 3)])
        assert world_probability(g, impossible) == 0.0

    def test_world_probabilities_match_enumeration(self):
        g = UncertainGraph(edges=[(1, 2, 0.3), (1, 3, 0.7), (2, 3, 0.5)])
        for world, p in enumerate_possible_worlds(g):
            assert world_probability(g, world) == pytest.approx(p)


class TestMonteCarloEstimate:
    def test_estimate_close_to_exact(self, two_cliques):
        exact = two_cliques.clique_probability({1, 2, 3})
        estimate = estimate_clique_probability(
            two_cliques, {1, 2, 3}, samples=4000, rng=11
        )
        assert estimate == pytest.approx(exact, abs=0.05)

    def test_certain_clique_estimated_as_one(self):
        g = UncertainGraph(edges=[(1, 2, 1.0), (2, 3, 1.0), (1, 3, 1.0)])
        assert estimate_clique_probability(g, {1, 2, 3}, samples=50, rng=0) == 1.0

    def test_invalid_sample_count(self, triangle):
        with pytest.raises(ParameterError):
            estimate_clique_probability(triangle, {1, 2}, samples=0)
