"""Tests for UncertainGraph.fingerprint — the session cache key."""

from __future__ import annotations

from repro.uncertain.graph import UncertainGraph


def test_fingerprint_is_stable_hex_digest(triangle):
    fp = triangle.fingerprint()
    assert isinstance(fp, str)
    assert len(fp) == 64
    int(fp, 16)  # hex
    assert triangle.fingerprint() == fp  # deterministic across calls


class TestEqConsistency:
    """Graphs that compare equal must fingerprint equal."""

    def test_insertion_order_invariance(self):
        a = UncertainGraph(edges=[(1, 2, 0.5), (2, 3, 0.25), (1, 3, 0.75)])
        b = UncertainGraph(edges=[(1, 3, 0.75), (2, 3, 0.25), (1, 2, 0.5)])
        assert a == b
        assert a.fingerprint() == b.fingerprint()

    def test_edge_direction_invariance(self):
        a = UncertainGraph(edges=[(1, 2, 0.5)])
        b = UncertainGraph(edges=[(2, 1, 0.5)])
        assert a == b
        assert a.fingerprint() == b.fingerprint()

    def test_vertex_insertion_order_invariance(self):
        a = UncertainGraph(vertices=[3, 1, 2])
        b = UncertainGraph(vertices=[1, 2, 3])
        assert a == b
        assert a.fingerprint() == b.fingerprint()

    def test_copy_preserves_fingerprint(self, two_cliques):
        assert two_cliques.copy().fingerprint() == two_cliques.fingerprint()

    def test_mutate_then_undo_restores_fingerprint(self, triangle):
        fp = triangle.fingerprint()
        triangle.add_edge(1, 4, 0.6)
        assert triangle.fingerprint() != fp
        triangle.remove_edge(1, 4)
        assert triangle.fingerprint() == fp


class TestSensitivity:
    """Different graph content must produce different fingerprints."""

    def test_different_probability(self):
        a = UncertainGraph(edges=[(1, 2, 0.5)])
        b = UncertainGraph(edges=[(1, 2, 0.5000001)])
        assert a != b
        assert a.fingerprint() != b.fingerprint()

    def test_different_edge_set(self):
        a = UncertainGraph(edges=[(1, 2, 0.5), (2, 3, 0.5)])
        b = UncertainGraph(edges=[(1, 2, 0.5), (1, 3, 0.5)])
        assert a.fingerprint() != b.fingerprint()

    def test_isolated_vertices_count(self):
        a = UncertainGraph(edges=[(1, 2, 0.5)])
        b = UncertainGraph(vertices=[3], edges=[(1, 2, 0.5)])
        assert a.fingerprint() != b.fingerprint()

    def test_empty_vs_single_vertex(self):
        assert UncertainGraph().fingerprint() != UncertainGraph(vertices=[0]).fingerprint()

    def test_string_labels(self):
        a = UncertainGraph(edges=[("u", "v", 0.5)])
        b = UncertainGraph(edges=[("u", "w", 0.5)])
        assert a.fingerprint() != b.fingerprint()

    def test_non_orderable_labels_are_supported(self):
        a = UncertainGraph(edges=[(1, "x", 0.5)])
        b = UncertainGraph(edges=[("x", 1, 0.5)])
        assert a.fingerprint() == b.fingerprint()

    def test_cross_type_numeric_labels_hash_by_value(self):
        # Dict keys compare 1 == 1.0 == True, so these graphs are == and
        # must fingerprint identically (the shared-cache key contract).
        a = UncertainGraph(edges=[(1, 2, 0.5)])
        b = UncertainGraph(edges=[(1.0, 2, 0.5)])
        c = UncertainGraph(edges=[(True, 2, 0.5)])
        assert a == b == c
        assert a.fingerprint() == b.fingerprint() == c.fingerprint()

    def test_non_integral_floats_stay_distinct(self):
        assert (
            UncertainGraph(vertices=[1.5]).fingerprint()
            != UncertainGraph(vertices=[1]).fingerprint()
        )
