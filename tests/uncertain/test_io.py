"""Unit tests for uncertain-graph serialization (edge list, JSON, networkx)."""

from __future__ import annotations

import json

import pytest

from repro.errors import FormatError
from repro.uncertain.graph import UncertainGraph
from repro.uncertain.io import (
    from_json,
    from_networkx,
    read_edge_list,
    read_json,
    to_json,
    to_networkx,
    write_edge_list,
    write_json,
)


class TestEdgeListFormat:
    def test_round_trip(self, tmp_path, triangle):
        path = tmp_path / "graph.edges"
        write_edge_list(triangle, path)
        loaded = read_edge_list(path, vertex_type=int)
        assert loaded == triangle

    def test_round_trip_preserves_isolated_vertices(self, tmp_path):
        g = UncertainGraph(edges=[(1, 2, 0.5)], vertices=[7])
        path = tmp_path / "iso.edges"
        write_edge_list(g, path)
        loaded = read_edge_list(path, vertex_type=int)
        assert loaded.has_vertex(7)
        assert loaded.num_vertices == 3

    def test_comments_and_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "manual.edges"
        path.write_text("# a comment\n\n1 2 0.5\n  \n2 3 0.75\n", encoding="utf-8")
        graph = read_edge_list(path, vertex_type=int)
        assert graph.num_edges == 2

    def test_string_vertices_by_default(self, tmp_path):
        path = tmp_path / "strings.edges"
        path.write_text("alice bob 0.9\n", encoding="utf-8")
        graph = read_edge_list(path)
        assert graph.has_edge("alice", "bob")

    def test_malformed_line_raises(self, tmp_path):
        path = tmp_path / "bad.edges"
        path.write_text("1 2\n", encoding="utf-8")
        with pytest.raises(FormatError):
            read_edge_list(path)

    def test_bad_probability_raises(self, tmp_path):
        path = tmp_path / "badp.edges"
        path.write_text("1 2 high\n", encoding="utf-8")
        with pytest.raises(FormatError):
            read_edge_list(path)

    def test_bad_vertex_type_raises(self, tmp_path):
        path = tmp_path / "badv.edges"
        path.write_text("a b 0.5\n", encoding="utf-8")
        with pytest.raises(FormatError):
            read_edge_list(path, vertex_type=int)


class TestJsonFormat:
    def test_round_trip_in_memory(self, two_cliques):
        assert from_json(to_json(two_cliques)) == two_cliques

    def test_round_trip_on_disk(self, tmp_path, path_graph):
        path = tmp_path / "graph.json"
        write_json(path_graph, path)
        assert read_json(path) == path_graph

    def test_payload_shape(self, triangle):
        payload = to_json(triangle)
        assert set(payload) == {"vertices", "edges"}
        assert len(payload["edges"]) == triangle.num_edges
        json.dumps(payload)  # must be JSON-serialisable

    def test_missing_edges_key_raises(self):
        with pytest.raises(FormatError):
            from_json({"vertices": [1, 2]})

    def test_malformed_edge_entry_raises(self):
        with pytest.raises(FormatError):
            from_json({"vertices": [], "edges": [[1, 2]]})

    def test_invalid_json_file_raises(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(FormatError):
            read_json(path)


class TestNetworkxInterop:
    def test_round_trip(self, two_cliques):
        nxg = to_networkx(two_cliques)
        back = from_networkx(nxg)
        assert back == two_cliques

    def test_probability_attribute_name(self, triangle):
        nxg = to_networkx(triangle, probability_attr="weight")
        assert nxg.edges[1, 2]["weight"] == 0.9
        back = from_networkx(nxg, probability_attr="weight")
        assert back == triangle

    def test_missing_attribute_uses_default(self):
        import networkx as nx

        nxg = nx.Graph()
        nxg.add_edge("a", "b")
        graph = from_networkx(nxg, default=0.25)
        assert graph.probability("a", "b") == 0.25

    def test_self_loops_skipped(self):
        import networkx as nx

        nxg = nx.Graph()
        nxg.add_edge(1, 1, probability=0.5)
        nxg.add_edge(1, 2, probability=0.5)
        graph = from_networkx(nxg)
        assert graph.num_edges == 1


class TestEdgeListStrictness:
    """Regression: unserialisable labels used to corrupt the round-trip.

    ``write_edge_list`` emitted whitespace-bearing labels unquoted (the
    reader then rejected or mis-split the line) and the reader silently
    dropped malformed ``# vertex`` records.  Both directions are strict now.
    """

    def test_whitespace_edge_label_raises_on_write(self, tmp_path):
        g = UncertainGraph(edges=[("protein A", "protein B", 0.5)])
        with pytest.raises(FormatError):
            write_edge_list(g, tmp_path / "bad.edges")

    def test_whitespace_isolated_vertex_raises_on_write(self, tmp_path):
        g = UncertainGraph(vertices=["lone vertex"])
        with pytest.raises(FormatError):
            write_edge_list(g, tmp_path / "bad.edges")

    def test_empty_label_raises_on_write(self, tmp_path):
        g = UncertainGraph(vertices=[""])
        with pytest.raises(FormatError):
            write_edge_list(g, tmp_path / "bad.edges")

    def test_hash_leading_label_raises_on_write(self, tmp_path):
        # "#x y p" would read back as a comment, silently dropping the edge.
        g = UncertainGraph(edges=[("#x", "y", 0.5)])
        with pytest.raises(FormatError):
            write_edge_list(g, tmp_path / "bad.edges")

    def test_nothing_written_when_rejected(self, tmp_path):
        g = UncertainGraph(edges=[("a b", "c", 0.5)])
        path = tmp_path / "bad.edges"
        with pytest.raises(FormatError):
            write_edge_list(g, path)
        assert not path.exists()

    def test_reader_rejects_malformed_vertex_record(self, tmp_path):
        path = tmp_path / "bad.edges"
        path.write_text("# vertex lone vertex\n1 2 0.5\n", encoding="utf-8")
        with pytest.raises(FormatError):
            read_edge_list(path)

    def test_reader_rejects_vertex_record_without_label(self, tmp_path):
        path = tmp_path / "bad.edges"
        path.write_text("# vertex\n", encoding="utf-8")
        with pytest.raises(FormatError):
            read_edge_list(path)

    def test_reader_rejects_unparseable_vertex_label(self, tmp_path):
        path = tmp_path / "bad.edges"
        path.write_text("# vertex seven\n", encoding="utf-8")
        with pytest.raises(FormatError):
            read_edge_list(path, vertex_type=int)

    def test_ordinary_comments_still_ignored(self, tmp_path):
        path = tmp_path / "ok.edges"
        path.write_text("# any old comment\n1 2 0.5\n", encoding="utf-8")
        assert read_edge_list(path, vertex_type=int).num_edges == 1

    def test_whitespace_free_string_labels_round_trip(self, tmp_path):
        g = UncertainGraph(edges=[("alpha", "beta", 0.25)], vertices=["gamma"])
        path = tmp_path / "ok.edges"
        write_edge_list(g, path)
        assert read_edge_list(path) == g
