"""Unit tests for uncertain-graph summary statistics."""

from __future__ import annotations

import pytest

from repro.uncertain.graph import UncertainGraph
from repro.uncertain.statistics import (
    degree_histogram,
    expected_degree_by_vertex,
    probability_histogram,
    summarize,
)


class TestSummarize:
    def test_counts(self, triangle):
        summary = summarize(triangle)
        assert summary.num_vertices == 4
        assert summary.num_edges == 4

    def test_degree_statistics(self, triangle):
        summary = summarize(triangle)
        assert summary.min_degree == 1
        assert summary.max_degree == 3
        assert summary.mean_degree == pytest.approx(2.0)

    def test_probability_statistics(self, triangle):
        summary = summarize(triangle)
        assert summary.min_probability == pytest.approx(0.4)
        assert summary.max_probability == pytest.approx(0.9)
        assert summary.mean_probability == pytest.approx((0.9 * 3 + 0.4) / 4)

    def test_expected_edges(self, triangle):
        assert summarize(triangle).expected_edges == pytest.approx(0.9 * 3 + 0.4)

    def test_empty_graph(self):
        summary = summarize(UncertainGraph())
        assert summary.num_vertices == 0
        assert summary.num_edges == 0
        assert summary.mean_degree == 0.0
        assert summary.mean_probability == 0.0

    def test_as_table_row(self, triangle):
        row = summarize(triangle).as_table_row(name="toy", category="test")
        assert row["Input Graph"] == "toy"
        assert row["# Vertices"] == 4
        assert row["# Edges"] == 4


class TestHistograms:
    def test_degree_histogram(self, triangle):
        assert degree_histogram(triangle) == {1: 1, 2: 2, 3: 1}

    def test_probability_histogram_totals(self, path_graph):
        histogram = probability_histogram(path_graph, bins=10)
        assert sum(histogram.values()) == path_graph.num_edges

    def test_probability_histogram_bin_labels(self, path_graph):
        histogram = probability_histogram(path_graph, bins=4)
        assert len(histogram) == 4
        assert all(label.startswith("(") for label in histogram)

    def test_probability_one_lands_in_last_bin(self):
        g = UncertainGraph(edges=[(1, 2, 1.0)])
        histogram = probability_histogram(g, bins=5)
        assert histogram["(0.80, 1.00]"] == 1

    def test_invalid_bins(self, triangle):
        with pytest.raises(ValueError):
            probability_histogram(triangle, bins=0)

    def test_expected_degree_by_vertex(self, path_graph):
        expected = expected_degree_by_vertex(path_graph)
        assert expected[1] == pytest.approx(0.9)
        assert expected[3] == pytest.approx(0.7 + 0.5)
