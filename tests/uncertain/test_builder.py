"""Unit tests for the uncertain graph builder helpers."""

from __future__ import annotations

import pytest

from repro.deterministic.graph import Graph
from repro.errors import EdgeError, ParameterError, ProbabilityError
from repro.uncertain.builder import UncertainGraphBuilder, from_edge_triples, from_skeleton


class TestBuilderBasics:
    def test_fluent_chaining(self):
        graph = (
            UncertainGraphBuilder()
            .add_edge(1, 2, 0.9)
            .add_edge(2, 3, 0.8)
            .add_vertex(4)
            .build()
        )
        assert graph.num_vertices == 4
        assert graph.num_edges == 2

    def test_add_vertices_bulk(self):
        builder = UncertainGraphBuilder().add_vertices([1, 2, 3])
        assert builder.num_vertices == 3

    def test_add_edges_bulk(self):
        graph = UncertainGraphBuilder().add_edges([(1, 2, 0.5), (3, 4, 0.6)]).build()
        assert graph.num_edges == 2

    def test_counts_before_build(self):
        builder = UncertainGraphBuilder().add_edge(1, 2, 0.5)
        assert builder.num_vertices == 2
        assert builder.num_edges == 1

    def test_invalid_probability_rejected_eagerly(self):
        with pytest.raises(ProbabilityError):
            UncertainGraphBuilder().add_edge(1, 2, 0.0)

    def test_invalid_merge_policy(self):
        with pytest.raises(ParameterError):
            UncertainGraphBuilder(merge_policy="average")


class TestMergePolicies:
    def test_error_policy_raises_on_duplicate(self):
        builder = UncertainGraphBuilder().add_edge(1, 2, 0.5)
        with pytest.raises(EdgeError):
            builder.add_edge(2, 1, 0.6)

    def test_duplicate_with_same_canonical_edge_detected(self):
        builder = UncertainGraphBuilder().add_edge(1, 2, 0.5)
        with pytest.raises(EdgeError):
            builder.add_edge(2, 1, 0.7)

    def test_keep_first(self):
        graph = (
            UncertainGraphBuilder(merge_policy="keep-first")
            .add_edge(1, 2, 0.5)
            .add_edge(1, 2, 0.9)
            .build()
        )
        assert graph.probability(1, 2) == 0.5

    def test_keep_last(self):
        graph = (
            UncertainGraphBuilder(merge_policy="keep-last")
            .add_edge(1, 2, 0.5)
            .add_edge(1, 2, 0.9)
            .build()
        )
        assert graph.probability(1, 2) == 0.9

    def test_max_policy(self):
        graph = (
            UncertainGraphBuilder(merge_policy="max")
            .add_edge(1, 2, 0.5)
            .add_edge(1, 2, 0.3)
            .build()
        )
        assert graph.probability(1, 2) == 0.5

    def test_min_policy(self):
        graph = (
            UncertainGraphBuilder(merge_policy="min")
            .add_edge(1, 2, 0.5)
            .add_edge(1, 2, 0.3)
            .build()
        )
        assert graph.probability(1, 2) == 0.3


class TestConvenienceConstructors:
    def test_from_skeleton_constant_model(self):
        skeleton = Graph(edges=[(1, 2), (2, 3)])
        graph = from_skeleton(skeleton, lambda u, v: 0.7)
        assert graph.num_edges == 2
        assert graph.probability(1, 2) == 0.7

    def test_from_skeleton_preserves_isolated_vertices(self):
        skeleton = Graph(edges=[(1, 2)], vertices=[9])
        graph = from_skeleton(skeleton, lambda u, v: 0.5)
        assert graph.has_vertex(9)

    def test_from_edge_triples(self):
        graph = from_edge_triples([(1, 2, 0.4), (2, 3, 0.6)])
        assert graph.num_edges == 2

    def test_from_edge_triples_respects_merge_policy(self):
        graph = from_edge_triples(
            [(1, 2, 0.4), (1, 2, 0.8)], merge_policy="max"
        )
        assert graph.probability(1, 2) == 0.8
