"""Unit tests for dataset caching loaders."""

from __future__ import annotations

import pytest

from repro.datasets.loaders import cache_directory, clear_cache, load_cached_dataset


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    """Point the dataset cache at a temporary directory for every test."""
    monkeypatch.setenv("REPRO_MULE_CACHE", str(tmp_path / "cache"))
    yield


class TestCacheDirectory:
    def test_created_on_demand(self, tmp_path):
        path = cache_directory()
        assert path.exists()
        assert str(path).startswith(str(tmp_path))


class TestLoadCachedDataset:
    def test_first_load_creates_cache_file(self):
        graph = load_cached_dataset("ba5000", scale=0.01, seed=1)
        assert graph.num_vertices > 0
        assert len(list(cache_directory().glob("*.edges"))) == 1

    def test_second_load_reads_identical_graph(self):
        first = load_cached_dataset("ba5000", scale=0.01, seed=1)
        second = load_cached_dataset("ba5000", scale=0.01, seed=1)
        assert first == second

    def test_refresh_regenerates(self):
        load_cached_dataset("ba5000", scale=0.01, seed=1)
        refreshed = load_cached_dataset("ba5000", scale=0.01, seed=1, refresh=True)
        assert refreshed.num_vertices > 0

    def test_distinct_parameters_use_distinct_files(self):
        load_cached_dataset("ba5000", scale=0.01, seed=1)
        load_cached_dataset("ba5000", scale=0.01, seed=2)
        load_cached_dataset("ba5000", scale=0.02, seed=1)
        assert len(list(cache_directory().glob("*.edges"))) == 3

    def test_clear_cache(self):
        load_cached_dataset("ba5000", scale=0.01, seed=1)
        load_cached_dataset("ba6000", scale=0.01, seed=1)
        removed = clear_cache()
        assert removed == 2
        assert list(cache_directory().glob("*.edges")) == []
