"""Unit tests for the dataset registry (Table 1 analogs)."""

from __future__ import annotations

import pytest

from repro.datasets.registry import DATASETS, available_datasets, load_dataset
from repro.errors import DatasetError

#: Names that Table 1 of the paper lists (our registry keys).
TABLE1_NAMES = {
    "ppi",
    "dblp10",
    "p2p-gnutella08",
    "p2p-gnutella04",
    "p2p-gnutella09",
    "ca-grqc",
    "wiki-vote",
    "ba5000",
    "ba6000",
    "ba7000",
    "ba8000",
    "ba9000",
    "ba10000",
}


class TestRegistryContents:
    def test_every_table1_graph_is_registered(self):
        assert TABLE1_NAMES <= set(available_datasets())

    def test_paper_sizes_recorded(self):
        assert DATASETS["ppi"].paper_vertices == 3751
        assert DATASETS["ppi"].paper_edges == 3692
        assert DATASETS["dblp10"].paper_vertices == 684911
        assert DATASETS["wiki-vote"].paper_edges == 103689
        assert DATASETS["ba10000"].paper_vertices == 10000

    def test_categories_match_table1(self):
        assert "Protein" in DATASETS["ppi"].category
        assert "Barabási" in DATASETS["ba5000"].category
        assert "peer-to-peer" in DATASETS["p2p-gnutella04"].category

    def test_available_datasets_sorted(self):
        names = available_datasets()
        assert names == sorted(names)


class TestLoading:
    def test_unknown_dataset(self):
        with pytest.raises(DatasetError):
            load_dataset("no-such-graph")

    def test_unknown_dataset_error_lists_available_names(self):
        with pytest.raises(DatasetError, match="available:.*ppi"):
            load_dataset("no-such-graph")

    def test_invalid_scale(self):
        with pytest.raises(DatasetError):
            load_dataset("ppi", scale=0.0)

    def test_scale_validated_before_build(self):
        # Negative, non-finite and non-numeric scales all fail fast with a
        # DatasetError — never a bare TypeError/ValueError mid-generation.
        for bad in (-1.0, float("inf"), float("nan"), "huge"):
            with pytest.raises(DatasetError):
                load_dataset("ppi", scale=bad)

    def test_case_insensitive_lookup(self):
        g = load_dataset("PPI", scale=0.05, seed=1)
        assert g.num_vertices > 0

    def test_aliases_resolve(self):
        from repro.datasets.registry import resolve_dataset_name

        assert resolve_dataset_name("dblp") == "dblp10"
        assert resolve_dataset_name("DBLP") == "dblp10"
        assert resolve_dataset_name("wikivote") == "wiki-vote"
        with pytest.raises(DatasetError):
            resolve_dataset_name("not-a-dataset")

    def test_available_datasets_exported_at_top_level(self):
        import repro

        assert repro.available_datasets() == available_datasets()
        assert "ppi" in repro.available_datasets()

    def test_scaled_vertex_counts(self):
        for name in ("ppi", "ba5000", "ca-grqc"):
            spec = DATASETS[name]
            graph = load_dataset(name, scale=0.05, seed=1)
            expected = int(round(spec.paper_vertices * 0.05))
            assert abs(graph.num_vertices - expected) <= max(10, 0.2 * expected)

    def test_deterministic_given_seed(self):
        a = load_dataset("ba5000", scale=0.02, seed=5)
        b = load_dataset("ba5000", scale=0.02, seed=5)
        assert a == b

    def test_different_seeds_differ(self):
        a = load_dataset("ba5000", scale=0.02, seed=5)
        b = load_dataset("ba5000", scale=0.02, seed=6)
        assert a != b

    @pytest.mark.parametrize("name", sorted(TABLE1_NAMES))
    def test_every_dataset_builds_at_small_scale(self, name):
        scale = 0.01 if name == "dblp10" else 0.03
        graph = load_dataset(name, scale=scale, seed=3)
        assert graph.num_vertices > 0
        assert all(0.0 < p <= 1.0 for _, _, p in graph.edges())

    def test_edge_density_regimes(self):
        """The analogs must sit in the same sparse/dense regime as the originals."""
        ppi = load_dataset("ppi", scale=0.2, seed=2)
        wiki = load_dataset("wiki-vote", scale=0.1, seed=2)
        ppi_ratio = ppi.num_edges / ppi.num_vertices
        wiki_ratio = wiki.num_edges / wiki.num_vertices
        # Real ratios: PPI ≈ 1.0, wiki-vote ≈ 14.6 — the analogs keep the ordering.
        assert ppi_ratio < 3.0
        assert wiki_ratio > 5.0
