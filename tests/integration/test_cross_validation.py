"""Integration tests: all enumerators agree on the same inputs.

These tests tie the whole stack together: generators build inputs, the
three independent enumerators (MULE, DFS-NOIP, brute force) plus the
deterministic Bron--Kerbosch oracle must produce identical outputs wherever
their domains overlap, and the verification layer must accept all of it.
"""

from __future__ import annotations

import pytest

from repro.analysis.verification import matches_deterministic_cliques, verify_result
from repro.core.brute_force import brute_force_alpha_maximal_cliques
from repro.core.dfs_noip import dfs_noip
from repro.core.large_mule import large_mule
from repro.core.mule import mule
from repro.deterministic.bron_kerbosch import enumerate_maximal_cliques
from repro.generators.erdos_renyi import erdos_renyi_skeleton, random_uncertain_graph
from repro.generators.planted import planted_clique_graph, planted_partition_graph
from repro.generators.ppi import ppi_like_graph
from repro.generators.social import collaboration_graph
from repro.uncertain.builder import from_skeleton
from repro.uncertain.graph import UncertainGraph


class TestThreeWayAgreement:
    @pytest.mark.parametrize("seed", range(15))
    def test_mule_dfsnoip_bruteforce_agree(self, seed):
        graph = random_uncertain_graph(8, 0.55, rng=seed)
        for alpha in (0.7, 0.3, 0.05):
            sets_mule = mule(graph, alpha).vertex_sets()
            sets_noip = dfs_noip(graph, alpha).vertex_sets()
            sets_brute = brute_force_alpha_maximal_cliques(graph, alpha).vertex_sets()
            assert sets_mule == sets_noip == sets_brute

    @pytest.mark.parametrize("density", [0.2, 0.5, 0.8])
    def test_agreement_across_densities(self, density):
        graph = random_uncertain_graph(9, density, rng=99)
        alpha = 0.1
        assert (
            mule(graph, alpha).vertex_sets()
            == brute_force_alpha_maximal_cliques(graph, alpha).vertex_sets()
        )

    def test_agreement_on_planted_partition(self):
        graph = planted_partition_graph(3, 4, rng=5)
        for alpha in (0.5, 0.1):
            assert mule(graph, alpha).vertex_sets() == dfs_noip(graph, alpha).vertex_sets()


class TestDeterministicDegenerateCase:
    @pytest.mark.parametrize("seed", range(6))
    def test_certain_graph_alpha_one_equals_bron_kerbosch(self, seed):
        skeleton = erdos_renyi_skeleton(14, 0.35, rng=seed)
        certain = from_skeleton(skeleton, lambda u, v: 1.0)
        result = mule(certain, 1.0)
        expected = {frozenset(c) for c in enumerate_maximal_cliques(skeleton)}
        assert result.vertex_sets() == expected
        assert matches_deterministic_cliques(certain, result)

    def test_certain_graph_any_alpha_equals_bron_kerbosch(self):
        skeleton = erdos_renyi_skeleton(12, 0.4, rng=77)
        certain = from_skeleton(skeleton, lambda u, v: 1.0)
        for alpha in (0.9, 0.5, 0.01):
            assert matches_deterministic_cliques(certain, mule(certain, alpha))


class TestLargeMuleConsistency:
    @pytest.mark.parametrize("seed", range(6))
    def test_large_mule_equals_filtered_mule_on_domain_graphs(self, seed):
        graph = collaboration_graph(40, 30, rng=seed)
        alpha, t = 0.05, 3
        full = {c for c in mule(graph, alpha).vertex_sets() if len(c) >= t}
        assert large_mule(graph, alpha, t).vertex_sets() == full


class TestPlantedStructureRecovery:
    def test_planted_cliques_recovered(self):
        graph, planted = planted_clique_graph(
            60, [5, 4], clique_probability=0.95, background_density=0.01, rng=8
        )
        alpha = 0.5
        found = mule(graph, alpha).vertex_sets()
        for clique in planted:
            # The planted clique must survive as (a subset of) a reported
            # α-maximal clique; with sparse low-probability background the
            # planted set itself is almost always the maximal one.
            assert any(clique <= reported for reported in found)

    def test_planted_communities_found_as_large_cliques(self):
        graph = planted_partition_graph(
            3, 5, intra_probability=0.95, intra_density=1.0, inter_density=0.0, rng=3
        )
        result = mule(graph, 0.5)
        sizes = sorted(record.size for record in result)
        assert sizes[-3:] == [5, 5, 5]


class TestVerificationLayerOnRealisticInputs:
    @pytest.mark.parametrize(
        "maker",
        [
            lambda: ppi_like_graph(120, rng=1),
            lambda: collaboration_graph(60, 45, rng=2),
            lambda: random_uncertain_graph(25, 0.3, rng=3),
        ],
    )
    def test_mule_output_verifies_cleanly(self, maker):
        graph = maker()
        for alpha in (0.5, 0.05):
            result = mule(graph, alpha)
            assert verify_result(graph, result) == []


class TestEndToEndFileRoundTrip:
    def test_enumeration_results_stable_across_serialization(self, tmp_path):
        from repro.uncertain.io import read_edge_list, write_edge_list

        graph = random_uncertain_graph(15, 0.4, rng=13)
        path = tmp_path / "graph.edges"
        write_edge_list(graph, path)
        reloaded = read_edge_list(path, vertex_type=int)
        assert mule(graph, 0.2).vertex_sets() == mule(reloaded, 0.2).vertex_sets()
