"""Integration tests pinning the paper's qualitative claims.

Each test corresponds to a claim made in the paper's analysis or evaluation
sections and checks the *shape* of the behaviour (who wins, what grows, what
shrinks) on CI-sized inputs.  The full-size quantitative reproduction lives
in ``benchmarks/``; these tests keep the claims true at every commit.
"""

from __future__ import annotations

import pytest

from repro.core.bounds import uncertain_clique_bound
from repro.core.dfs_noip import dfs_noip
from repro.core.large_mule import large_mule
from repro.core.mule import MuleConfig, mule
from repro.datasets.registry import load_dataset
from repro.generators.barabasi_albert import barabasi_albert_uncertain
from repro.generators.erdos_renyi import random_uncertain_graph


@pytest.fixture(scope="module")
def ba_graph():
    """A small Barabási–Albert uncertain graph (CI-sized BA5000 analog)."""
    return barabasi_albert_uncertain(150, 6, rng=42)


class TestSection4Claims:
    def test_mule_does_less_work_than_dfs_noip(self, ba_graph):
        """Figure 1's core claim, measured in probability multiplications."""
        alpha = 0.01
        work_mule = mule(ba_graph, alpha).statistics.probability_multiplications
        work_noip = dfs_noip(ba_graph, alpha).statistics.probability_multiplications
        assert work_noip > 2 * work_mule

    def test_gap_widens_as_alpha_decreases(self, ba_graph):
        """The paper reports the MULE advantage growing as α shrinks."""
        ratios = []
        for alpha in (0.5, 0.01):
            m = mule(ba_graph, alpha).statistics.probability_multiplications
            d = dfs_noip(ba_graph, alpha).statistics.probability_multiplications
            ratios.append(d / m)
        assert ratios[1] > ratios[0]

    def test_edge_pruning_reduces_search_effort(self, ba_graph):
        """Observation 3 pruning is an effort win at high α."""
        alpha = 0.8
        pruned = mule(ba_graph, alpha, config=MuleConfig(prune_edges=True))
        unpruned = mule(ba_graph, alpha, config=MuleConfig(prune_edges=False))
        assert pruned.vertex_sets() == unpruned.vertex_sets()
        assert (
            pruned.statistics.candidates_examined
            <= unpruned.statistics.candidates_examined
        )


class TestSection5Shapes:
    def test_output_size_drops_sharply_with_alpha(self, ba_graph):
        """Figure 3: the number of α-maximal cliques falls as α grows.

        The paper notes small local non-monotonicities are possible (a large
        clique can split into several smaller maximal cliques as α grows), so
        the assertion compares the low-α regime against the high-α regime
        rather than requiring strict monotonicity step by step.
        """
        counts = [mule(ba_graph, alpha).num_cliques for alpha in (0.0001, 0.01, 0.5, 0.9)]
        assert counts[0] > counts[-1]
        assert counts[1] > counts[-1]
        assert max(counts[:2]) > 1.5 * counts[-1]

    def test_search_effort_tracks_output_size(self):
        """Figure 4: runtime (here: recursive calls) grows with output size."""
        sizes = (60, 120, 180)
        points = []
        for n in sizes:
            graph = barabasi_albert_uncertain(n, 6, rng=7)
            result = mule(graph, 0.001)
            points.append((result.num_cliques, result.statistics.recursive_calls))
        points.sort()
        outputs = [p[0] for p in points]
        calls = [p[1] for p in points]
        assert outputs[0] < outputs[-1]
        assert calls == sorted(calls)

    def test_large_mule_reduces_work_as_threshold_grows(self):
        """Figures 5–6: runtime and output fall steeply with the size threshold."""
        graph = random_uncertain_graph(60, 0.25, min_edge_probability=0.3, rng=5)
        alpha = 0.01
        outputs, calls = [], []
        for t in (2, 3, 4, 5):
            result = large_mule(graph, alpha, t)
            outputs.append(result.num_cliques)
            calls.append(result.statistics.recursive_calls)
        assert outputs == sorted(outputs, reverse=True)
        assert calls[-1] <= calls[0]

    def test_dataset_analogs_enumerable_at_scale(self):
        """The Table 1 analogs stay tractable for MULE at reduced scale."""
        for name in ("ppi", "ca-grqc", "p2p-gnutella08"):
            graph = load_dataset(name, scale=0.05, seed=1)
            result = mule(graph, 0.5)
            assert result.num_cliques > 0


class TestSection3Claims:
    def test_extremal_count_exceeds_moon_moser(self):
        """The uncertain bound C(n, ⌊n/2⌋) exceeds 3^{n/3} for n ≥ 5."""
        from repro.core.bounds import moon_moser_bound

        for n in (5, 8, 11, 14):
            assert uncertain_clique_bound(n, 0.5) > moon_moser_bound(n)

    def test_no_random_graph_beats_the_bound(self):
        for seed in range(5):
            graph = random_uncertain_graph(10, 0.9, rng=seed)
            for alpha in (0.3, 0.05):
                assert mule(graph, alpha).num_cliques <= uncertain_clique_bound(10, alpha)
