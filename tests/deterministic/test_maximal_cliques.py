"""Unit tests for deterministic maximal-clique utilities."""

from __future__ import annotations

import pytest

from repro.deterministic.graph import Graph
from repro.deterministic.maximal_cliques import (
    clique_number,
    clique_size_histogram,
    count_maximal_cliques,
    is_maximal_clique,
    maximum_clique,
)


@pytest.fixture
def sample() -> Graph:
    # Two triangles sharing vertex 3 plus a pendant vertex 6.
    return Graph(edges=[(1, 2), (2, 3), (1, 3), (3, 4), (4, 5), (3, 5), (5, 6)])


class TestIsMaximalClique:
    def test_true_for_maximal_triangle(self, sample):
        assert is_maximal_clique(sample, {1, 2, 3})

    def test_false_for_extendable_edge(self, sample):
        assert not is_maximal_clique(sample, {1, 2})

    def test_false_for_non_clique(self, sample):
        assert not is_maximal_clique(sample, {1, 4})

    def test_pendant_edge_is_maximal(self, sample):
        assert is_maximal_clique(sample, {5, 6})

    def test_empty_set_only_maximal_in_empty_graph(self, sample):
        assert not is_maximal_clique(sample, set())
        assert is_maximal_clique(Graph(), set())

    def test_singleton_isolated_vertex(self):
        g = Graph(vertices=[1])
        assert is_maximal_clique(g, {1})


class TestMaximumClique:
    def test_maximum_clique_size(self, sample):
        assert len(maximum_clique(sample)) == 3

    def test_clique_number(self, sample):
        assert clique_number(sample) == 3

    def test_empty_graph(self):
        assert maximum_clique(Graph()) == frozenset()
        assert clique_number(Graph()) == 0

    def test_maximum_clique_is_a_clique(self, sample):
        assert sample.is_clique(maximum_clique(sample))


class TestHistogramsAndCounts:
    def test_size_histogram(self, sample):
        histogram = clique_size_histogram(sample)
        assert histogram == {2: 1, 3: 2}

    def test_count_matches_histogram_total(self, sample):
        assert count_maximal_cliques(sample) == sum(clique_size_histogram(sample).values())

    def test_complete_graph_single_clique(self):
        g = Graph(edges=[(u, v) for u in range(1, 5) for v in range(u + 1, 5)])
        assert count_maximal_cliques(g) == 1
        assert clique_size_histogram(g) == {4: 1}
