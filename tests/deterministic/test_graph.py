"""Unit tests for the deterministic Graph structure."""

from __future__ import annotations

import pytest

from repro.deterministic.graph import Graph, normalize_edge
from repro.errors import EdgeError, VertexError


class TestNormalizeEdge:
    def test_orders_integer_endpoints(self):
        assert normalize_edge(3, 1) == (1, 3)
        assert normalize_edge(1, 3) == (1, 3)

    def test_orders_string_endpoints(self):
        assert normalize_edge("b", "a") == ("a", "b")

    def test_mixed_types_are_deterministic(self):
        first = normalize_edge(1, "a")
        second = normalize_edge("a", 1)
        assert first == second

    def test_self_loop_rejected(self):
        with pytest.raises(EdgeError):
            normalize_edge(2, 2)


class TestConstruction:
    def test_empty_graph(self):
        g = Graph()
        assert g.num_vertices == 0
        assert g.num_edges == 0
        assert list(g.vertices()) == []
        assert list(g.edges()) == []

    def test_vertices_only(self):
        g = Graph(vertices=[1, 2, 3])
        assert g.num_vertices == 3
        assert g.num_edges == 0

    def test_edges_create_vertices(self):
        g = Graph(edges=[(1, 2), (2, 3)])
        assert g.num_vertices == 3
        assert g.num_edges == 2

    def test_duplicate_edges_collapse(self):
        g = Graph(edges=[(1, 2), (2, 1), (1, 2)])
        assert g.num_edges == 1

    def test_self_loop_rejected_on_add(self):
        g = Graph()
        with pytest.raises(EdgeError):
            g.add_edge(5, 5)

    def test_add_existing_vertex_is_noop(self):
        g = Graph(vertices=[1])
        g.add_vertex(1)
        assert g.num_vertices == 1


class TestQueries:
    def test_has_edge_symmetric(self):
        g = Graph(edges=[(1, 2)])
        assert g.has_edge(1, 2)
        assert g.has_edge(2, 1)
        assert not g.has_edge(1, 3)

    def test_neighbors(self):
        g = Graph(edges=[(1, 2), (1, 3)])
        assert g.neighbors(1) == {2, 3}
        assert g.neighbors(2) == {1}

    def test_neighbors_returns_copy(self):
        g = Graph(edges=[(1, 2)])
        nbrs = g.neighbors(1)
        nbrs.add(99)
        assert 99 not in g.neighbors(1)

    def test_neighbors_missing_vertex(self):
        g = Graph()
        with pytest.raises(VertexError):
            g.neighbors(42)

    def test_degree(self):
        g = Graph(edges=[(1, 2), (1, 3), (1, 4)])
        assert g.degree(1) == 3
        assert g.degree(4) == 1

    def test_degree_missing_vertex(self):
        with pytest.raises(VertexError):
            Graph().degree(1)

    def test_common_neighbors(self):
        g = Graph(edges=[(1, 3), (2, 3), (1, 4), (2, 4), (1, 5)])
        assert g.common_neighbors(1, 2) == {3, 4}

    def test_density_of_complete_graph(self):
        g = Graph(edges=[(1, 2), (2, 3), (1, 3)])
        assert g.density() == pytest.approx(1.0)

    def test_density_small_graphs(self):
        assert Graph().density() == 0.0
        assert Graph(vertices=[1]).density() == 0.0

    def test_edges_listed_once(self):
        g = Graph(edges=[(1, 2), (2, 3), (3, 1)])
        assert sorted(g.edges()) == [(1, 2), (1, 3), (2, 3)]

    def test_contains_len_iter(self):
        g = Graph(vertices=[1, 2])
        assert 1 in g
        assert 3 not in g
        assert len(g) == 2
        assert set(iter(g)) == {1, 2}


class TestCliquePredicate:
    def test_empty_and_singleton_are_cliques(self):
        g = Graph(vertices=[1, 2])
        assert g.is_clique([])
        assert g.is_clique([1])

    def test_triangle_is_clique(self, deterministic_square):
        assert deterministic_square.is_clique([1, 2, 3])

    def test_square_without_chord_is_not_clique(self, deterministic_square):
        assert not deterministic_square.is_clique([1, 2, 3, 4])

    def test_unknown_vertex_raises(self):
        g = Graph(edges=[(1, 2)])
        with pytest.raises(VertexError):
            g.is_clique([1, 99])


class TestMutation:
    def test_remove_edge(self):
        g = Graph(edges=[(1, 2), (2, 3)])
        g.remove_edge(1, 2)
        assert not g.has_edge(1, 2)
        assert g.num_edges == 1

    def test_remove_missing_edge_raises(self):
        g = Graph(edges=[(1, 2)])
        with pytest.raises(EdgeError):
            g.remove_edge(1, 3)

    def test_remove_vertex_removes_incident_edges(self):
        g = Graph(edges=[(1, 2), (2, 3), (1, 3)])
        g.remove_vertex(2)
        assert g.num_vertices == 2
        assert g.num_edges == 1
        assert g.has_edge(1, 3)

    def test_remove_missing_vertex_raises(self):
        with pytest.raises(VertexError):
            Graph().remove_vertex(7)


class TestDerivedGraphs:
    def test_subgraph(self):
        g = Graph(edges=[(1, 2), (2, 3), (3, 4), (1, 3)])
        sub = g.subgraph([1, 2, 3])
        assert sub.num_vertices == 3
        assert sub.num_edges == 3

    def test_subgraph_ignores_unknown_vertices(self):
        g = Graph(edges=[(1, 2)])
        sub = g.subgraph([1, 2, 99])
        assert sub.num_vertices == 2

    def test_copy_is_independent(self):
        g = Graph(edges=[(1, 2)])
        h = g.copy()
        h.add_edge(2, 3)
        assert g.num_edges == 1
        assert h.num_edges == 2

    def test_equality(self):
        assert Graph(edges=[(1, 2)]) == Graph(edges=[(2, 1)])
        assert Graph(edges=[(1, 2)]) != Graph(edges=[(1, 3)])

    def test_relabeled_maps_back(self):
        g = Graph(edges=[("c", "a"), ("a", "b")])
        relabeled, forward, backward = g.relabeled()
        assert sorted(relabeled.vertices()) == [1, 2, 3]
        assert relabeled.num_edges == 2
        for original, new in forward.items():
            assert backward[new] == original

    def test_connected_components(self):
        g = Graph(edges=[(1, 2), (3, 4)], vertices=[5])
        components = sorted(g.connected_components(), key=lambda c: min(c))
        assert components == [{1, 2}, {3, 4}, {5}]

    def test_repr_mentions_sizes(self):
        assert "n=2" in repr(Graph(edges=[(1, 2)]))
