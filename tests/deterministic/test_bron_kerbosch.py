"""Unit tests for the Bron--Kerbosch maximal clique enumerators."""

from __future__ import annotations

import pytest

from repro.deterministic.bron_kerbosch import (
    bron_kerbosch_basic,
    bron_kerbosch_degeneracy,
    bron_kerbosch_pivot,
    enumerate_maximal_cliques,
)
from repro.deterministic.graph import Graph
from repro.deterministic.maximal_cliques import is_maximal_clique
from repro.core.bounds import moon_moser_bound
from repro.generators.erdos_renyi import erdos_renyi_skeleton


def cliques_of(graph: Graph, method: str) -> set[frozenset]:
    return {frozenset(c) for c in enumerate_maximal_cliques(graph, method=method)}


ALL_METHODS = ("basic", "pivot", "degeneracy")


class TestSmallGraphs:
    @pytest.mark.parametrize("method", ALL_METHODS)
    def test_single_edge(self, method):
        g = Graph(edges=[(1, 2)])
        assert cliques_of(g, method) == {frozenset({1, 2})}

    @pytest.mark.parametrize("method", ALL_METHODS)
    def test_path(self, method):
        g = Graph(edges=[(1, 2), (2, 3)])
        assert cliques_of(g, method) == {frozenset({1, 2}), frozenset({2, 3})}

    @pytest.mark.parametrize("method", ALL_METHODS)
    def test_triangle_with_pendant(self, method):
        g = Graph(edges=[(1, 2), (1, 3), (2, 3), (3, 4)])
        assert cliques_of(g, method) == {frozenset({1, 2, 3}), frozenset({3, 4})}

    @pytest.mark.parametrize("method", ALL_METHODS)
    def test_isolated_vertex_is_singleton_clique(self, method):
        g = Graph(edges=[(1, 2)], vertices=[3])
        assert frozenset({3}) in cliques_of(g, method)

    @pytest.mark.parametrize("method", ALL_METHODS)
    def test_complete_graph_single_clique(self, method):
        g = Graph(edges=[(u, v) for u in range(1, 6) for v in range(u + 1, 6)])
        assert cliques_of(g, method) == {frozenset(range(1, 6))}

    @pytest.mark.parametrize("method", ALL_METHODS)
    def test_empty_graph_yields_nothing_or_empty(self, method):
        # An empty graph has no vertices; the classical formulation emits the
        # empty clique once.  We accept either the empty output or {∅}.
        out = cliques_of(Graph(), method)
        assert out in (set(), {frozenset()})


class TestAgreementAndCorrectness:
    @pytest.mark.parametrize("seed", range(8))
    def test_methods_agree_on_random_graphs(self, seed):
        g = erdos_renyi_skeleton(12, 0.4, rng=seed)
        basic = cliques_of(g, "basic")
        pivot = cliques_of(g, "pivot")
        degen = cliques_of(g, "degeneracy")
        assert basic == pivot == degen

    @pytest.mark.parametrize("seed", range(5))
    def test_every_output_is_a_maximal_clique(self, seed):
        g = erdos_renyi_skeleton(14, 0.35, rng=100 + seed)
        for clique in bron_kerbosch_pivot(g):
            assert is_maximal_clique(g, clique)

    @pytest.mark.parametrize("seed", range(5))
    def test_no_duplicates(self, seed):
        g = erdos_renyi_skeleton(13, 0.45, rng=200 + seed)
        cliques = list(bron_kerbosch_degeneracy(g))
        assert len(cliques) == len(set(cliques))

    def test_every_vertex_covered(self):
        g = erdos_renyi_skeleton(20, 0.2, rng=4)
        covered = set()
        for clique in bron_kerbosch_pivot(g):
            covered |= clique
        assert covered == set(g.vertices())


class TestMoonMoserWorstCase:
    @pytest.mark.parametrize("n", [3, 6, 9])
    def test_moon_moser_graph_reaches_bound(self, n):
        # Complete multipartite graph with parts of size 3.
        parts = [list(range(i * 3 + 1, i * 3 + 4)) for i in range(n // 3)]
        edges = []
        for i, part_a in enumerate(parts):
            for part_b in parts[i + 1 :]:
                edges.extend((a, b) for a in part_a for b in part_b)
        g = Graph(vertices=range(1, n + 1), edges=edges)
        count = sum(1 for _ in bron_kerbosch_pivot(g))
        assert count == moon_moser_bound(n)


class TestMethodSelection:
    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            enumerate_maximal_cliques(Graph(edges=[(1, 2)]), method="magic")

    def test_basic_generator_is_lazy(self):
        g = Graph(edges=[(1, 2), (2, 3)])
        generator = bron_kerbosch_basic(g)
        first = next(generator)
        assert isinstance(first, frozenset)
