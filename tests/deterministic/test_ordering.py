"""Unit tests for degeneracy orderings and core numbers."""

from __future__ import annotations

from repro.deterministic.graph import Graph
from repro.deterministic.ordering import core_numbers, degeneracy, degeneracy_ordering
from repro.generators.erdos_renyi import erdos_renyi_skeleton


def complete_graph(n: int) -> Graph:
    return Graph(edges=[(u, v) for u in range(1, n + 1) for v in range(u + 1, n + 1)])


class TestDegeneracyOrdering:
    def test_empty_graph(self):
        assert degeneracy_ordering(Graph()) == []

    def test_order_contains_every_vertex_once(self):
        g = erdos_renyi_skeleton(30, 0.2, rng=5)
        order = degeneracy_ordering(g)
        assert sorted(order) == sorted(g.vertices())

    def test_pendant_vertex_removed_first(self):
        g = Graph(edges=[(1, 2), (2, 3), (1, 3), (3, 4)])
        assert degeneracy_ordering(g)[0] == 4

    def test_isolated_vertices_first(self):
        g = Graph(edges=[(1, 2), (2, 3), (1, 3)], vertices=[9])
        assert degeneracy_ordering(g)[0] == 9


class TestCoreNumbers:
    def test_complete_graph_core(self):
        cores = core_numbers(complete_graph(5))
        assert set(cores.values()) == {4}

    def test_path_graph_core(self):
        g = Graph(edges=[(1, 2), (2, 3), (3, 4)])
        assert set(core_numbers(g).values()) == {1}

    def test_triangle_with_pendant(self):
        g = Graph(edges=[(1, 2), (2, 3), (1, 3), (3, 4)])
        cores = core_numbers(g)
        assert cores[4] == 1
        assert cores[1] == cores[2] == cores[3] == 2

    def test_empty_graph(self):
        assert core_numbers(Graph()) == {}

    def test_core_number_at_most_degree(self):
        g = erdos_renyi_skeleton(40, 0.15, rng=3)
        cores = core_numbers(g)
        for v in g.vertices():
            assert cores[v] <= g.degree(v)


class TestDegeneracy:
    def test_complete_graph(self):
        assert degeneracy(complete_graph(6)) == 5

    def test_tree_has_degeneracy_one(self):
        g = Graph(edges=[(1, 2), (1, 3), (3, 4), (3, 5)])
        assert degeneracy(g) == 1

    def test_empty_graph(self):
        assert degeneracy(Graph()) == 0

    def test_degeneracy_bounds_minimum_degree(self):
        g = erdos_renyi_skeleton(25, 0.3, rng=8)
        d = degeneracy(g)
        min_degree = min(g.degree(v) for v in g.vertices())
        assert d >= min_degree or d >= 0
        max_degree = max(g.degree(v) for v in g.vertices())
        assert d <= max_degree
