"""Test package (namespacing avoids basename collisions and enables relative imports)."""
