"""WorkerPool unit tests — injected probes, no sockets.

The pool's contract: workers start *healthy*, consecutive failures walk
them through *suspect* to *dead* at ``failure_threshold``, any success
resets the streak, and *dead* workers leave the shard rotation
(``usable_urls``) but stay registered so a recovering probe resurrects
them.
"""

from __future__ import annotations

import time

import pytest

from repro.distributed import (
    DEFAULT_FAILURE_THRESHOLD,
    WorkerPool,
    WorkerState,
)
from repro.errors import ParameterError, ServiceError

A = "http://a.example:8100"
B = "http://b.example:8200"


class RecordingProbe:
    """A fake probe: records calls, fails for URLs in ``failing``."""

    def __init__(self) -> None:
        self.calls: list[str] = []
        self.failing: set[str] = set()

    def __call__(self, url: str) -> None:
        self.calls.append(url)
        if url in self.failing:
            raise ServiceError(f"probe refused by {url}")


def make_pool(urls=(A, B), **kwargs):
    probe = RecordingProbe()
    return WorkerPool(urls, probe=probe, **kwargs), probe


class TestMembership:
    def test_workers_start_healthy(self):
        pool, _ = make_pool()
        states = {status.url: status for status in pool.workers()}
        assert set(states) == {A, B}
        assert all(s.state == WorkerState.HEALTHY for s in states.values())
        assert all(s.usable for s in states.values())
        assert pool.usable_urls() == [A, B]
        assert len(pool) == 2

    def test_add_worker_normalises_and_is_idempotent(self):
        pool, _ = make_pool(urls=())
        pool.add_worker(A + "/")
        pool.mark_failure(A)
        status = pool.add_worker(A)  # re-add must not reset bookkeeping
        assert len(pool) == 1
        assert status.url == A
        assert status.consecutive_failures == 1

    def test_empty_url_rejected(self):
        pool, _ = make_pool(urls=())
        with pytest.raises(ParameterError, match="non-empty"):
            pool.add_worker("/")

    def test_remove_worker(self):
        pool, _ = make_pool()
        final = pool.remove_worker(A)
        assert final.url == A
        assert pool.usable_urls() == [B]
        with pytest.raises(ParameterError, match="unknown worker"):
            pool.remove_worker(A)

    def test_bad_parameters_rejected(self):
        with pytest.raises(ParameterError, match="probe_interval"):
            WorkerPool(probe_interval=0)
        with pytest.raises(ParameterError, match="failure_threshold"):
            WorkerPool(failure_threshold=0)


class TestLivenessSignals:
    def test_probe_round_covers_every_worker(self):
        pool, probe = make_pool()
        statuses = pool.probe()
        assert sorted(probe.calls) == sorted([A, B])
        assert all(s.state == WorkerState.HEALTHY for s in statuses)

    def test_failures_walk_suspect_then_dead(self):
        pool, _ = make_pool(failure_threshold=3)
        assert pool.mark_failure(A) == WorkerState.SUSPECT
        assert pool.mark_failure(A) == WorkerState.SUSPECT
        assert pool.usable_urls() == [A, B]  # suspect stays in rotation
        assert pool.mark_failure(A) == WorkerState.DEAD
        assert pool.usable_urls() == [B]
        status = {s.url: s for s in pool.workers()}[A]
        assert status.consecutive_failures == 3
        assert not status.usable

    def test_default_threshold_matches_constant(self):
        pool, _ = make_pool()
        for _ in range(DEFAULT_FAILURE_THRESHOLD - 1):
            assert pool.mark_failure(A) == WorkerState.SUSPECT
        assert pool.mark_failure(A) == WorkerState.DEAD

    def test_success_resets_the_streak(self):
        pool, _ = make_pool(failure_threshold=2)
        pool.mark_failure(A, ServiceError("boom"))
        assert pool.mark_healthy(A) == WorkerState.HEALTHY
        status = {s.url: s for s in pool.workers()}[A]
        assert status.consecutive_failures == 0
        assert status.last_error is None
        # The streak restarted: one more failure is suspect, not dead.
        assert pool.mark_failure(A) == WorkerState.SUSPECT

    def test_probe_resurrects_a_dead_worker(self):
        pool, probe = make_pool(failure_threshold=1)
        probe.failing.add(A)
        pool.probe()
        assert pool.usable_urls() == [B]
        probe.failing.clear()
        pool.probe()
        assert pool.usable_urls() == [A, B]

    def test_failure_report_tolerates_unknown_url(self):
        pool, _ = make_pool()
        assert pool.mark_failure("http://gone.example") is None
        assert pool.mark_healthy("http://gone.example") is None

    def test_last_error_recorded(self):
        pool, _ = make_pool()
        pool.mark_failure(A, ServiceError("connection refused"))
        status = {s.url: s for s in pool.workers()}[A]
        assert status.last_error is not None
        assert "connection refused" in status.last_error


class TestBackgroundProbing:
    def test_probe_loop_runs_periodically(self):
        pool, probe = make_pool(probe_interval=0.01)
        pool.start()
        try:
            deadline = time.monotonic() + 5.0
            while len(probe.calls) < 4 and time.monotonic() < deadline:
                time.sleep(0.005)
            assert len(probe.calls) >= 4
        finally:
            pool.close()

    def test_start_is_idempotent_and_close_without_start_is_noop(self):
        pool, _ = make_pool(probe_interval=60.0)
        pool.close()  # never started: no-op
        pool.start()
        pool.start()  # second start must not spawn a second thread
        pool.close()
        pool.close()

    def test_context_manager_stops_the_thread(self):
        with make_pool(probe_interval=60.0)[0] as pool:
            pool.start()
        # close() joined the probe thread; restarting still works.
        pool.start()
        pool.close()
