"""Fault injection: workers dying under a live fan-out.

The kills here are event-driven, not timer-driven — a worker's sockets
are torn down at a deterministic point in the coordinator's await loop
(or before the run starts), so every test exercises exactly the failure
window it names regardless of machine speed:

* a worker killed *after* its shards were submitted but *before* their
  results stream back — the mid-shard reassignment path;
* a worker dead before the run starts — the submission-retry path;
* a fully dead fleet — the :class:`DegradedError` path;
* a fleet that accepts every placement but drops every stream — the
  per-shard attempt budget.
"""

from __future__ import annotations

import pytest

from repro.api import EnumerationRequest, MiningSession
from repro.core.engine import StopReason
from repro.distributed import DistributedSession, WorkerPool, WorkerState
from repro.errors import DegradedError, ServiceError
from repro.service.client import RemoteJob
from repro.service.server import MiningServer

REQUEST = EnumerationRequest(algorithm="mule", alpha=0.3)


def kill(server: MiningServer) -> None:
    """Abruptly drop a worker: no drain, no goodbye, sockets just close."""
    server._httpd.shutdown()
    server._httpd.server_close()


class TestMidShardKill:
    def test_killed_worker_shards_are_reassigned_exactly(
        self, graph, fleet, monkeypatch
    ):
        """Kill a worker between submission and result streaming.

        The victim is the first worker in the rotation, so it holds the
        first shard the coordinator awaits: the kill fires inside that
        first ``wait`` call, while the victim's shards are genuinely in
        flight.  The retried shards must still reassemble bit-identically
        to serial MULE — no lost shard, no double merge.
        """
        serial = MiningSession(graph).enumerate(REQUEST)
        servers = fleet(3)
        victim = servers[0]
        killed: list[str] = []
        original_wait = RemoteJob.wait

        def wait_with_kill(job):
            if not killed and job._client.base_url == victim.url:
                killed.append(victim.url)
                kill(victim)
            return original_wait(job)

        monkeypatch.setattr(RemoteJob, "wait", wait_with_kill)
        with DistributedSession(
            graph,
            [server.url for server in servers],
            retry_backoff_seconds=0.001,
        ) as dist:
            merged = dist.enumerate(REQUEST)
            statuses = {s.url: s for s in dist.pool.workers()}
        assert killed, "the victim never received a shard"
        merged.assert_matches(serial)
        assert statuses[victim.url].consecutive_failures >= 1
        survivors = [s for url, s in statuses.items() if url != victim.url]
        assert all(s.state == WorkerState.HEALTHY for s in survivors)

    def test_kill_with_single_survivor(self, graph, fleet, monkeypatch):
        """Two workers, one dies: the survivor absorbs the whole graph."""
        serial = MiningSession(graph).enumerate(REQUEST)
        servers = fleet(2)
        victim = servers[0]
        killed: list[str] = []
        original_wait = RemoteJob.wait

        def wait_with_kill(job):
            if not killed and job._client.base_url == victim.url:
                killed.append(victim.url)
                kill(victim)
            return original_wait(job)

        monkeypatch.setattr(RemoteJob, "wait", wait_with_kill)
        with DistributedSession(
            graph,
            [server.url for server in servers],
            retry_backoff_seconds=0.001,
        ) as dist:
            merged = dist.enumerate(REQUEST)
        assert killed
        merged.assert_matches(serial)


class TestDeadOnArrival:
    def test_worker_dead_from_start_is_routed_around(self, graph, fleet):
        servers = fleet(2)
        dead, alive = servers
        dead.close()  # fully down before the session ever contacts it
        with DistributedSession(
            graph,
            [dead.url, alive.url],
            retry_backoff_seconds=0.001,
        ) as dist:
            merged = dist.enumerate(REQUEST)
            statuses = {s.url: s for s in dist.pool.workers()}
        merged.assert_matches(MiningSession(graph).enumerate(REQUEST))
        assert statuses[dead.url].consecutive_failures >= 1
        assert statuses[alive.url].state == WorkerState.HEALTHY

    def test_all_workers_dead_raises_degraded_error(self, graph, fleet):
        servers = fleet(2)
        urls = [server.url for server in servers]
        for server in servers:
            server.close()
        pool = WorkerPool(urls, failure_threshold=1)
        with pool, DistributedSession(
            graph, pool, retry_backoff_seconds=0.001
        ) as dist:
            with pytest.raises(DegradedError, match="no usable worker"):
                dist.enumerate(REQUEST)
            assert pool.usable_urls() == []

    def test_degraded_error_is_a_service_error(self):
        assert issubclass(DegradedError, ServiceError)


class TestAttemptBudget:
    def test_streams_that_always_drop_exhaust_the_budget(
        self, graph, fleet, monkeypatch
    ):
        """Placements succeed, every stream dies: budget, not livelock.

        The pool keeps both workers usable (high threshold), so the
        shard cannot fail for lack of workers — after ``max_attempts``
        placed-and-dropped runs its last error propagates as a plain
        :class:`ServiceError`, not :class:`DegradedError`.
        """
        servers = fleet(2)

        def wait_always_drops(job):
            raise ServiceError("injected stream drop")

        monkeypatch.setattr(RemoteJob, "wait", wait_always_drops)
        pool = WorkerPool(
            [server.url for server in servers], failure_threshold=100
        )
        with pool, DistributedSession(
            graph,
            pool,
            max_attempts=2,
            retry_backoff_seconds=0.001,
        ) as dist:
            with pytest.raises(ServiceError, match="failed after 2 attempt"):
                dist.enumerate(REQUEST)
            assert pool.usable_urls(), "workers must have stayed usable"


class TestCancelledFanOut:
    def test_abort_cancels_inflight_jobs(self, graph, fleet, monkeypatch):
        """A run that aborts fans cancellation out before propagating."""
        servers = fleet(2)
        cancelled: list[str] = []
        original_cancel = RemoteJob.cancel

        def recording_cancel(job, **kwargs):
            cancelled.append(job.id)
            return original_cancel(job, **kwargs)

        def wait_always_drops(job):
            raise ServiceError("injected stream drop")

        monkeypatch.setattr(RemoteJob, "cancel", recording_cancel)
        monkeypatch.setattr(RemoteJob, "wait", wait_always_drops)
        pool = WorkerPool(
            [server.url for server in servers], failure_threshold=100
        )
        with pool, DistributedSession(
            graph, pool, max_attempts=1, retry_backoff_seconds=0.001
        ) as dist:
            with pytest.raises(ServiceError):
                dist.enumerate(REQUEST)
        assert cancelled, "in-flight jobs were not cancelled on abort"
