"""DistributedSession against real in-process fleets — the parity suite.

Headline guarantee: on the same graph, a fleet run reassembles
**bit-identically** (``assert_matches``, statistics included) to serial
MULE — same cliques, same probabilities, summed search counters, merged
stop-reason provenance.
"""

from __future__ import annotations

import random

import pytest

from repro.api import EnumerationRequest, MiningSession
from repro.core.engine import RunControls, StopReason
from repro.distributed import DistributedSession, WorkerPool, WorkerState
from repro.errors import ParameterError
from repro.generators.erdos_renyi import random_uncertain_graph
from repro.service.client import RemoteJob
from repro.uncertain.graph import UncertainGraph

REQUEST = EnumerationRequest(algorithm="mule", alpha=0.3)


def urls_of(servers):
    return [server.url for server in servers]


class TestValidation:
    def test_needs_at_least_one_worker(self, graph):
        with pytest.raises(ParameterError, match="at least one worker"):
            DistributedSession(graph, [])

    def test_rejects_unsupported_algorithm(self, graph, fleet):
        with DistributedSession(graph, urls_of(fleet(1))) as dist:
            with pytest.raises(ParameterError, match="mule/fast only"):
                dist.enumerate(
                    EnumerationRequest(algorithm="top_k", alpha=0.3, k=3)
                )

    def test_rejects_parallel_requests(self, graph, fleet):
        with DistributedSession(graph, urls_of(fleet(1))) as dist:
            with pytest.raises(ParameterError, match="serial"):
                dist.enumerate(
                    EnumerationRequest(
                        algorithm="fast",
                        alpha=0.3,
                        workers=2,
                        execution="parallel",
                    )
                )

    def test_rejects_preassigned_root_shard(self, graph, fleet):
        with DistributedSession(graph, urls_of(fleet(1))) as dist:
            with pytest.raises(ParameterError, match="root_shard"):
                dist.enumerate(
                    EnumerationRequest(
                        algorithm="mule", alpha=0.3, root_shard=(0, 1)
                    )
                )

    def test_rejects_bad_knobs(self, graph):
        with pytest.raises(ParameterError, match="max_attempts"):
            DistributedSession(graph, ["http://x"], max_attempts=0)
        with pytest.raises(ParameterError, match="num_shards"):
            DistributedSession(graph, ["http://x"], num_shards=0)
        with pytest.raises(ParameterError, match="backoff"):
            DistributedSession(
                graph, ["http://x"], retry_backoff_seconds=-1.0
            )


class TestParity:
    def test_two_worker_fleet_matches_serial(self, graph, fleet):
        serial = MiningSession(graph).enumerate(REQUEST)
        with DistributedSession(graph, urls_of(fleet(2))) as dist:
            merged = dist.enumerate(REQUEST)
        merged.assert_matches(serial)
        assert merged.algorithm == "distributed-mule"
        assert merged.stop_reason == StopReason.COMPLETED

    @pytest.mark.parametrize("alpha", [0.2, 0.4, 0.6])
    def test_three_worker_fleet_across_alphas(self, fleet, alpha):
        graph = random_uncertain_graph(30, 0.4, rng=random.Random(5))
        request = EnumerationRequest(algorithm="mule", alpha=alpha)
        serial = MiningSession(graph).enumerate(request)
        with DistributedSession(graph, urls_of(fleet(3))) as dist:
            merged = dist.enumerate(request)
        merged.assert_matches(serial)

    def test_fast_algorithm_parity(self, graph, fleet):
        request = EnumerationRequest(algorithm="fast", alpha=0.3)
        serial = MiningSession(graph).enumerate(request)
        with DistributedSession(graph, urls_of(fleet(2))) as dist:
            merged = dist.enumerate(request)
        merged.assert_matches(serial)

    def test_single_worker_single_shard_degenerate(self, graph, fleet):
        serial = MiningSession(graph).enumerate(REQUEST)
        with DistributedSession(
            graph, urls_of(fleet(1)), num_shards=1
        ) as dist:
            merged = dist.enumerate(REQUEST)
        merged.assert_matches(serial)

    def test_request_num_shards_overrides_session(self, graph, fleet):
        serial = MiningSession(graph).enumerate(REQUEST)
        request = EnumerationRequest(algorithm="mule", alpha=0.3, num_shards=7)
        with DistributedSession(
            graph, urls_of(fleet(2)), num_shards=2
        ) as dist:
            merged = dist.enumerate(request)
        merged.assert_matches(serial)

    def test_more_shards_than_vertices_stays_exact(self, fleet):
        graph = UncertainGraph(
            edges=[(1, 2, 0.9), (2, 3, 0.9), (1, 3, 0.9), (3, 4, 0.4)]
        )
        serial = MiningSession(graph).enumerate(REQUEST)
        with DistributedSession(
            graph, urls_of(fleet(2)), num_shards=16
        ) as dist:
            merged = dist.enumerate(REQUEST)
        merged.assert_matches(serial)

    def test_empty_graph(self, fleet):
        graph = UncertainGraph(vertices=[], edges=[])
        serial = MiningSession(graph).enumerate(REQUEST)
        with DistributedSession(graph, urls_of(fleet(1))) as dist:
            merged = dist.enumerate(REQUEST)
        merged.assert_matches(serial)
        assert merged.records == []

    def test_string_labels_round_trip_through_shards(self, fleet):
        graph = UncertainGraph(
            edges=[
                ("ana", "bob", 0.9),
                ("bob", "cal", 0.8),
                ("ana", "cal", 0.85),
                ("cal", "dee", 0.7),
            ]
        )
        serial = MiningSession(graph).enumerate(REQUEST)
        with DistributedSession(graph, urls_of(fleet(2))) as dist:
            merged = dist.enumerate(REQUEST)
        merged.assert_matches(serial)

    def test_repeated_runs_upload_the_graph_once_per_worker(
        self, graph, fleet
    ):
        servers = fleet(2)
        with DistributedSession(graph, urls_of(servers)) as dist:
            first = dist.enumerate(REQUEST)
            second = dist.enumerate(REQUEST)
        first.assert_matches(second)
        for server in servers:
            assert len(server.store) == 1


class TestControls:
    def test_max_cliques_caps_the_merged_records(self, graph, fleet):
        serial = MiningSession(graph).enumerate(REQUEST)
        assert len(serial.records) > 5
        request = EnumerationRequest(
            algorithm="mule",
            alpha=0.3,
            controls=RunControls(max_cliques=5),
        )
        with DistributedSession(graph, urls_of(fleet(2))) as dist:
            merged = dist.enumerate(request)
        assert len(merged.records) == 5
        assert merged.stop_reason == StopReason.MAX_CLIQUES
        assert merged.records == sorted(merged.records)
        full = {record.vertices: record.probability for record in serial.records}
        for record in merged.records:
            assert full[record.vertices] == record.probability


class TestCancellation:
    def test_cancel_mid_run_reports_cancelled(self, graph, fleet, monkeypatch):
        holder: dict[str, DistributedSession] = {}
        original_wait = RemoteJob.wait

        def wait_then_cancel(job):
            # Deterministic mid-run cancel: the first await observes a
            # fan-out already fully submitted, then cancels the session.
            if "done" not in holder:
                holder["done"] = holder["dist"]
                holder["dist"].cancel()
            return original_wait(job)

        monkeypatch.setattr(RemoteJob, "wait", wait_then_cancel)
        with DistributedSession(graph, urls_of(fleet(2))) as dist:
            holder["dist"] = dist
            merged = dist.enumerate(REQUEST)
        assert merged.stop_reason == StopReason.CANCELLED

    def test_cancel_before_run_does_not_poison_the_next(self, graph, fleet):
        serial = MiningSession(graph).enumerate(REQUEST)
        with DistributedSession(graph, urls_of(fleet(2))) as dist:
            dist.cancel()
            merged = dist.enumerate(REQUEST)  # enumerate resets the flag
        merged.assert_matches(serial)


class TestPoolIntegration:
    def test_shared_pool_is_not_closed_with_the_session(self, graph, fleet):
        pool = WorkerPool(urls_of(fleet(2)))
        try:
            with DistributedSession(graph, pool) as dist:
                dist.enumerate(REQUEST)
            statuses = pool.workers()
            assert len(statuses) == 2
            assert all(s.state == WorkerState.HEALTHY for s in statuses)
        finally:
            pool.close()

    def test_pool_property_exposes_fleet_status(self, graph, fleet):
        with DistributedSession(graph, urls_of(fleet(2))) as dist:
            dist.enumerate(REQUEST)
            assert all(s.usable for s in dist.pool.workers())
