"""Fixtures for the distributed suite: real in-process worker fleets.

Every fleet test runs genuine :class:`MiningServer` instances on
ephemeral ports — the full wire path (upload, job submit, NDJSON stream)
is exercised, only the network is loopback.
"""

from __future__ import annotations

import random

import pytest

from repro.api.store import GraphStore
from repro.generators.erdos_renyi import random_uncertain_graph
from repro.service.server import MiningServer
from repro.uncertain.graph import UncertainGraph


@pytest.fixture
def fleet():
    """Factory launching ``count`` empty-store workers; all closed at exit."""
    servers: list[MiningServer] = []

    def launch(count: int = 2) -> list[MiningServer]:
        batch = [
            MiningServer(GraphStore(), port=0, quiet=True).start()
            for _ in range(count)
        ]
        servers.extend(batch)
        return batch

    yield launch
    for server in servers:
        server.close()


@pytest.fixture
def graph() -> UncertainGraph:
    """A seeded random graph dense enough to spread cliques across shards."""
    return random_uncertain_graph(24, 0.5, rng=random.Random(11))
