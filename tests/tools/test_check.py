"""Tests for ``repro-mule check``, the repo's AST invariant linter.

Every rule gets at least one true-positive fixture (the checker must
find the planted violation) and one clean fixture (it must stay quiet),
plus the self-lint test: the shipped ``src/repro`` tree carries zero
findings even with suppressions disabled.

Fixture modules are materialised into ``tmp_path`` mini-trees because
several rules are scoped by path shape (``service/``/``api/`` for the
concurrency and taxonomy rules, ``core/engine/`` for determinism) and
the wire-freeze rule reads a fixture corpus relative to the project
root.
"""

from __future__ import annotations

import io
import json
import os
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.tools.check import Finding, all_rules, scan
from repro.tools.check.cli import main as check_main
from repro.tools.check.registry import select_rules
from repro.tools.check.runner import find_project_root

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC = REPO_ROOT / "src" / "repro"

RULE_IDS = (
    "error-taxonomy",
    "kernel-determinism",
    "lock-discipline",
    "metrics-discipline",
    "stopreason-exhaustive",
    "wire-freeze",
)


def write(root: Path, relpath: str, source: str) -> Path:
    path = root / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    return path


def scan_one(
    root: Path, relpath: str, source: str, rule: str, **kwargs
) -> list[Finding]:
    write(root, relpath, source)
    return scan([root], root=root, rule_ids=[rule], **kwargs)


# --------------------------------------------------------------------- #
# Framework: registry, findings, root discovery
# --------------------------------------------------------------------- #
class TestFramework:
    def test_all_six_rules_register(self):
        assert tuple(rule.rule_id for rule in all_rules()) == RULE_IDS

    def test_unknown_rule_selection_raises(self):
        with pytest.raises(KeyError):
            select_rules(["no-such-rule"])

    def test_finding_renders_clickable_location(self):
        finding = Finding("service/jobs.py", 12, 4, "lock-discipline", "boom")
        assert finding.render().startswith("service/jobs.py:12:4: lock-discipline:")

    def test_findings_sort_by_location(self):
        later = Finding("b.py", 1, 0, "r", "m")
        earlier = Finding("a.py", 9, 0, "r", "m")
        assert sorted([later, earlier]) == [earlier, later]

    def test_find_project_root_walks_to_setup_py(self, tmp_path):
        (tmp_path / "setup.py").write_text("")
        nested = tmp_path / "src" / "pkg"
        nested.mkdir(parents=True)
        assert find_project_root(nested) == tmp_path

    def test_syntax_error_becomes_parse_finding(self, tmp_path):
        write(tmp_path, "service/broken.py", "def oops(:\n")
        (finding,) = scan([tmp_path], root=tmp_path)
        assert finding.rule_id == "parse-error"


# --------------------------------------------------------------------- #
# lock-discipline
# --------------------------------------------------------------------- #
BAD_LOCK = """
    import threading


    class Box:
        def __init__(self):
            self._lock = threading.Lock()
            self._items = {}

        def put(self, key, value):
            with self._lock:
                self._items[key] = value

        def size(self):
            return len(self._items)
"""

CLEAN_LOCK = """
    import threading


    class Box:
        def __init__(self):
            self._lock = threading.Lock()
            self._items = {}

        def put(self, key, value):
            with self._lock:
                self._items[key] = value

        def size(self):
            with self._lock:
                return len(self._items)

        def _size_locked(self):
            return len(self._items)
"""


class TestLockDiscipline:
    def test_unlocked_read_of_guarded_attribute(self, tmp_path):
        findings = scan_one(
            tmp_path, "service/box.py", BAD_LOCK, "lock-discipline"
        )
        assert len(findings) == 1
        (finding,) = findings
        assert finding.rule_id == "lock-discipline"
        assert "_items" in finding.message and "read" in finding.message
        assert finding.line == 15

    def test_locked_and_locked_suffix_accesses_are_clean(self, tmp_path):
        assert not scan_one(
            tmp_path, "service/box.py", CLEAN_LOCK, "lock-discipline"
        )

    def test_init_writes_are_not_guard_evidence(self, tmp_path):
        source = """
            import threading


            class Plain:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.name = "x"

                def label(self):
                    return self.name
        """
        assert not scan_one(
            tmp_path, "api/plain.py", source, "lock-discipline"
        )

    def test_rule_is_scoped_to_service_and_api(self, tmp_path):
        assert not scan_one(
            tmp_path, "core/box.py", BAD_LOCK, "lock-discipline"
        )

    def test_distributed_modules_are_covered(self, tmp_path):
        assert scan_one(
            tmp_path, "distributed/pool.py", BAD_LOCK, "lock-discipline"
        )


# --------------------------------------------------------------------- #
# kernel-determinism
# --------------------------------------------------------------------- #
BAD_KERNEL = """
    import random
    import time


    def jitter(values):
        time.sleep(0.01)
        return random.choice(sorted(values))


    def order(values):
        return list({v for v in values})
"""

CLEAN_KERNEL = """
    import time


    def stopwatch():
        return time.perf_counter()


    def order(values):
        return sorted(set(values))
"""


class TestKernelDeterminism:
    def test_entropy_clocks_and_hash_order_are_flagged(self, tmp_path):
        findings = scan_one(
            tmp_path, "core/engine/chaos.py", BAD_KERNEL, "kernel-determinism"
        )
        messages = " | ".join(finding.message for finding in findings)
        assert len(findings) == 4
        assert "nondeterministic module 'random'" in messages
        assert "time.sleep() outside the stopwatch seam" in messages
        assert "random.choice()" in messages
        assert "materialises hash order" in messages

    def test_perf_counter_and_sorted_sets_are_clean(self, tmp_path):
        assert not scan_one(
            tmp_path, "core/engine/pure.py", CLEAN_KERNEL, "kernel-determinism"
        )

    def test_rule_is_scoped_to_the_engine(self, tmp_path):
        assert not scan_one(
            tmp_path, "service/chaos.py", BAD_KERNEL, "kernel-determinism"
        )


# --------------------------------------------------------------------- #
# error-taxonomy
# --------------------------------------------------------------------- #
BAD_ERRORS = """
    def handle(payload):
        if "kind" not in payload:
            raise ValueError("missing kind")
        try:
            return payload["kind"]
        except:
            return None
"""

CLEAN_ERRORS = """
    from repro.errors import ServiceError


    class JobCancelled(Exception):
        \"\"\"Module-local control-flow exception; never escapes.\"\"\"


    def handle(flag, stored):
        if flag == "cancel":
            raise JobCancelled()
        if flag == "stored":
            raise stored
        raise ServiceError("unsupported flag")
"""


class TestErrorTaxonomy:
    def test_builtin_raise_and_bare_except_are_flagged(self, tmp_path):
        findings = scan_one(
            tmp_path, "service/handlers.py", BAD_ERRORS, "error-taxonomy"
        )
        messages = " | ".join(finding.message for finding in findings)
        assert len(findings) == 2
        assert "raises builtin ValueError" in messages
        assert "bare 'except:'" in messages

    def test_taxonomy_local_and_reraise_are_clean(self, tmp_path):
        assert not scan_one(
            tmp_path, "api/handlers.py", CLEAN_ERRORS, "error-taxonomy"
        )

    def test_rule_is_scoped_to_service_and_api(self, tmp_path):
        assert not scan_one(
            tmp_path, "core/handlers.py", BAD_ERRORS, "error-taxonomy"
        )

    def test_distributed_modules_are_covered(self, tmp_path):
        findings = scan_one(
            tmp_path, "distributed/coordinator.py", BAD_ERRORS, "error-taxonomy"
        )
        assert len(findings) == 2


# --------------------------------------------------------------------- #
# stopreason-exhaustive
# --------------------------------------------------------------------- #
BAD_DISPATCH = """
    from repro.core.engine.controls import StopReason


    def describe(reason):
        if reason == StopReason.COMPLETED:
            return "done"
        elif reason == StopReason.MAX_CLIQUES:
            return "clipped"
        return "other"
"""

CLEAN_DISPATCH = """
    from repro.core.engine.controls import StopReason
    from repro.service.jobs import JobState


    def describe(reason):
        if reason == StopReason.COMPLETED:
            return "done"
        elif reason == StopReason.MAX_CLIQUES:
            return "clipped"
        else:
            return "other"


    def is_settled(state):
        if state in JobState.TERMINAL:
            return True
        elif state in (JobState.QUEUED, JobState.RUNNING):
            return False
"""


class TestStopReasonExhaustive:
    def test_partial_dispatch_without_else_is_flagged(self, tmp_path):
        findings = scan_one(
            tmp_path, "service/status.py", BAD_DISPATCH, "stopreason-exhaustive"
        )
        assert len(findings) == 1
        (finding,) = findings
        assert "StopReason" in finding.message
        assert "CANCELLED" in finding.message and "TIME_BUDGET" in finding.message

    def test_else_branch_and_composite_coverage_are_clean(self, tmp_path):
        assert not scan_one(
            tmp_path, "service/status.py", CLEAN_DISPATCH, "stopreason-exhaustive"
        )

    def test_match_statement_missing_member_is_flagged(self, tmp_path):
        source = """
            from repro.service.jobs import JobState


            def label(state):
                match state:
                    case JobState.QUEUED:
                        return "waiting"
                    case JobState.RUNNING:
                        return "active"
                    case JobState.TERMINAL:
                        return "settled"
        """
        findings = scan_one(
            tmp_path, "service/labels.py", source, "stopreason-exhaustive"
        )
        assert not findings  # TERMINAL expands to done/failed/cancelled

    def test_single_guard_is_not_a_dispatch(self, tmp_path):
        source = """
            from repro.service.jobs import JobState


            def failed(state):
                if state == JobState.FAILED:
                    return True
                return False
        """
        assert not scan_one(
            tmp_path, "service/guard.py", source, "stopreason-exhaustive"
        )


# --------------------------------------------------------------------- #
# metrics-discipline
# --------------------------------------------------------------------- #
BAD_METRICS = """
    from repro.obs import registry as _obs_registry

    _RENAMED = _obs_registry().counter("requests_total", "No layer prefix.")
    _SHOUTY = _obs_registry().gauge("http_QueueDepth", "Not snake_case.")


    def handle(name):
        hits = _obs_registry().counter(name, "Dynamic name, in a function.")
        for _ in range(3):
            _obs_registry().histogram("http_lap_seconds", "In a loop.")
        return hits
"""

CLEAN_METRICS = """
    from repro.obs import MetricsRegistry, registry as _obs_registry

    _REQUESTS = _obs_registry().counter(
        "http_requests_total", "Requests served.", labelnames=("endpoint",)
    )
    _DEPTH = _obs_registry().gauge("sched_queue_depth", "Jobs waiting.")
    _LATENCY = _obs_registry().histogram("http_request_seconds", "Latency.")


    def scratch_fixture():
        # Private registries are out of scope: only the global seam is
        # held to the naming and module-scope conventions.
        private = MetricsRegistry(enabled=True)
        return private.counter("anything_goes", "Scratch instrument.")
"""


class TestMetricsDiscipline:
    def test_bad_names_and_scopes_are_flagged(self, tmp_path):
        findings = scan_one(
            tmp_path, "service/metrics.py", BAD_METRICS, "metrics-discipline"
        )
        messages = " | ".join(finding.message for finding in findings)
        # The in-function call trips both the literal-name and the
        # placement check, so five findings for four planted sites.
        assert len(findings) == 5
        assert "'requests_total'" in messages
        assert "'http_QueueDepth'" in messages
        assert "without a literal metric name" in messages
        assert "inside a function" in messages
        assert "inside a loop" in messages

    def test_module_scope_registrations_and_private_registries_are_clean(
        self, tmp_path
    ):
        assert not scan_one(
            tmp_path, "service/metrics.py", CLEAN_METRICS, "metrics-discipline"
        )

    def test_rule_covers_every_layer(self, tmp_path):
        # Unlike the concurrency rules, metric registrations can appear
        # anywhere the global seam is imported.
        assert scan_one(
            tmp_path, "core/anywhere.py", BAD_METRICS, "metrics-discipline"
        )


# --------------------------------------------------------------------- #
# wire-freeze (project rule: codec + fixtures + make_fixtures)
# --------------------------------------------------------------------- #
MINI_CODEC = """
    PING_KEYS = frozenset({"value"})


    def ping_to_wire(value):
        return _envelope("ping", {"value": value})


    def ping_from_wire(payload):
        payload = _open_envelope(payload, "ping", PING_KEYS)
        return payload["value"]
"""

MINI_MAKE_FIXTURES = """
    def build_payloads():
        return {"ping": {"schema": 1, "kind": "ping", "value": 3}}
"""


def wire_project(
    tmp_path: Path,
    *,
    codec: str = MINI_CODEC,
    make_fixtures: str = MINI_MAKE_FIXTURES,
    fixtures: dict[str, dict] | None = None,
) -> Path:
    write(tmp_path, "service/codec.py", codec)
    write(tmp_path, "tests/service/make_fixtures.py", make_fixtures)
    payloads = (
        fixtures
        if fixtures is not None
        else {"ping": {"schema": 1, "kind": "ping", "value": 3}}
    )
    for name, payload in payloads.items():
        path = tmp_path / "tests" / "service" / "fixtures" / f"{name}.json"
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(payload), encoding="utf-8")
    return tmp_path


def wire_findings(tmp_path: Path) -> list[Finding]:
    return scan(
        [tmp_path / "service"], root=tmp_path, rule_ids=["wire-freeze"]
    )


class TestWireFreeze:
    def test_consistent_mini_project_is_clean(self, tmp_path):
        wire_project(tmp_path)
        assert not wire_findings(tmp_path)

    def test_encoder_decoder_key_drift(self, tmp_path):
        codec = MINI_CODEC.replace(
            'frozenset({"value"})', 'frozenset({"value", "extra"})'
        )
        wire_project(tmp_path, codec=codec)
        findings = wire_findings(tmp_path)
        assert any(
            "encoder and decoder disagree" in finding.message
            and "'extra'" in finding.message
            for finding in findings
        )

    def test_kind_without_golden_fixture(self, tmp_path):
        codec = textwrap.dedent(MINI_CODEC) + textwrap.dedent(
            """
            def pong_to_wire():
                return _envelope("pong", {"echo": 1})


            def pong_from_wire(payload):
                payload = _open_envelope(payload, "pong", frozenset({"echo"}))
                return payload["echo"]
            """
        )
        wire_project(tmp_path, codec=codec)
        findings = wire_findings(tmp_path)
        assert any(
            "'pong' has no golden fixture" in finding.message
            for finding in findings
        )

    def test_v1_fixture_bytes_are_frozen(self, tmp_path):
        wire_project(
            tmp_path,
            fixtures={
                "ping": {"schema": 1, "kind": "ping", "value": 3, "sneaky": 0}
            },
        )
        findings = wire_findings(tmp_path)
        assert any(
            "v1 'ping' envelope carries keys" in finding.message
            for finding in findings
        )

    def test_fixture_without_regeneration_entry(self, tmp_path):
        # The drift guard: a fixture file build_payloads() cannot
        # regenerate means the corpus rots on the next schema bump.
        wire_project(
            tmp_path,
            fixtures={
                "ping": {"schema": 1, "kind": "ping", "value": 3},
                "orphan": {"schema": 1, "kind": "ping", "value": 4},
            },
        )
        findings = wire_findings(tmp_path)
        assert any(
            "orphan.json has no build_payloads() entry" in finding.message
            for finding in findings
        )

    def test_regeneration_entry_without_fixture_file(self, tmp_path):
        make = MINI_MAKE_FIXTURES.replace(
            '"value": 3}}', '"value": 3}, "ghost": {}}'
        )
        wire_project(tmp_path, make_fixtures=make)
        findings = wire_findings(tmp_path)
        assert any(
            "'ghost' has no fixture file" in finding.message
            for finding in findings
        )


# --------------------------------------------------------------------- #
# Suppressions
# --------------------------------------------------------------------- #
class TestSuppressions:
    def test_line_suppression_names_the_rule(self, tmp_path):
        source = BAD_LOCK.replace(
            "return len(self._items)",
            "return len(self._items)  # repro: ignore[lock-discipline]",
        )
        assert not scan_one(
            tmp_path, "service/box.py", source, "lock-discipline"
        )

    def test_suppression_for_another_rule_does_not_apply(self, tmp_path):
        source = BAD_LOCK.replace(
            "return len(self._items)",
            "return len(self._items)  # repro: ignore[wire-freeze]",
        )
        findings = scan_one(
            tmp_path, "service/box.py", source, "lock-discipline"
        )
        assert len(findings) == 1

    def test_no_suppress_audits_markers(self, tmp_path):
        source = BAD_LOCK.replace(
            "return len(self._items)",
            "return len(self._items)  # repro: ignore",
        )
        write(tmp_path, "service/box.py", source)
        assert not scan(
            [tmp_path], root=tmp_path, rule_ids=["lock-discipline"]
        )
        audited = scan(
            [tmp_path],
            root=tmp_path,
            rule_ids=["lock-discipline"],
            honor_suppressions=False,
        )
        assert len(audited) == 1

    def test_file_wide_suppression_in_header(self, tmp_path):
        source = "# repro: ignore-file[lock-discipline]\n" + textwrap.dedent(
            BAD_LOCK
        )
        write(tmp_path, "service/box.py", source)
        assert not scan(
            [tmp_path], root=tmp_path, rule_ids=["lock-discipline"]
        )


# --------------------------------------------------------------------- #
# CLI surface
# --------------------------------------------------------------------- #
class TestCli:
    def test_exit_one_and_rendered_findings(self, tmp_path):
        path = write(tmp_path, "service/box.py", BAD_LOCK)
        out = io.StringIO()
        code = check_main(
            [str(path), "--root", str(tmp_path)], stdout=out
        )
        assert code == 1
        text = out.getvalue()
        assert "service/box.py:15:" in text
        assert "lock-discipline" in text
        assert "1 finding" in text

    def test_exit_zero_on_clean_tree(self, tmp_path):
        path = write(tmp_path, "service/box.py", CLEAN_LOCK)
        assert check_main(
            [str(path), "--root", str(tmp_path)], stdout=io.StringIO()
        ) == 0

    def test_json_format_emits_one_object_per_finding(self, tmp_path):
        path = write(tmp_path, "service/box.py", BAD_LOCK)
        out = io.StringIO()
        code = check_main(
            [str(path), "--root", str(tmp_path), "--format", "json"],
            stdout=out,
        )
        assert code == 1
        objects = [json.loads(line) for line in out.getvalue().splitlines()]
        assert objects and all(
            obj["rule"] == "lock-discipline" for obj in objects
        )

    def test_list_rules_prints_the_catalog(self):
        out = io.StringIO()
        assert check_main(["--list-rules"], stdout=out) == 0
        listed = [line.split()[0] for line in out.getvalue().splitlines()]
        assert tuple(listed) == RULE_IDS

    def test_unknown_select_is_a_usage_error(self, tmp_path):
        path = write(tmp_path, "service/box.py", CLEAN_LOCK)
        code = check_main(
            [str(path), "--root", str(tmp_path), "--select", "bogus"],
            stdout=io.StringIO(),
        )
        assert code == 2

    def test_module_entry_point(self, tmp_path):
        path = write(tmp_path, "service/box.py", BAD_LOCK)
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        result = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro.tools.check",
                str(path),
                "--root",
                str(tmp_path),
            ],
            capture_output=True,
            text=True,
            env=env,
            cwd=REPO_ROOT,
        )
        assert result.returncode == 1
        assert "lock-discipline" in result.stdout

    def test_repro_mule_check_subcommand(self, tmp_path, capsys):
        from repro.cli.main import main as repro_main

        path = write(tmp_path, "service/box.py", BAD_LOCK)
        code = repro_main(["check", str(path), "--root", str(tmp_path)])
        assert code == 1
        assert "lock-discipline" in capsys.readouterr().out


# --------------------------------------------------------------------- #
# The gate itself
# --------------------------------------------------------------------- #
class TestShippedTree:
    def test_src_repro_is_violation_free_without_suppressions(self):
        findings = scan(
            [SRC], root=REPO_ROOT, honor_suppressions=False
        )
        assert findings == [], "\n" + "\n".join(
            finding.render() for finding in findings
        )

    def test_mypy_strict_gate(self):
        pytest.importorskip("mypy")
        result = subprocess.run(
            [sys.executable, "-m", "mypy", "--config-file", "setup.cfg"],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
        )
        assert result.returncode == 0, result.stdout + result.stderr
