"""Unit tests for the result verification helpers."""

from __future__ import annotations

import pytest

from repro.analysis.verification import (
    check_output_bound,
    matches_deterministic_cliques,
    results_agree,
    verify_result,
)
from repro.core.dfs_noip import dfs_noip
from repro.core.mule import mule
from repro.core.result import CliqueRecord, EnumerationResult
from repro.uncertain.graph import UncertainGraph


class TestVerifyResult:
    def test_clean_output_has_no_problems(self, two_cliques):
        result = mule(two_cliques, 0.5)
        assert verify_result(two_cliques, result) == []

    def test_detects_below_threshold_clique(self, two_cliques):
        bogus = EnumerationResult(
            "manual",
            0.99,
            [CliqueRecord(vertices=frozenset({1, 2, 3}), probability=0.95**3)],
        )
        problems = verify_result(two_cliques, bogus)
        assert any("alpha" in p for p in problems)

    def test_detects_non_maximal_clique(self, two_cliques):
        bogus = EnumerationResult(
            "manual",
            0.5,
            [CliqueRecord(vertices=frozenset({1, 2}), probability=0.95)],
        )
        problems = verify_result(two_cliques, bogus)
        assert any("not alpha-maximal" in p for p in problems)

    def test_detects_wrong_probability(self, two_cliques):
        bogus = EnumerationResult(
            "manual",
            0.5,
            [CliqueRecord(vertices=frozenset({1, 2, 3}), probability=0.5)],
        )
        problems = verify_result(two_cliques, bogus)
        assert any("differs" in p for p in problems)

    def test_detects_redundant_family(self, two_cliques):
        bogus = EnumerationResult(
            "manual",
            0.5,
            [
                CliqueRecord(vertices=frozenset({1, 2, 3}), probability=0.95**3),
                CliqueRecord(vertices=frozenset({1, 2}), probability=0.95),
            ],
        )
        problems = verify_result(two_cliques, bogus)
        assert any("antichain" in p or "not alpha-maximal" in p for p in problems)


class TestResultsAgree:
    def test_same_algorithm_results_agree(self, two_cliques):
        assert results_agree(mule(two_cliques, 0.5), dfs_noip(two_cliques, 0.5))

    def test_different_alpha_results_differ(self, two_cliques):
        assert not results_agree(mule(two_cliques, 0.5), mule(two_cliques, 1e-6))


class TestDeterministicDegenerateCase:
    def test_certain_graph_matches_bron_kerbosch(self):
        g = UncertainGraph(
            edges=[(1, 2, 1.0), (2, 3, 1.0), (1, 3, 1.0), (3, 4, 1.0)]
        )
        result = mule(g, 1.0)
        assert matches_deterministic_cliques(g, result)

    def test_mismatch_detected(self):
        g = UncertainGraph(edges=[(1, 2, 1.0), (2, 3, 1.0)])
        bogus = EnumerationResult(
            "manual", 1.0, [CliqueRecord(vertices=frozenset({1, 2}), probability=1.0)]
        )
        assert not matches_deterministic_cliques(g, bogus)


class TestOutputBound:
    def test_real_output_respects_bound(self, random_graph_factory):
        graph = random_graph_factory(9, density=0.7, seed=1)
        assert check_output_bound(graph, mule(graph, 0.1))

    def test_fabricated_oversized_output_fails(self):
        g = UncertainGraph(edges=[(1, 2, 0.5)])
        # 3 "cliques" on a 2-vertex graph exceeds C(2,1) = 2.
        bogus = EnumerationResult(
            "manual",
            0.5,
            [
                CliqueRecord(vertices=frozenset({1}), probability=1.0),
                CliqueRecord(vertices=frozenset({2}), probability=1.0),
                CliqueRecord(vertices=frozenset({1, 2}), probability=0.5),
            ],
        )
        assert not check_output_bound(g, bogus)
