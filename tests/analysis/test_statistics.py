"""Unit tests for clique-output statistics."""

from __future__ import annotations

import pytest

from repro.analysis.statistics import clique_statistics, vertex_participation
from repro.core.mule import mule
from repro.core.result import CliqueRecord, EnumerationResult


class TestCliqueStatistics:
    def test_empty_result(self):
        stats = clique_statistics(EnumerationResult("mule", 0.5, []))
        assert stats.num_cliques == 0
        assert stats.mean_size == 0.0
        assert stats.size_histogram == {}

    def test_basic_aggregates(self, two_cliques):
        stats = clique_statistics(mule(two_cliques, 0.5))
        assert stats.num_cliques == 2
        assert stats.min_size == 3
        assert stats.max_size == 3
        assert stats.mean_size == pytest.approx(3.0)
        assert stats.size_histogram == {3: 2}

    def test_probability_aggregates(self, two_cliques):
        stats = clique_statistics(mule(two_cliques, 0.5))
        assert stats.min_probability == pytest.approx(0.9**3)
        assert stats.max_probability == pytest.approx(0.95**3)
        assert stats.min_probability <= stats.mean_probability <= stats.max_probability

    def test_as_dict_round_trippable(self, triangle):
        payload = clique_statistics(mule(triangle, 0.5)).as_dict()
        assert payload["num_cliques"] == 2
        assert set(payload) >= {"min_size", "max_size", "mean_probability"}


class TestVertexParticipation:
    def test_counts_membership(self):
        result = EnumerationResult(
            "manual",
            0.5,
            [
                CliqueRecord(vertices=frozenset({1, 2}), probability=0.5),
                CliqueRecord(vertices=frozenset({2, 3}), probability=0.5),
            ],
        )
        participation = vertex_participation(result)
        assert participation == {1: 1, 2: 2, 3: 1}

    def test_empty_result(self):
        assert vertex_participation(EnumerationResult("mule", 0.5, [])) == {}

    def test_overlapping_communities(self, random_graph_factory):
        graph = random_graph_factory(10, density=0.6, seed=2)
        result = mule(graph, 0.1)
        participation = vertex_participation(result)
        assert sum(participation.values()) == sum(r.size for r in result)
