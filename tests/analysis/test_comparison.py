"""Unit tests for the measurement/sweep harness used by the benchmarks."""

from __future__ import annotations

import pytest

from repro.analysis.comparison import (
    alpha_sweep,
    parallel_scaling,
    compare_algorithms,
    format_table,
    runtime_vs_output_size,
    size_threshold_sweep,
)
from repro.generators.erdos_renyi import random_uncertain_graph


@pytest.fixture
def small_graphs():
    return {
        "toy-a": random_uncertain_graph(12, 0.5, rng=1),
        "toy-b": random_uncertain_graph(10, 0.4, rng=2),
    }


class TestCompareAlgorithms:
    def test_row_count(self, small_graphs):
        rows = compare_algorithms(small_graphs, [0.5, 0.1])
        assert len(rows) == 2 * 2 * 2  # graphs × alphas × algorithms

    def test_both_algorithms_find_same_cliques(self, small_graphs):
        rows = compare_algorithms(small_graphs, [0.3])
        by_key = {}
        for row in rows:
            by_key.setdefault((row["graph"], row["alpha"]), set()).add(row["num_cliques"])
        assert all(len(counts) == 1 for counts in by_key.values())

    def test_row_fields(self, small_graphs):
        row = compare_algorithms(small_graphs, [0.5], algorithms=("mule",))[0]
        assert {"graph", "n", "m", "alpha", "algorithm", "num_cliques", "elapsed_seconds"} <= set(row)

    def test_algorithm_subset(self, small_graphs):
        rows = compare_algorithms(small_graphs, [0.5], algorithms=("mule",))
        assert all(row["algorithm"] == "mule" for row in rows)


class TestAlphaSweep:
    def test_output_monotone_in_alpha_overall(self, small_graphs):
        """Higher α can only shrink (or rarely keep) the number of cliques."""
        alphas = [0.001, 0.1, 0.5, 0.9]
        rows = alpha_sweep(small_graphs, alphas)
        for name in small_graphs:
            counts = [r["num_cliques"] for r in rows if r["graph"] == name]
            # The paper notes small non-monotonicities are possible but rare;
            # require the first (smallest α) to dominate the last (largest α).
            assert counts[0] >= counts[-1]

    def test_sweep_row_count(self, small_graphs):
        assert len(alpha_sweep(small_graphs, [0.5, 0.1, 0.01])) == 6

    def test_runtime_vs_output_alias(self, small_graphs):
        rows = runtime_vs_output_size(small_graphs, [0.5])
        assert len(rows) == 2


class TestSizeThresholdSweep:
    def test_row_count_and_fields(self, small_graphs):
        rows = size_threshold_sweep(small_graphs, [0.1], [2, 3, 4])
        assert len(rows) == 2 * 1 * 3
        assert all("size_threshold" in row for row in rows)

    def test_output_decreases_with_threshold(self, small_graphs):
        rows = size_threshold_sweep(small_graphs, [0.05], [2, 3, 4, 5])
        for name in small_graphs:
            counts = [r["num_cliques"] for r in rows if r["graph"] == name]
            assert counts == sorted(counts, reverse=True)


class TestFormatTable:
    def test_empty(self):
        assert format_table([]) == "(no rows)"

    def test_contains_headers_and_values(self, small_graphs):
        rows = alpha_sweep(small_graphs, [0.5])
        text = format_table(rows, columns=["graph", "alpha", "num_cliques"])
        assert "graph" in text
        assert "toy-a" in text
        assert "0.5" in text

    def test_handles_missing_cells(self):
        text = format_table([{"a": 1}, {"a": 2, "b": 3}], columns=["a", "b"])
        assert "-" in text


class TestParallelScaling:
    def test_rows_cover_baseline_and_worker_counts(self, small_graphs):
        rows = parallel_scaling(small_graphs, [0.3], worker_counts=(1, 2))
        assert len(rows) == 2 * 1 * 3  # graphs × alphas × (baseline + 2 counts)
        workers_seen = {row["workers"] for row in rows}
        assert workers_seen == {0, 1, 2}

    def test_parity_enforced_and_counts_agree(self, small_graphs):
        rows = parallel_scaling(small_graphs, [0.2], worker_counts=(2,))
        by_key = {}
        for row in rows:
            by_key.setdefault((row["graph"], row["alpha"]), set()).add(
                row["num_cliques"]
            )
        assert all(len(counts) == 1 for counts in by_key.values())

    def test_speedup_column_present(self, small_graphs):
        rows = parallel_scaling(small_graphs, [0.3], worker_counts=(1,))
        assert all("speedup" in row and row["speedup"] > 0 for row in rows)

    def test_parallel_mule_registered_for_compare(self, small_graphs):
        rows = compare_algorithms(
            small_graphs, [0.3], algorithms=("mule", "parallel-mule")
        )
        by_key = {}
        for row in rows:
            by_key.setdefault((row["graph"], row["alpha"]), set()).add(
                row["num_cliques"]
            )
        assert all(len(counts) == 1 for counts in by_key.values())


class TestCompilationSharing:
    """The sweeps run on sessions: one compilation per graph, any α order."""

    @pytest.fixture
    def compile_counter(self, monkeypatch):
        import repro.api.cache as cache_module

        calls = []
        real = cache_module.compile_graph

        def counting(*args, **kwargs):
            calls.append(kwargs.get("alpha"))
            return real(*args, **kwargs)

        monkeypatch.setattr(cache_module, "compile_graph", counting)
        return calls

    def test_compare_algorithms_descending_alphas(self, small_graphs, compile_counter):
        compare_algorithms(small_graphs, [0.5, 0.2, 0.05])
        assert len(compile_counter) == len(small_graphs)

    def test_alpha_sweep_descending_alphas(self, small_graphs, compile_counter):
        alpha_sweep(small_graphs, [0.5, 0.2, 0.05])
        assert len(compile_counter) == len(small_graphs)

    def test_parallel_scaling_descending_alphas(self, small_graphs, compile_counter):
        parallel_scaling(small_graphs, [0.5, 0.1], worker_counts=(1,))
        assert len(compile_counter) == len(small_graphs)
