"""Unit tests for the ASCII chart helpers."""

from __future__ import annotations

import pytest

from repro.analysis.text_plots import ascii_bar_chart, ascii_line_chart


class TestLineChart:
    def test_contains_title_axes_and_legend(self):
        chart = ascii_line_chart(
            {"runtime": [(0.001, 10.0), (0.01, 5.0), (0.1, 2.0)]},
            title="runtime vs alpha",
            x_label="alpha",
            y_label="s",
        )
        assert "runtime vs alpha" in chart
        assert "alpha" in chart
        assert "o = runtime" in chart
        assert "|" in chart and "-" in chart

    def test_multiple_series_use_distinct_markers(self):
        chart = ascii_line_chart(
            {"a": [(1, 1), (2, 2)], "b": [(1, 2), (2, 1)]}
        )
        assert "o = a" in chart
        assert "x = b" in chart
        body = chart.split("legend")[0]
        assert "o" in body and "x" in body

    def test_log_axes_handle_small_values(self):
        chart = ascii_line_chart(
            {"counts": [(0.0001, 1000.0), (0.1, 10.0), (1.0, 1.0)]},
            log_x=True,
            log_y=True,
        )
        assert "0.0001" in chart
        assert "1000" in chart

    def test_empty_series(self):
        assert "(no data)" in ascii_line_chart({}, title="empty")

    def test_single_point_does_not_crash(self):
        chart = ascii_line_chart({"single": [(1.0, 1.0)]})
        assert "single" in chart

    def test_too_small_area_rejected(self):
        with pytest.raises(ValueError):
            ascii_line_chart({"a": [(1, 1)]}, width=5, height=2)

    def test_line_count_matches_height(self):
        height = 12
        chart = ascii_line_chart({"a": [(1, 1), (2, 5)]}, height=height, title="t")
        plot_rows = [line for line in chart.splitlines() if "|" in line]
        assert len(plot_rows) == height


class TestBarChart:
    def test_bars_scale_with_values(self):
        chart = ascii_bar_chart({"mule": 1.0, "dfs-noip": 4.0}, width=40)
        lines = {line.split("|")[0].strip(): line for line in chart.splitlines()}
        assert lines["dfs-noip"].count("#") > lines["mule"].count("#")

    def test_values_printed(self):
        chart = ascii_bar_chart({"x": 2.5}, unit="s")
        assert "2.5s" in chart

    def test_title_included(self):
        assert ascii_bar_chart({"x": 1.0}, title="Figure 1").startswith("Figure 1")

    def test_empty_values(self):
        assert "(no data)" in ascii_bar_chart({}, title="none")

    def test_zero_values_do_not_crash(self):
        chart = ascii_bar_chart({"a": 0.0, "b": 0.0})
        assert "a" in chart and "b" in chart
