"""Unit tests for the (k, η)-core extension."""

from __future__ import annotations

import random

import pytest

from repro.errors import ParameterError, ProbabilityError
from repro.extensions.uncertain_core import (
    degree_tail_probability,
    eta_degree,
    eta_degrees,
    k_eta_core,
    uncertain_core_decomposition,
)
from repro.generators.erdos_renyi import random_uncertain_graph
from repro.uncertain.graph import UncertainGraph
from repro.uncertain.sampling import sample_possible_world


@pytest.fixture
def triangle_with_tail() -> UncertainGraph:
    return UncertainGraph(
        edges=[(1, 2, 0.9), (2, 3, 0.9), (1, 3, 0.9), (3, 4, 0.9), (4, 5, 0.2)]
    )


class TestDegreeTailProbability:
    def test_simple_values(self):
        assert degree_tail_probability([0.5, 0.5], 1) == pytest.approx(0.75)
        assert degree_tail_probability([0.5, 0.5], 2) == pytest.approx(0.25)

    def test_boundaries(self):
        assert degree_tail_probability([], 0) == 1.0
        assert degree_tail_probability([], 1) == 0.0
        assert degree_tail_probability([0.3], 2) == 0.0

    def test_certain_edges(self):
        assert degree_tail_probability([1.0, 1.0, 1.0], 3) == pytest.approx(1.0)

    def test_matches_monte_carlo(self):
        rng = random.Random(7)
        probabilities = [rng.uniform(0.1, 0.9) for _ in range(6)]
        k = 3
        exact = degree_tail_probability(probabilities, k)
        samples = 4000
        hits = 0
        for _ in range(samples):
            degree = sum(1 for p in probabilities if rng.random() < p)
            if degree >= k:
                hits += 1
        assert hits / samples == pytest.approx(exact, abs=0.05)

    def test_tail_is_monotone_in_k(self):
        probabilities = [0.4, 0.7, 0.2, 0.9]
        tails = [degree_tail_probability(probabilities, k) for k in range(6)]
        assert tails == sorted(tails, reverse=True)


class TestEtaDegree:
    def test_definition(self):
        g = UncertainGraph(edges=[(1, 2, 0.9), (1, 3, 0.9)])
        assert eta_degree(g, 1, 0.8) == 2
        assert eta_degree(g, 1, 0.95) == 1
        assert eta_degree(g, 2, 0.5) == 1

    def test_isolated_vertex(self):
        g = UncertainGraph(vertices=[1])
        assert eta_degree(g, 1, 0.5) == 0

    def test_eta_one_requires_certain_edges(self):
        g = UncertainGraph(edges=[(1, 2, 1.0), (1, 3, 0.99)])
        assert eta_degree(g, 1, 1.0) == 1

    def test_monotone_in_eta(self):
        g = UncertainGraph(edges=[(1, 2, 0.6), (1, 3, 0.7), (1, 4, 0.8)])
        degrees = [eta_degree(g, 1, eta) for eta in (0.1, 0.3, 0.5, 0.7, 0.9)]
        assert degrees == sorted(degrees, reverse=True)

    def test_at_most_skeleton_degree(self):
        g = random_uncertain_graph(15, 0.4, rng=3)
        for v in g.vertices():
            assert eta_degree(g, v, 0.3) <= g.degree(v)

    def test_invalid_eta(self):
        g = UncertainGraph(edges=[(1, 2, 0.5)])
        with pytest.raises(ProbabilityError):
            eta_degree(g, 1, 0.0)

    def test_eta_degrees_covers_all_vertices(self, triangle_with_tail):
        degrees = eta_degrees(triangle_with_tail, 0.5)
        assert set(degrees) == set(triangle_with_tail.vertices())


class TestCoreDecomposition:
    def test_triangle_with_tail(self, triangle_with_tail):
        cores = uncertain_core_decomposition(triangle_with_tail, 0.5)
        assert cores[5] == 0  # its only edge has probability 0.2 < eta
        assert cores[4] == 1
        assert cores[1] == cores[2] == cores[3] == 2

    def test_core_number_at_most_eta_degree(self):
        g = random_uncertain_graph(18, 0.35, rng=5)
        eta = 0.4
        cores = uncertain_core_decomposition(g, eta)
        degrees = eta_degrees(g, eta)
        assert all(cores[v] <= degrees[v] for v in g.vertices())

    def test_higher_eta_never_increases_core_numbers(self):
        g = random_uncertain_graph(16, 0.4, rng=9)
        low = uncertain_core_decomposition(g, 0.2)
        high = uncertain_core_decomposition(g, 0.8)
        assert all(high[v] <= low[v] for v in g.vertices())

    def test_certain_graph_matches_deterministic_cores(self):
        from repro.deterministic.ordering import core_numbers
        from repro.uncertain.builder import from_skeleton
        from repro.generators.erdos_renyi import erdos_renyi_skeleton

        skeleton = erdos_renyi_skeleton(20, 0.3, rng=11)
        certain = from_skeleton(skeleton, lambda u, v: 1.0)
        uncertain_cores = uncertain_core_decomposition(certain, 1.0)
        deterministic_cores = core_numbers(skeleton)
        assert uncertain_cores == deterministic_cores

    def test_empty_graph(self):
        assert uncertain_core_decomposition(UncertainGraph(), 0.5) == {}


class TestKEtaCore:
    def test_core_membership_consistent_with_decomposition(self):
        g = random_uncertain_graph(15, 0.45, rng=13)
        eta = 0.3
        cores = uncertain_core_decomposition(g, eta)
        for k in (1, 2, 3):
            members = set(k_eta_core(g, k, eta).vertices())
            expected = {v for v, c in cores.items() if c >= k}
            assert members == expected

    def test_every_member_satisfies_degree_requirement(self, triangle_with_tail):
        core = k_eta_core(triangle_with_tail, 2, 0.5)
        for v in core.vertices():
            assert eta_degree(core, v, 0.5) >= 2

    def test_k_zero_returns_whole_graph(self, triangle_with_tail):
        core = k_eta_core(triangle_with_tail, 0, 0.5)
        assert set(core.vertices()) == set(triangle_with_tail.vertices())

    def test_negative_k_rejected(self, triangle_with_tail):
        with pytest.raises(ParameterError):
            k_eta_core(triangle_with_tail, -1, 0.5)

    def test_cliques_live_inside_cores(self):
        """Every α-maximal clique of size k+1 lies inside the (k, η)-core for η ≤ α."""
        from repro.core.mule import mule

        g = random_uncertain_graph(14, 0.5, rng=21)
        alpha = 0.3
        result = mule(g, alpha)
        core = set(k_eta_core(g, 2, alpha).vertices())
        for record in result:
            if record.size >= 3:
                assert set(record.vertices) <= core
