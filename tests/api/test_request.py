"""Validation and normalisation tests for EnumerationRequest."""

from __future__ import annotations

import pytest

from repro.api import EnumerationRequest
from repro.errors import ParameterError, ProbabilityError


class TestNormalisation:
    @pytest.mark.parametrize(
        "alias,canonical",
        [
            ("mule", "mule"),
            ("fast", "fast"),
            ("fast-mule", "fast"),
            ("fast_mule", "fast"),
            ("noip", "noip"),
            ("dfs-noip", "noip"),
            ("large", "large"),
            ("large-mule", "large"),
            ("top_k", "top_k"),
            ("top-k", "top_k"),
        ],
    )
    def test_algorithm_aliases(self, alias, canonical):
        kwargs = {"alpha": 0.5}
        if canonical == "large":
            kwargs["size_threshold"] = 3
        if canonical == "top_k":
            kwargs["k"] = 1
        assert EnumerationRequest(algorithm=alias, **kwargs).algorithm == canonical

    def test_alpha_is_validated_and_coerced(self):
        request = EnumerationRequest(algorithm="mule", alpha="0.5")
        assert request.alpha == 0.5
        assert isinstance(request.alpha, float)

    def test_labels(self):
        assert EnumerationRequest(algorithm="mule", alpha=0.5).label == "mule"
        assert EnumerationRequest(algorithm="fast", alpha=0.5).label == "fast-mule"
        assert EnumerationRequest(algorithm="noip", alpha=0.5).label == "dfs-noip"
        assert (
            EnumerationRequest(algorithm="large", alpha=0.5, size_threshold=3).label
            == "large-mule"
        )
        assert EnumerationRequest(algorithm="top_k", alpha=0.5, k=1).label == "top-k"
        assert (
            EnumerationRequest(algorithm="mule", alpha=0.5, workers=4).label
            == "parallel-mule"
        )


class TestValidation:
    def test_unknown_algorithm(self):
        with pytest.raises(ParameterError):
            EnumerationRequest(algorithm="bron-kerbosch", alpha=0.5)

    def test_invalid_alpha(self):
        with pytest.raises(ProbabilityError):
            EnumerationRequest(algorithm="mule", alpha=1.5)

    def test_alpha_required_except_top_k(self):
        with pytest.raises(ParameterError):
            EnumerationRequest(algorithm="mule")
        assert EnumerationRequest(algorithm="top_k", k=3).alpha is None

    def test_top_k_requires_positive_k(self):
        with pytest.raises(ParameterError):
            EnumerationRequest(algorithm="top_k")
        with pytest.raises(ParameterError):
            EnumerationRequest(algorithm="top_k", k=0)
        with pytest.raises(ParameterError):
            EnumerationRequest(algorithm="top_k", k=3, min_size=0)

    def test_k_rejected_outside_top_k(self):
        with pytest.raises(ParameterError):
            EnumerationRequest(algorithm="mule", alpha=0.5, k=3)

    def test_large_requires_size_threshold(self):
        with pytest.raises(ParameterError):
            EnumerationRequest(algorithm="large", alpha=0.5)
        with pytest.raises(ParameterError):
            EnumerationRequest(algorithm="large", alpha=0.5, size_threshold=1)

    def test_size_threshold_rejected_outside_large(self):
        with pytest.raises(ParameterError):
            EnumerationRequest(algorithm="mule", alpha=0.5, size_threshold=3)

    def test_workers_must_be_positive(self):
        with pytest.raises(ParameterError):
            EnumerationRequest(algorithm="mule", alpha=0.5, workers=0)

    def test_parallel_only_for_mule_family(self):
        with pytest.raises(ParameterError):
            EnumerationRequest(algorithm="noip", alpha=0.5, workers=2)
        # fast-mule may shard like mule.
        EnumerationRequest(algorithm="fast", alpha=0.5, workers=2)

    def test_serial_execution_rejects_many_workers(self):
        with pytest.raises(ParameterError):
            EnumerationRequest(
                algorithm="mule", alpha=0.5, workers=2, execution="serial"
            )

    def test_unknown_execution_and_backend(self):
        with pytest.raises(ParameterError):
            EnumerationRequest(algorithm="mule", alpha=0.5, execution="threads")
        with pytest.raises(ParameterError):
            EnumerationRequest(algorithm="mule", alpha=0.5, backend="threads")

    def test_unknown_kernel(self):
        with pytest.raises(ParameterError):
            EnumerationRequest(algorithm="mule", alpha=0.5, kernel="simd")

    def test_kernel_accepted_for_mule_family(self):
        for algorithm in ("mule", "fast", "large", "top_k"):
            kwargs = {"alpha": 0.5}
            if algorithm == "large":
                kwargs["size_threshold"] = 3
            if algorithm == "top_k":
                kwargs = {"k": 3}
            request = EnumerationRequest(
                algorithm=algorithm, kernel="vector", **kwargs
            )
            assert request.kernel == "vector"

    def test_vector_kernel_rejected_for_noip(self):
        # DFS-NOIP is the from-scratch baseline; accelerating it would
        # change what the Figure 1 experiment measures.
        with pytest.raises(ParameterError):
            EnumerationRequest(algorithm="noip", alpha=0.5, kernel="vector")
        # 'python' and 'auto' stay valid (auto resolves to python).
        assert (
            EnumerationRequest(
                algorithm="noip", alpha=0.5, kernel="python"
            ).kernel
            == "python"
        )
        assert EnumerationRequest(algorithm="noip", alpha=0.5).kernel == "auto"


class TestExecutionResolution:
    def test_default_is_serial(self):
        assert not EnumerationRequest(algorithm="mule", alpha=0.5).parallel

    def test_many_workers_is_parallel(self):
        assert EnumerationRequest(algorithm="mule", alpha=0.5, workers=2).parallel

    def test_none_workers_is_parallel(self):
        assert EnumerationRequest(algorithm="mule", alpha=0.5, workers=None).parallel

    def test_forced_parallel_single_worker(self):
        request = EnumerationRequest(
            algorithm="mule", alpha=0.5, workers=1, execution="parallel"
        )
        assert request.parallel
        assert request.label == "parallel-mule"

    def test_compile_options(self):
        request = EnumerationRequest(algorithm="mule", alpha=0.5)
        assert request.compile_alpha() == 0.5
        assert request.compile_size_threshold() is None
        unpruned = EnumerationRequest(algorithm="mule", alpha=0.5, prune_edges=False)
        assert unpruned.compile_alpha() is None
        snf = EnumerationRequest(algorithm="large", alpha=0.5, size_threshold=4)
        assert snf.compile_size_threshold() == 4
        plain = EnumerationRequest(
            algorithm="large",
            alpha=0.5,
            size_threshold=4,
            shared_neighborhood_filtering=False,
        )
        assert plain.compile_size_threshold() is None

    def test_with_alpha(self):
        request = EnumerationRequest(algorithm="mule", alpha=0.5)
        assert request.with_alpha(0.25).alpha == 0.25
        assert request.alpha == 0.5  # original untouched
