"""Tests for the compiled-graph cache (keys, derivation, accounting, LRU)."""

from __future__ import annotations

import pytest

from repro.api.cache import CacheInfo, CompiledGraphCache
from repro.core.engine import compile_graph
from repro.core.pruning import PruningReport
from repro.errors import ParameterError
from repro.uncertain.graph import UncertainGraph


@pytest.fixture
def graph():
    return UncertainGraph(
        edges=[(1, 2, 0.9), (2, 3, 0.7), (1, 3, 0.5), (3, 4, 0.3)]
    )


def compiled_equal(a, b):
    return (
        a.labels == b.labels
        and a.adjacency_mask == b.adjacency_mask
        and a.adjacency_probability == b.adjacency_probability
    )


class TestLookup:
    def test_exact_hit(self, graph):
        cache = CompiledGraphCache()
        fp = graph.fingerprint()
        first = cache.get(graph, fp, alpha=0.5)
        second = cache.get(graph, fp, alpha=0.5)
        assert first is second
        info = cache.info()
        assert (info.hits, info.compilations, info.derivations) == (1, 1, 0)
        assert info.misses == info.compilations + info.derivations

    def test_derivation_matches_full_compilation(self, graph):
        cache = CompiledGraphCache()
        fp = graph.fingerprint()
        cache.get(graph, fp)  # unpruned base
        derived = cache.get(graph, fp, alpha=0.6)
        assert compiled_equal(derived, compile_graph(graph, alpha=0.6))
        assert cache.info().compilations == 1
        assert cache.info().derivations == 1

    def test_derivation_prefers_highest_legal_base(self, graph):
        cache = CompiledGraphCache()
        fp = graph.fingerprint()
        cache.get(graph, fp)             # alpha=None base
        cache.get(graph, fp, alpha=0.4)  # derived, now also a base
        derived = cache.get(graph, fp, alpha=0.6)  # must derive from 0.4 legally
        assert compiled_equal(derived, compile_graph(graph, alpha=0.6))

    def test_no_derivation_downward(self, graph):
        # A base pruned at 0.6 must not serve alpha=0.4 (edges are gone).
        cache = CompiledGraphCache()
        fp = graph.fingerprint()
        cache.get(graph, fp, alpha=0.6)
        lower = cache.get(graph, fp, alpha=0.4)
        assert compiled_equal(lower, compile_graph(graph, alpha=0.4))
        assert cache.info().compilations == 2
        assert cache.info().derivations == 0

    def test_snf_entries_never_derive(self, graph):
        cache = CompiledGraphCache()
        fp = graph.fingerprint()
        cache.get(graph, fp)  # plain base present
        filtered = cache.get(graph, fp, alpha=0.4, size_threshold=3)
        assert compiled_equal(
            filtered, compile_graph(graph, alpha=0.4, size_threshold=3)
        )
        assert cache.info().derivations == 0
        assert cache.info().compilations == 2
        # ...and an SNF entry is never used as a derivation base.
        plain = cache.get(graph, fp, alpha=0.45)
        assert compiled_equal(plain, compile_graph(graph, alpha=0.45))

    def test_distinct_graphs_do_not_collide(self, graph):
        other = UncertainGraph(edges=[(1, 2, 0.9)])
        cache = CompiledGraphCache()
        a = cache.get(graph, graph.fingerprint(), alpha=0.5)
        b = cache.get(other, other.fingerprint(), alpha=0.5)
        assert a.n != b.n
        assert cache.info().compilations == 2

    def test_pruning_report_forces_compile(self, graph):
        cache = CompiledGraphCache()
        fp = graph.fingerprint()
        cache.get(graph, fp, alpha=0.4, size_threshold=3)
        report = PruningReport()
        cache.get(graph, fp, alpha=0.4, size_threshold=3, pruning_report=report)
        # The filter genuinely ran again and filled the fresh report: the
        # 0.3 edge is pruned at alpha=0.4, leaving vertex 4 isolated, so the
        # t=3 filter removes it.
        assert report.rounds >= 1
        assert report.vertices_removed >= 1
        assert cache.info().compilations == 2


class TestStore:
    def test_adopt_is_served_as_hit(self, graph):
        cache = CompiledGraphCache()
        fp = graph.fingerprint()
        precompiled = compile_graph(graph, alpha=0.5)
        cache.adopt(fp, precompiled, alpha=0.5)
        assert cache.get(graph, fp, alpha=0.5) is precompiled
        assert cache.info().compilations == 0

    def test_lru_eviction(self, graph):
        cache = CompiledGraphCache(maxsize=2)
        fp = graph.fingerprint()
        cache.get(graph, fp, alpha=0.3)
        cache.get(graph, fp, alpha=0.5)  # derived; 0.3 touched as base
        cache.get(graph, fp, alpha=0.7)  # derived from 0.5; evicts 0.3
        assert len(cache) == 2
        before = cache.info().misses
        cache.get(graph, fp, alpha=0.5)  # still cached
        assert cache.info().misses == before
        cache.get(graph, fp, alpha=0.3)  # evicted → miss (recompiled)
        assert cache.info().misses == before + 1

    def test_derivation_base_stays_resident_under_lru_pressure(self, graph):
        # Deriving from a base must refresh its recency: a wide sweep
        # evicts its one-shot derived artifacts, never the base, so it
        # keeps compiling exactly once.
        cache = CompiledGraphCache(maxsize=2)
        fp = graph.fingerprint()
        cache.get(graph, fp, alpha=0.1)  # the base
        cache.get(graph, fp, alpha=0.5)  # derived (touches the base)
        cache.get(graph, fp, alpha=0.2)  # derives from 0.1 → evicts 0.5
        cache.get(graph, fp, alpha=0.3)  # still derivable from the base
        assert cache.info().compilations == 1
        assert cache.info().derivations == 3

    def test_concurrent_gets_are_safe(self, graph):
        # The cache is documented as shareable across sessions: hammer it
        # from several threads (hits, derivations, evictions) and require
        # consistent counters and no OrderedDict-mutation errors.
        import threading

        cache = CompiledGraphCache(maxsize=4)
        fp = graph.fingerprint()
        alphas = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8]
        errors = []

        def worker(offset):
            try:
                for i in range(60):
                    cache.get(graph, fp, alpha=alphas[(i + offset) % len(alphas)])
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        info = cache.info()
        assert info.misses == info.compilations + info.derivations
        assert info.hits + info.misses == 4 * 60
        assert len(cache) <= 4

    def test_invalid_maxsize(self):
        with pytest.raises(ParameterError):
            CompiledGraphCache(maxsize=0)

    def test_clear(self, graph):
        cache = CompiledGraphCache()
        cache.get(graph, graph.fingerprint(), alpha=0.5)
        cache.clear()
        assert len(cache) == 0
        assert cache.info() == (0, 0, 0, 0, 0)


class TestPerFingerprintCounters:
    """The per-graph view behind multi-graph service stats."""

    def test_counters_separate_by_fingerprint(self, graph):
        import random

        from repro.generators.erdos_renyi import random_uncertain_graph

        other = random_uncertain_graph(10, 0.5, rng=random.Random(3))
        cache = CompiledGraphCache()
        fp, other_fp = graph.fingerprint(), other.fingerprint()
        cache.get(graph, fp, alpha=0.3)
        cache.get(graph, fp, alpha=0.3)  # hit
        cache.get(graph, fp, alpha=0.5)  # derived
        cache.get(other, other_fp, alpha=0.3)
        mine, theirs = cache.info_for(fp), cache.info_for(other_fp)
        assert (mine.hits, mine.compilations, mine.derivations) == (1, 1, 1)
        assert (theirs.hits, theirs.compilations, theirs.derivations) == (0, 1, 0)
        assert cache.info().compilations == 2
        assert cache.info_for("unseen").entries == 0

    def test_discard_drops_entries_and_counters(self, graph):
        cache = CompiledGraphCache()
        fp = graph.fingerprint()
        cache.get(graph, fp, alpha=0.3)
        removed = cache.discard(fp)
        assert removed == 1
        assert len(cache) == 0
        assert cache.info_for(fp) == CacheInfo(0, 0, 0, 0, 0)
        # Global history survives a discard.
        assert cache.info().compilations == 1

    def test_counters_pruned_when_last_artifact_evicts(self, graph):
        import random

        from repro.generators.erdos_renyi import random_uncertain_graph

        cache = CompiledGraphCache(maxsize=2)
        fp = graph.fingerprint()
        cache.get(graph, fp, alpha=0.3)
        assert cache.info_for(fp).compilations == 1
        # Two fresh graphs push the first graph's only artifact out; its
        # per-fingerprint counters must leave with it (bounded counter map).
        for seed in (5, 6):
            g = random_uncertain_graph(8, 0.5, rng=random.Random(seed))
            cache.get(g, g.fingerprint(), alpha=0.3)
        assert cache.info_for(fp) == CacheInfo(0, 0, 0, 0, 0)
