"""GraphStore tests — resolution, CRUD, budgeted eviction, shared caching.

The resource-layer guarantees pinned here:

* references resolve by name, full fingerprint or unambiguous 8+-char
  prefix; everything else is a :class:`GraphNotFoundError`;
* registration is idempotent by content (two ``==`` graphs share a
  session) and the first graph becomes the default;
* the LRU budget evicts only unpinned, non-default graphs — and eviction
  drops the victim's compiled artifacts and per-graph counters;
* all sessions share one cache, yet per-graph counters stay separable.
"""

from __future__ import annotations

import random
import threading

import pytest

from repro.api import EnumerationRequest, GraphStore
from repro.errors import GraphNotFoundError, StoreError
from repro.generators.erdos_renyi import random_uncertain_graph
from repro.uncertain.graph import UncertainGraph


def graph_a():
    return UncertainGraph(edges=[(1, 2, 0.9), (2, 3, 0.8), (1, 3, 0.7)])


def graph_b():
    return UncertainGraph(edges=[("x", "y", 0.5), ("y", "z", 0.6)])


@pytest.fixture
def store():
    return GraphStore()


class TestRegistration:
    def test_first_graph_becomes_default(self, store):
        info = store.add(graph_a())
        assert info.default
        assert store.default_fingerprint == info.fingerprint
        assert store.get(None).fingerprint == info.fingerprint

    def test_add_is_idempotent_by_content(self, store):
        first = store.add(graph_a(), name="a")
        second = store.add(graph_a())
        assert first.fingerprint == second.fingerprint
        assert len(store) == 1
        assert store.session("a") is store.session(first.fingerprint)

    def test_readding_merges_metadata(self, store):
        info = store.add(graph_a())
        assert not info.pinned and info.name is None
        info = store.add(graph_a(), name="a", pin=True)
        assert info.pinned and info.name == "a"

    def test_name_collision_with_different_graph_rejected(self, store):
        store.add(graph_a(), name="taken")
        with pytest.raises(StoreError, match="already refers"):
            store.add(graph_b(), name="taken")

    def test_invalid_names_rejected(self, store):
        for bad in ("", "has space", "/slash", "-leading", "a" * 200):
            with pytest.raises(StoreError, match="invalid graph name"):
                store.add(graph_a(), name=bad)

    def test_add_dataset_registers_under_canonical_name(self, store):
        info = store.add_dataset("PPI", scale=0.01, seed=3)
        assert info.name == "ppi"
        assert info.pinned
        assert store.graph("ppi").num_vertices > 0

    def test_add_dataset_resolves_aliases(self, store):
        info = store.add_dataset("dblp", scale=0.001, seed=3)
        assert info.name == "dblp10"


class TestResolution:
    def test_resolve_by_name_fingerprint_and_prefix(self, store):
        info = store.add(graph_a(), name="a")
        fp = info.fingerprint
        assert store.resolve("a") == fp
        assert store.resolve(fp) == fp
        assert store.resolve(fp[:12]) == fp

    def test_short_prefix_rejected(self, store):
        info = store.add(graph_a())
        with pytest.raises(GraphNotFoundError):
            store.resolve(info.fingerprint[:6])

    def test_ambiguous_prefix_rejected(self, store, monkeypatch):
        a = store.add(graph_a()).fingerprint
        b = store.add(graph_b()).fingerprint
        shared = 0
        while shared < len(a) and a[shared] == b[shared]:
            shared += 1
        if shared >= 8:  # pragma: no cover - astronomically unlikely
            with pytest.raises(StoreError, match="ambiguous"):
                store.resolve(a[:shared])

    def test_name_colliding_with_another_graphs_prefix_is_ambiguous(
        self, store
    ):
        """Regression: exact-name used to win silently over a prefix.

        A ref that is the registered name of one graph *and* a valid
        ≥8-char fingerprint prefix of a different graph is claimed by
        two graphs at once — that must raise the ambiguity
        :class:`StoreError`, not quietly answer the named graph.
        """
        a = store.add(graph_a()).fingerprint
        collider = a[:8]  # hex prefix is a valid graph name
        store.add(graph_b(), name=collider)
        with pytest.raises(StoreError, match="ambiguous"):
            store.resolve(collider)
        # Unambiguous references to either graph still work.
        assert store.resolve(a) == a
        assert store.resolve(a[:12]) == a

    def test_name_colliding_with_own_fingerprint_resolves(self, store):
        """Exact-name wins when the collision is with the graph itself."""
        a = store.add(graph_a()).fingerprint
        info = store.add(graph_a(), name=a[:8])
        assert info.fingerprint == a
        assert store.resolve(a[:8]) == a

    def test_name_colliding_with_full_fingerprint_is_ambiguous(self, store):
        """A name equal to a *different* graph's full fingerprint raises."""
        a = store.add(graph_a()).fingerprint
        store.add(graph_b(), name=a)
        with pytest.raises(StoreError, match="ambiguous"):
            store.resolve(a)

    def test_unknown_reference_names_available(self, store):
        store.add(graph_a(), name="a")
        with pytest.raises(GraphNotFoundError, match="registered names: a"):
            store.session("missing")

    def test_empty_store_has_no_default(self, store):
        with pytest.raises(StoreError, match="no default"):
            store.session(None)

    def test_contains(self, store):
        store.add(graph_a(), name="a")
        assert "a" in store
        assert "missing" not in store
        assert 42 not in store


class TestRemoval:
    def test_remove_drops_session_names_and_artifacts(self, store):
        store.add(graph_a(), name="a")
        info = store.add(graph_b(), name="b")
        store.session("b").enumerate(EnumerationRequest(algorithm="mule", alpha=0.4))
        assert store.cache_info_for("b").entries > 0
        removed = store.remove("b")
        assert removed.fingerprint == info.fingerprint
        assert "b" not in store
        assert store.cache.info_for(info.fingerprint).entries == 0

    def test_default_graph_cannot_be_removed_while_others_resident(self, store):
        store.add(graph_a(), name="a")
        store.add(graph_b(), name="b")
        with pytest.raises(StoreError, match="default"):
            store.remove("a")
        store.set_default("b")
        store.remove("a")
        assert "a" not in store

    def test_removing_the_only_graph_clears_the_default(self, store):
        store.add(graph_a(), name="a")
        store.remove("a")
        assert store.default_fingerprint is None
        assert len(store) == 0


class TestEviction:
    def bulk(self, n):
        return [
            random_uncertain_graph(6, 0.5, rng=random.Random(seed))
            for seed in range(n)
        ]

    def test_lru_eviction_beyond_budget(self):
        store = GraphStore(max_graphs=3)
        infos = [store.add(g) for g in self.bulk(3)]
        # Touch the second graph so the third is the LRU victim... but the
        # first is the (protected) default, so victim = graphs[2].
        store.session(infos[1].fingerprint)
        store.add(graph_b())
        assert len(store) == 3
        assert infos[1].fingerprint in store
        assert infos[2].fingerprint not in store

    def test_eviction_skips_pinned_graphs(self):
        store = GraphStore(max_graphs=2)
        store.add(graph_a(), name="keep", pin=True)
        victim = store.add(self.bulk(1)[0])
        store.add(graph_b())
        assert "keep" in store
        assert victim.fingerprint not in store

    def test_all_pinned_budget_exhausted_raises(self):
        store = GraphStore(max_graphs=2)
        store.add(graph_a(), pin=True)
        store.add(graph_b(), pin=True)
        with pytest.raises(StoreError, match="pinned"):
            store.add(self.bulk(1)[0])

    def test_eviction_drops_cache_entries(self):
        store = GraphStore(max_graphs=2)
        store.add(graph_a(), pin=True)
        victim = store.add(self.bulk(1)[0])
        store.session(victim.fingerprint).enumerate(
            EnumerationRequest(algorithm="mule", alpha=0.4)
        )
        assert store.cache.info_for(victim.fingerprint).entries > 0
        store.add(graph_b())
        assert store.cache.info_for(victim.fingerprint).entries == 0

    def test_invalid_budget_rejected(self):
        with pytest.raises(StoreError):
            GraphStore(max_graphs=0)


class TestSharedCache:
    def test_sessions_share_one_cache_with_separable_counters(self, store):
        request = EnumerationRequest(algorithm="mule", alpha=0.4)
        store.add(graph_a(), name="a")
        store.add(graph_b(), name="b")
        store.session("a").sweep([0.2, 0.3, 0.4, 0.5, 0.6])
        store.session("b").enumerate(request)
        assert store.cache_info().compilations == 2
        assert store.cache_info_for("a").compilations == 1
        assert store.cache_info_for("b").compilations == 1
        assert store.cache_info_for("a").derivations >= 4

    def test_ensure_registers_ad_hoc_graphs_once(self, store):
        session = store.ensure(graph_a())
        assert store.ensure(graph_a()) is session
        assert len(store) == 1

    def test_outcomes_do_not_cross_contaminate(self, store):
        request = EnumerationRequest(algorithm="mule", alpha=0.4)
        store.add(graph_a(), name="a")
        store.add(graph_b(), name="b")
        out_a = store.session("a").enumerate(request)
        out_b = store.session("b").enumerate(request)
        assert out_a.vertex_sets() != out_b.vertex_sets()

    def test_concurrent_registration_is_safe(self):
        store = GraphStore()
        graphs = [
            random_uncertain_graph(8, 0.5, rng=random.Random(seed))
            for seed in range(4)
        ]
        errors = []
        barrier = threading.Barrier(8)

        def register(graph):
            try:
                barrier.wait(timeout=5)
                for _ in range(10):
                    store.ensure(graph)
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        threads = [
            threading.Thread(target=register, args=(graphs[i % 4],))
            for i in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert not errors
        assert len(store) == 4

    def test_concurrent_reads_race_eviction_safely(self):
        # len()/default_fingerprint read the registry the writers mutate
        # under the store lock; hammering them against a stream of
        # evicting registrations must never raise (dict-changed-during-
        # iteration, KeyError on a just-evicted default) or tear state.
        store = GraphStore(max_graphs=2)
        graphs = [
            random_uncertain_graph(6, 0.5, rng=random.Random(seed))
            for seed in range(6)
        ]
        errors = []
        barrier = threading.Barrier(4)
        done = threading.Event()

        def churn():
            try:
                barrier.wait(timeout=5)
                for _ in range(20):
                    for graph in graphs:
                        store.ensure(graph)
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append(exc)
            finally:
                done.set()

        def observe():
            try:
                barrier.wait(timeout=5)
                while not done.is_set():
                    assert 0 <= len(store) <= 2
                    fingerprint = store.default_fingerprint
                    assert fingerprint is None or isinstance(fingerprint, str)
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        threads = [threading.Thread(target=churn)] + [
            threading.Thread(target=observe) for _ in range(3)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert not errors
        assert 1 <= len(store) <= 2
