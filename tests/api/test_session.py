"""Tests for MiningSession — dispatch parity, cache behaviour, sweeps/batches.

The central guarantees pinned here:

* session dispatch is bit-identical (cliques, probabilities, counters) to
  every legacy free function, cold cache and warm cache alike;
* ``sweep`` over many α values performs exactly one graph compilation
  (asserted via ``cache_info``) while matching per-α ``mule`` runs;
* the parallel path reuses the session artifact and keeps the
  ``parallel-mule`` merge semantics.
"""

from __future__ import annotations

import pytest

from repro.api import (
    CompiledGraphCache,
    EnumerationOutcome,
    EnumerationRequest,
    MiningSession,
)
from repro.core.dfs_noip import dfs_noip
from repro.core.engine import RunControls, StopReason, compile_graph
from repro.core.fast_mule import fast_mule
from repro.core.large_mule import large_mule
from repro.core.mule import mule
from repro.core.top_k import top_k_by_threshold_search, top_k_maximal_cliques
from repro.errors import ParameterError
from repro.parallel import parallel_mule
from repro.uncertain.graph import UncertainGraph


def records_map(result):
    return {record.vertices: record.probability for record in result}


def assert_matches_result(outcome, result):
    """Outcome and legacy result agree bit-for-bit (cliques and counters)."""
    outcome.assert_matches(result)
    assert outcome.algorithm == result.algorithm


@pytest.fixture
def graph(random_graph_factory):
    return random_graph_factory(14, density=0.5, seed=21)


class TestDispatchParity:
    """session.enumerate vs the legacy free functions, per algorithm."""

    def test_mule(self, graph):
        outcome = MiningSession(graph).enumerate(
            EnumerationRequest(algorithm="mule", alpha=0.2)
        )
        assert_matches_result(outcome, mule(graph, 0.2))

    def test_fast_mule(self, graph):
        outcome = MiningSession(graph).enumerate(
            EnumerationRequest(algorithm="fast-mule", alpha=0.2)
        )
        assert_matches_result(outcome, fast_mule(graph, 0.2))

    def test_dfs_noip(self, graph):
        outcome = MiningSession(graph).enumerate(
            EnumerationRequest(algorithm="dfs-noip", alpha=0.2)
        )
        assert_matches_result(outcome, dfs_noip(graph, 0.2))

    def test_large_mule(self, graph):
        outcome = MiningSession(graph).enumerate(
            EnumerationRequest(algorithm="large", alpha=0.1, size_threshold=3)
        )
        assert_matches_result(outcome, large_mule(graph, 0.1, 3))

    def test_top_k_fixed_alpha(self, graph):
        outcome = MiningSession(graph).enumerate(
            EnumerationRequest(algorithm="top_k", alpha=0.2, k=5)
        )
        legacy = top_k_maximal_cliques(graph, 5, 0.2)
        assert [r.vertices for r in outcome.records] == [r.vertices for r in legacy]
        assert outcome.alpha == legacy.alpha
        assert outcome.stop_reason == legacy.stop_reason

    def test_top_k_threshold_search(self, graph):
        outcome = MiningSession(graph).enumerate(
            EnumerationRequest(algorithm="top_k", k=5, alpha=None)
        )
        legacy = top_k_by_threshold_search(graph, 5)
        assert [r.vertices for r in outcome.records] == [r.vertices for r in legacy]
        assert outcome.alpha == legacy.alpha
        # The descent total is stamped after the stopwatch closes.
        assert outcome.elapsed_seconds > 0.0

    def test_parallel(self, graph):
        outcome = MiningSession(graph).enumerate(
            EnumerationRequest(
                algorithm="mule", alpha=0.2, workers=2, backend="inline"
            )
        )
        assert outcome.algorithm == "parallel-mule"
        reference = parallel_mule(graph, 0.2, workers=2, backend="inline")
        outcome.assert_matches(reference)

    def test_warm_cache_results_identical_to_cold(self, graph):
        session = MiningSession(graph)
        request = EnumerationRequest(algorithm="mule", alpha=0.2)
        cold = session.enumerate(request)
        warm = session.enumerate(request)
        assert session.cache_info().hits >= 1
        warm.assert_matches(cold)

    def test_unpruned_request(self, graph):
        outcome = MiningSession(graph).enumerate(
            EnumerationRequest(algorithm="mule", alpha=0.2, prune_edges=False)
        )
        assert records_map(outcome) == records_map(mule(graph, 0.2))

    def test_controls_are_honoured(self, graph):
        outcome = MiningSession(graph).enumerate(
            EnumerationRequest(
                algorithm="mule", alpha=0.05, controls=RunControls(max_cliques=3)
            )
        )
        assert outcome.num_cliques == 3
        assert outcome.truncated
        assert outcome.stop_reason == StopReason.MAX_CLIQUES

    def test_empty_graph(self):
        outcome = MiningSession(UncertainGraph()).enumerate(
            EnumerationRequest(algorithm="mule", alpha=0.5)
        )
        assert outcome.num_cliques == 0
        assert not outcome.truncated
        assert isinstance(outcome, EnumerationOutcome)

    def test_to_result_roundtrip(self, graph):
        outcome = MiningSession(graph).enumerate(
            EnumerationRequest(algorithm="mule", alpha=0.2)
        )
        result = outcome.to_result()
        assert result.algorithm == "mule"
        assert records_map(result) == records_map(mule(graph, 0.2))


class TestSweepAndBatch:
    ALPHAS = [0.05, 0.1, 0.2, 0.4, 0.8]

    def test_sweep_single_compilation_and_parity(self, graph):
        """The acceptance criterion: ≥5 α values, one compilation, identical
        cliques and counters vs per-α mule."""
        session = MiningSession(graph)
        outcomes = session.sweep(self.ALPHAS)
        assert session.cache_info().compilations == 1
        assert session.cache_info().derivations == len(self.ALPHAS) - 1
        for alpha, outcome in zip(self.ALPHAS, outcomes):
            outcome.assert_matches(mule(graph, alpha))

    def test_sweep_order_does_not_matter(self, graph):
        descending = list(reversed(self.ALPHAS))
        session = MiningSession(graph)
        outcomes = session.sweep(descending)
        assert session.cache_info().compilations == 1
        for alpha, outcome in zip(descending, outcomes):
            assert records_map(outcome) == records_map(mule(graph, alpha))

    def test_sweep_forwards_options(self, graph):
        session = MiningSession(graph)
        outcomes = session.sweep(
            [0.1, 0.2], controls=RunControls(max_cliques=2), prune_edges=False
        )
        assert all(outcome.num_cliques <= 2 for outcome in outcomes)
        # prune_edges=False compiles the unpruned artifact once, serving both.
        assert session.cache_info().compilations == 1

    def test_batch_mixed_algorithms_shares_compilations(self, graph):
        session = MiningSession(graph)
        requests = [
            EnumerationRequest(algorithm="mule", alpha=0.1),
            EnumerationRequest(algorithm="dfs-noip", alpha=0.1),
            EnumerationRequest(algorithm="mule", alpha=0.3),
            EnumerationRequest(algorithm="top_k", alpha=0.3, k=4),
        ]
        outcomes = session.batch(requests)
        assert session.cache_info().compilations == 1
        assert_matches_result(outcomes[0], mule(graph, 0.1))
        assert_matches_result(outcomes[1], dfs_noip(graph, 0.1))
        assert_matches_result(outcomes[2], mule(graph, 0.3))
        legacy = top_k_maximal_cliques(graph, 4, 0.3)
        assert [r.vertices for r in outcomes[3].records] == [
            r.vertices for r in legacy
        ]

    def test_batch_empty(self, graph):
        assert MiningSession(graph).batch([]) == []

    def test_sweep_on_empty_graph(self):
        outcomes = MiningSession(UncertainGraph()).sweep([0.2, 0.4])
        assert [outcome.num_cliques for outcome in outcomes] == [0, 0]

    def test_wide_sweep_stays_bounded_and_compiles_once(self):
        # The private cache is bounded, yet the derivation base stays
        # resident (touched on every use), so even a sweep far wider than
        # the bound compiles exactly once and pins bounded memory.
        graph = UncertainGraph(
            edges=[(i, i + 1, 0.2 + 0.6 * (i % 7) / 7) for i in range(12)]
        )
        session = MiningSession(graph)
        alphas = [round(0.05 + 0.9 * i / 199, 6) for i in range(200)]
        session.sweep(alphas)
        info = session.cache_info()
        assert info.compilations == 1
        assert info.entries <= MiningSession._PRIVATE_CACHE_MAXSIZE

    def test_prepare_is_public_for_caller_driven_loops(self, graph):
        session = MiningSession(graph)
        requests = [
            EnumerationRequest(algorithm="mule", alpha=alpha)
            for alpha in (0.4, 0.2, 0.1)
        ]
        session.prepare(requests)
        for request in requests:  # descending α, caller-ordered dispatch
            session.enumerate(request)
        assert session.cache_info().compilations == 1


class TestCachePlumbing:
    def test_shared_cache_across_sessions(self, graph):
        cache = CompiledGraphCache()
        first = MiningSession(graph, cache=cache)
        second = MiningSession(graph.copy(), cache=cache)
        request = EnumerationRequest(algorithm="mule", alpha=0.2)
        first.enumerate(request)
        second.enumerate(request)  # same fingerprint → cache hit, no compile
        assert cache.info().compilations == 1
        assert cache.info().hits == 1

    def test_adopt_precompiled(self, graph, monkeypatch):
        reference = records_map(mule(graph, 0.2))
        session = MiningSession(graph)
        session.adopt(compile_graph(graph, alpha=0.2), alpha=0.2)
        # Any further compilation would be a bug.
        monkeypatch.setattr(
            "repro.api.cache.compile_graph",
            lambda *a, **k: pytest.fail("compile_graph called despite adopt"),
        )
        outcome = session.enumerate(EnumerationRequest(algorithm="mule", alpha=0.2))
        assert records_map(outcome) == reference

    def test_cache_clear(self, graph):
        session = MiningSession(graph)
        session.enumerate(EnumerationRequest(algorithm="mule", alpha=0.2))
        session.cache_clear()
        assert session.cache_info().entries == 0
        session.enumerate(EnumerationRequest(algorithm="mule", alpha=0.2))
        assert session.cache_info().compilations == 1

    def test_fingerprint_is_cached_on_session(self, graph):
        session = MiningSession(graph)
        assert session.fingerprint == graph.fingerprint()
        assert session.fingerprint is session.fingerprint  # computed once

    def test_private_cache_never_fingerprints(self, graph, monkeypatch):
        # One-shot sessions (what the free functions build) must not pay
        # the content-hash cost: a private cache holds exactly one graph.
        reference = records_map(mule(graph, 0.2))
        monkeypatch.setattr(
            UncertainGraph,
            "fingerprint",
            lambda self: pytest.fail("fingerprint computed for a private cache"),
        )
        outcome = MiningSession(graph).enumerate(
            EnumerationRequest(algorithm="mule", alpha=0.2)
        )
        assert records_map(outcome) == reference


class TestStream:
    def test_stream_matches_enumerate(self, graph):
        session = MiningSession(graph)
        request = EnumerationRequest(algorithm="mule", alpha=0.2)
        streamed = dict(session.stream(request))
        assert streamed == records_map(session.enumerate(request))

    def test_stream_is_lazy(self, graph):
        session = MiningSession(graph)
        session.stream(EnumerationRequest(algorithm="mule", alpha=0.2))
        # Never iterated → nothing compiled.
        assert session.cache_info().misses == 0

    def test_parallel_requests_cannot_stream(self, graph):
        # The restriction is enforced at the call, not at the first next().
        session = MiningSession(graph)
        with pytest.raises(ParameterError):
            session.stream(
                EnumerationRequest(algorithm="mule", alpha=0.2, workers=2)
            )

    def test_threshold_search_cannot_stream(self, graph):
        session = MiningSession(graph)
        with pytest.raises(ParameterError):
            session.stream(EnumerationRequest(algorithm="top_k", k=3))
