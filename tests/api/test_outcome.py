"""Tests for EnumerationOutcome's parity comparison helpers.

``matches`` / ``assert_matches`` are the one comparison the parity suites
(session-vs-legacy, remote-vs-local, serial-vs-parallel) share, so their
semantics are pinned here: cliques + exact probabilities + α + stop
reason + (optionally) counters, with the algorithm *label* and wall-clock
time excluded by design.
"""

from __future__ import annotations

import pytest

from repro.api import EnumerationOutcome
from repro.core.engine import RunReport, StopReason
from repro.core.result import CliqueRecord, EnumerationResult, SearchStatistics


def outcome(**overrides) -> EnumerationOutcome:
    fields = {
        "algorithm": "mule",
        "alpha": 0.5,
        "records": [
            CliqueRecord(vertices=frozenset({1, 2, 3}), probability=0.729),
            CliqueRecord(vertices=frozenset({4}), probability=1.0),
        ],
        "statistics": SearchStatistics(recursive_calls=9, candidates_examined=8),
        "report": RunReport(stop_reason=StopReason.COMPLETED, cliques_emitted=2),
        "elapsed_seconds": 0.5,
    }
    fields.update(overrides)
    return EnumerationOutcome(**fields)


class TestMatches:
    def test_identical_outcomes_match(self):
        assert outcome().matches(outcome())

    def test_algorithm_label_and_elapsed_are_ignored(self):
        other = outcome(algorithm="parallel-mule", elapsed_seconds=99.0)
        assert outcome().matches(other)

    def test_record_order_is_ignored(self):
        other = outcome(records=list(reversed(outcome().records)))
        assert outcome().matches(other)

    def test_probability_drift_detected(self):
        drifted = outcome(
            records=[
                CliqueRecord(vertices=frozenset({1, 2, 3}), probability=0.728),
                CliqueRecord(vertices=frozenset({4}), probability=1.0),
            ]
        )
        assert not outcome().matches(drifted)
        with pytest.raises(AssertionError, match="probability-drift"):
            outcome().assert_matches(drifted)

    def test_missing_clique_detected(self):
        smaller = outcome(records=outcome().records[:1])
        with pytest.raises(AssertionError, match="clique sets differ"):
            outcome().assert_matches(smaller)

    def test_alpha_mismatch_detected(self):
        with pytest.raises(AssertionError, match="alpha differs"):
            outcome().assert_matches(outcome(alpha=0.6))

    def test_stop_reason_mismatch_detected(self):
        truncated = outcome(
            report=RunReport(stop_reason=StopReason.MAX_CLIQUES, cliques_emitted=2)
        )
        with pytest.raises(AssertionError, match="stop_reason differs"):
            outcome().assert_matches(truncated)

    def test_counter_mismatch_detected_and_optional(self):
        other = outcome(statistics=SearchStatistics(recursive_calls=10))
        with pytest.raises(AssertionError, match="search counters differ"):
            outcome().assert_matches(other)
        assert outcome().matches(other, compare_statistics=False)

    def test_compares_against_legacy_results(self):
        me = outcome()
        legacy = EnumerationResult(
            algorithm="mule",
            alpha=0.5,
            cliques=me.records,
            statistics=me.statistics,
            elapsed_seconds=123.0,
            stop_reason=StopReason.COMPLETED,
        )
        me.assert_matches(legacy)

    def test_records_by_vertices(self):
        assert outcome().records_by_vertices() == {
            frozenset({1, 2, 3}): 0.729,
            frozenset({4}): 1.0,
        }
