"""Tests for the ``repro-mule`` command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli.main import build_parser, main
from repro.uncertain.graph import UncertainGraph
from repro.uncertain.io import write_edge_list


@pytest.fixture
def graph_file(tmp_path):
    graph = UncertainGraph(
        edges=[(1, 2, 0.9), (2, 3, 0.9), (1, 3, 0.9), (3, 4, 0.4)]
    )
    path = tmp_path / "toy.edges"
    write_edge_list(graph, path)
    return path


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_enumerate_requires_alpha(self, graph_file):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["enumerate", "--input", str(graph_file)])

    def test_input_and_dataset_mutually_exclusive(self, graph_file):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["stats", "--input", str(graph_file), "--dataset", "ppi"]
            )


class TestEnumerateCommand:
    def test_basic_run(self, graph_file, capsys):
        exit_code = main(["enumerate", "--input", str(graph_file), "--alpha", "0.5"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "2 alpha-maximal cliques" in out
        assert "1,2,3" in out

    def test_quiet_suppresses_listing(self, graph_file, capsys):
        main(["enumerate", "--input", str(graph_file), "--alpha", "0.5", "--quiet"])
        out = capsys.readouterr().out
        assert "1,2,3" not in out

    def test_json_output(self, graph_file, tmp_path, capsys):
        output = tmp_path / "cliques.json"
        main(
            [
                "enumerate",
                "--input",
                str(graph_file),
                "--alpha",
                "0.5",
                "--quiet",
                "--output",
                str(output),
            ]
        )
        payload = json.loads(output.read_text(encoding="utf-8"))
        assert payload["num_cliques"] == 2
        assert sorted(payload["cliques"][0]["vertices"]) == payload["cliques"][0]["vertices"]

    @pytest.mark.parametrize("kernel", ["auto", "python", "vector"])
    def test_kernel_flag_runs_identically(self, graph_file, capsys, kernel):
        exit_code = main(
            [
                "enumerate",
                "--input",
                str(graph_file),
                "--alpha",
                "0.5",
                "--kernel",
                kernel,
            ]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "2 alpha-maximal cliques" in out
        assert "1,2,3" in out

    def test_vector_kernel_rejected_for_dfs_noip(self, graph_file, capsys):
        exit_code = main(
            [
                "enumerate",
                "--input",
                str(graph_file),
                "--alpha",
                "0.5",
                "--algorithm",
                "dfs-noip",
                "--kernel",
                "vector",
            ]
        )
        assert exit_code == 2
        assert "--kernel=vector" in capsys.readouterr().err

    def test_unknown_kernel_rejected_by_parser(self, graph_file):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                [
                    "enumerate",
                    "--input",
                    str(graph_file),
                    "--alpha",
                    "0.5",
                    "--kernel",
                    "simd",
                ]
            )

    def test_dfs_noip_algorithm(self, graph_file, capsys):
        exit_code = main(
            [
                "enumerate",
                "--input",
                str(graph_file),
                "--alpha",
                "0.5",
                "--algorithm",
                "dfs-noip",
                "--quiet",
            ]
        )
        assert exit_code == 0
        assert "dfs-noip" in capsys.readouterr().out

    def test_max_cliques_truncates_output(self, graph_file, capsys):
        exit_code = main(
            [
                "enumerate",
                "--input",
                str(graph_file),
                "--alpha",
                "0.5",
                "--max-cliques",
                "1",
                "--quiet",
            ]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "1 alpha-maximal cliques" in out
        assert "truncated" in out
        assert "max-cliques" in out

    def test_time_budget_flag_accepted(self, graph_file, capsys):
        exit_code = main(
            [
                "enumerate",
                "--input",
                str(graph_file),
                "--alpha",
                "0.5",
                "--time-budget",
                "60",
                "--quiet",
            ]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "2 alpha-maximal cliques" in out
        assert "truncated" not in out

    def test_stop_reason_in_json_output(self, graph_file, tmp_path):
        output = tmp_path / "truncated.json"
        main(
            [
                "enumerate",
                "--input",
                str(graph_file),
                "--alpha",
                "0.5",
                "--max-cliques",
                "1",
                "--quiet",
                "--output",
                str(output),
            ]
        )
        payload = json.loads(output.read_text(encoding="utf-8"))
        assert payload["stop_reason"] == "max-cliques"
        assert payload["num_cliques"] == 1

    def test_large_mule_requires_min_size(self, graph_file, capsys):
        exit_code = main(
            [
                "enumerate",
                "--input",
                str(graph_file),
                "--alpha",
                "0.5",
                "--algorithm",
                "large-mule",
            ]
        )
        assert exit_code == 2
        assert "min-size" in capsys.readouterr().err

    def test_large_mule_with_min_size(self, graph_file, capsys):
        exit_code = main(
            [
                "enumerate",
                "--input",
                str(graph_file),
                "--alpha",
                "0.5",
                "--algorithm",
                "large-mule",
                "--min-size",
                "3",
                "--quiet",
            ]
        )
        assert exit_code == 0
        assert "1 alpha-maximal cliques" in capsys.readouterr().out

    def test_invalid_alpha_reports_error(self, graph_file, capsys):
        exit_code = main(["enumerate", "--input", str(graph_file), "--alpha", "0"])
        assert exit_code == 1
        assert "error" in capsys.readouterr().err

    def test_dataset_input(self, capsys):
        exit_code = main(
            [
                "enumerate",
                "--dataset",
                "ba5000",
                "--scale",
                "0.01",
                "--alpha",
                "0.5",
                "--quiet",
            ]
        )
        assert exit_code == 0


class TestCompareCommand:
    def test_compare_agreement(self, graph_file, capsys):
        exit_code = main(["compare", "--input", str(graph_file), "--alpha", "0.5"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "MULE:" in out
        assert "DFS-NOIP:" in out
        assert "outputs agree" in out

    def test_compare_on_dataset(self, capsys):
        exit_code = main(
            ["compare", "--dataset", "ba5000", "--scale", "0.01", "--alpha", "0.1"]
        )
        assert exit_code == 0
        assert "speed-up" in capsys.readouterr().out

    def test_compare_with_vector_kernel(self, graph_file, capsys):
        # --kernel steers the MULE side only; DFS-NOIP stays on the python
        # kernel and the outputs must still agree.
        exit_code = main(
            [
                "compare",
                "--input",
                str(graph_file),
                "--alpha",
                "0.5",
                "--kernel",
                "vector",
            ]
        )
        assert exit_code == 0
        assert "outputs agree" in capsys.readouterr().out


class TestCoreCommand:
    def test_core_decomposition_output(self, graph_file, capsys):
        exit_code = main(["core", "--input", str(graph_file), "--eta", "0.5"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "core decomposition" in out
        assert "core number" in out

    def test_core_requires_valid_eta(self, graph_file, capsys):
        exit_code = main(["core", "--input", str(graph_file), "--eta", "0"])
        assert exit_code == 1
        assert "error" in capsys.readouterr().err

    def test_fast_mule_algorithm_choice(self, graph_file, capsys):
        exit_code = main(
            [
                "enumerate",
                "--input",
                str(graph_file),
                "--alpha",
                "0.5",
                "--algorithm",
                "fast-mule",
                "--quiet",
            ]
        )
        assert exit_code == 0
        assert "fast-mule" in capsys.readouterr().out


class TestOtherCommands:
    def test_stats(self, graph_file, capsys):
        assert main(["stats", "--input", str(graph_file)]) == 0
        out = capsys.readouterr().out
        assert "vertices:" in out and "edges:" in out
        assert "expected edges:" in out

    def test_generate(self, tmp_path, capsys):
        output = tmp_path / "generated.edges"
        exit_code = main(
            [
                "generate",
                "--dataset",
                "ba5000",
                "--scale",
                "0.01",
                "--seed",
                "7",
                "--output",
                str(output),
            ]
        )
        assert exit_code == 0
        assert output.exists()
        assert "n=" in capsys.readouterr().out

    def test_bound(self, capsys):
        assert main(["bound", "--vertices", "6"]) == 0
        out = capsys.readouterr().out
        assert "9" in out  # Moon–Moser for n = 6
        assert "20" in out  # C(6, 3)

    def test_datasets_listing(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "ppi" in out
        assert "ba10000" in out


class TestServeCommand:
    def test_parser_defaults(self, graph_file):
        args = build_parser().parse_args(["serve", "--input", str(graph_file)])
        assert args.host == "127.0.0.1"
        assert args.port == 8765
        assert args.max_workers is None
        assert not args.quiet

    def test_invalid_max_workers_rejected(self, graph_file, capsys):
        exit_code = main(
            ["serve", "--input", str(graph_file), "--max-workers", "0"]
        )
        assert exit_code == 2
        assert "--max-workers" in capsys.readouterr().err

    def test_serve_starts_and_answers(self, graph_file, monkeypatch, capsys):
        # Swap the blocking serve loop for a single remote round-trip so the
        # command path (graph load → server construction → close) runs end
        # to end inside the test process.
        import importlib

        from repro.api import EnumerationRequest
        from repro.service import RemoteSession

        # ``repro.cli.main`` the module is shadowed by ``repro.cli.main``
        # the function on attribute access, so resolve it explicitly.
        cli_main = importlib.import_module("repro.cli.main")

        outcomes = []

        def probe_instead_of_blocking(server):
            server.start()
            remote = RemoteSession(server.url)
            outcomes.append(
                remote.enumerate(EnumerationRequest(algorithm="mule", alpha=0.5))
            )

        monkeypatch.setattr(
            cli_main.MiningServer, "serve_forever", probe_instead_of_blocking
        )
        exit_code = main(
            ["serve", "--input", str(graph_file), "--port", "0", "--quiet"]
        )
        assert exit_code == 0
        assert outcomes[0].num_cliques == 2
        out = capsys.readouterr().out
        assert "serving 1 graph(s)" in out
        assert "/v1/enumerate" in out


class TestMultiGraphServe:
    def test_serve_two_datasets_one_process(self, monkeypatch, capsys):
        """The acceptance command shape: serve --dataset ppi --dataset dblp
        (alias of dblp10), both answerable over v2 by name."""
        import importlib

        from repro.api import EnumerationRequest, MiningSession
        from repro.datasets.registry import load_dataset
        from repro.service import connect

        cli_main = importlib.import_module("repro.cli.main")
        checked = []

        def probe_instead_of_blocking(server):
            server.start()
            remote = connect(server.url)
            names = {info.name for info in remote.list()}
            assert names == {"ppi", "dblp10"}
            for name, scale in (("ppi", 0.01), ("dblp10", 0.00005)):
                outcome = remote.session(name).enumerate(
                    EnumerationRequest(algorithm="mule", alpha=0.5)
                )
                local = MiningSession(
                    load_dataset(name, scale=scale, seed=2015)
                ).enumerate(EnumerationRequest(algorithm="mule", alpha=0.5))
                outcome.assert_matches(local)
            checked.append(True)

        monkeypatch.setattr(
            cli_main.MiningServer, "serve_forever", probe_instead_of_blocking
        )
        exit_code = main(
            [
                "serve",
                "--dataset",
                "ppi:0.01",
                "--dataset",
                "dblp:0.00005",
                "--port",
                "0",
                "--quiet",
            ]
        )
        assert exit_code == 0
        assert checked
        out = capsys.readouterr().out
        assert "serving 2 graph(s)" in out
        assert "default graph (v1 surface): ppi" in out

    def test_serve_requires_a_source(self, capsys):
        exit_code = main(["serve", "--port", "0"])
        assert exit_code == 2
        assert "nothing to serve" in capsys.readouterr().err

    def test_serve_rejects_bad_dataset_scale(self, capsys):
        exit_code = main(["serve", "--dataset", "ppi:huge", "--port", "0"])
        assert exit_code == 1
        assert "invalid dataset scale" in capsys.readouterr().err


class TestRemoteCommands:
    @pytest.fixture()
    def server(self, graph_file):
        from repro.service import MiningServer
        from repro.uncertain.io import read_edge_list

        graph = read_edge_list(graph_file, vertex_type=str)
        store_graph = UncertainGraph(edges=[("p", "q", 0.9), ("q", "r", 0.8)])
        from repro.api import GraphStore

        store = GraphStore()
        store.add(graph, name="toy", pin=True)
        store.add(store_graph, name="other", pin=True)
        with MiningServer(store, port=0) as srv:
            yield srv

    def test_enumerate_remote_default_graph(self, server, capsys):
        exit_code = main(
            ["enumerate", "--remote", server.url, "--alpha", "0.5", "--quiet"]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "2 alpha-maximal cliques" in out
        assert "n=4, m=4" in out

    def test_enumerate_remote_named_graph(self, server, capsys):
        exit_code = main(
            [
                "enumerate",
                "--remote",
                server.url,
                "--graph",
                "other",
                "--alpha",
                "0.5",
            ]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "n=3, m=2" in out

    def test_compare_remote(self, server, capsys):
        exit_code = main(
            ["compare", "--remote", server.url, "--graph", "toy", "--alpha", "0.5"]
        )
        assert exit_code == 0
        assert "outputs agree" in capsys.readouterr().out

    def test_remote_conflicts_with_local_input(self, server, graph_file, capsys):
        exit_code = main(
            [
                "enumerate",
                "--remote",
                server.url,
                "--input",
                str(graph_file),
                "--alpha",
                "0.5",
            ]
        )
        assert exit_code == 2
        assert "--remote cannot be combined" in capsys.readouterr().err

    def test_graph_flag_requires_remote(self, graph_file, capsys):
        exit_code = main(
            [
                "enumerate",
                "--input",
                str(graph_file),
                "--graph",
                "toy",
                "--alpha",
                "0.5",
            ]
        )
        assert exit_code == 2
        assert "--graph NAME requires --remote" in capsys.readouterr().err

    def test_enumerate_requires_some_source(self, capsys):
        exit_code = main(["enumerate", "--alpha", "0.5"])
        assert exit_code == 2
        assert "one of --input, --dataset or --remote" in capsys.readouterr().err


class TestParallelEnumeration:
    def test_workers_flag_runs_parallel_mule(self, graph_file, capsys):
        exit_code = main(
            [
                "enumerate",
                "--input",
                str(graph_file),
                "--alpha",
                "0.5",
                "--workers",
                "2",
            ]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "parallel-mule: 2 alpha-maximal cliques" in out
        assert "1,2,3" in out

    def test_workers_one_stays_serial(self, graph_file, capsys):
        exit_code = main(
            ["enumerate", "--input", str(graph_file), "--alpha", "0.5", "--workers", "1"]
        )
        assert exit_code == 0
        assert "mule: 2 alpha-maximal cliques" in capsys.readouterr().out

    def test_workers_rejected_for_unsupported_algorithm(self, graph_file, capsys):
        exit_code = main(
            [
                "enumerate",
                "--input",
                str(graph_file),
                "--alpha",
                "0.5",
                "--algorithm",
                "dfs-noip",
                "--workers",
                "2",
            ]
        )
        assert exit_code == 2
        assert "--workers" in capsys.readouterr().err

    def test_non_positive_workers_rejected(self, graph_file, capsys):
        exit_code = main(
            ["enumerate", "--input", str(graph_file), "--alpha", "0.5", "--workers", "0"]
        )
        assert exit_code == 2
        assert "--workers" in capsys.readouterr().err

    def test_num_shards_requires_workers_url(self, graph_file, capsys):
        exit_code = main(
            [
                "enumerate",
                "--input",
                str(graph_file),
                "--alpha",
                "0.5",
                "--num-shards",
                "4",
            ]
        )
        assert exit_code == 2
        assert "--num-shards requires --workers-url" in capsys.readouterr().err

    def test_workers_with_run_controls(self, graph_file, capsys):
        exit_code = main(
            [
                "enumerate",
                "--input",
                str(graph_file),
                "--alpha",
                "0.5",
                "--workers",
                "2",
                "--max-cliques",
                "1",
            ]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "1 alpha-maximal cliques" in out
        assert "truncated (max-cliques)" in out


@pytest.fixture
def worker_fleet():
    """Two empty in-process servers for --workers-url / fleet tests."""
    from repro.api import GraphStore
    from repro.service import MiningServer

    servers = [
        MiningServer(GraphStore(), port=0, quiet=True).start() for _ in range(2)
    ]
    yield servers
    for server in servers:
        server.close()


class TestDistributedEnumeration:
    def fan_out_flags(self, fleet):
        flags = []
        for server in fleet:
            flags += ["--workers-url", server.url]
        return flags

    def test_workers_url_fans_out(self, worker_fleet, graph_file, capsys):
        exit_code = main(
            [
                "enumerate",
                "--input",
                str(graph_file),
                "--alpha",
                "0.5",
                *self.fan_out_flags(worker_fleet),
            ]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "distributed-mule: 2 alpha-maximal cliques" in out
        assert "1,2,3" in out

    def test_workers_url_with_num_shards(self, worker_fleet, graph_file, capsys):
        exit_code = main(
            [
                "enumerate",
                "--input",
                str(graph_file),
                "--alpha",
                "0.5",
                "--num-shards",
                "3",
                "--quiet",
                *self.fan_out_flags(worker_fleet),
            ]
        )
        assert exit_code == 0
        assert "distributed-mule: 2 alpha" in capsys.readouterr().out

    def test_workers_url_conflicts_with_remote(
        self, worker_fleet, graph_file, capsys
    ):
        exit_code = main(
            [
                "enumerate",
                "--remote",
                worker_fleet[0].url,
                "--alpha",
                "0.5",
                "--workers-url",
                worker_fleet[1].url,
            ]
        )
        assert exit_code == 2
        assert "--workers-url cannot be combined" in capsys.readouterr().err

    def test_workers_url_conflicts_with_workers(self, graph_file, capsys):
        exit_code = main(
            [
                "enumerate",
                "--input",
                str(graph_file),
                "--alpha",
                "0.5",
                "--workers",
                "2",
                "--workers-url",
                "http://127.0.0.1:1",
            ]
        )
        assert exit_code == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_workers_url_rejected_for_unsupported_algorithm(
        self, graph_file, capsys
    ):
        exit_code = main(
            [
                "enumerate",
                "--input",
                str(graph_file),
                "--alpha",
                "0.5",
                "--algorithm",
                "dfs-noip",
                "--workers-url",
                "http://127.0.0.1:1",
            ]
        )
        assert exit_code == 2
        assert "--workers-url" in capsys.readouterr().err

    def test_workers_url_requires_local_source(self, capsys):
        exit_code = main(
            [
                "enumerate",
                "--alpha",
                "0.5",
                "--workers-url",
                "http://127.0.0.1:1",
            ]
        )
        assert exit_code == 2
        assert "requires a local --input or --dataset" in capsys.readouterr().err


class TestFleetCommand:
    def test_fleet_requires_a_worker(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fleet"])

    def test_fleet_reports_healthy_workers(self, worker_fleet, capsys):
        args = ["fleet"]
        for server in worker_fleet:
            args += ["--workers-url", server.url]
        exit_code = main(args)
        assert exit_code == 0
        out = capsys.readouterr().out
        assert out.count("healthy") == 2
        assert "2/2 worker(s) usable" in out

    def test_fleet_flags_unreachable_worker(self, worker_fleet, capsys):
        exit_code = main(
            [
                "fleet",
                "--workers-url",
                worker_fleet[0].url,
                "--workers-url",
                "http://127.0.0.1:1",
            ]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "healthy" in out
        assert "dead" in out
        assert "1/2 worker(s) usable" in out

    def test_fleet_with_no_usable_worker_fails(self, capsys):
        exit_code = main(["fleet", "--workers-url", "http://127.0.0.1:1"])
        assert exit_code == 1
        assert "0/1 worker(s) usable" in capsys.readouterr().out

    def test_fleet_sums_counters_across_workers(self, worker_fleet, capsys):
        args = ["fleet"]
        for server in worker_fleet:
            args += ["--workers-url", server.url]
        exit_code = main(args)
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "fleet counters (summed across usable workers):" in out
        # The fleet probe itself hits every worker at least once.
        assert "http_requests_total" in out


class TestMetricsCommand:
    def test_metrics_requires_a_url(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["metrics"])

    def test_metrics_json(self, worker_fleet, capsys):
        exit_code = main(["metrics", worker_fleet[0].url])
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload) == {"counters", "gauges", "histograms"}

    def test_metrics_prometheus(self, worker_fleet, capsys):
        exit_code = main(
            ["metrics", worker_fleet[0].url, "--format", "prometheus"]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "# TYPE http_requests_total counter" in out

    def test_metrics_unreachable_server_fails(self, capsys):
        exit_code = main(["metrics", "http://127.0.0.1:1"])
        assert exit_code == 1
