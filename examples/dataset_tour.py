#!/usr/bin/env python3
"""Tour of the paper's evaluation datasets (Table 1 analogs).

Builds a reduced-scale analog of every input graph in the paper's Table 1,
prints its structural summary side by side with the size the paper reports,
and runs MULE on each to show which structural regimes produce many or few
α-maximal cliques.

Run it with::

    python examples/dataset_tour.py          # quick (scale 0.03)
    REPRO_SCALE=0.1 python examples/dataset_tour.py
"""

from __future__ import annotations

import os

from repro import mule
from repro.datasets import DATASETS, available_datasets, load_dataset
from repro.uncertain.statistics import global_clustering_coefficient, summarize


def main() -> None:
    scale = float(os.environ.get("REPRO_SCALE", "0.03"))
    alpha = 0.5

    header = (
        f"{'dataset':<16} {'paper n':>9} {'paper m':>9} {'n':>7} {'m':>8} "
        f"{'clustering':>11} {'cliques@0.5':>12}"
    )
    print(f"Table 1 dataset analogs at scale {scale} (α = {alpha})\n")
    print(header)
    print("-" * len(header))

    for name in available_datasets():
        if name == "dblp-small":
            continue  # CI helper, not a Table 1 row
        spec = DATASETS[name]
        dataset_scale = scale * 0.1 if name == "dblp10" else scale
        graph = load_dataset(name, scale=dataset_scale, seed=2015)
        summary = summarize(graph)
        clustering = global_clustering_coefficient(graph)
        result = mule(graph, alpha)
        print(
            f"{name:<16} {spec.paper_vertices:>9} {spec.paper_edges:>9} "
            f"{summary.num_vertices:>7} {summary.num_edges:>8} "
            f"{clustering:>11.3f} {result.num_cliques:>12}"
        )

    print(
        "\nReading the table: clique-rich graphs (collaboration networks, wiki-vote,\n"
        "BA graphs) produce many α-maximal cliques, while the low-clustering p2p\n"
        "overlays and the very sparse PPI network produce few — the same qualitative\n"
        "split the paper observes across its Figures 2 and 3."
    )


if __name__ == "__main__":
    main()
