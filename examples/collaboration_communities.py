#!/usr/bin/env python3
"""Finding robust collaboration communities in an uncertain co-authorship graph.

This example mirrors the paper's DBLP use case: vertices are authors, and
two authors are connected with probability ``1 − e^{−c/10}`` where ``c`` is
their number of joint papers (the exact model used in the paper).  An
α-maximal clique is then a group of researchers who are all likely to keep
collaborating pairwise — a "robust community".

The script:

1. builds a synthetic analog of the DBLP collaboration network,
2. enumerates robust communities at several reliability levels,
3. uses LARGE-MULE to focus on communities of 4 or more researchers,
4. compares against the top-k most reliable communities (the related-work
   formulation of Zou et al.), and
5. reports how communities overlap through shared members.

Run it with::

    python examples/collaboration_communities.py
"""

from __future__ import annotations

from repro import large_mule, mule, top_k_maximal_cliques
from repro.analysis import vertex_participation
from repro.generators import collaboration_graph
from repro.uncertain.statistics import global_clustering_coefficient, summarize


def main() -> None:
    # A small slice of a DBLP-style collaboration network: 800 authors in
    # small research groups that co-author repeatedly, so pair probabilities
    # 1 − e^{−c/10} span the whole range from ~0.1 (one joint paper) to ~0.8
    # (long-running collaborations) — just like the paper's DBLP graph.
    graph = collaboration_graph(
        num_authors=800,
        num_papers=5000,
        min_authors_per_paper=2,
        max_authors_per_paper=4,
        community_count=100,
        rng=7,
    )
    summary = summarize(graph)
    print("collaboration network (DBLP-style synthetic analog)")
    print(f"  authors:              {summary.num_vertices}")
    print(f"  co-authorship edges:  {summary.num_edges}")
    print(f"  clustering coeff.:    {global_clustering_coefficient(graph):.3f}")

    # --- robust communities at different reliability levels ----------------
    print("\nrobust communities vs reliability threshold:")
    print(f"  {'alpha':>6}  {'communities':>12}  {'of size >=3':>12}")
    for alpha in (0.5, 0.3, 0.1, 0.01):
        result = mule(graph, alpha)
        big = result.filter_minimum_size(3)
        print(f"  {alpha:>6}  {result.num_cliques:>12}  {big.num_cliques:>12}")

    # --- larger communities only -------------------------------------------
    alpha = 0.05
    communities = large_mule(graph, alpha, size_threshold=4)
    print(f"\nLARGE-MULE (α = {alpha}, t = 4): {communities.num_cliques} communities")
    for record in sorted(communities, key=lambda r: -r.size)[:6]:
        members = ", ".join(f"A{a}" for a in record.as_tuple())
        print(f"  [{record.size} authors, P={record.probability:.3f}]  {members}")

    # --- the top-k view (related work comparison) ---------------------------
    top = top_k_maximal_cliques(graph, k=5, alpha=alpha, min_size=3)
    print("\ntop-5 most reliable communities (Zou et al. style ranking):")
    for rank, record in enumerate(top, 1):
        members = ", ".join(f"A{a}" for a in record.as_tuple())
        print(f"  {rank}. P={record.probability:.3f}  {{{members}}}")

    # --- overlapping membership ---------------------------------------------
    result = mule(graph, alpha)
    participation = vertex_participation(result.filter_minimum_size(3))
    connectors = sorted(participation.items(), key=lambda kv: -kv[1])[:5]
    print("\nauthors bridging the most communities:")
    for author, count in connectors:
        print(f"  A{author}: member of {count} communities")


if __name__ == "__main__":
    main()
