#!/usr/bin/env python3
"""Serve a graph over HTTP and mine it through :class:`RemoteSession`.

This example runs the whole service stack in one process:

1. start a :class:`repro.MiningServer` on an ephemeral port (exactly what
   ``repro-mule serve`` does),
2. connect a :class:`repro.RemoteSession` — the client mirror of
   :class:`repro.MiningSession`,
3. enumerate and sweep remotely, and verify the outcomes are bit-identical
   to local runs while the server compiled the graph exactly once.

In production the server would run in its own process (``repro-mule serve
--input graph.edges --port 8765``) with many clients sharing its
compiled-graph cache; see ``docs/service.md`` for the wire protocol.

Run it with::

    python examples/remote_session.py
"""

from __future__ import annotations

from repro import (
    EnumerationRequest,
    MiningServer,
    MiningSession,
    RemoteSession,
    UncertainGraph,
)


def build_example_graph() -> UncertainGraph:
    """Two tight friend groups bridged by a weak tie (the quickstart graph)."""
    return UncertainGraph(
        edges=[
            ("ana", "bob", 0.95),
            ("ana", "cal", 0.90),
            ("bob", "cal", 0.92),
            ("ana", "dee", 0.85),
            ("bob", "dee", 0.80),
            ("cal", "dee", 0.88),
            ("eve", "fay", 0.90),
            ("eve", "gus", 0.85),
            ("fay", "gus", 0.95),
            ("dee", "eve", 0.30),
            ("gus", "hal", 0.45),
        ]
    )


def main() -> None:
    graph = build_example_graph()
    local = MiningSession(graph)

    with MiningServer(graph, port=0) as server:
        print(f"server listening at {server.url}")
        remote = RemoteSession(server.url)

        health = remote.health()
        print(
            f"health: {health['status']} — serving n={health['graph']['num_vertices']}, "
            f"m={health['graph']['num_edges']}"
        )

        # One request over the wire, same call shape as a local session.
        request = EnumerationRequest(algorithm="mule", alpha=0.5)
        outcome = remote.enumerate(request)
        print(f"\nremote mule at alpha=0.5 -> {outcome.num_cliques} cliques:")
        for record in outcome.records:
            members = ", ".join(record.as_tuple())
            print(f"  {{{members}}}  p={record.probability:.4f}")

        # Bit-identical to running the same request locally.
        outcome.assert_matches(local.enumerate(request))
        print("parity with the local session: OK")

        # A whole sweep travels as one request and compiles once server-side.
        # (Thresholds at or above the earlier request's α=0.5 derive from
        # its cached artifact — a compiled graph pruned at α can serve any
        # α′ ≥ α by filtering, never the other way around.)
        alphas = [0.5, 0.6, 0.7, 0.8, 0.9]
        outcomes = remote.sweep(alphas)
        print(f"\nremote sweep over {alphas}:")
        for alpha, swept in zip(alphas, outcomes):
            print(f"  alpha={alpha:.1f}: {swept.num_cliques} cliques")

        info = remote.cache_info()
        print(
            f"\nserver-side cache: {info.compilations} compilation(s), "
            f"{info.derivations} derivation(s), {info.hits} hit(s)"
        )
        assert info.compilations == 1, "the whole session should compile once"


if __name__ == "__main__":
    main()
