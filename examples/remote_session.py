#!/usr/bin/env python3
"""Host two of the paper's datasets in one server and mine both remotely.

This example runs the whole multi-graph service stack in one process:

1. build a :class:`repro.GraphStore` hosting two Table 1 analogs (exactly
   what ``repro-mule serve --dataset ppi --dataset dblp`` does),
2. start a :class:`repro.MiningServer` on an ephemeral port,
3. ``connect()`` a :class:`repro.RemoteStore` — the client mirror of the
   graph store — and open a :class:`repro.RemoteSession` on each dataset
   *by name*,
4. sweep both remotely and verify the outcomes are bit-identical to local
   runs while each graph compiled exactly once (per-graph counters),
5. upload a brand-new graph over the wire and mine it too.

In production the server would run in its own process::

    repro-mule serve --dataset ppi:0.05 --dataset dblp:0.0005 --port 8765

with many clients sharing its compiled-graph cache; see
``docs/service.md`` for the wire protocol.

Run it with::

    python examples/remote_session.py
"""

from __future__ import annotations

from repro import (
    EnumerationRequest,
    GraphStore,
    MiningServer,
    MiningSession,
    UncertainGraph,
    connect,
)

#: Small scales so the example runs in seconds; any registry name works.
CATALOG = {"ppi": 0.02, "dblp-small": 1.0}
ALPHAS = [0.5, 0.6, 0.7, 0.8, 0.9]


def main() -> None:
    store = GraphStore()
    for name, scale in CATALOG.items():
        info = store.add_dataset(name, scale=scale, seed=2015)
        print(f"hosting {info.name}: n={info.num_vertices}, m={info.num_edges}")

    with MiningServer(store, port=0) as server:
        print(f"\nserver listening at {server.url}")
        remote = connect(server.url)
        print(f"served graphs: {[info.name for info in remote.list()]}")

        # One RemoteSession per dataset, addressed by name — the same call
        # sites a local GraphStore gives you.
        for name in CATALOG:
            session = remote.session(name)
            outcomes = session.sweep(ALPHAS)
            counts = [outcome.num_cliques for outcome in outcomes]
            print(f"\n{name}: sweep over {ALPHAS} -> cliques per alpha {counts}")

            # Bit-identical to running the same sweep locally...
            local = MiningSession(store.graph(name)).sweep(ALPHAS)
            for ours, theirs in zip(outcomes, local):
                ours.assert_matches(theirs)
            # ...and the whole sweep compiled this graph exactly once,
            # asserted via the per-graph server-side counters.
            info = session.cache_info()
            print(
                f"{name}: parity OK; server cache: {info.compilations} "
                f"compilation(s), {info.derivations} derivation(s)"
            )
            assert info.compilations == 1, "each graph should compile once"

        # Graphs are first-class resources: upload one over the wire.
        friends = UncertainGraph(
            edges=[
                ("ana", "bob", 0.95),
                ("ana", "cal", 0.90),
                ("bob", "cal", 0.92),
                ("cal", "dee", 0.40),
            ]
        )
        uploaded = remote.add(friends, name="friends")
        print(
            f"\nuploaded 'friends' ({uploaded.fingerprint[:12]}…): "
            f"n={uploaded.num_vertices}, m={uploaded.num_edges}"
        )
        outcome = remote.session("friends").enumerate(
            EnumerationRequest(algorithm="mule", alpha=0.5)
        )
        for record in outcome.records:
            members = ", ".join(record.as_tuple())
            print(f"  {{{members}}}  p={record.probability:.4f}")
        outcome.assert_matches(
            MiningSession(friends).enumerate(
                EnumerationRequest(algorithm="mule", alpha=0.5)
            )
        )
        print("uploaded-graph parity with a local session: OK")


if __name__ == "__main__":
    main()
