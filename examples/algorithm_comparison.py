#!/usr/bin/env python3
"""Comparing MULE against DFS-NOIP and exploring the theory of Section 3.

This example reproduces, at laptop scale, the two analytical stories of the
paper:

* **Section 4 / Figure 1** — incremental probability maintenance matters:
  MULE and the DFS-NOIP baseline enumerate exactly the same α-maximal
  cliques, but DFS-NOIP performs many times more probability
  multiplications (and correspondingly more wall-clock work), with the gap
  widening as α decreases.
* **Section 3 / Theorem 1** — the number of α-maximal cliques in an
  uncertain graph can reach ``C(n, ⌊n/2⌋)``, far beyond the Moon–Moser
  bound ``3^{n/3}`` for deterministic graphs; the extremal construction of
  Lemma 1 attains the bound exactly.

Run it with::

    python examples/algorithm_comparison.py
"""

from __future__ import annotations

from repro import dfs_noip, mule, moon_moser_bound, uncertain_clique_bound
from repro.core.bounds import extremal_uncertain_graph
from repro.generators import barabasi_albert_uncertain


def compare_algorithms() -> None:
    print("=== MULE vs DFS-NOIP (Figure 1 at laptop scale) ===")
    graph = barabasi_albert_uncertain(250, 8, rng=123)
    print(f"input: Barabási–Albert graph, n={graph.num_vertices}, m={graph.num_edges}\n")

    header = f"{'alpha':>8}  {'cliques':>8}  {'MULE (s)':>10}  {'DFS-NOIP (s)':>13}  {'speed-up':>9}"
    print(header)
    print("-" * len(header))
    for alpha in (0.9, 0.5, 0.1, 0.01, 0.001):
        fast = mule(graph, alpha)
        slow = dfs_noip(graph, alpha)
        assert fast.vertex_sets() == slow.vertex_sets()
        speedup = slow.elapsed_seconds / max(fast.elapsed_seconds, 1e-9)
        print(
            f"{alpha:>8}  {fast.num_cliques:>8}  {fast.elapsed_seconds:>10.3f}  "
            f"{slow.elapsed_seconds:>13.3f}  {speedup:>8.1f}x"
        )
    print(
        "\nBoth algorithms return identical cliques; the speed-up comes purely from\n"
        "incremental probability maintenance and O(1) maximality checks.\n"
    )


def explore_counting_bounds() -> None:
    print("=== How many α-maximal cliques can there be? (Theorem 1) ===")
    header = (
        f"{'n':>4}  {'Moon-Moser (α=1)':>18}  {'C(n, n//2) bound':>17}  "
        f"{'extremal graph output':>22}"
    )
    print(header)
    print("-" * len(header))
    alpha = 0.5
    for n in (4, 6, 8, 10, 12):
        graph = extremal_uncertain_graph(n, alpha)
        # Guard against floating-point rounding of the κ-fold product.
        result = mule(graph, alpha * (1 - 1e-9))
        print(
            f"{n:>4}  {moon_moser_bound(n):>18}  {uncertain_clique_bound(n, alpha):>17}  "
            f"{result.num_cliques:>22}"
        )
    print(
        "\nThe extremal uncertain graph attains the C(n, ⌊n/2⌋) bound exactly, and for\n"
        "n ≥ 5 that is strictly more maximal cliques than any deterministic graph can have."
    )


def main() -> None:
    compare_algorithms()
    explore_counting_bounds()


if __name__ == "__main__":
    main()
