#!/usr/bin/env python3
"""Regenerate the paper's figures as ASCII charts at laptop scale.

This example ties the measurement harness (`repro.analysis.comparison`) to
the text plotting helpers to produce terminal versions of the evaluation
figures:

* Figure 1 — MULE vs DFS-NOIP runtime on four graphs,
* Figures 2/3 — runtime and output size as functions of α,
* Figure 4 — runtime vs output size,
* Figures 5/6 — LARGE-MULE runtime and output vs the size threshold t.

The full, recorded reproduction lives in ``benchmarks/``; this script is the
interactive, human-paced version.

Run it with::

    python examples/paper_figures.py              # quick (scale 0.04)
    REPRO_SCALE=0.1 python examples/paper_figures.py
"""

from __future__ import annotations

import os
from collections import defaultdict

from repro.analysis import (
    alpha_sweep,
    ascii_bar_chart,
    ascii_line_chart,
    compare_algorithms,
    size_threshold_sweep,
)
from repro.datasets import load_dataset


def main() -> None:
    scale = float(os.environ.get("REPRO_SCALE", "0.04"))
    seed = 2015

    print(f"Regenerating paper figures at dataset scale {scale}\n")
    graphs = {
        name: load_dataset(name, scale=scale, seed=seed)
        for name in ("wiki-vote", "ba5000", "ca-grqc", "ppi")
    }

    # ------------------------------------------------------------------ #
    # Figure 1: MULE vs DFS-NOIP
    # ------------------------------------------------------------------ #
    alpha = 0.001
    rows = compare_algorithms(graphs, [alpha])
    runtimes = {
        f"{row['graph']} ({row['algorithm']})": row["elapsed_seconds"] for row in rows
    }
    print(ascii_bar_chart(runtimes, title=f"Figure 1 — runtime (s) at alpha = {alpha}", unit="s"))
    print()

    # ------------------------------------------------------------------ #
    # Figures 2 and 3: runtime and output size vs alpha
    # ------------------------------------------------------------------ #
    alphas = [0.0001, 0.001, 0.01, 0.1, 0.5]
    sweep_rows = alpha_sweep(graphs, alphas)
    by_graph_runtime = defaultdict(list)
    by_graph_count = defaultdict(list)
    for row in sweep_rows:
        by_graph_runtime[row["graph"]].append((row["alpha"], row["elapsed_seconds"]))
        by_graph_count[row["graph"]].append((row["alpha"], max(row["num_cliques"], 1)))
    print(
        ascii_line_chart(
            by_graph_runtime,
            title="Figure 2 — MULE runtime vs alpha (log x)",
            x_label="alpha",
            y_label="seconds",
            log_x=True,
        )
    )
    print()
    print(
        ascii_line_chart(
            by_graph_count,
            title="Figure 3 — number of alpha-maximal cliques vs alpha (log x)",
            x_label="alpha",
            y_label="cliques",
            log_x=True,
        )
    )
    print()

    # ------------------------------------------------------------------ #
    # Figure 4: runtime vs output size (BA graph family)
    # ------------------------------------------------------------------ #
    ba_graphs = {
        name: load_dataset(name, scale=scale, seed=seed)
        for name in ("ba5000", "ba7000", "ba10000")
    }
    fig4_rows = alpha_sweep(ba_graphs, [0.05, 0.01, 0.001, 0.0001])
    fig4_series = {
        "BA graphs": [(row["num_cliques"], row["elapsed_seconds"]) for row in fig4_rows]
    }
    print(
        ascii_line_chart(
            fig4_series,
            title="Figure 4 — runtime vs output size",
            x_label="number of cliques",
            y_label="seconds",
        )
    )
    print()

    # ------------------------------------------------------------------ #
    # Figures 5 and 6: LARGE-MULE vs the size threshold
    # ------------------------------------------------------------------ #
    target = {"ba10000": load_dataset("ba10000", scale=scale, seed=seed)}
    threshold_rows = size_threshold_sweep(target, [0.01], [2, 3, 4, 5, 6])
    runtime_series = {
        "alpha=0.01": [(row["size_threshold"], row["elapsed_seconds"]) for row in threshold_rows]
    }
    count_series = {
        "alpha=0.01": [
            (row["size_threshold"], max(row["num_cliques"], 1)) for row in threshold_rows
        ]
    }
    print(
        ascii_line_chart(
            runtime_series,
            title="Figure 5 — LARGE-MULE runtime vs size threshold (BA10000)",
            x_label="size threshold t",
            y_label="seconds",
        )
    )
    print()
    print(
        ascii_line_chart(
            count_series,
            title="Figure 6 — large cliques vs size threshold (BA10000, log y)",
            x_label="size threshold t",
            y_label="cliques",
            log_y=True,
        )
    )


if __name__ == "__main__":
    main()
