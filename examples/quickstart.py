#!/usr/bin/env python3
"""Quickstart: mine α-maximal cliques from a small uncertain graph.

This example walks through the library's core workflow:

1. build an uncertain graph (edges carry existence probabilities),
2. enumerate its α-maximal cliques with MULE,
3. inspect the result (sizes, probabilities, statistics),
4. cross-check against the DFS-NOIP baseline and the exhaustive oracle,
5. restrict to large cliques with LARGE-MULE.

Run it with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    UncertainGraph,
    brute_force_alpha_maximal_cliques,
    dfs_noip,
    large_mule,
    mule,
)
from repro.analysis import clique_statistics


def build_example_graph() -> UncertainGraph:
    """A toy social network: two tight friend groups bridged by a weak tie."""
    return UncertainGraph(
        edges=[
            # Friend group A — frequent interactions, high confidence.
            ("ana", "bob", 0.95),
            ("ana", "cal", 0.90),
            ("bob", "cal", 0.92),
            ("ana", "dee", 0.85),
            ("bob", "dee", 0.80),
            ("cal", "dee", 0.88),
            # Friend group B.
            ("eve", "fay", 0.90),
            ("eve", "gus", 0.85),
            ("fay", "gus", 0.95),
            # A weak bridge between the groups.
            ("dee", "eve", 0.30),
            # A peripheral acquaintance.
            ("gus", "hal", 0.45),
        ]
    )


def main() -> None:
    graph = build_example_graph()
    print(f"graph: {graph.num_vertices} people, {graph.num_edges} possible ties")

    alpha = 0.5
    result = mule(graph, alpha)
    print(f"\nMULE found {result.num_cliques} {alpha}-maximal cliques:")
    for record in result:
        members = ", ".join(record.as_tuple())
        print(f"  {{{members}}}  (clique probability {record.probability:.3f})")

    stats = clique_statistics(result)
    print(f"\nsize histogram: {stats.size_histogram}")
    print(f"mean clique probability: {stats.mean_probability:.3f}")

    # The DFS-NOIP baseline and the brute-force oracle find the same cliques —
    # MULE just gets there with far less work.
    assert dfs_noip(graph, alpha).vertex_sets() == result.vertex_sets()
    assert brute_force_alpha_maximal_cliques(graph, alpha).vertex_sets() == result.vertex_sets()
    print("\ncross-check: DFS-NOIP and the brute-force oracle agree with MULE")

    # Only interested in larger groups?  LARGE-MULE skips the small ones.
    large = large_mule(graph, alpha, size_threshold=3)
    print(f"\ncliques with at least 3 members ({large.num_cliques}):")
    for record in large:
        print(f"  {{{', '.join(record.as_tuple())}}}")

    # Raising the threshold demands more reliable groups: the 4-person group
    # only holds together with probability ~0.46, so at α = 0.6 it splits.
    strict = mule(graph, 0.6)
    print(f"\nat α = 0.6 the output becomes {strict.num_cliques} cliques:")
    for record in strict:
        print(f"  {{{', '.join(record.as_tuple())}}}  p={record.probability:.3f}")


if __name__ == "__main__":
    main()
