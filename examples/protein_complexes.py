#!/usr/bin/env python3
"""Discovering protein complexes in an uncertain PPI network.

The paper motivates α-maximal cliques as "a group of proteins such that it
is likely that each protein interacts with each other protein".  This
example reproduces that workflow on a synthetic analog of the paper's
fruit-fly PPI dataset (BioGRID topology + STRING confidence scores):

1. generate (or load) the PPI-style uncertain graph,
2. enumerate α-maximal cliques at a biologically meaningful confidence,
3. rank candidate complexes by reliability and size,
4. show how the confidence threshold α trades recall for precision,
5. identify promiscuous hub proteins via clique participation counts.

Run it with::

    python examples/protein_complexes.py
"""

from __future__ import annotations

from repro import large_mule, mule
from repro.analysis import clique_statistics, vertex_participation
from repro.generators import ppi_like_graph
from repro.uncertain.statistics import summarize


def main() -> None:
    # A 1/5-scale analog of the paper's PPI network (3 751 proteins).
    graph = ppi_like_graph(750, rng=2015)
    summary = summarize(graph)
    print("protein-protein interaction network (synthetic analog)")
    print(f"  proteins:            {summary.num_vertices}")
    print(f"  scored interactions: {summary.num_edges}")
    print(f"  mean confidence:     {summary.mean_probability:.2f}")

    # --- 1. candidate complexes at a moderate confidence threshold --------
    alpha = 0.4
    result = mule(graph, alpha)
    complexes = result.filter_minimum_size(3)
    print(
        f"\nα = {alpha}: {result.num_cliques} α-maximal cliques, "
        f"{complexes.num_cliques} candidate complexes (≥ 3 proteins)"
    )

    print("\ntop candidate complexes by reliability:")
    ranked = sorted(complexes, key=lambda r: (-r.probability, -r.size))
    for record in ranked[:8]:
        members = ", ".join(f"P{p}" for p in record.as_tuple())
        print(f"  [{record.size} proteins, P(complex)={record.probability:.3f}]  {members}")

    # --- 2. the α trade-off ------------------------------------------------
    print("\nconfidence threshold trade-off:")
    print(f"  {'alpha':>8}  {'cliques':>8}  {'complexes >=3':>14}  {'largest':>8}")
    for threshold in (0.8, 0.6, 0.4, 0.2, 0.05):
        sweep = mule(graph, threshold)
        big = sweep.filter_minimum_size(3)
        largest = sweep.largest()
        print(
            f"  {threshold:>8}  {sweep.num_cliques:>8}  {big.num_cliques:>14}  "
            f"{largest.size if largest else 0:>8}"
        )

    # --- 3. direct search for large complexes with LARGE-MULE --------------
    large = large_mule(graph, 0.2, size_threshold=4)
    print(f"\nLARGE-MULE (α = 0.2, t = 4): {large.num_cliques} complexes of ≥ 4 proteins")
    stats = clique_statistics(large)
    if large.num_cliques:
        print(f"  sizes: {stats.size_histogram}")

    # --- 4. promiscuous proteins -------------------------------------------
    participation = vertex_participation(result)
    hubs = sorted(participation.items(), key=lambda kv: -kv[1])[:5]
    print("\nproteins participating in the most candidate complexes:")
    for protein, count in hubs:
        print(f"  P{protein}: member of {count} α-maximal cliques")


if __name__ == "__main__":
    main()
