#!/usr/bin/env python3
"""Session API tour: compile once, enumerate many ways, sweep α in batch.

This example walks through the ``repro.api`` layer (see ``docs/api.md``):

1. open a :class:`~repro.api.MiningSession` on a graph,
2. run MULE, the DFS-NOIP baseline and a top-k ranking through the single
   ``enumerate()`` entry point — all over one compiled artifact,
3. sweep five α values with ``session.sweep`` and verify (a) exactly one
   graph compilation happened and (b) the outcomes are identical to
   calling the classic ``mule()`` free function per α,
4. inspect the cache accounting.

Run it with::

    python examples/session_sweep.py
"""

from __future__ import annotations

from repro import EnumerationRequest, MiningSession, mule
from repro.generators.erdos_renyi import random_uncertain_graph

import random

ALPHAS = [0.1, 0.2, 0.3, 0.4, 0.5]


def main() -> None:
    graph = random_uncertain_graph(60, 0.3, rng=random.Random(2015))
    print(f"graph: n={graph.num_vertices}, m={graph.num_edges}")
    print(f"fingerprint: {graph.fingerprint()[:16]}…  (the cache key)")

    session = MiningSession(graph)

    # --- one entry point, any algorithm -------------------------------- #
    outcome = session.enumerate(EnumerationRequest(algorithm="mule", alpha=0.3))
    print(
        f"\nmule @ α=0.3: {outcome.num_cliques} cliques "
        f"in {outcome.elapsed_seconds:.4f}s (stop: {outcome.stop_reason})"
    )

    baseline = session.enumerate(EnumerationRequest(algorithm="dfs-noip", alpha=0.3))
    assert baseline.vertex_sets() == outcome.vertex_sets()
    print(
        f"dfs-noip agrees on all {baseline.num_cliques} cliques and reused "
        "the cached compilation"
    )

    top = session.enumerate(EnumerationRequest(algorithm="top_k", alpha=0.3, k=3))
    print("top-3 by probability:")
    for record in top:
        print(f"  {sorted(record.vertices)}  p={record.probability:.4f}")

    # --- batched α sweep over ONE compilation --------------------------- #
    session = MiningSession(graph)  # fresh session to make the accounting crisp
    outcomes = session.sweep(ALPHAS)
    info = session.cache_info()
    print(f"\nsweep over α={ALPHAS}:")
    for alpha, swept in zip(ALPHAS, outcomes):
        print(f"  α={alpha}: {swept.num_cliques} cliques")
    print(
        f"cache: {info.compilations} compilation, {info.derivations} derivations, "
        f"{info.hits} hits"
    )
    assert info.compilations == 1, "a sweep must compile exactly once"

    # Bit-identical to the classic per-α free-function loop (which now
    # delegates to a throwaway session itself).
    for alpha, swept in zip(ALPHAS, outcomes):
        reference = mule(graph, alpha)
        assert {r.vertices: r.probability for r in swept} == {
            r.vertices: r.probability for r in reference
        }
        assert swept.statistics == reference.statistics
    print("parity: sweep outcomes match per-α mule() — cliques and counters")


if __name__ == "__main__":
    main()
