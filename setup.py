"""Setuptools shim.

The canonical project metadata lives in ``pyproject.toml``; this file exists
so that the package can be installed in environments without the ``wheel``
package (offline machines), where PEP 660 editable installs are unavailable
and ``pip`` falls back to the legacy ``setup.py develop`` path.
"""

from setuptools import setup

setup()
