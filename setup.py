"""Setuptools metadata.

There is no ``pyproject.toml``: the target environments are offline
machines without the ``wheel`` package, where ``pip`` falls back to the
legacy ``setup.py`` paths, so the metadata lives here directly.

The package has **zero** required dependencies.  The one optional extra,
``repro[fast]``, installs numpy for the vectorised kernel backend
(:mod:`repro.core.engine.backends`): word-array construction and popcounts
vectorise when numpy is importable and fall back to pure ``array('Q')``
otherwise — the extra changes speed, never results or availability.
"""

from setuptools import find_packages, setup

setup(
    name="repro-mule",
    version="1.0.0",
    description=(
        "Reproduction of 'Mining Maximal Cliques from an Uncertain Graph' "
        "(Mukherjee, Xu, Tirthapura; ICDE 2015)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=[],
    extras_require={
        # Accelerates CompiledGraph -> VectorForm construction (bulk word
        # packing and vectorised popcounts).  Purely optional: the vector
        # kernel runs without it on the array('Q') fallback.
        "fast": ["numpy"],
    },
    entry_points={
        "console_scripts": [
            "repro-mule = repro.cli.main:main",
        ],
    },
)
