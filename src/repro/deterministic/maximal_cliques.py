"""Utilities around deterministic maximal cliques.

These helpers complement :mod:`repro.deterministic.bron_kerbosch` with
verification predicates and simple derived quantities (maximum clique,
clique-size histogram).  They are used heavily by the test suite as an
independent oracle for the uncertain enumerators.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Hashable, Iterable

from .bron_kerbosch import enumerate_maximal_cliques
from .graph import Graph

__all__ = [
    "is_maximal_clique",
    "maximum_clique",
    "clique_number",
    "clique_size_histogram",
    "count_maximal_cliques",
]

Vertex = Hashable


def is_maximal_clique(graph: Graph, vertices: Iterable[Vertex]) -> bool:
    """Return ``True`` when ``vertices`` form a maximal clique of ``graph``.

    A set is a maximal clique when it is a clique and no vertex outside the
    set is adjacent to every member (Definition 2 of the paper).  The empty
    set is maximal only in the empty graph.

    >>> g = Graph(edges=[(1, 2), (2, 3), (1, 3), (3, 4)])
    >>> is_maximal_clique(g, {1, 2, 3})
    True
    >>> is_maximal_clique(g, {1, 2})
    False
    """
    vs = set(vertices)
    if not graph.is_clique(vs):
        return False
    if not vs:
        return graph.num_vertices == 0
    candidates: set[Vertex] | None = None
    for v in vs:
        nbrs = graph.adjacency(v)
        candidates = set(nbrs) if candidates is None else candidates & nbrs
        if not candidates:
            return True
    assert candidates is not None
    return not (candidates - vs)


def maximum_clique(graph: Graph) -> frozenset:
    """Return one maximum (largest) clique of ``graph``.

    Ties are broken arbitrarily.  The empty graph yields the empty frozenset.
    """
    best: frozenset = frozenset()
    for clique in enumerate_maximal_cliques(graph, method="pivot"):
        if len(clique) > len(best):
            best = clique
    return best


def clique_number(graph: Graph) -> int:
    """Return ω(G), the size of a maximum clique (0 for the empty graph)."""
    return len(maximum_clique(graph))


def clique_size_histogram(graph: Graph, method: str = "pivot") -> dict[int, int]:
    """Return a histogram mapping clique size to the number of maximal cliques.

    >>> g = Graph(edges=[(1, 2), (2, 3), (1, 3), (3, 4)])
    >>> clique_size_histogram(g)
    {2: 1, 3: 1}
    """
    counts = Counter(len(c) for c in enumerate_maximal_cliques(graph, method=method))
    return dict(sorted(counts.items()))


def count_maximal_cliques(graph: Graph, method: str = "pivot") -> int:
    """Return the total number of maximal cliques in ``graph``."""
    return sum(1 for _ in enumerate_maximal_cliques(graph, method=method))
