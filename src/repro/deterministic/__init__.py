"""Deterministic graph substrate.

This subpackage hosts the certain (non-probabilistic) graph structure and
the classical maximal clique machinery (Bron--Kerbosch with pivoting and
degeneracy ordering) that the uncertain-graph layer builds upon and that the
test suite uses as an oracle.
"""

from .bron_kerbosch import (
    bron_kerbosch_basic,
    bron_kerbosch_degeneracy,
    bron_kerbosch_pivot,
    enumerate_maximal_cliques,
)
from .graph import Graph, normalize_edge
from .maximal_cliques import (
    clique_number,
    clique_size_histogram,
    count_maximal_cliques,
    is_maximal_clique,
    maximum_clique,
)
from .ordering import core_numbers, degeneracy, degeneracy_ordering

__all__ = [
    "Graph",
    "normalize_edge",
    "bron_kerbosch_basic",
    "bron_kerbosch_pivot",
    "bron_kerbosch_degeneracy",
    "enumerate_maximal_cliques",
    "is_maximal_clique",
    "maximum_clique",
    "clique_number",
    "clique_size_histogram",
    "count_maximal_cliques",
    "degeneracy_ordering",
    "core_numbers",
    "degeneracy",
]
