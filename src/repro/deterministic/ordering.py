"""Vertex orderings for deterministic graphs.

The degeneracy ordering is used by the Eppstein--Strash variant of
Bron--Kerbosch (see :mod:`repro.deterministic.bron_kerbosch`) and is also a
useful structural statistic when characterising the synthetic analogs of the
paper's datasets (sparse real-world graphs have small degeneracy, which is
why maximal clique enumeration is tractable on them despite the exponential
worst case).
"""

from __future__ import annotations

from collections.abc import Hashable

from .graph import Graph

__all__ = ["degeneracy_ordering", "core_numbers", "degeneracy"]

Vertex = Hashable


def _min_degree_elimination(graph: Graph) -> tuple[list[Vertex], dict[Vertex, int]]:
    """Run the bucket-queue minimum-degree elimination (Matula--Beck).

    Returns the elimination order and, for each vertex, its remaining degree
    at the moment of removal.  Both the degeneracy ordering and the core
    numbers are derived from this single O(n + m) pass.
    """
    degrees = {v: graph.degree(v) for v in graph.vertices()}
    order: list[Vertex] = []
    removal_degree: dict[Vertex, int] = {}
    if not degrees:
        return order, removal_degree

    max_degree = max(degrees.values())
    buckets: list[set[Vertex]] = [set() for _ in range(max_degree + 1)]
    for v, d in degrees.items():
        buckets[d].add(v)

    removed: set[Vertex] = set()
    current = 0
    n = graph.num_vertices
    while len(order) < n:
        while current <= max_degree and not buckets[current]:
            current += 1
        v = buckets[current].pop()
        order.append(v)
        removal_degree[v] = current
        removed.add(v)
        for w in graph.adjacency(v):
            if w in removed:
                continue
            d = degrees[w]
            buckets[d].discard(w)
            degrees[w] = d - 1
            buckets[d - 1].add(w)
        # A neighbour may have dropped one bucket below the cursor.
        if current > 0:
            current -= 1
    return order, removal_degree


def degeneracy_ordering(graph: Graph) -> list[Vertex]:
    """Return a degeneracy ordering of ``graph``.

    The ordering repeatedly removes a vertex of minimum degree in the
    remaining graph; the result lists vertices in removal order.  Runs in
    O(n + m) time using the bucket-queue technique of Matula and Beck.

    >>> g = Graph(edges=[(1, 2), (2, 3), (1, 3), (3, 4)])
    >>> degeneracy_ordering(g)[0]
    4
    """
    order, _ = _min_degree_elimination(graph)
    return order


def core_numbers(graph: Graph) -> dict[Vertex, int]:
    """Return the core number of every vertex (Batagelj--Zaveršnik).

    The core number of ``v`` is the largest ``k`` such that ``v`` belongs to
    the ``k``-core of the graph, i.e. the maximal subgraph in which every
    vertex has degree at least ``k``.  The core number equals the running
    maximum of removal degrees along the minimum-degree elimination order.

    >>> g = Graph(edges=[(1, 2), (2, 3), (1, 3), (3, 4)])
    >>> core_numbers(g)[4]
    1
    >>> core_numbers(g)[1]
    2
    """
    order, removal_degree = _min_degree_elimination(graph)
    cores: dict[Vertex, int] = {}
    running_max = 0
    for v in order:
        running_max = max(running_max, removal_degree[v])
        cores[v] = running_max
    return cores


def degeneracy(graph: Graph) -> int:
    """Return the degeneracy of the graph (the maximum core number).

    >>> degeneracy(Graph(edges=[(1, 2), (2, 3), (1, 3)]))
    2
    >>> degeneracy(Graph())
    0
    """
    cores = core_numbers(graph)
    return max(cores.values(), default=0)
