"""Deterministic (certain) undirected simple graph.

This module provides :class:`Graph`, the deterministic substrate used by the
uncertain-graph layer and by the Bron--Kerbosch style enumerators.  The graph
is undirected and simple: no self loops, no parallel edges.  Vertices may be
any hashable object, although the enumeration algorithms in
:mod:`repro.core` relabel vertices to integers internally so that the
"increasing vertex identifier" order used by the paper's depth-first search
is well defined.

The implementation stores adjacency as ``dict[vertex, set[vertex]]`` which
gives O(1) expected-time edge queries and O(deg(v)) neighborhood iteration,
matching the assumptions used in the paper's complexity analysis
(Lemma 10 of the paper assumes constant-time edge-probability lookups; the
same holds for adjacency queries here).
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator
from typing import Any

from ..errors import EdgeError, VertexError

__all__ = ["Graph", "normalize_edge"]

Vertex = Hashable
Edge = tuple[Any, Any]


def normalize_edge(u: Vertex, v: Vertex) -> Edge:
    """Return a canonical (sorted) representation of the undirected edge ``{u, v}``.

    Sorting is performed on ``(type name, repr)`` pairs when the endpoints are
    not mutually orderable so that heterogeneous vertex labels still receive a
    deterministic canonical form.

    >>> normalize_edge(3, 1)
    (1, 3)
    >>> normalize_edge("b", "a")
    ('a', 'b')
    """
    if u == v:
        raise EdgeError(f"self-loop on vertex {u!r} is not allowed in a simple graph")
    try:
        return (u, v) if u <= v else (v, u)  # type: ignore[operator]
    except TypeError:
        key_u = (type(u).__name__, repr(u))
        key_v = (type(v).__name__, repr(v))
        return (u, v) if key_u <= key_v else (v, u)


class Graph:
    """An undirected simple graph backed by adjacency sets.

    Parameters
    ----------
    vertices:
        Optional iterable of initial vertices.
    edges:
        Optional iterable of ``(u, v)`` pairs.  Endpoints are added as
        vertices automatically.

    Examples
    --------
    >>> g = Graph(edges=[(1, 2), (2, 3)])
    >>> g.num_vertices, g.num_edges
    (3, 2)
    >>> sorted(g.neighbors(2))
    [1, 3]
    >>> g.has_edge(3, 2)
    True
    """

    def __init__(
        self,
        vertices: Iterable[Vertex] | None = None,
        edges: Iterable[tuple[Vertex, Vertex]] | None = None,
    ) -> None:
        self._adj: dict[Vertex, set[Vertex]] = {}
        if vertices is not None:
            for v in vertices:
                self.add_vertex(v)
        if edges is not None:
            for u, v in edges:
                self.add_edge(u, v)

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #
    def add_vertex(self, v: Vertex) -> None:
        """Add vertex ``v``; adding an existing vertex is a no-op."""
        if v not in self._adj:
            self._adj[v] = set()

    def add_edge(self, u: Vertex, v: Vertex) -> None:
        """Add the undirected edge ``{u, v}``, creating endpoints as needed.

        Raises
        ------
        EdgeError
            If ``u == v`` (self-loops are not allowed).
        """
        if u == v:
            raise EdgeError(f"self-loop on vertex {u!r} is not allowed in a simple graph")
        self.add_vertex(u)
        self.add_vertex(v)
        self._adj[u].add(v)
        self._adj[v].add(u)

    def remove_edge(self, u: Vertex, v: Vertex) -> None:
        """Remove the edge ``{u, v}``.

        Raises
        ------
        EdgeError
            If the edge is not present.
        """
        if not self.has_edge(u, v):
            raise EdgeError(f"edge {{{u!r}, {v!r}}} is not in the graph")
        self._adj[u].discard(v)
        self._adj[v].discard(u)

    def remove_vertex(self, v: Vertex) -> None:
        """Remove vertex ``v`` and all incident edges.

        Raises
        ------
        VertexError
            If ``v`` is not present.
        """
        if v not in self._adj:
            raise VertexError(f"vertex {v!r} is not in the graph")
        for u in self._adj[v]:
            self._adj[u].discard(v)
        del self._adj[v]

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    @property
    def num_vertices(self) -> int:
        """Number of vertices (``n`` in the paper's notation)."""
        return len(self._adj)

    @property
    def num_edges(self) -> int:
        """Number of edges (``m`` in the paper's notation)."""
        return sum(len(nbrs) for nbrs in self._adj.values()) // 2

    def has_vertex(self, v: Vertex) -> bool:
        """Return ``True`` when ``v`` is a vertex of the graph."""
        return v in self._adj

    def has_edge(self, u: Vertex, v: Vertex) -> bool:
        """Return ``True`` when the undirected edge ``{u, v}`` exists."""
        return u in self._adj and v in self._adj[u]

    def vertices(self) -> Iterator[Vertex]:
        """Iterate over all vertices."""
        return iter(self._adj)

    def edges(self) -> Iterator[Edge]:
        """Iterate over all edges exactly once, in canonical orientation."""
        seen: set[Edge] = set()
        for u, nbrs in self._adj.items():
            for v in nbrs:
                e = normalize_edge(u, v)
                if e not in seen:
                    seen.add(e)
                    yield e

    def neighbors(self, v: Vertex) -> set[Vertex]:
        """Return the neighborhood ``Γ(v)`` as a (copied) set.

        Raises
        ------
        VertexError
            If ``v`` is not a vertex of the graph.
        """
        if v not in self._adj:
            raise VertexError(f"vertex {v!r} is not in the graph")
        return set(self._adj[v])

    def adjacency(self, v: Vertex) -> frozenset[Vertex]:
        """Return a read-only view-like frozenset of ``Γ(v)`` without copying semantics.

        This is the preferred accessor inside inner loops because it avoids
        per-call set copies; callers must not mutate the graph while holding
        the returned value.
        """
        if v not in self._adj:
            raise VertexError(f"vertex {v!r} is not in the graph")
        return frozenset(self._adj[v])

    def degree(self, v: Vertex) -> int:
        """Return ``|Γ(v)|``."""
        if v not in self._adj:
            raise VertexError(f"vertex {v!r} is not in the graph")
        return len(self._adj[v])

    def is_clique(self, vertices: Iterable[Vertex]) -> bool:
        """Return ``True`` when ``vertices`` induce a complete subgraph.

        The empty set and singletons are cliques by convention (Definition 1
        of the paper is vacuously satisfied).
        """
        vs = list(vertices)
        for v in vs:
            if v not in self._adj:
                raise VertexError(f"vertex {v!r} is not in the graph")
        for i, u in enumerate(vs):
            nbrs = self._adj[u]
            for v in vs[i + 1 :]:
                if v not in nbrs:
                    return False
        return True

    def common_neighbors(self, u: Vertex, v: Vertex) -> set[Vertex]:
        """Return ``Γ(u) ∩ Γ(v)``."""
        if u not in self._adj:
            raise VertexError(f"vertex {u!r} is not in the graph")
        if v not in self._adj:
            raise VertexError(f"vertex {v!r} is not in the graph")
        return self._adj[u] & self._adj[v]

    def density(self) -> float:
        """Return the edge density ``2m / (n(n-1))`` (0.0 for graphs with < 2 vertices)."""
        n = self.num_vertices
        if n < 2:
            return 0.0
        return 2.0 * self.num_edges / (n * (n - 1))

    # ------------------------------------------------------------------ #
    # Derived graphs
    # ------------------------------------------------------------------ #
    def subgraph(self, vertices: Iterable[Vertex]) -> "Graph":
        """Return the subgraph induced by ``vertices``.

        Vertices not present in the graph are ignored, which makes the method
        convenient for restricting to candidate sets computed elsewhere.
        """
        keep = {v for v in vertices if v in self._adj}
        sub = Graph(vertices=keep)
        for u in keep:
            for v in self._adj[u]:
                if v in keep:
                    sub.add_edge(u, v)
        return sub

    def copy(self) -> "Graph":
        """Return a deep structural copy of the graph."""
        g = Graph()
        g._adj = {v: set(nbrs) for v, nbrs in self._adj.items()}
        return g

    def relabeled(self) -> tuple["Graph", dict[Vertex, int], dict[int, Vertex]]:
        """Return an integer-labelled copy plus forward/backward label maps.

        Vertices are assigned consecutive integers ``1..n`` in sorted order
        (falling back to ``repr`` order for non-orderable labels), mirroring
        the paper's assumption that vertex identifiers are ``1, 2, ..., n``.
        """
        try:
            ordered = sorted(self._adj)
        except TypeError:
            ordered = sorted(self._adj, key=lambda v: (type(v).__name__, repr(v)))
        forward = {v: i + 1 for i, v in enumerate(ordered)}
        backward = {i: v for v, i in forward.items()}
        g = Graph(vertices=forward.values())
        for u, v in self.edges():
            g.add_edge(forward[u], forward[v])
        return g, forward, backward

    # ------------------------------------------------------------------ #
    # Connectivity helpers
    # ------------------------------------------------------------------ #
    def connected_components(self) -> list[set[Vertex]]:
        """Return the connected components as a list of vertex sets."""
        remaining = set(self._adj)
        components: list[set[Vertex]] = []
        while remaining:
            root = next(iter(remaining))
            seen = {root}
            stack = [root]
            while stack:
                u = stack.pop()
                for w in self._adj[u]:
                    if w not in seen:
                        seen.add(w)
                        stack.append(w)
            components.append(seen)
            remaining -= seen
        return components

    # ------------------------------------------------------------------ #
    # Dunder methods
    # ------------------------------------------------------------------ #
    def __contains__(self, v: Vertex) -> bool:
        return v in self._adj

    def __len__(self) -> int:
        return len(self._adj)

    def __iter__(self) -> Iterator[Vertex]:
        return iter(self._adj)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return self._adj == other._adj

    def __repr__(self) -> str:
        return f"Graph(n={self.num_vertices}, m={self.num_edges})"
