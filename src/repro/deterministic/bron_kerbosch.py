"""Maximal clique enumeration on deterministic graphs.

Provides the classical Bron--Kerbosch algorithm in three flavours:

* :func:`bron_kerbosch_basic` — the original recursion (no pivoting),
* :func:`bron_kerbosch_pivot` — Tomita-style pivot selection, which gives
  the worst-case optimal ``O(3^{n/3})`` running time,
* :func:`bron_kerbosch_degeneracy` — Eppstein--Strash outer loop over a
  degeneracy ordering, the method of choice for large sparse graphs.

These serve two purposes in the reproduction.  First, they are the
``α = 1`` special case of α-maximal clique enumeration (Definition 4 of the
paper reduces to the deterministic notion when all retained edges are
certain).  Second, they act as an independent oracle against which the
uncertain enumerators (MULE, DFS-NOIP) are validated in the test suite.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterator

from .graph import Graph
from .ordering import degeneracy_ordering

__all__ = [
    "bron_kerbosch_basic",
    "bron_kerbosch_pivot",
    "bron_kerbosch_degeneracy",
    "enumerate_maximal_cliques",
]

Vertex = Hashable
Clique = frozenset


def bron_kerbosch_basic(graph: Graph) -> Iterator[Clique]:
    """Enumerate maximal cliques with the original Bron--Kerbosch recursion.

    Yields each maximal clique exactly once as a ``frozenset``.  Isolated
    vertices are yielded as singleton cliques.  Exponential in the worst
    case; intended for small graphs and for cross-validation.

    >>> sorted(sorted(c) for c in bron_kerbosch_basic(Graph(edges=[(1, 2), (2, 3)])))
    [[1, 2], [2, 3]]
    """
    adjacency = {v: graph.adjacency(v) for v in graph.vertices()}

    def expand(r: set, p: set, x: set) -> Iterator[Clique]:
        if not p and not x:
            yield frozenset(r)
            return
        for v in list(p):
            nbrs = adjacency[v]
            yield from expand(r | {v}, p & nbrs, x & nbrs)
            p.discard(v)
            x.add(v)

    yield from expand(set(), set(adjacency), set())


def bron_kerbosch_pivot(graph: Graph) -> Iterator[Clique]:
    """Enumerate maximal cliques using Tomita-style pivot selection.

    At every recursion level a pivot ``u`` maximising ``|P ∩ Γ(u)|`` is
    chosen from ``P ∪ X`` and only vertices outside ``Γ(u)`` are branched on,
    which bounds the recursion tree by ``O(3^{n/3})`` (worst-case optimal by
    the Moon--Moser bound).

    >>> g = Graph(edges=[(1, 2), (1, 3), (2, 3), (3, 4)])
    >>> sorted(sorted(c) for c in bron_kerbosch_pivot(g))
    [[1, 2, 3], [3, 4]]
    """
    adjacency = {v: graph.adjacency(v) for v in graph.vertices()}

    def expand(r: set, p: set, x: set) -> Iterator[Clique]:
        if not p and not x:
            yield frozenset(r)
            return
        pivot_pool = p | x
        pivot = max(pivot_pool, key=lambda u: len(p & adjacency[u]))
        for v in list(p - adjacency[pivot]):
            nbrs = adjacency[v]
            yield from expand(r | {v}, p & nbrs, x & nbrs)
            p.discard(v)
            x.add(v)

    yield from expand(set(), set(adjacency), set())


def bron_kerbosch_degeneracy(graph: Graph) -> Iterator[Clique]:
    """Enumerate maximal cliques with the Eppstein--Strash degeneracy ordering.

    The outer loop walks vertices in a degeneracy ordering so that the
    candidate set handed to the pivoting recursion has size at most the
    graph degeneracy ``d``, giving an overall ``O(d · n · 3^{d/3})`` bound —
    near-linear for the sparse real-world graphs in the paper's Table 1.

    >>> g = Graph(edges=[(1, 2), (1, 3), (2, 3), (3, 4)])
    >>> sorted(sorted(c) for c in bron_kerbosch_degeneracy(g))
    [[1, 2, 3], [3, 4]]
    """
    adjacency = {v: graph.adjacency(v) for v in graph.vertices()}
    order = degeneracy_ordering(graph)
    rank = {v: i for i, v in enumerate(order)}

    def expand(r: set, p: set, x: set) -> Iterator[Clique]:
        if not p and not x:
            yield frozenset(r)
            return
        pivot_pool = p | x
        pivot = max(pivot_pool, key=lambda u: len(p & adjacency[u]))
        for v in list(p - adjacency[pivot]):
            nbrs = adjacency[v]
            yield from expand(r | {v}, p & nbrs, x & nbrs)
            p.discard(v)
            x.add(v)

    for v in order:
        nbrs = adjacency[v]
        later = {w for w in nbrs if rank[w] > rank[v]}
        earlier = {w for w in nbrs if rank[w] < rank[v]}
        yield from expand({v}, later, earlier)


def enumerate_maximal_cliques(graph: Graph, method: str = "pivot") -> list[Clique]:
    """Enumerate all maximal cliques and return them as a list.

    Parameters
    ----------
    graph:
        The deterministic graph.
    method:
        One of ``"basic"``, ``"pivot"`` (default) or ``"degeneracy"``.

    Raises
    ------
    ValueError
        If ``method`` is not one of the recognised strategies.
    """
    if method == "basic":
        return list(bron_kerbosch_basic(graph))
    if method == "pivot":
        return list(bron_kerbosch_pivot(graph))
    if method == "degeneracy":
        return list(bron_kerbosch_degeneracy(graph))
    raise ValueError(
        f"unknown method {method!r}; expected 'basic', 'pivot' or 'degeneracy'"
    )
