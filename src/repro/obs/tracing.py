"""Span-based request tracing with Chrome trace-event export.

:func:`trace_span` opens one named span on the calling thread; spans nest
naturally (a span opened while another is active becomes its child), and
when the outermost span of a thread closes, the finished tree is recorded
as a *root* on the owning :class:`Tracer` and handed to any registered
sinks.  The HTTP server wraps every request in a root span, so
``repro-mule serve --trace-dir DIR`` gets one span tree — and one Chrome
``chrome://tracing`` / Perfetto-loadable JSON file — per request,
answering "where did this request spend its time" across
decode → schedule → compile → run → encode.

The clock is :func:`time.perf_counter` — the same stopwatch seam the rest
of the stack uses; nothing here runs inside ``core/engine``, so the
``kernel-determinism`` rule is untouched.  Tracing honours the same
``REPRO_DISABLE_METRICS`` gate as the metric instruments: when disabled,
:func:`trace_span` degrades to a no-op context manager.
"""

from __future__ import annotations

import json
import threading
from collections import deque
from contextlib import contextmanager
from time import perf_counter

__all__ = [
    "Span",
    "Tracer",
    "chrome_trace_events",
    "set_tracer",
    "trace_span",
    "tracer",
    "write_chrome_trace",
]

#: Root span trees retained per tracer (oldest evicted first).
DEFAULT_MAX_ROOTS = 256


class Span:
    """One timed operation: a name, a window, attributes and children."""

    __slots__ = ("name", "attrs", "start", "end", "children")

    def __init__(self, name: str, attrs: dict) -> None:
        self.name = name
        self.attrs = attrs
        self.start = 0.0
        self.end = 0.0
        self.children: list["Span"] = []

    @property
    def duration(self) -> float:
        """Wall seconds between open and close (0.0 while still open)."""
        return max(0.0, self.end - self.start)

    def tree_size(self) -> int:
        """Number of spans in this subtree (self included)."""
        return 1 + sum(child.tree_size() for child in self.children)

    def __repr__(self) -> str:
        return (
            f"Span(name={self.name!r}, duration={self.duration:.6f}, "
            f"children={len(self.children)})"
        )


class Tracer:
    """Per-thread span stacks feeding a bounded store of finished trees.

    ``span(name, **attrs)`` is the only producer API.  Completed root
    trees are appended to a bounded deque (``max_roots``) and offered to
    every registered sink callback; sinks run outside the tracer lock and
    their exceptions are swallowed — tracing must never fail a request.
    """

    def __init__(
        self, *, max_roots: int = DEFAULT_MAX_ROOTS, enabled: bool = True
    ) -> None:
        self._local = threading.local()
        self._lock = threading.Lock()
        self._roots: deque = deque(maxlen=max_roots)
        self._sinks: list = []
        self._enabled = enabled

    @property
    def enabled(self) -> bool:
        return self._enabled

    def set_enabled(self, flag: bool) -> None:
        self._enabled = bool(flag)

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    @contextmanager
    def span(self, name: str, **attrs: object):
        """Open one span on this thread; closes (and records) on exit."""
        if not self._enabled:
            yield None
            return
        span = Span(name, {k: str(v) for k, v in attrs.items()})
        stack = self._stack()
        if stack:
            stack[-1].children.append(span)
        stack.append(span)
        span.start = perf_counter()
        try:
            yield span
        finally:
            span.end = perf_counter()
            stack.pop()
            if not stack:
                self._record_root(span)

    def _record_root(self, span: Span) -> None:
        with self._lock:
            self._roots.append(span)
            sinks = list(self._sinks)
        for sink in sinks:
            try:
                sink(span)
            except Exception:
                # A broken sink must never take the traced request down.
                pass

    def add_sink(self, callback) -> None:
        """Register ``callback(root_span)`` to run on every finished tree."""
        with self._lock:
            self._sinks.append(callback)

    def remove_sink(self, callback) -> None:
        """Unregister a sink (no-op when it was never added)."""
        with self._lock:
            if callback in self._sinks:
                self._sinks.remove(callback)

    def roots(self) -> list:
        """The retained finished root spans, oldest first."""
        with self._lock:
            return list(self._roots)

    def reset(self) -> None:
        """Drop retained roots (sinks and per-thread stacks survive)."""
        with self._lock:
            self._roots.clear()


def chrome_trace_events(span: Span, *, pid: int = 1, tid: int = 1) -> list:
    """Flatten one span tree into Chrome trace-event ``X`` phase dicts.

    Timestamps are microseconds on the tracer's ``perf_counter`` axis —
    Chrome/Perfetto only need them to be mutually consistent, not
    wall-clock anchored.
    """
    events = []

    def visit(node: Span) -> None:
        event = {
            "name": node.name,
            "ph": "X",
            "ts": round(node.start * 1e6, 3),
            "dur": round(node.duration * 1e6, 3),
            "pid": pid,
            "tid": tid,
        }
        if node.attrs:
            event["args"] = dict(node.attrs)
        events.append(event)
        for child in node.children:
            visit(child)

    visit(span)
    return events


def write_chrome_trace(path, spans) -> None:
    """Write span trees as one Chrome trace JSON file (``traceEvents``)."""
    events: list = []
    for span in spans:
        events.extend(chrome_trace_events(span))
    payload = {"traceEvents": events, "displayTimeUnit": "ms"}
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=1, sort_keys=True)
        handle.write("\n")


_GLOBAL_LOCK = threading.Lock()
_GLOBAL: "Tracer | None" = None


def tracer() -> Tracer:
    """The process-global tracer (same seam shape as ``metrics.registry``)."""
    global _GLOBAL
    with _GLOBAL_LOCK:
        if _GLOBAL is None:
            from .metrics import _metrics_disabled_by_env

            _GLOBAL = Tracer(enabled=not _metrics_disabled_by_env())
        return _GLOBAL


def set_tracer(replacement: "Tracer | None") -> Tracer:
    """Swap the process-global tracer (tests); ``None`` builds a fresh one."""
    global _GLOBAL
    with _GLOBAL_LOCK:
        _GLOBAL = replacement if replacement is not None else Tracer()
        return _GLOBAL


def trace_span(name: str, **attrs: object):
    """Open a span named ``name`` on the process-global tracer."""
    return tracer().span(name, **attrs)
