"""Thread-safe metric instruments and the process-global registry.

Three instrument kinds, Prometheus-shaped but dependency-free:

* :class:`Counter` — monotonically increasing totals (``_total`` names);
* :class:`Gauge` — point-in-time levels (queue depth, worker counts);
* :class:`Histogram` — fixed-bucket latency/size distributions.  Bucket
  bounds are **deterministic per instrument** (chosen at registration,
  never adapted to data), so quantile summaries are reproducible: two
  runs that observe the same values report identical bucket counts, and
  the p50/p99 estimates derived from them are pure functions of those
  counts.

Every instrument supports ``labels(...)`` dimensions (per-graph,
per-endpoint, per-worker); a labelled child is created lazily on first
use and shares the parent's registration.  All mutation is guarded by a
per-instrument lock and degrades to one predicate branch when the
registry is disabled (``REPRO_DISABLE_METRICS=1``).

Metric names follow the repo-wide discipline enforced by the
``metrics-discipline`` check rule: ``snake_case`` with a layer prefix
(``engine_``, ``cache_``, ``sched_``, ``jobs_``, ``http_``, ``dist_``),
registered once at module scope.
"""

from __future__ import annotations

import math
import os
import re
import threading
from collections.abc import Iterable, Mapping

from ..errors import ParameterError

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "DISABLE_METRICS_ENV",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "registry",
    "render_prometheus",
    "set_registry",
]

#: Environment variable that disables every instrument at registry
#: construction time (the value ``"0"`` or an empty string keeps metrics on).
DISABLE_METRICS_ENV = "REPRO_DISABLE_METRICS"

#: Default histogram bounds (seconds): sub-millisecond to 10 s, the span of
#: one enumeration request across the paper's scaled datasets.  Fixed and
#: shared so latency histograms are comparable across endpoints and runs.
DEFAULT_LATENCY_BUCKETS = (
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)

_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*$")


def _metrics_disabled_by_env() -> bool:
    return os.environ.get(DISABLE_METRICS_ENV, "") not in ("", "0")


def _flat_name(name: str, labelnames: tuple, key: tuple) -> str:
    """The deterministic flattened series name: ``name{k=v,...}``."""
    if not labelnames:
        return name
    inner = ",".join(f"{k}={v}" for k, v in zip(labelnames, key))
    return f"{name}{{{inner}}}"


class _Instrument:
    """Shared registration + label plumbing of every instrument kind."""

    kind = "instrument"

    def __init__(
        self,
        registry: "MetricsRegistry",
        name: str,
        description: str,
        labelnames: Iterable[str] = (),
    ) -> None:
        self._registry = registry
        self.name = name
        self.description = description
        self.labelnames = tuple(labelnames)
        for label in self.labelnames:
            if not _NAME_RE.match(label):
                raise ParameterError(
                    f"label name {label!r} of metric {name!r} is not snake_case"
                )
        self._lock = threading.Lock()

    def _label_key(self, labelvalues: Mapping[str, object]) -> tuple:
        if set(labelvalues) != set(self.labelnames):
            raise ParameterError(
                f"metric {self.name!r} takes labels {self.labelnames}, "
                f"got {tuple(sorted(labelvalues))}"
            )
        return tuple(str(labelvalues[label]) for label in self.labelnames)

    def _check_unlabelled(self) -> None:
        if self.labelnames:
            raise ParameterError(
                f"metric {self.name!r} is labelled by {self.labelnames}; "
                f"use .labels(...)"
            )


class Counter(_Instrument):
    """A monotonically increasing total (optionally labelled)."""

    kind = "counter"

    def __init__(self, registry, name, description, labelnames=()):
        super().__init__(registry, name, description, labelnames)
        self._values: dict[tuple, float] = {}

    def labels(self, **labelvalues: object) -> "_BoundCounter":
        """The child series for these label values (created lazily)."""
        return _BoundCounter(self, self._label_key(labelvalues))

    def inc(self, amount: float = 1.0) -> None:
        """Increment the unlabelled series by ``amount`` (must be >= 0)."""
        self._check_unlabelled()
        self._inc((), amount)

    def _inc(self, key: tuple, amount: float) -> None:
        if not self._registry.enabled:
            return
        if amount < 0:
            raise ParameterError(
                f"counter {self.name!r} cannot decrease (inc by {amount})"
            )
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labelvalues: object) -> float:
        """Current total of one series (0.0 when never incremented)."""
        key = self._label_key(labelvalues) if labelvalues else ()
        if not labelvalues:
            self._check_unlabelled()
        with self._lock:
            return self._values.get(key, 0.0)

    def collect(self) -> dict[str, float]:
        """Snapshot of every series, flattened-name -> total."""
        with self._lock:
            items = list(self._values.items())
        return {
            _flat_name(self.name, self.labelnames, key): value
            for key, value in sorted(items)
        }

    def _reset(self) -> None:
        with self._lock:
            self._values.clear()


class _BoundCounter:
    """One labelled child series of a :class:`Counter`."""

    __slots__ = ("_parent", "_key")

    def __init__(self, parent: Counter, key: tuple) -> None:
        self._parent = parent
        self._key = key

    def inc(self, amount: float = 1.0) -> None:
        self._parent._inc(self._key, amount)


class Gauge(_Instrument):
    """A point-in-time level that can move in both directions."""

    kind = "gauge"

    def __init__(self, registry, name, description, labelnames=()):
        super().__init__(registry, name, description, labelnames)
        self._values: dict[tuple, float] = {}

    def labels(self, **labelvalues: object) -> "_BoundGauge":
        return _BoundGauge(self, self._label_key(labelvalues))

    def set(self, value: float) -> None:
        self._check_unlabelled()
        self._set((), value)

    def inc(self, amount: float = 1.0) -> None:
        self._check_unlabelled()
        self._add((), amount)

    def dec(self, amount: float = 1.0) -> None:
        self._check_unlabelled()
        self._add((), -amount)

    def _set(self, key: tuple, value: float) -> None:
        if not self._registry.enabled:
            return
        with self._lock:
            self._values[key] = float(value)

    def _add(self, key: tuple, amount: float) -> None:
        if not self._registry.enabled:
            return
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labelvalues: object) -> float:
        key = self._label_key(labelvalues) if labelvalues else ()
        if not labelvalues:
            self._check_unlabelled()
        with self._lock:
            return self._values.get(key, 0.0)

    def collect(self) -> dict[str, float]:
        with self._lock:
            items = list(self._values.items())
        return {
            _flat_name(self.name, self.labelnames, key): value
            for key, value in sorted(items)
        }

    def _reset(self) -> None:
        with self._lock:
            self._values.clear()


class _BoundGauge:
    """One labelled child series of a :class:`Gauge`."""

    __slots__ = ("_parent", "_key")

    def __init__(self, parent: Gauge, key: tuple) -> None:
        self._parent = parent
        self._key = key

    def set(self, value: float) -> None:
        self._parent._set(self._key, value)

    def inc(self, amount: float = 1.0) -> None:
        self._parent._add(self._key, amount)

    def dec(self, amount: float = 1.0) -> None:
        self._parent._add(self._key, -amount)


class _Series:
    """Mutable per-label-key histogram state (guarded by the parent lock)."""

    __slots__ = ("counts", "sum", "count")

    def __init__(self, num_buckets: int) -> None:
        self.counts = [0] * num_buckets
        self.sum = 0.0
        self.count = 0


class Histogram(_Instrument):
    """A fixed-bucket distribution with deterministic quantile estimates.

    ``bounds`` are the strictly increasing upper bucket edges; one
    implicit overflow bucket (``+Inf``) catches everything above the last
    edge.  ``quantile(q)`` linearly interpolates inside the bucket that
    holds rank ``q * count`` — a pure function of the bucket counts, so
    two runs observing the same values report identical quantiles.
    """

    kind = "histogram"

    def __init__(
        self,
        registry,
        name,
        description,
        labelnames=(),
        buckets: Iterable[float] = DEFAULT_LATENCY_BUCKETS,
    ):
        super().__init__(registry, name, description, labelnames)
        bounds = tuple(float(edge) for edge in buckets)
        if not bounds:
            raise ParameterError(f"histogram {name!r} needs at least one bucket")
        if any(b <= a for a, b in zip(bounds, bounds[1:])):
            raise ParameterError(
                f"histogram {name!r} bounds must be strictly increasing: {bounds}"
            )
        self.bounds = bounds
        self._series: dict[tuple, _Series] = {}

    def labels(self, **labelvalues: object) -> "_BoundHistogram":
        return _BoundHistogram(self, self._label_key(labelvalues))

    def observe(self, value: float) -> None:
        self._check_unlabelled()
        self._observe((), value)

    def _observe(self, key: tuple, value: float) -> None:
        if not self._registry.enabled:
            return
        value = float(value)
        index = len(self.bounds)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                index = i
                break
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = self._series[key] = _Series(len(self.bounds) + 1)
            series.counts[index] += 1
            series.sum += value
            series.count += 1

    def quantile(self, q: float, **labelvalues: object) -> float:
        """Deterministic quantile estimate for one series (0.0 when empty)."""
        if not 0.0 <= q <= 1.0:
            raise ParameterError(f"quantile must be in [0, 1], got {q}")
        key = self._label_key(labelvalues) if labelvalues else ()
        if not labelvalues:
            self._check_unlabelled()
        with self._lock:
            series = self._series.get(key)
            counts = list(series.counts) if series is not None else None
        if not counts or sum(counts) == 0:
            return 0.0
        return _quantile_from_buckets(self.bounds, counts, q)

    def collect(self) -> dict[str, dict]:
        """Snapshot: flattened-name -> bounds/counts/sum/count/p50/p99."""
        with self._lock:
            items = [
                (key, list(series.counts), series.sum, series.count)
                for key, series in self._series.items()
            ]
        out: dict[str, dict] = {}
        for key, counts, total, count in sorted(items):
            out[_flat_name(self.name, self.labelnames, key)] = {
                "bounds": list(self.bounds),
                "counts": counts,
                "sum": total,
                "count": count,
                "p50": _quantile_from_buckets(self.bounds, counts, 0.5),
                "p99": _quantile_from_buckets(self.bounds, counts, 0.99),
            }
        return out

    def _reset(self) -> None:
        with self._lock:
            self._series.clear()


class _BoundHistogram:
    """One labelled child series of a :class:`Histogram`."""

    __slots__ = ("_parent", "_key")

    def __init__(self, parent: Histogram, key: tuple) -> None:
        self._parent = parent
        self._key = key

    def observe(self, value: float) -> None:
        self._parent._observe(self._key, value)


def _quantile_from_buckets(
    bounds: tuple, counts: list, q: float
) -> float:
    """Linear-interpolation quantile over fixed buckets (pure, deterministic)."""
    if not 0.0 <= q <= 1.0:
        raise ParameterError(f"quantile must be in [0, 1], got {q}")
    total = sum(counts)
    if total == 0:
        return 0.0
    rank = q * total
    cumulative = 0.0
    lower = 0.0
    for i, count in enumerate(counts):
        upper = bounds[i] if i < len(bounds) else math.inf
        if count and cumulative + count >= rank:
            if math.isinf(upper):
                # Overflow bucket: the last finite edge is the best bound.
                return float(bounds[-1])
            fraction = max(0.0, rank - cumulative) / count
            return lower + (upper - lower) * fraction
        cumulative += count
        lower = upper if not math.isinf(upper) else lower
    return float(bounds[-1])


class MetricsRegistry:
    """A named collection of instruments with atomic snapshot export.

    Registration is idempotent: re-registering the same ``(kind, name,
    labelnames)`` returns the existing instrument (so module reloads and
    shared seams are safe), while a conflicting re-registration raises.
    ``snapshot()`` / :func:`render_prometheus` read every instrument;
    ``reset()`` zeroes the series but keeps the registrations, which is
    what determinism tests and the golden fixture builder rely on.
    """

    def __init__(self, *, enabled: bool | None = None) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, _Instrument] = {}
        self._enabled = (
            not _metrics_disabled_by_env() if enabled is None else bool(enabled)
        )

    @property
    def enabled(self) -> bool:
        """False when every instrument is a no-op (REPRO_DISABLE_METRICS)."""
        return self._enabled

    def set_enabled(self, flag: bool) -> None:
        """Flip instrumentation on/off (used by the overhead benchmark)."""
        self._enabled = bool(flag)

    def counter(
        self, name: str, description: str, labelnames: Iterable[str] = ()
    ) -> Counter:
        """Register (or fetch) a counter."""
        instrument = self._register(Counter, name, description, tuple(labelnames))
        assert isinstance(instrument, Counter)
        return instrument

    def gauge(
        self, name: str, description: str, labelnames: Iterable[str] = ()
    ) -> Gauge:
        """Register (or fetch) a gauge."""
        instrument = self._register(Gauge, name, description, tuple(labelnames))
        assert isinstance(instrument, Gauge)
        return instrument

    def histogram(
        self,
        name: str,
        description: str,
        labelnames: Iterable[str] = (),
        buckets: Iterable[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        """Register (or fetch) a fixed-bucket histogram."""
        instrument = self._register(
            Histogram, name, description, tuple(labelnames), buckets=tuple(buckets)
        )
        assert isinstance(instrument, Histogram)
        return instrument

    def _register(self, cls, name, description, labelnames, **extra):
        if not _NAME_RE.match(name):
            raise ParameterError(
                f"metric name {name!r} is not snake_case ([a-z][a-z0-9_]*)"
            )
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if type(existing) is not cls or existing.labelnames != labelnames:
                    raise ParameterError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}{existing.labelnames}"
                    )
                return existing
            instrument = cls(self, name, description, labelnames, **extra)
            self._metrics[name] = instrument
            return instrument

    def get(self, name: str) -> "_Instrument | None":
        """The registered instrument of this name, or ``None``."""
        with self._lock:
            return self._metrics.get(name)

    def instruments(self) -> list:
        """Every registered instrument, sorted by name."""
        with self._lock:
            return [self._metrics[name] for name in sorted(self._metrics)]

    def reset(self) -> None:
        """Zero every series; registrations (names, bounds) survive."""
        for instrument in self.instruments():
            instrument._reset()

    def snapshot(self) -> dict:
        """One deterministic, JSON-shaped view of every instrument.

        ``{"counters": {name: total}, "gauges": {name: level},
        "histograms": {name: {bounds, counts, sum, count, p50, p99}}}``
        with labelled series flattened to ``name{k=v,...}`` keys in sorted
        order.  Each instrument is read atomically under its own lock;
        the cross-instrument view is best-effort (metrics keep moving
        while the snapshot walks the registry).
        """
        counters: dict[str, float] = {}
        gauges: dict[str, float] = {}
        histograms: dict[str, dict] = {}
        for instrument in self.instruments():
            if isinstance(instrument, Counter):
                counters.update(instrument.collect())
            elif isinstance(instrument, Gauge):
                gauges.update(instrument.collect())
            elif isinstance(instrument, Histogram):
                histograms.update(instrument.collect())
        return {
            "counters": dict(sorted(counters.items())),
            "gauges": dict(sorted(gauges.items())),
            "histograms": dict(sorted(histograms.items())),
        }


def _prometheus_pairs(inner: str) -> list[str]:
    """``k=v,k2=v2`` (flattened form) -> ['k="v"', 'k2="v2"'] escaped."""
    if not inner:
        return []
    pairs = []
    for part in inner.split(","):
        label, _, value = part.partition("=")
        escaped = value.replace("\\", "\\\\").replace('"', '\\"')
        pairs.append(f'{label}="{escaped}"')
    return pairs


def _prometheus_series(flat: str) -> str:
    """Convert a flattened series key to Prometheus exposition syntax."""
    if "{" not in flat:
        return flat
    name, _, inner = flat.partition("{")
    return f"{name}{{{','.join(_prometheus_pairs(inner.rstrip('}')))}}}"


def _format_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def render_prometheus(source: "MetricsRegistry | None" = None) -> str:
    """Render a registry in the Prometheus text exposition format (v0.0.4).

    Counters and gauges emit one sample per series; histograms emit the
    conventional cumulative ``_bucket{le=...}`` samples plus ``_sum`` and
    ``_count``.  Series order is deterministic (sorted names).
    """
    reg = source if source is not None else registry()
    lines: list[str] = []
    for instrument in reg.instruments():
        lines.append(f"# HELP {instrument.name} {instrument.description}")
        lines.append(f"# TYPE {instrument.name} {instrument.kind}")
        if isinstance(instrument, (Counter, Gauge)):
            for flat, value in instrument.collect().items():
                lines.append(f"{_prometheus_series(flat)} {_format_value(value)}")
        elif isinstance(instrument, Histogram):
            for flat, data in instrument.collect().items():
                name, _, inner = flat.partition("{")
                pairs = _prometheus_pairs(inner.rstrip("}"))
                suffix = f"{{{','.join(pairs)}}}" if pairs else ""
                cumulative = 0
                for bound, count in zip(
                    list(data["bounds"]) + [math.inf], data["counts"]
                ):
                    cumulative += count
                    le = "+Inf" if math.isinf(bound) else _format_value(bound)
                    labels = ",".join(pairs + [f'le="{le}"'])
                    lines.append(f"{name}_bucket{{{labels}}} {cumulative}")
                lines.append(f"{name}_sum{suffix} {_format_value(data['sum'])}")
                lines.append(f"{name}_count{suffix} {data['count']}")
    return "\n".join(lines) + "\n"


_GLOBAL_LOCK = threading.Lock()
_GLOBAL: "MetricsRegistry | None" = None


def registry() -> MetricsRegistry:
    """The process-global registry every layer instruments against."""
    global _GLOBAL
    with _GLOBAL_LOCK:
        if _GLOBAL is None:
            _GLOBAL = MetricsRegistry()
        return _GLOBAL


def set_registry(replacement: "MetricsRegistry | None") -> MetricsRegistry:
    """Swap the process-global registry (tests); returns the active one.

    Passing ``None`` resets the seam so the next :func:`registry` call
    builds a fresh default registry.  Module-scope instruments bound
    before the swap keep writing to the registry they were created in —
    prefer :meth:`MetricsRegistry.reset` for isolation and this seam only
    for hermetic unit tests of export paths.
    """
    global _GLOBAL
    with _GLOBAL_LOCK:
        if replacement is not None:
            _GLOBAL = replacement
        else:
            _GLOBAL = None
            _GLOBAL = MetricsRegistry()
        return _GLOBAL
