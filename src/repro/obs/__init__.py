"""Observability: metrics registry, histograms and span-based tracing.

This package is the cross-cutting instrumentation layer of the stack
(see ``docs/observability.md``): a dependency-free, thread-safe
:class:`MetricsRegistry` holding :class:`Counter` / :class:`Gauge` /
fixed-bucket :class:`Histogram` instruments, plus a lightweight
:func:`trace_span` tracer that builds per-request span trees exportable
as Chrome ``chrome://tracing`` JSON.

Every layer instruments itself against one process-global seam:

* :func:`registry` — the shared :class:`MetricsRegistry`.  Modules
  register their instruments **once at module scope** (the
  ``metrics-discipline`` check rule enforces the convention) and mutate
  them on their hot paths; ``GET /v1/metrics`` and
  ``repro-mule metrics`` read the same registry back out.
* :func:`tracer` — the shared :class:`Tracer`; ``repro-mule serve
  --trace-dir`` writes one Chrome trace file per handled request.

Setting ``REPRO_DISABLE_METRICS=1`` in the environment turns every
instrument into a cheap no-op branch (``benchmarks/bench_obs_overhead.py``
pins the enabled/disabled gap); enumeration output is bit-identical
either way because instruments only *observe* completed work.
"""

from __future__ import annotations

from .metrics import (
    DEFAULT_LATENCY_BUCKETS,
    DISABLE_METRICS_ENV,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    registry,
    render_prometheus,
    set_registry,
)
from .tracing import (
    Span,
    Tracer,
    chrome_trace_events,
    set_tracer,
    trace_span,
    tracer,
    write_chrome_trace,
)

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "DISABLE_METRICS_ENV",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "Tracer",
    "chrome_trace_events",
    "registry",
    "render_prometheus",
    "set_registry",
    "set_tracer",
    "trace_span",
    "tracer",
    "write_chrome_trace",
]
