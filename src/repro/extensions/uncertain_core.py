"""Probabilistic core decomposition — the paper's "future work" direction.

The conclusion of the paper lists other dense substructures (k-cores,
quasi-cliques, bicliques) over uncertain graphs as future work.  This
module implements the most established of those: the **(k, η)-core**
decomposition of an uncertain graph (in the style of Bonchi et al.,
"Core decomposition of uncertain graphs", KDD 2014), built entirely on the
substrates of this library.

Definitions
-----------
For a vertex ``v`` with incident edge probabilities ``p_1, …, p_d`` (its
possible degree is the sum of independent Bernoulli variables):

* the **η-degree** ``eta_deg(v)`` is the largest ``k`` such that
  ``P[deg(v) ≥ k] ≥ η``;
* the **(k, η)-core** is the maximal induced subgraph in which every vertex
  has η-degree at least ``k`` *within the subgraph*;
* the **η-core number** of ``v`` is the largest ``k`` such that ``v``
  belongs to the (k, η)-core.

The decomposition is computed by the standard peeling algorithm: repeatedly
remove a vertex of minimum η-degree, recomputing the η-degrees of its
neighbours.  Degree-probability tails are computed exactly with the
Poisson-binomial dynamic program.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Sequence

from ..errors import ParameterError
from ..uncertain.graph import UncertainGraph, validate_probability

__all__ = [
    "degree_tail_probability",
    "eta_degree",
    "eta_degrees",
    "uncertain_core_decomposition",
    "k_eta_core",
]

Vertex = Hashable


def _degree_distribution(probabilities: Sequence[float]) -> list[float]:
    """Return the Poisson-binomial pmf of the number of present edges.

    ``result[k]`` is the probability that exactly ``k`` of the independent
    edges with the given probabilities exist.
    """
    pmf = [1.0]
    for p in probabilities:
        nxt = [0.0] * (len(pmf) + 1)
        for count, mass in enumerate(pmf):
            nxt[count] += mass * (1.0 - p)
            nxt[count + 1] += mass * p
        pmf = nxt
    return pmf


def degree_tail_probability(probabilities: Sequence[float], k: int) -> float:
    """Return ``P[deg ≥ k]`` for a vertex with the given incident edge probabilities.

    >>> round(degree_tail_probability([0.5, 0.5], 1), 3)
    0.75
    >>> degree_tail_probability([0.5, 0.5], 0)
    1.0
    >>> degree_tail_probability([0.5, 0.5], 3)
    0.0
    """
    if k <= 0:
        return 1.0
    if k > len(probabilities):
        return 0.0
    pmf = _degree_distribution(probabilities)
    return sum(pmf[k:])


def eta_degree(graph: UncertainGraph, vertex: Vertex, eta: float) -> int:
    """Return the η-degree of ``vertex``: the largest k with P[deg ≥ k] ≥ η.

    >>> g = UncertainGraph(edges=[(1, 2, 0.9), (1, 3, 0.9)])
    >>> eta_degree(g, 1, 0.8)
    2
    >>> eta_degree(g, 1, 0.95)
    1
    """
    eta = validate_probability(eta, what="eta")
    probabilities = list(graph.adjacency(vertex).values())
    pmf = _degree_distribution(probabilities)
    # Walk the tail from the top; the first k whose tail reaches η wins.
    tail = 0.0
    for k in range(len(probabilities), 0, -1):
        tail += pmf[k]
        if tail >= eta:
            return k
    return 0


def eta_degrees(graph: UncertainGraph, eta: float) -> dict[Vertex, int]:
    """Return the η-degree of every vertex of ``graph``."""
    return {v: eta_degree(graph, v, eta) for v in graph.vertices()}


def uncertain_core_decomposition(
    graph: UncertainGraph, eta: float
) -> dict[Vertex, int]:
    """Return the η-core number of every vertex (peeling algorithm).

    The core number of ``v`` is the largest ``k`` such that ``v`` survives
    in the (k, η)-core.  Runs in O(n · d_max²)-ish time, dominated by the
    Poisson-binomial recomputation of peeled vertices' neighbours.

    >>> g = UncertainGraph(
    ...     edges=[(1, 2, 0.9), (2, 3, 0.9), (1, 3, 0.9), (3, 4, 0.9)]
    ... )
    >>> cores = uncertain_core_decomposition(g, 0.5)
    >>> cores[4]
    1
    >>> cores[1]
    2
    """
    eta = validate_probability(eta, what="eta")
    working = graph.copy()
    current = eta_degrees(working, eta)
    core_numbers: dict[Vertex, int] = {}
    running_max = 0

    while current:
        vertex = min(current, key=lambda v: (current[v], repr(v)))
        running_max = max(running_max, current[vertex])
        core_numbers[vertex] = running_max
        neighbors = list(working.adjacency(vertex))
        working.remove_vertex(vertex)
        del current[vertex]
        for neighbor in neighbors:
            if neighbor in current:
                current[neighbor] = eta_degree(working, neighbor, eta)
    return core_numbers


def k_eta_core(graph: UncertainGraph, k: int, eta: float) -> UncertainGraph:
    """Return the (k, η)-core of ``graph`` as an induced uncertain subgraph.

    Raises
    ------
    ParameterError
        If ``k`` is negative.

    >>> g = UncertainGraph(
    ...     edges=[(1, 2, 0.9), (2, 3, 0.9), (1, 3, 0.9), (3, 4, 0.2)]
    ... )
    >>> sorted(k_eta_core(g, 2, 0.5).vertices())
    [1, 2, 3]
    """
    if k < 0:
        raise ParameterError(f"k must be non-negative, got {k}")
    eta = validate_probability(eta, what="eta")
    working = graph.copy()
    changed = True
    while changed:
        changed = False
        to_remove = [
            v for v in working.vertices() if eta_degree(working, v, eta) < k
        ]
        if to_remove:
            changed = True
            for v in to_remove:
                working.remove_vertex(v)
    return working
