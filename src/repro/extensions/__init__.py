"""Extensions beyond the paper's core contribution.

The paper's conclusion lists other dense substructures over uncertain
graphs (k-cores, quasi-cliques, bicliques) as future work; this subpackage
hosts the implementations built on the same substrate, currently the
(k, η)-core decomposition.
"""

from .uncertain_core import (
    degree_tail_probability,
    eta_degree,
    eta_degrees,
    k_eta_core,
    uncertain_core_decomposition,
)

__all__ = [
    "degree_tail_probability",
    "eta_degree",
    "eta_degrees",
    "uncertain_core_decomposition",
    "k_eta_core",
]
