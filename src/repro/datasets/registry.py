"""Named dataset registry mirroring the paper's Table 1.

Every input graph of the paper's evaluation has a named entry here.  The
real and semi-synthetic datasets (PPI, DBLP, SNAP graphs) cannot be shipped
or downloaded in this offline reproduction, so each entry builds a
*structure-matched synthetic analog* with the generators in
:mod:`repro.generators` — same vertex/edge counts at ``scale=1.0``, same
degree/clustering regime, same probability model (see DESIGN.md for the
substitution rationale).

Because the reproduction runs in pure Python (the original evaluation used
Java), the benchmark harness typically loads datasets at a reduced
``scale`` so a full figure sweep finishes in minutes; the scale used is
always recorded alongside the results in EXPERIMENTS.md.
"""

from __future__ import annotations

import math
import random
from collections.abc import Callable
from dataclasses import dataclass

from ..errors import DatasetError
from ..generators.barabasi_albert import barabasi_albert_uncertain
from ..generators.p2p import p2p_like_graph
from ..generators.ppi import ppi_like_graph
from ..generators.probabilities import uniform_probabilities
from ..generators.social import collaboration_graph, wiki_vote_like_graph
from ..uncertain.graph import UncertainGraph

__all__ = [
    "DatasetSpec",
    "DATASETS",
    "DATASET_ALIASES",
    "available_datasets",
    "resolve_dataset_name",
    "load_dataset",
]


@dataclass(frozen=True)
class DatasetSpec:
    """Description of one Table 1 dataset and how to build its analog.

    Attributes
    ----------
    name:
        Registry key (matches the paper's naming, lower-cased).
    category:
        The Table 1 category string.
    description:
        The Table 1 description string.
    paper_vertices / paper_edges:
        The vertex/edge counts reported in Table 1.
    builder:
        Callable ``(scale, seed) -> UncertainGraph`` constructing the analog.
    """

    name: str
    category: str
    description: str
    paper_vertices: int
    paper_edges: int
    builder: Callable[[float, int], UncertainGraph]

    def build(self, *, scale: float = 1.0, seed: int = 2015) -> UncertainGraph:
        """Construct the dataset analog at the requested ``scale``.

        ``scale`` multiplies the vertex count; edge counts scale
        approximately proportionally because the generators keep average
        degree fixed.
        """
        if scale <= 0:
            raise DatasetError(f"scale must be positive, got {scale}")
        return self.builder(scale, seed)


def _scaled(count: int, scale: float, *, minimum: int = 10) -> int:
    return max(minimum, int(round(count * scale)))


def _build_ppi(scale: float, seed: int) -> UncertainGraph:
    n = _scaled(3751, scale)
    return ppi_like_graph(n, rng=random.Random(seed))


def _build_dblp(scale: float, seed: int) -> UncertainGraph:
    n = _scaled(684911, scale, minimum=200)
    # The paper's DBLP graph has ~3.3 edges per vertex and, because it
    # predicts *future* co-authorship from repeat collaborations, many pairs
    # with large joint-paper counts (hence high probabilities).  Small
    # research groups writing many papers together reproduce both traits:
    # group size 8 saturates to ~3.5 edges per author and the mean joint
    # count lands around 5 papers, giving probabilities up to ~0.7.
    papers = max(200, 6 * n)
    return collaboration_graph(
        n,
        papers,
        min_authors_per_paper=2,
        max_authors_per_paper=4,
        community_count=max(4, n // 8),
        sequel_probability=0.5,
        rng=random.Random(seed),
    )


def _build_dblp_small(scale: float, seed: int) -> UncertainGraph:
    # A CI-friendly slice of the DBLP analog (about 1/200 of the full size).
    return _build_dblp(scale * 0.005, seed)


def _build_ca_grqc(scale: float, seed: int) -> UncertainGraph:
    n = _scaled(5242, scale, minimum=60)
    # ca-GrQc has ~5.5 edges/vertex and strong clustering.  The paper's
    # uncertain version assigns probabilities uniformly at random (it is a
    # semi-synthetic graph), so only the topology comes from the
    # collaboration model here.
    generator = random.Random(seed)
    papers = max(30, int(n * 0.9))
    return collaboration_graph(
        n,
        papers,
        min_authors_per_paper=2,
        max_authors_per_paper=5,
        community_count=max(3, n // 25),
        probability_model=uniform_probabilities(rng=generator),
        rng=generator,
    )


def _build_wiki_vote(scale: float, seed: int) -> UncertainGraph:
    n = _scaled(7118, scale, minimum=80)
    candidates = max(10, n // 5)
    voters = n - candidates
    return wiki_vote_like_graph(
        voters,
        candidates,
        votes_per_voter=12,
        rng=random.Random(seed),
    )


def _build_p2p(paper_vertices: int) -> Callable[[float, int], UncertainGraph]:
    def build(scale: float, seed: int) -> UncertainGraph:
        n = _scaled(paper_vertices, scale, minimum=50)
        return p2p_like_graph(n, rng=random.Random(seed))

    return build


def _build_ba(paper_vertices: int) -> Callable[[float, int], UncertainGraph]:
    def build(scale: float, seed: int) -> UncertainGraph:
        n = _scaled(paper_vertices, scale, minimum=30)
        attachment = min(10, max(2, n // 10))
        return barabasi_albert_uncertain(n, attachment, rng=random.Random(seed))

    return build


DATASETS: dict[str, DatasetSpec] = {
    spec.name: spec
    for spec in [
        DatasetSpec(
            name="ppi",
            category="Protein Protein Interaction network",
            description="PPI for Fruit Fly from STRING Database (synthetic analog)",
            paper_vertices=3751,
            paper_edges=3692,
            builder=_build_ppi,
        ),
        DatasetSpec(
            name="dblp10",
            category="Social network",
            description="Collaboration network from DBLP (synthetic analog)",
            paper_vertices=684911,
            paper_edges=2284991,
            builder=_build_dblp,
        ),
        DatasetSpec(
            name="dblp-small",
            category="Social network",
            description="CI-sized slice of the DBLP collaboration analog",
            paper_vertices=3400,
            paper_edges=11000,
            builder=_build_dblp_small,
        ),
        DatasetSpec(
            name="p2p-gnutella08",
            category="Internet peer-to-peer networks",
            description="Gnutella network August 8 2002 (synthetic analog)",
            paper_vertices=6301,
            paper_edges=20777,
            builder=_build_p2p(6301),
        ),
        DatasetSpec(
            name="p2p-gnutella04",
            category="Internet peer-to-peer networks",
            description="Gnutella network August 4 2002 (synthetic analog)",
            paper_vertices=10879,
            paper_edges=39994,
            builder=_build_p2p(10879),
        ),
        DatasetSpec(
            name="p2p-gnutella09",
            category="Internet peer-to-peer networks",
            description="Gnutella network August 9 2002 (synthetic analog)",
            paper_vertices=8114,
            paper_edges=26013,
            builder=_build_p2p(8114),
        ),
        DatasetSpec(
            name="ca-grqc",
            category="Collaboration networks",
            description="Arxiv General Relativity (synthetic analog)",
            paper_vertices=5242,
            paper_edges=28980,
            builder=_build_ca_grqc,
        ),
        DatasetSpec(
            name="wiki-vote",
            category="Social networks",
            description="Wikipedia who-votes-whom network (synthetic analog)",
            paper_vertices=7118,
            paper_edges=103689,
            builder=_build_wiki_vote,
        ),
        DatasetSpec(
            name="ba5000",
            category="Barabási-Albert random graphs",
            description="Random graph with 5K vertices",
            paper_vertices=5000,
            paper_edges=50032,
            builder=_build_ba(5000),
        ),
        DatasetSpec(
            name="ba6000",
            category="Barabási-Albert random graphs",
            description="Random graph with 6K vertices",
            paper_vertices=6000,
            paper_edges=60129,
            builder=_build_ba(6000),
        ),
        DatasetSpec(
            name="ba7000",
            category="Barabási-Albert random graphs",
            description="Random graph with 7K vertices",
            paper_vertices=7000,
            paper_edges=70204,
            builder=_build_ba(7000),
        ),
        DatasetSpec(
            name="ba8000",
            category="Barabási-Albert random graphs",
            description="Random graph with 8K vertices",
            paper_vertices=8000,
            paper_edges=80185,
            builder=_build_ba(8000),
        ),
        DatasetSpec(
            name="ba9000",
            category="Barabási-Albert random graphs",
            description="Random graph with 9K vertices",
            paper_vertices=9000,
            paper_edges=90418,
            builder=_build_ba(9000),
        ),
        DatasetSpec(
            name="ba10000",
            category="Barabási-Albert random graphs",
            description="Random graph with 10K vertices",
            paper_vertices=10000,
            paper_edges=99194,
            builder=_build_ba(10000),
        ),
    ]
}


#: Convenience spellings → registry keys (the paper's prose says "DBLP"
#: where Table 1 says "DBLP10"; serving commands accept either).
DATASET_ALIASES: dict[str, str] = {
    "dblp": "dblp10",
    "grqc": "ca-grqc",
    "wikivote": "wiki-vote",
}


def available_datasets() -> list[str]:
    """Return the sorted names of all registered datasets."""
    return sorted(DATASETS)


def resolve_dataset_name(name: str) -> str:
    """Resolve a (case-insensitive, possibly aliased) name to a registry key.

    Raises
    ------
    DatasetError
        If the name matches neither a registry key nor an alias; the
        message lists every available name.
    """
    if not isinstance(name, str):
        raise DatasetError(f"dataset name must be a string, got {name!r}")
    key = name.lower()
    key = DATASET_ALIASES.get(key, key)
    if key not in DATASETS:
        raise DatasetError(
            f"unknown dataset {name!r}; available: {', '.join(available_datasets())}"
        )
    return key


def load_dataset(name: str, *, scale: float = 1.0, seed: int = 2015) -> UncertainGraph:
    """Build the named dataset analog.

    Parameters
    ----------
    name:
        Registry key or alias (case-insensitive); see
        :func:`available_datasets`.
    scale:
        Multiplier on the vertex count (1.0 reproduces the paper's size).
    seed:
        Seed making the construction reproducible.

    Raises
    ------
    DatasetError
        If the name is unknown or the scale is not a positive finite
        number — validated *before* the (possibly long) build starts.
    """
    key = resolve_dataset_name(name)
    try:
        scale = float(scale)
    except (TypeError, ValueError) as exc:
        raise DatasetError(f"scale must be a number, got {scale!r}") from exc
    if not math.isfinite(scale) or scale <= 0:
        raise DatasetError(f"scale must be positive and finite, got {scale!r}")
    return DATASETS[key].build(scale=scale, seed=seed)
