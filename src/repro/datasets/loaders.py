"""Dataset loading with on-disk caching.

Building the larger dataset analogs (DBLP, BA10000) takes noticeable time,
so the benchmark harness caches generated graphs as probabilistic edge-list
files under a cache directory (``~/.cache/repro-mule`` by default, or the
``REPRO_MULE_CACHE`` environment variable).  Loading a cached dataset is a
plain file read and is fully deterministic.
"""

from __future__ import annotations

import os
from pathlib import Path

from ..uncertain.graph import UncertainGraph
from ..uncertain.io import read_edge_list, write_edge_list
from .registry import load_dataset

__all__ = ["cache_directory", "load_cached_dataset", "clear_cache"]


def cache_directory() -> Path:
    """Return the dataset cache directory, creating it if necessary."""
    root = os.environ.get("REPRO_MULE_CACHE")
    path = Path(root) if root else Path.home() / ".cache" / "repro-mule"
    path.mkdir(parents=True, exist_ok=True)
    return path


def _cache_key(name: str, scale: float, seed: int) -> str:
    return f"{name.lower()}__scale{scale:g}__seed{seed}.edges"


def load_cached_dataset(
    name: str, *, scale: float = 1.0, seed: int = 2015, refresh: bool = False
) -> UncertainGraph:
    """Load a dataset analog, generating and caching it on first use.

    Parameters
    ----------
    name, scale, seed:
        Passed through to :func:`repro.datasets.registry.load_dataset`.
    refresh:
        When ``True`` the cache entry is regenerated even if present.
    """
    cache_file = cache_directory() / _cache_key(name, scale, seed)
    if cache_file.exists() and not refresh:
        return read_edge_list(cache_file, vertex_type=int)
    graph = load_dataset(name, scale=scale, seed=seed)
    write_edge_list(graph, cache_file)
    return graph


def clear_cache() -> int:
    """Delete every cached dataset file; return the number of files removed."""
    removed = 0
    for path in cache_directory().glob("*.edges"):
        path.unlink()
        removed += 1
    return removed
