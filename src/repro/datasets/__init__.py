"""Named dataset analogs of the paper's Table 1 inputs."""

from .loaders import cache_directory, clear_cache, load_cached_dataset
from .registry import DATASETS, DatasetSpec, available_datasets, load_dataset

__all__ = [
    "DatasetSpec",
    "DATASETS",
    "available_datasets",
    "load_dataset",
    "load_cached_dataset",
    "cache_directory",
    "clear_cache",
]
