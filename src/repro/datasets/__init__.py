"""Named dataset analogs of the paper's Table 1 inputs."""

from .loaders import cache_directory, clear_cache, load_cached_dataset
from .registry import (
    DATASET_ALIASES,
    DATASETS,
    DatasetSpec,
    available_datasets,
    load_dataset,
    resolve_dataset_name,
)

__all__ = [
    "DatasetSpec",
    "DATASETS",
    "DATASET_ALIASES",
    "available_datasets",
    "resolve_dataset_name",
    "load_dataset",
    "load_cached_dataset",
    "cache_directory",
    "clear_cache",
]
