"""Command-line interface for the MULE reproduction.

The ``repro-mule`` command exposes the library's main workflows without
writing Python:

* ``repro-mule enumerate`` — run MULE (or DFS-NOIP / LARGE-MULE) on an
  uncertain graph file and print or save the α-maximal cliques;
* ``repro-mule stats`` — print a Table 1 style summary of a graph file or a
  named dataset;
* ``repro-mule generate`` — build one of the named dataset analogs and write
  it to an edge-list file;
* ``repro-mule bound`` — print the Theorem 1 / Moon–Moser bounds for a given
  number of vertices;
* ``repro-mule compare`` — run MULE and DFS-NOIP side by side on the same
  input (a one-command Figure 1 cell);
* ``repro-mule core`` — compute the (k, η)-core decomposition extension;
* ``repro-mule datasets`` — list the registered dataset analogs;
* ``repro-mule serve`` — host a catalog of graphs over HTTP (the wire API
  of ``docs/service.md``): repeat ``--dataset name[:scale]`` and
  ``--graph file`` to serve many graphs from one process; pair it with
  :class:`repro.RemoteStore` / :class:`repro.RemoteSession`;
* ``repro-mule jobs`` — list, inspect, follow or cancel the asynchronous
  jobs of a running server;
* ``repro-mule fleet`` — probe a fleet of ``serve`` workers and print
  their health, with fleet-wide metric counters summed across workers;
* ``repro-mule metrics`` — print a running server's metrics registry
  (JSON snapshot or Prometheus text).

``enumerate`` and ``compare`` also run against a remote server instead of
a local file: ``--remote URL`` targets its default graph and ``--remote
URL --graph NAME`` any graph it hosts by name or fingerprint.  With
``--remote``, ``enumerate --async`` submits without waiting (returning a
job id for ``repro-mule jobs``) and ``enumerate --follow`` streams the
cliques live as the server finds them.

``enumerate`` can also fan a *local* graph out across many servers:
repeat ``--workers-url URL`` once per worker and the command runs the
distributed coordinator of ``docs/architecture.md`` ("Distributed
enumeration") — the output is bit-identical to a serial run.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

from ..analysis.statistics import clique_statistics
from ..api import EnumerationRequest, GraphStore, MiningSession
from ..api.store import GRAPH_NAME_PATTERN
from ..core.bounds import moon_moser_bound, uncertain_clique_bound
from ..core.engine import RunControls
from ..datasets.registry import (
    DATASETS,
    available_datasets,
    load_dataset,
    resolve_dataset_name,
)
from ..distributed import DistributedSession, WorkerPool, WorkerState
from ..extensions.uncertain_core import uncertain_core_decomposition
from ..errors import DatasetError, ReproError
from ..service.client import connect
from ..service.server import DEFAULT_PORT, MiningServer
from ..tools.check import cli as check_cli
from ..uncertain.graph import UncertainGraph
from ..uncertain.io import read_edge_list, write_edge_list
from ..uncertain.statistics import summarize

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for the ``repro-mule`` command."""
    parser = argparse.ArgumentParser(
        prog="repro-mule",
        description="Mine alpha-maximal cliques from uncertain graphs (MULE reproduction).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    enumerate_parser = subparsers.add_parser(
        "enumerate", help="enumerate alpha-maximal cliques from a graph file or dataset"
    )
    _add_input_arguments(enumerate_parser, required=False)
    _add_remote_arguments(enumerate_parser)
    enumerate_parser.add_argument(
        "--alpha", type=float, required=True, help="probability threshold in (0, 1]"
    )
    enumerate_parser.add_argument(
        "--algorithm",
        choices=["mule", "fast-mule", "dfs-noip", "large-mule"],
        default="mule",
        help="enumeration algorithm (default: mule)",
    )
    enumerate_parser.add_argument(
        "--min-size",
        type=int,
        default=None,
        help="size threshold t for large-mule (required when --algorithm=large-mule)",
    )
    enumerate_parser.add_argument(
        "--output", type=Path, default=None, help="write cliques as JSON to this file"
    )
    enumerate_parser.add_argument(
        "--quiet", action="store_true", help="suppress the per-clique listing"
    )
    async_group = enumerate_parser.add_mutually_exclusive_group()
    async_group.add_argument(
        "--async",
        dest="async_submit",
        action="store_true",
        help=(
            "with --remote: submit as an asynchronous job and exit "
            "immediately, printing the job id"
        ),
    )
    async_group.add_argument(
        "--follow",
        action="store_true",
        help=(
            "with --remote: submit as an asynchronous job and stream the "
            "cliques live as the server finds them"
        ),
    )
    enumerate_parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help=(
            "enumerate with this many parallel worker processes "
            "(mule/fast-mule only; default: 1 = serial)"
        ),
    )
    enumerate_parser.add_argument(
        "--workers-url",
        dest="workers_url",
        action="append",
        default=[],
        metavar="URL",
        help=(
            "fan the enumeration out across this repro-mule serve worker "
            "(repeatable, one flag per worker; mule/fast-mule only; the "
            "merged output is bit-identical to a serial run)"
        ),
    )
    enumerate_parser.add_argument(
        "--num-shards",
        type=int,
        default=None,
        help=(
            "with --workers-url: number of root shards to plan "
            "(default: 2 per worker)"
        ),
    )
    _add_kernel_argument(enumerate_parser)
    _add_run_control_arguments(enumerate_parser)

    stats_parser = subparsers.add_parser(
        "stats", help="print summary statistics of a graph file or dataset"
    )
    _add_input_arguments(stats_parser)

    generate_parser = subparsers.add_parser(
        "generate", help="generate a named dataset analog and write it to a file"
    )
    generate_parser.add_argument("--dataset", required=True, choices=available_datasets())
    generate_parser.add_argument("--scale", type=float, default=1.0)
    generate_parser.add_argument("--seed", type=int, default=2015)
    generate_parser.add_argument("--output", type=Path, required=True)

    bound_parser = subparsers.add_parser(
        "bound", help="print the maximum possible number of (alpha-)maximal cliques"
    )
    bound_parser.add_argument("--vertices", type=int, required=True)

    compare_parser = subparsers.add_parser(
        "compare", help="run MULE and DFS-NOIP side by side (a Figure 1 cell)"
    )
    _add_input_arguments(compare_parser, required=False)
    _add_remote_arguments(compare_parser)
    compare_parser.add_argument("--alpha", type=float, required=True)
    _add_kernel_argument(compare_parser)
    _add_run_control_arguments(compare_parser)

    jobs_parser = subparsers.add_parser(
        "jobs", help="list, inspect, follow or cancel async jobs on a server"
    )
    jobs_parser.add_argument(
        "--remote",
        metavar="URL",
        required=True,
        help="base URL of the repro-mule serve process to talk to",
    )
    jobs_action = jobs_parser.add_mutually_exclusive_group()
    jobs_action.add_argument(
        "--job", metavar="ID", help="show one job's status instead of the listing"
    )
    jobs_action.add_argument(
        "--follow", metavar="ID", help="stream one job's results to completion"
    )
    jobs_action.add_argument(
        "--cancel", metavar="ID", help="cancel a job and print its final status"
    )

    fleet_parser = subparsers.add_parser(
        "fleet", help="probe a fleet of serve workers and print their health"
    )
    fleet_parser.add_argument(
        "--workers-url",
        dest="workers_url",
        action="append",
        required=True,
        metavar="URL",
        help="base URL of a repro-mule serve worker (repeatable)",
    )

    metrics_parser = subparsers.add_parser(
        "metrics", help="print a running server's metrics registry"
    )
    metrics_parser.add_argument(
        "url", metavar="URL", help="base URL of the repro-mule serve process"
    )
    metrics_parser.add_argument(
        "--format",
        choices=["json", "prometheus"],
        default="json",
        help="output format (default: json)",
    )

    core_parser = subparsers.add_parser(
        "core", help="compute the (k, eta)-core decomposition of an uncertain graph"
    )
    _add_input_arguments(core_parser)
    core_parser.add_argument(
        "--eta", type=float, required=True, help="degree-probability threshold in (0, 1]"
    )
    core_parser.add_argument(
        "--top", type=int, default=10, help="show the vertices with the highest core numbers"
    )

    subparsers.add_parser("datasets", help="list registered dataset analogs")

    check_parser = subparsers.add_parser(
        "check",
        help="run the repo's static-analysis rules (see docs/dev.md)",
    )
    check_cli.add_arguments(check_parser)

    serve_parser = subparsers.add_parser(
        "serve",
        help="host one or many graphs over HTTP (see docs/service.md)",
    )
    serve_parser.add_argument(
        "--dataset",
        action="append",
        default=[],
        metavar="NAME[:SCALE]",
        help=(
            "serve this named dataset analog (repeatable; an optional "
            ":SCALE overrides --scale for that dataset)"
        ),
    )
    serve_parser.add_argument(
        "--graph",
        action="append",
        default=[],
        type=Path,
        metavar="FILE",
        help="serve this probabilistic edge-list file (repeatable)",
    )
    serve_parser.add_argument(
        "--input",
        type=Path,
        default=None,
        help="alias of --graph for single-graph deployments",
    )
    serve_parser.add_argument(
        "--scale", type=float, default=0.05, help="default dataset scale factor"
    )
    serve_parser.add_argument(
        "--seed", type=int, default=2015, help="dataset generation seed"
    )
    serve_parser.add_argument(
        "--max-graphs",
        type=int,
        default=64,
        help=(
            "bound on resident graphs; uploads beyond it evict the least "
            "recently used unpinned graph (default: 64; 0 = unbounded)"
        ),
    )
    serve_parser.add_argument(
        "--host", default="127.0.0.1", help="bind address (default: 127.0.0.1)"
    )
    serve_parser.add_argument(
        "--port",
        type=int,
        default=DEFAULT_PORT,
        help=f"TCP port; 0 picks a free one (default: {DEFAULT_PORT})",
    )
    serve_parser.add_argument(
        "--max-workers",
        type=int,
        default=None,
        help="enumeration worker threads (default: 4)",
    )
    serve_parser.add_argument(
        "--kernel",
        choices=["auto", "python", "vector"],
        default="auto",
        help=(
            "default engine kernel for requests that leave kernel=auto "
            "(explicit per-request kernels always win)"
        ),
    )
    serve_parser.add_argument(
        "--quiet", action="store_true", help="suppress per-request access logs"
    )
    serve_parser.add_argument(
        "--trace-dir",
        type=Path,
        default=None,
        metavar="DIR",
        help=(
            "write one Chrome trace-event JSON file per HTTP request into "
            "this directory (load in chrome://tracing or Perfetto)"
        ),
    )

    return parser


def _add_input_arguments(
    parser: argparse.ArgumentParser, *, required: bool = True
) -> None:
    group = parser.add_mutually_exclusive_group(required=required)
    group.add_argument("--input", type=Path, help="probabilistic edge-list file (u v p)")
    group.add_argument("--dataset", choices=available_datasets(), help="named dataset analog")
    parser.add_argument("--scale", type=float, default=0.05, help="dataset scale factor")
    parser.add_argument("--seed", type=int, default=2015, help="dataset generation seed")


def _add_remote_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--remote",
        metavar="URL",
        default=None,
        help="run against a repro-mule serve process instead of a local graph",
    )
    parser.add_argument(
        "--graph",
        metavar="NAME",
        default=None,
        help=(
            "with --remote: the served graph to target, by registered name "
            "or fingerprint (default: the server's default graph)"
        ),
    )


def _add_kernel_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--kernel",
        choices=["auto", "python", "vector"],
        default="auto",
        help=(
            "engine kernel backend: vector (fused word-array kernel), "
            "python (reference kernel), or auto (vector where supported; "
            "default).  Results are bit-identical either way."
        ),
    )


def _add_run_control_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--max-cliques",
        type=int,
        default=None,
        help="stop after emitting this many cliques (default: unlimited)",
    )
    parser.add_argument(
        "--time-budget",
        type=float,
        default=None,
        metavar="SECONDS",
        help="stop the search after this much wall-clock time (default: unlimited)",
    )


def _run_controls(args: argparse.Namespace) -> RunControls | None:
    if args.max_cliques is None and args.time_budget is None:
        return None
    return RunControls(
        max_cliques=args.max_cliques, time_budget_seconds=args.time_budget
    )


def _load_graph(args: argparse.Namespace) -> UncertainGraph:
    if args.input is not None:
        return read_edge_list(args.input, vertex_type=str)
    return load_dataset(args.dataset, scale=args.scale, seed=args.seed)


def _resolve_session(args: argparse.Namespace):
    """Resolve ``--input``/``--dataset``/``--remote`` to a session.

    Returns ``(session, num_vertices, num_edges)`` — the session is a
    local :class:`MiningSession` or a remote one; the call sites are
    identical either way.  Returns ``None`` (after printing a usage error)
    when the flags contradict each other.
    """
    if args.remote is not None:
        if args.input is not None or args.dataset is not None:
            print(
                "error: --remote cannot be combined with --input/--dataset",
                file=sys.stderr,
            )
            return None
        session = connect(args.remote).session(args.graph)
        info = session.graph_info()
        return session, info.num_vertices, info.num_edges
    if args.graph is not None:
        print("error: --graph NAME requires --remote URL", file=sys.stderr)
        return None
    if args.input is None and args.dataset is None:
        print(
            "error: one of --input, --dataset or --remote is required",
            file=sys.stderr,
        )
        return None
    graph = _load_graph(args)
    return MiningSession(graph), graph.num_vertices, graph.num_edges


def _command_enumerate(args: argparse.Namespace) -> int:
    # Flag validation comes before the (possibly huge) input parse.
    if args.workers < 1:
        print("error: --workers must be positive", file=sys.stderr)
        return 2
    if args.workers > 1 and args.algorithm not in ("mule", "fast-mule"):
        print(
            f"error: --workers is only supported with --algorithm=mule/fast-mule "
            f"(got {args.algorithm})",
            file=sys.stderr,
        )
        return 2
    if args.algorithm == "large-mule" and args.min_size is None:
        print("error: --min-size is required with --algorithm=large-mule", file=sys.stderr)
        return 2
    if args.kernel == "vector" and args.algorithm == "dfs-noip":
        print(
            "error: --kernel=vector is not supported with --algorithm=dfs-noip "
            "(the baseline always runs on the python kernel)",
            file=sys.stderr,
        )
        return 2
    if (args.async_submit or args.follow) and args.remote is None:
        print("error: --async/--follow require --remote URL", file=sys.stderr)
        return 2
    if args.num_shards is not None and not args.workers_url:
        print("error: --num-shards requires --workers-url", file=sys.stderr)
        return 2
    if args.workers_url:
        return _enumerate_distributed(args)
    resolved = _resolve_session(args)
    if resolved is None:
        return 2
    session, num_vertices, num_edges = resolved
    controls = _run_controls(args)
    # One session per invocation: the request dataclass names the algorithm
    # (aliases like "dfs-noip" are normalised) and the worker count selects
    # serial vs sharded-parallel execution — local and remote alike (a
    # remote request with workers>1 fans out on the server).
    request = EnumerationRequest(
        algorithm=args.algorithm,
        alpha=args.alpha,
        size_threshold=args.min_size if args.algorithm == "large-mule" else None,
        controls=controls,
        workers=args.workers,
        kernel=args.kernel,
    )
    if args.async_submit or args.follow:
        job = session.submit(request)
        if args.async_submit:
            print(f"submitted {job.id}")
            print(
                f"follow with: repro-mule jobs --remote {args.remote} "
                f"--follow {job.id}"
            )
            return 0
        return _follow_job(job, quiet=args.quiet)
    result = session.enumerate(request).to_result()
    return _print_enumeration_result(args, result, num_vertices, num_edges)


def _print_enumeration_result(
    args: argparse.Namespace, result, num_vertices: int, num_edges: int
) -> int:
    """The shared output tail of local, remote and distributed runs."""
    stats = clique_statistics(result)
    print(
        f"{result.algorithm}: {result.num_cliques} alpha-maximal cliques "
        f"(alpha={args.alpha}) in {result.elapsed_seconds:.3f}s "
        f"on graph with n={num_vertices}, m={num_edges}"
    )
    if result.truncated:
        prefix_kind = (
            "a sorted subset"
            if result.algorithm in ("parallel-mule", "distributed-mule")
            else "a depth-first prefix"
        )
        print(
            f"note: enumeration truncated ({result.stop_reason}); "
            f"the listed cliques are {prefix_kind} of the full output"
        )
    print(f"clique sizes: {stats.size_histogram}")
    if not args.quiet:
        for record in result.cliques:
            members = ",".join(str(v) for v in record.as_tuple())
            print(f"  [{members}]  p={record.probability:.6g}")
    if args.output is not None:
        payload = {
            "algorithm": result.algorithm,
            "alpha": args.alpha,
            "num_cliques": result.num_cliques,
            "elapsed_seconds": result.elapsed_seconds,
            "stop_reason": result.stop_reason,
            "cliques": [
                {"vertices": list(record.as_tuple()), "probability": record.probability}
                for record in result.cliques
            ],
        }
        args.output.write_text(json.dumps(payload, indent=2), encoding="utf-8")
        print(f"wrote {result.num_cliques} cliques to {args.output}")
    return 0


def _enumerate_distributed(args: argparse.Namespace) -> int:
    """``enumerate --workers-url …`` — fan a local graph out over a fleet."""
    if args.remote is not None or args.graph is not None:
        print(
            "error: --workers-url cannot be combined with --remote/--graph "
            "(the coordinator ships a local graph to the fleet)",
            file=sys.stderr,
        )
        return 2
    if args.workers > 1:
        print(
            "error: --workers and --workers-url are mutually exclusive "
            "(the fleet fan-out is the parallelism)",
            file=sys.stderr,
        )
        return 2
    if args.algorithm not in ("mule", "fast-mule"):
        print(
            f"error: --workers-url is only supported with "
            f"--algorithm=mule/fast-mule (got {args.algorithm})",
            file=sys.stderr,
        )
        return 2
    if args.input is None and args.dataset is None:
        print(
            "error: --workers-url requires a local --input or --dataset",
            file=sys.stderr,
        )
        return 2
    graph = _load_graph(args)
    request = EnumerationRequest(
        algorithm=args.algorithm,
        alpha=args.alpha,
        controls=_run_controls(args),
        kernel=args.kernel,
    )
    with DistributedSession(
        graph, tuple(args.workers_url), num_shards=args.num_shards
    ) as session:
        result = session.enumerate(request).to_result()
    return _print_enumeration_result(
        args, result, graph.num_vertices, graph.num_edges
    )


def _command_fleet(args: argparse.Namespace) -> int:
    """Probe each worker once and print the fleet's health.

    A one-shot probe has no failure history to average over, so the pool
    runs with ``failure_threshold=1``: a worker that fails its single
    probe is reported *dead*, not merely suspect.
    """
    pool = WorkerPool(args.workers_url, failure_threshold=1)
    pool.probe()
    statuses = pool.workers()
    usable = 0
    fleet_counters: dict[str, float] = {}
    for status in statuses:
        line = f"{status.url}  {status.state:8s}"
        if status.state == WorkerState.HEALTHY:
            usable += 1
            store = connect(status.url)
            try:
                stats = store.stats()
            except ReproError:
                stats = None
            if stats is not None:
                jobs = stats.get("jobs", {})
                line += (
                    f"  graphs={len(stats.get('graphs', {}))}"
                    f"  jobs={sum(jobs.values())}"
                )
            try:
                metrics = store.metrics()
            except ReproError:
                metrics = None
            if metrics is not None:
                for name, value in metrics["counters"].items():
                    fleet_counters[name] = fleet_counters.get(name, 0.0) + value
        elif status.last_error:
            line += f"  error: {status.last_error}"
        print(line)
    print(f"{usable}/{len(statuses)} worker(s) usable")
    if fleet_counters:
        # Counters sum meaningfully across processes (gauges and latency
        # histograms do not) — the fleet-wide view of throughput and churn.
        print("fleet counters (summed across usable workers):")
        for name in sorted(fleet_counters):
            print(f"  {name} = {fleet_counters[name]:g}")
    return 0 if usable else 1


def _command_stats(args: argparse.Namespace) -> int:
    graph = _load_graph(args)
    summary = summarize(graph)
    print(f"vertices:           {summary.num_vertices}")
    print(f"edges:              {summary.num_edges}")
    print(f"density:            {summary.density:.6g}")
    print(f"degree (min/mean/max): {summary.min_degree}/{summary.mean_degree:.2f}/{summary.max_degree}")
    print(
        "edge probability (min/mean/max): "
        f"{summary.min_probability:.4g}/{summary.mean_probability:.4g}/{summary.max_probability:.4g}"
    )
    print(f"expected edges:     {summary.expected_edges:.2f}")
    return 0


def _command_generate(args: argparse.Namespace) -> int:
    graph = load_dataset(args.dataset, scale=args.scale, seed=args.seed)
    write_edge_list(graph, args.output)
    print(
        f"wrote {args.dataset} (scale={args.scale}, seed={args.seed}) to {args.output}: "
        f"n={graph.num_vertices}, m={graph.num_edges}"
    )
    return 0


def _command_bound(args: argparse.Namespace) -> int:
    n = args.vertices
    print(f"n = {n}")
    print(f"Moon-Moser bound (deterministic, alpha = 1): {moon_moser_bound(n)}")
    print(f"Theorem 1 bound (uncertain, 0 < alpha < 1):  {uncertain_clique_bound(n, 0.5)}")
    return 0


def _command_compare(args: argparse.Namespace) -> int:
    resolved = _resolve_session(args)
    if resolved is None:
        return 2
    session, num_vertices, num_edges = resolved
    controls = _run_controls(args)
    # Both algorithms run in one session, so the graph is compiled once and
    # the DFS-NOIP pass reuses MULE's cached artifact (server-side when
    # --remote is given — the shared scheduler cache plays the same role).
    # --kernel only steers the MULE side: DFS-NOIP is the from-scratch
    # baseline and always runs on the python kernel.
    fast = session.enumerate(
        EnumerationRequest(
            algorithm="mule", alpha=args.alpha, controls=controls, kernel=args.kernel
        )
    ).to_result()
    slow = session.enumerate(
        EnumerationRequest(algorithm="dfs-noip", alpha=args.alpha, controls=controls)
    ).to_result()
    print(
        f"graph: n={num_vertices}, m={num_edges}, alpha={args.alpha}"
    )
    print(
        f"MULE:     {fast.num_cliques:>8} cliques in {fast.elapsed_seconds:8.3f}s "
        f"({fast.statistics.probability_multiplications} probability multiplications)"
    )
    print(
        f"DFS-NOIP: {slow.num_cliques:>8} cliques in {slow.elapsed_seconds:8.3f}s "
        f"({slow.statistics.probability_multiplications} probability multiplications)"
    )
    speedup = slow.elapsed_seconds / max(fast.elapsed_seconds, 1e-9)
    if fast.truncated or slow.truncated:
        # Truncated runs may stop at different points of the search, so
        # differing outputs say nothing about algorithm correctness.
        print(
            f"speed-up: {speedup:.1f}x, outputs not compared "
            f"(truncated: mule={fast.stop_reason}, dfs-noip={slow.stop_reason})"
        )
        return 0
    agree = fast.vertex_sets() == slow.vertex_sets()
    print(f"speed-up: {speedup:.1f}x, outputs {'agree' if agree else 'DISAGREE'}")
    return 0 if agree else 1


def _follow_job(job, *, quiet: bool) -> int:
    """Stream a job's records live and print the terminal summary."""
    for record in job.iter_results():
        if not quiet:
            members = ",".join(str(v) for v in record.as_tuple())
            print(f"  [{members}]  p={record.probability:.6g}", flush=True)
    result = job.outcome().to_result()
    print(
        f"{result.algorithm}: {result.num_cliques} alpha-maximal cliques "
        f"({result.stop_reason}) in {result.elapsed_seconds:.3f}s "
        f"[job {job.id}]"
    )
    return 0


def _print_job_status(status) -> None:
    line = (
        f"{status.id}  {status.state:9s}  {status.records:>8d} records  "
        f"{status.elapsed_seconds:8.3f}s"
    )
    if status.error is not None:
        line += f"  error: {status.error}"
    print(line)


def _command_jobs(args: argparse.Namespace) -> int:
    store = connect(args.remote)
    if args.cancel is not None:
        _print_job_status(store.job(args.cancel).cancel())
        return 0
    if args.follow is not None:
        return _follow_job(store.job(args.follow), quiet=False)
    if args.job is not None:
        _print_job_status(store.job(args.job).status())
        return 0
    statuses = store.jobs()
    if not statuses:
        print("no jobs registered")
        return 0
    for status in statuses:
        _print_job_status(status)
    return 0


def _command_metrics(args: argparse.Namespace) -> int:
    """``repro-mule metrics URL`` — dump a server's metrics registry."""
    store = connect(args.url)
    if args.format == "prometheus":
        sys.stdout.write(store.metrics_text())
        return 0
    print(json.dumps(store.metrics(), indent=2, sort_keys=True))
    return 0


def _command_core(args: argparse.Namespace) -> int:
    graph = _load_graph(args)
    cores = uncertain_core_decomposition(graph, args.eta)
    if not cores:
        print("graph has no vertices")
        return 0
    max_core = max(cores.values())
    histogram: dict[int, int] = {}
    for value in cores.values():
        histogram[value] = histogram.get(value, 0) + 1
    print(
        f"(k, eta)-core decomposition: n={graph.num_vertices}, eta={args.eta}, "
        f"max core number={max_core}"
    )
    for k in sorted(histogram):
        print(f"  core number {k}: {histogram[k]} vertices")
    top = sorted(cores.items(), key=lambda kv: (-kv[1], str(kv[0])))[: args.top]
    print(f"top {len(top)} vertices by core number:")
    for vertex, value in top:
        print(f"  {vertex}: {value}")
    return 0


def _parse_dataset_spec(spec: str, default_scale: float) -> tuple[str, float]:
    """Split a ``name[:scale]`` serve flag into (canonical name, scale)."""
    name, sep, scale_token = spec.partition(":")
    scale = default_scale
    if sep:
        try:
            scale = float(scale_token)
        except ValueError as exc:
            raise DatasetError(
                f"invalid dataset scale in {spec!r} (expected name[:scale])"
            ) from exc
    return resolve_dataset_name(name), scale


def _build_serving_store(args: argparse.Namespace) -> GraphStore:
    """Assemble the serving catalog from the repeated --dataset/--graph flags.

    Catalog graphs are pinned (the LRU budget only evicts client uploads);
    the first graph registered becomes the v1 default.
    """
    store = GraphStore(max_graphs=args.max_graphs if args.max_graphs > 0 else None)
    for spec in args.dataset:
        name, scale = _parse_dataset_spec(spec, args.scale)
        info = store.add_dataset(name, scale=scale, seed=args.seed)
        print(
            f"loaded dataset {info.name} (scale={scale:g}): "
            f"n={info.num_vertices}, m={info.num_edges}"
        )
    paths = list(args.graph)
    if args.input is not None:
        paths.append(args.input)
    for path in paths:
        graph = read_edge_list(path, vertex_type=str)
        # The store's own name rule decides whether the stem is usable.
        name = path.stem if GRAPH_NAME_PATTERN.match(path.stem) else None
        info = store.add(graph, name=name, pin=True)
        print(
            f"loaded {path} as {info.name or info.fingerprint[:12]}: "
            f"n={info.num_vertices}, m={info.num_edges}"
        )
    return store


def _command_serve(args: argparse.Namespace) -> int:
    if args.max_workers is not None and args.max_workers < 1:
        print("error: --max-workers must be positive", file=sys.stderr)
        return 2
    if not args.dataset and not args.graph and args.input is None:
        print(
            "error: nothing to serve; give at least one --dataset or --graph",
            file=sys.stderr,
        )
        return 2
    store = _build_serving_store(args)
    server = MiningServer(
        store,
        host=args.host,
        port=args.port,
        max_workers=args.max_workers,
        default_kernel=args.kernel,
        quiet=args.quiet,
        trace_dir=args.trace_dir,
    )
    names = [info.name or info.fingerprint[:12] for info in store.list()]
    print(f"serving {len(names)} graph(s) at {server.url}: {', '.join(names)}")
    print(f"default graph (v1 surface): {names[0]}")
    print(
        "endpoints: POST /v1/enumerate|sweep  GET /v1/health|stats  "
        "POST|GET /v2/graphs  GET|DELETE /v2/graphs/{ref}  "
        "POST /v2/graphs/{ref}/enumerate|sweep  POST|GET /v2/jobs  "
        "GET|DELETE /v2/jobs/{id}  GET /v2/jobs/{id}/results  "
        "(Ctrl-C to stop)"
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down")
    finally:
        server.close()
    return 0


def _command_datasets(_: argparse.Namespace) -> int:
    for name in available_datasets():
        spec = DATASETS[name]
        print(
            f"{name:16s}  {spec.paper_vertices:>8d} vertices  {spec.paper_edges:>9d} edges  "
            f"{spec.category}"
        )
    return 0


def _command_check(args: argparse.Namespace) -> int:
    return check_cli.run(args)


_COMMANDS = {
    "check": _command_check,
    "enumerate": _command_enumerate,
    "stats": _command_stats,
    "generate": _command_generate,
    "bound": _command_bound,
    "compare": _command_compare,
    "core": _command_core,
    "datasets": _command_datasets,
    "serve": _command_serve,
    "jobs": _command_jobs,
    "fleet": _command_fleet,
    "metrics": _command_metrics,
}


def main(argv: list[str] | None = None) -> int:
    """Entry point of the ``repro-mule`` command."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # Downstream closed early (e.g. ``repro-mule metrics ... | head``);
        # exit quietly with the conventional SIGPIPE status.  Detach stdout
        # first so interpreter shutdown does not raise on the final flush.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 141


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
