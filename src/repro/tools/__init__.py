"""Developer tooling that ships with the repository.

Unlike :mod:`repro.core` / :mod:`repro.service`, nothing under this
package is part of the library API — these are maintenance tools (the
``repro-mule check`` static analyser lives in :mod:`repro.tools.check`)
that happen to be versioned with the code they understand, so they can
never drift out of sync with it.
"""
