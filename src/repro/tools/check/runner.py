"""Scan driver: collect files, parse, run rules, filter suppressions."""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable, Sequence

from .findings import Finding
from .registry import ModuleUnit, Project, Rule, select_rules
from . import suppress

#: Directory names never descended into.
_SKIP_DIRS = {
    "__pycache__",
    ".git",
    ".hg",
    "build",
    "dist",
    ".eggs",
    "node_modules",
}


def find_project_root(start: Path) -> Path:
    """Walk upward from ``start`` to the checkout root.

    The root is the first ancestor carrying a ``setup.py``,
    ``setup.cfg`` or ``.git``; project-level rules resolve the fixture
    corpus and regeneration script relative to it.  Falls back to
    ``start`` itself so the checker still works on a loose directory.
    """
    start = start if start.is_dir() else start.parent
    for candidate in (start, *start.parents):
        for marker in ("setup.py", "setup.cfg", ".git"):
            if (candidate / marker).exists():
                return candidate
    return start


def collect_files(paths: Sequence[Path]) -> list[Path]:
    """Expand the given paths to a sorted, de-duplicated ``.py`` file list."""
    files: set[Path] = set()
    for path in paths:
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if not _SKIP_DIRS.intersection(candidate.parts):
                    files.add(candidate.resolve())
        elif path.suffix == ".py":
            files.add(path.resolve())
    return sorted(files)


def load_unit(path: Path, root: Path) -> ModuleUnit | Finding:
    """Parse one file; a syntax error becomes a finding, not a crash."""
    relpath = _relpath(path, root)
    try:
        source = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as exc:
        return Finding(relpath, 1, 0, "parse-error", f"unreadable file: {exc}")
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return Finding(
            relpath,
            exc.lineno or 1,
            exc.offset or 0,
            "parse-error",
            f"syntax error: {exc.msg}",
        )
    return ModuleUnit(path=path, relpath=relpath, source=source, tree=tree)


def _relpath(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def scan(
    paths: Sequence[Path],
    *,
    root: Path | None = None,
    rule_ids: Iterable[str] | None = None,
    honor_suppressions: bool = True,
) -> list[Finding]:
    """Run the selected rules over ``paths`` and return sorted findings."""
    targets = [Path(p) for p in paths]
    files = collect_files(targets)
    if root is None:
        # Anchor on what the caller pointed at, not the first file found:
        # for a loose directory with no repo markers the fallback root is
        # then the directory itself, keeping path-scoped rules in scope.
        root = find_project_root(targets[0] if targets else Path.cwd())
    rules = select_rules(rule_ids)

    findings: list[Finding] = []
    project = Project(root=root)
    tables: dict[str, suppress.Suppressions] = {}
    for path in files:
        loaded = load_unit(path, root)
        if isinstance(loaded, Finding):
            findings.append(loaded)
            continue
        project.units.append(loaded)
        tables[loaded.relpath] = suppress.collect(loaded.source)

    for rule in rules:
        for unit in project.units:
            findings.extend(rule.check_module(unit))
        findings.extend(rule.check_project(project))

    if honor_suppressions:
        findings = [
            finding
            for finding in findings
            if not _suppressed(finding, tables)
        ]
    return sorted(findings)


def _suppressed(
    finding: Finding, tables: dict[str, suppress.Suppressions]
) -> bool:
    table = tables.get(finding.path)
    return table is not None and table.is_suppressed(
        finding.line, finding.rule_id
    )
