"""``repro-mule check`` — AST static analysis for repo invariants.

The codebase guarantees three load-bearing invariants by convention:
manual lock discipline in the service/api layers, bit-identical
deterministic kernels in ``core/engine/``, and a frozen v1 wire schema.
This package machine-checks them (plus the error taxonomy and exhaustive
state dispatch) so reviewers do not have to.

Public surface:

* :func:`repro.tools.check.runner.scan` — programmatic scanning;
* :func:`repro.tools.check.cli.main` — the CLI (also reachable as
  ``python -m repro.tools.check`` and ``repro-mule check``);
* :class:`repro.tools.check.findings.Finding` — the diagnostic record;
* :mod:`repro.tools.check.rules` — the rule catalog.
"""

from __future__ import annotations

from .findings import Finding
from .registry import ModuleUnit, Project, Rule, all_rules, register
from .runner import scan

__all__ = [
    "Finding",
    "ModuleUnit",
    "Project",
    "Rule",
    "all_rules",
    "register",
    "scan",
]
