"""Finding objects — the single currency every rule trades in.

A rule never prints; it yields :class:`Finding` instances and the runner
sorts, filters (suppressions) and renders them.  Keeping findings as
plain data makes the checker testable: the test-suite asserts on finding
tuples, not on captured stdout.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True, order=True)
class Finding:
    """One diagnostic: *where*, *which rule*, *what*, and *how to fix*.

    Ordering is (path, line, col, rule_id) so a sorted finding list reads
    like compiler output.  ``hint`` is optional advisory text rendered on
    a continuation line; it never participates in identity.
    """

    path: str
    line: int
    col: int
    rule_id: str
    message: str
    hint: str = field(default="", compare=False)

    def render(self) -> str:
        text = f"{self.path}:{self.line}:{self.col}: {self.rule_id}: {self.message}"
        if self.hint:
            text += f"\n    hint: {self.hint}"
        return text

    def to_json(self) -> dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "message": self.message,
            "hint": self.hint,
        }
