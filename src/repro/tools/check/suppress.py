"""Suppression comments: ``# repro: ignore[rule-id]``.

Policy (documented in ``docs/dev.md``): a suppression is a *claim* that
the flagged line is safe for a reason the rule cannot see, and it must
name the rule it silences.  Forms:

* ``# repro: ignore[rule-a]`` — silence ``rule-a`` on this line;
* ``# repro: ignore[rule-a, rule-b]`` — silence several rules;
* ``# repro: ignore`` — silence every rule on this line (discouraged);
* ``# repro: ignore-file[rule-a]`` — silence ``rule-a`` for the whole
  file (must appear within the first 10 lines).

Comments are found with :mod:`tokenize`, so the markers never trigger
inside string literals.  ``--no-suppress`` audits what the markers hide.
"""

from __future__ import annotations

import io
import re
import tokenize

_MARKER = re.compile(
    r"#\s*repro:\s*(?P<form>ignore-file|ignore)\s*(?:\[(?P<rules>[^\]]*)\])?"
)

#: Sentinel meaning "every rule" (bare ``ignore`` with no bracket list).
ALL_RULES = "*"


class Suppressions:
    """Per-file suppression table, queried by (line, rule_id)."""

    def __init__(self) -> None:
        self._by_line: dict[int, set[str]] = {}
        self._file_wide: set[str] = set()

    def add_line(self, line: int, rule_ids: set[str]) -> None:
        self._by_line.setdefault(line, set()).update(rule_ids)

    def add_file(self, rule_ids: set[str]) -> None:
        self._file_wide.update(rule_ids)

    def is_suppressed(self, line: int, rule_id: str) -> bool:
        for pool in (self._file_wide, self._by_line.get(line, ())):
            if ALL_RULES in pool or rule_id in pool:
                return True
        return False

    def __bool__(self) -> bool:
        return bool(self._by_line or self._file_wide)


def _parse_rule_list(raw: str | None) -> set[str]:
    if raw is None:
        return {ALL_RULES}
    rules = {token.strip() for token in raw.split(",") if token.strip()}
    return rules or {ALL_RULES}


def collect(source: str) -> Suppressions:
    """Scan a module's source for suppression markers."""
    table = Suppressions()
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return table  # the runner reports the parse failure separately
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _MARKER.search(token.string)
        if match is None:
            continue
        rule_ids = _parse_rule_list(match.group("rules"))
        if match.group("form") == "ignore-file":
            if token.start[0] <= 10:
                table.add_file(rule_ids)
        else:
            table.add_line(token.start[0], rule_ids)
    return table
