"""Rule registry and the unit-of-analysis model.

Two granularities of rule exist:

* **module rules** implement ``check_module(unit)`` and see one parsed
  file at a time (lock discipline, determinism, taxonomy, exhaustive
  dispatch);
* **project rules** implement ``check_project(project)`` and see every
  scanned file plus the project root (wire-freeze needs the codec, the
  scheduler vocabulary, the golden fixture corpus and the regeneration
  script all at once).

Rules self-register at import time via :func:`register`; the CLI and the
tests both discover them through :func:`all_rules`.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Iterator

from .findings import Finding


@dataclass(frozen=True)
class ModuleUnit:
    """One parsed python file: source text, AST and project-relative path."""

    path: Path
    relpath: str  # posix-style, relative to the project root
    source: str
    tree: ast.Module

    def lines(self) -> list[str]:
        return self.source.splitlines()


@dataclass
class Project:
    """Everything the runner scanned, for project-level rules."""

    root: Path
    units: list[ModuleUnit] = field(default_factory=list)

    def find_unit(self, suffix: str) -> ModuleUnit | None:
        """Return the unit whose relpath ends with ``suffix``, if scanned."""
        for unit in self.units:
            if unit.relpath.endswith(suffix):
                return unit
        return None


class Rule:
    """Base class for every checker rule.

    Subclasses set ``rule_id`` (the suppression token) and ``description``
    and override one of :meth:`check_module` / :meth:`check_project`.
    The default implementations yield nothing, so a rule only pays for
    the granularity it uses.
    """

    rule_id: str = ""
    description: str = ""

    def check_module(self, unit: ModuleUnit) -> Iterator[Finding]:
        return iter(())

    def check_project(self, project: Project) -> Iterator[Finding]:
        return iter(())


_REGISTRY: dict[str, Rule] = {}


def register(rule_cls: type[Rule]) -> type[Rule]:
    """Class decorator: instantiate and index a rule by its id."""
    rule = rule_cls()
    if not rule.rule_id:
        raise ValueError(f"rule {rule_cls.__name__} has no rule_id")
    if rule.rule_id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule.rule_id!r}")
    _REGISTRY[rule.rule_id] = rule
    return rule_cls


def all_rules() -> list[Rule]:
    """Every registered rule, sorted by id (import side effect: rules)."""
    from . import rules as _rules  # noqa: F401  (registers the built-ins)

    return [_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY)]


def select_rules(rule_ids: Iterable[str] | None) -> list[Rule]:
    """Resolve ``--select`` tokens to rule objects (None = all rules)."""
    rules = all_rules()
    if rule_ids is None:
        return rules
    wanted = list(rule_ids)
    known = {rule.rule_id for rule in rules}
    unknown = [rule_id for rule_id in wanted if rule_id not in known]
    if unknown:
        raise KeyError(
            f"unknown rule id(s) {unknown!r}; known: {sorted(known)}"
        )
    return [rule for rule in rules if rule.rule_id in set(wanted)]


# Shared AST helpers (used by several rules) ---------------------------- #
def dotted_name(node: ast.AST) -> str | None:
    """Render ``a.b.c`` attribute chains; None for anything dynamic."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = dotted_name(node.value)
        return None if base is None else f"{base}.{node.attr}"
    return None


def iter_function_defs(
    tree: ast.AST,
) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def walk_in_scope(
    node: ast.AST, *, skip: Callable[[ast.AST], bool]
) -> Iterator[ast.AST]:
    """``ast.walk`` that prunes subtrees where ``skip(child)`` is true."""
    stack = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        if skip(child):
            continue
        yield child
        stack.extend(ast.iter_child_nodes(child))
