"""Command-line front end: ``repro-mule check`` / ``python -m repro.tools.check``.

Exit codes follow lint convention: 0 = clean, 1 = findings, 2 = usage
error.  ``--format json`` emits one object per finding for tooling.

The argument surface is defined once in :func:`add_arguments` so the
standalone module entry point and the ``repro-mule check`` subcommand
cannot drift apart.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Sequence, TextIO

from .registry import all_rules
from .runner import scan


def add_arguments(parser: argparse.ArgumentParser) -> None:
    """Install the checker's arguments on ``parser`` (shared surface)."""
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to scan (default: src/repro)",
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=None,
        help=(
            "project root for cross-file rules (default: nearest ancestor "
            "with setup.py/.git)"
        ),
    )
    parser.add_argument(
        "--select",
        action="append",
        metavar="RULE",
        default=None,
        help="run only this rule id (repeatable)",
    )
    parser.add_argument(
        "--no-suppress",
        action="store_true",
        help="ignore '# repro: ignore[...]' markers (audit mode)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )


def build_parser(prog: str = "repro-mule check") -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog=prog,
        description=(
            "Static analysis for repo-specific invariants: lock discipline, "
            "kernel determinism, wire-schema freeze, error taxonomy and "
            "exhaustive state dispatch."
        ),
    )
    add_arguments(parser)
    return parser


def run(args: argparse.Namespace, *, stdout: TextIO | None = None) -> int:
    """Execute a parsed checker invocation (shared by both entry points)."""
    out = stdout if stdout is not None else sys.stdout

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.rule_id:24s} {rule.description}", file=out)
        return 0

    try:
        findings = scan(
            [Path(p) for p in args.paths],
            root=args.root,
            rule_ids=args.select,
            honor_suppressions=not args.no_suppress,
        )
    except KeyError as exc:  # unknown --select token
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2

    if args.format == "json":
        for finding in findings:
            print(json.dumps(finding.to_json(), sort_keys=True), file=out)
    else:
        for finding in findings:
            print(finding.render(), file=out)
        if findings:
            plural = "" if len(findings) == 1 else "s"
            print(f"{len(findings)} finding{plural}", file=out)
    return 1 if findings else 0


def main(argv: Sequence[str] | None = None, *, stdout: TextIO | None = None) -> int:
    parser = build_parser()
    return run(parser.parse_args(argv), stdout=stdout)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
