"""Built-in rule catalog.  Importing this package registers every rule."""

from __future__ import annotations

from . import (  # noqa: F401
    error_taxonomy,
    kernel_determinism,
    lock_discipline,
    metrics_discipline,
    stopreason,
    wire_freeze,
)
