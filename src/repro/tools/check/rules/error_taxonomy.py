"""error-taxonomy: the service/api layers speak ``repro.errors`` only.

Clients map wire errors back to exception types by name
(``codec.error_to_wire`` / ``RemoteSession``), so every exception that
can cross a service boundary must come from the :mod:`repro.errors`
taxonomy.  This rule flags, in ``service/``, ``api/`` and
``distributed/`` modules (the distributed coordinator speaks the same
wire protocol, so its errors cross the same boundary):

* ``raise`` of anything that is not a :class:`repro.errors.ReproError`
  subclass, an ``AssertionError`` (the parity-contract assertion in
  ``api/outcome.py``), or an exception class defined in the same module
  (module-local control-flow exceptions such as ``JobCancelled`` are
  caught before they escape);
* bare ``except:`` clauses — they swallow ``KeyboardInterrupt`` and
  ``SystemExit`` inside worker threads.

Re-raises stay legal: bare ``raise``, and ``raise <variable>`` /
``raise obj.attr`` (propagating a stored exception object).
"""

from __future__ import annotations

import ast
import builtins
from typing import Iterator

from ..findings import Finding
from ..registry import ModuleUnit, Rule, dotted_name, register


def _taxonomy_names() -> frozenset[str]:
    """Class names of the blessed repro.errors taxonomy, plus AssertionError."""
    import repro.errors as errors_module

    names = {
        name
        for name, value in vars(errors_module).items()
        if isinstance(value, type)
        and issubclass(value, errors_module.ReproError)
    }
    names.add("AssertionError")
    return frozenset(names)


_BUILTIN_EXCEPTIONS = frozenset(
    name
    for name, value in vars(builtins).items()
    if isinstance(value, type) and issubclass(value, BaseException)
)


def _local_exception_classes(tree: ast.Module) -> set[str]:
    """Names of exception classes defined in this module.

    A class counts when any base name ends in ``Error``/``Exception``
    or is itself a locally defined exception class (one fixpoint pass
    handles the chains that occur in practice).
    """
    classes: dict[str, list[str]] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            bases = [dotted_name(base) or "" for base in node.bases]
            classes[node.name] = bases

    local: set[str] = set()
    changed = True
    while changed:
        changed = False
        for name, bases in classes.items():
            if name in local:
                continue
            for base in bases:
                leaf = base.rsplit(".", 1)[-1]
                is_exception_base = (
                    leaf.endswith(("Error", "Exception"))
                    or (
                        leaf in _BUILTIN_EXCEPTIONS
                        and leaf not in ("object",)
                    )
                    or leaf in local
                )
                if is_exception_base:
                    local.add(name)
                    changed = True
                    break
    return local


@register
class ErrorTaxonomyRule(Rule):
    rule_id = "error-taxonomy"
    description = (
        "raises in service/, api/ and distributed/ must use the "
        "repro.errors taxonomy; no bare except"
    )

    def __init__(self) -> None:
        self._allowed = _taxonomy_names()

    def check_module(self, unit: ModuleUnit) -> Iterator[Finding]:
        parts = unit.relpath.split("/")
        if (
            "service" not in parts
            and "api" not in parts
            and "distributed" not in parts
        ):
            return
        local_exceptions = _local_exception_classes(unit.tree)
        allowed = self._allowed | local_exceptions

        for node in ast.walk(unit.tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                yield Finding(
                    unit.relpath,
                    node.lineno,
                    node.col_offset,
                    self.rule_id,
                    "bare 'except:' swallows KeyboardInterrupt/SystemExit",
                    hint="catch Exception (or something narrower) explicitly",
                )
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue

            exc = node.exc
            callee = exc.func if isinstance(exc, ast.Call) else exc
            if (
                isinstance(exc, ast.Call)
                and isinstance(callee, ast.Attribute)
                and isinstance(callee.value, ast.Name)
                and callee.value.id == "self"
            ):
                # ``raise self._error_from_response(...)``: an exception
                # factory method; its return sites build taxonomy errors.
                continue
            name = dotted_name(callee)
            if name is None:
                continue  # dynamic expression; give it the benefit of doubt
            leaf = name.rsplit(".", 1)[-1]
            if leaf in allowed:
                continue
            if leaf not in _BUILTIN_EXCEPTIONS and not isinstance(
                exc, ast.Call
            ):
                # ``raise err`` / ``raise self._error``: re-raise of a
                # stored exception object, not a class instantiation.
                continue
            if leaf in _BUILTIN_EXCEPTIONS:
                message = (
                    f"raises builtin {leaf}; service/api errors must come "
                    "from the repro.errors taxonomy"
                )
            else:
                message = (
                    f"raises {name}, which is not a repro.errors class, a "
                    "module-local exception, or a stored re-raise"
                )
            yield Finding(
                unit.relpath,
                node.lineno,
                node.col_offset,
                self.rule_id,
                message,
                hint=(
                    "pick the closest repro.errors subclass (ServiceError, "
                    "JobError, StoreError, ParameterError, FormatError, ...)"
                ),
            )
