"""wire-freeze: the v1 wire schema is frozen; drift is a build error.

The service protocol lives in ``service/codec.py`` as ``_envelope(kind,
fields)`` encoders paired with ``_open_envelope(payload, kind, KEYS)``
decoders, pinned by a golden fixture corpus under
``tests/service/fixtures/`` that ``tests/service/make_fixtures.py``
regenerates.  Four kinds of drift can silently break deployed speakers,
and this rule statically detects all of them:

1. **encoder/decoder key drift** — the field set an encoder emits must
   equal the key set its decoder validates (conditional additive keys,
   like ``enumeration-request.kernel``, count on both sides);
2. **fixture drift** — every envelope instance in the corpus (including
   nested ones) must carry exactly the encoder's field set; a ``schema:
   1`` instance may not carry additive v2 keys at all, because v1 bytes
   are frozen forever;
3. **coverage holes** — every kind the codec encodes must appear in at
   least one golden fixture, and every fixture file must have a
   regeneration entry in ``make_fixtures.build_payloads()`` (and vice
   versa), so the corpus cannot rot;
4. **vocabulary drift** — the codec's ``JOB_STATES`` literal must match
   ``JobState``'s members in order, and ``_STOP_REASONS`` must cover
   ``StopReason`` exactly.

Everything is derived from the AST and the fixture JSON on disk — the
rule never imports the codec, so it also works on the bad-fixture
mini-projects in the checker's own test-suite.
"""

from __future__ import annotations

import ast
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator

from ..findings import Finding
from ..registry import ModuleUnit, Project, Rule, register

_FIXTURES_DIR = Path("tests") / "service" / "fixtures"
_MAKE_FIXTURES = Path("tests") / "service" / "make_fixtures.py"


# --------------------------------------------------------------------- #
# AST value resolution
# --------------------------------------------------------------------- #
def _string_set(node: ast.AST, env: dict[str, set[str]]) -> set[str] | None:
    """Resolve a set/tuple/list/frozenset(...) of string constants."""
    if isinstance(node, ast.Name):
        return set(env[node.id]) if node.id in env else None
    if isinstance(node, (ast.Set, ast.Tuple, ast.List)):
        values: set[str] = set()
        for element in node.elts:
            if not (
                isinstance(element, ast.Constant)
                and isinstance(element.value, str)
            ):
                return None
            values.add(element.value)
        return values
    if isinstance(node, ast.Call):
        name = node.func.id if isinstance(node.func, ast.Name) else None
        if name in ("frozenset", "set", "tuple") and len(node.args) == 1:
            return _string_set(node.args[0], env)
        return None
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        left = _string_set(node.left, env)
        right = _string_set(node.right, env)
        if left is None or right is None:
            return None
        return left | right
    return None


def _module_constants(tree: ast.Module) -> dict[str, set[str]]:
    """Module-level NAME = <string collection> assignments."""
    constants: dict[str, set[str]] = {}
    for node in tree.body:
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name):
                resolved = _string_set(node.value, constants)
                if resolved is not None:
                    constants[target.id] = resolved
    return constants


def _string_tuple(node: ast.AST) -> tuple[str, ...] | None:
    """An ordered tuple/list of string constants (for JOB_STATES)."""
    if isinstance(node, (ast.Tuple, ast.List)):
        values = []
        for element in node.elts:
            if not (
                isinstance(element, ast.Constant)
                and isinstance(element.value, str)
            ):
                return None
            values.append(element.value)
        return tuple(values)
    return None


def _attribute_names(node: ast.AST, owner: str) -> set[str] | None:
    """Member names from ``(Owner.A, Owner.B, ...)`` tuples."""
    if not isinstance(node, (ast.Tuple, ast.List)):
        return None
    names: set[str] = set()
    for element in node.elts:
        if (
            isinstance(element, ast.Attribute)
            and isinstance(element.value, ast.Name)
            and element.value.id == owner
        ):
            names.add(element.attr)
        else:
            return None
    return names


def _class_string_members(
    tree: ast.Module, class_name: str
) -> tuple[dict[str, str], ast.ClassDef | None]:
    """{MEMBER: value} for string class attributes, in source order."""
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and node.name == class_name:
            members: dict[str, str] = {}
            for stmt in node.body:
                if (
                    isinstance(stmt, ast.Assign)
                    and len(stmt.targets) == 1
                    and isinstance(stmt.targets[0], ast.Name)
                    and isinstance(stmt.value, ast.Constant)
                    and isinstance(stmt.value.value, str)
                ):
                    members[stmt.targets[0].id] = stmt.value.value
            return members, node
    return {}, None


# --------------------------------------------------------------------- #
# Codec spec extraction
# --------------------------------------------------------------------- #
@dataclass
class _KindSpec:
    kind: str
    line: int = 0
    required: set[str] = field(default_factory=set)
    optional: set[str] = field(default_factory=set)
    decode_keys: set[str] | None = None
    decode_line: int = 0
    version: int = 1  # version the kind stamps when no conditional fires


def _resolve_kind(node: ast.AST, locals_env: dict[str, ast.AST]) -> str | None:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    if isinstance(node, ast.Name) and node.id in locals_env:
        return _resolve_kind(locals_env[node.id], {})
    return None


def _extract_specs(tree: ast.Module) -> dict[str, _KindSpec]:
    constants = _module_constants(tree)
    specs: dict[str, _KindSpec] = {}

    for func in [n for n in ast.walk(tree) if isinstance(n, ast.FunctionDef)]:
        # Last-write-wins map of simple local assignments, plus the
        # union-of-all-assignments view used to widen decode key sets.
        simple_locals: dict[str, ast.AST] = {}
        multi_locals: dict[str, list[ast.AST]] = {}
        dict_literals: dict[str, ast.Dict] = {}
        subscript_adds: dict[str, set[str]] = {}
        for node in ast.walk(func):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name):
                    simple_locals[target.id] = node.value
                    multi_locals.setdefault(target.id, []).append(node.value)
                    if isinstance(node.value, ast.Dict):
                        dict_literals[target.id] = node.value
                elif (
                    isinstance(target, ast.Subscript)
                    and isinstance(target.value, ast.Name)
                    and isinstance(target.slice, ast.Constant)
                    and isinstance(target.slice.value, str)
                ):
                    subscript_adds.setdefault(target.value.id, set()).add(
                        target.slice.value
                    )

        for node in ast.walk(func):
            if not (
                isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
            ):
                continue
            if node.func.id == "_envelope" and len(node.args) >= 2:
                kind = _resolve_kind(node.args[0], simple_locals)
                if kind is None:
                    continue
                required, optional = _fields_of(
                    node.args[1], constants, dict_literals, subscript_adds
                )
                if required is None:
                    continue
                spec = specs.setdefault(kind, _KindSpec(kind))
                spec.line = spec.line or node.lineno
                spec.required |= required
                spec.optional |= optional
                for keyword in node.keywords:
                    if (
                        keyword.arg == "version"
                        and isinstance(keyword.value, ast.Name)
                        and keyword.value.id == "SCHEMA_VERSION_V2"
                    ):
                        spec.version = 2
            elif node.func.id == "_open_envelope" and len(node.args) >= 3:
                kind = _resolve_kind(node.args[1], simple_locals)
                if kind is None:
                    continue
                keys_node = node.args[2]
                resolved: set[str] = set()
                candidates = (
                    multi_locals.get(keys_node.id, [])
                    if isinstance(keys_node, ast.Name)
                    and keys_node.id in multi_locals
                    else [keys_node]
                )
                any_resolved = False
                for candidate in candidates:
                    keys = _string_set(candidate, constants)
                    if keys is not None:
                        resolved |= keys
                        any_resolved = True
                if not any_resolved:
                    continue
                spec = specs.setdefault(kind, _KindSpec(kind))
                spec.decode_keys = (spec.decode_keys or set()) | resolved
                spec.decode_line = spec.decode_line or node.lineno
    return specs


def _fields_of(
    node: ast.AST,
    constants: dict[str, set[str]],
    dict_literals: dict[str, ast.Dict],
    subscript_adds: dict[str, set[str]],
) -> tuple[set[str] | None, set[str]]:
    """(required keys, conditional keys) for an ``_envelope`` fields arg."""
    if isinstance(node, ast.Name):
        if node.id in dict_literals:
            required, _ = _fields_of(
                dict_literals[node.id], constants, {}, {}
            )
            extras = subscript_adds.get(node.id, set())
            if required is None:
                return None, set()
            return required, extras - required
        return None, set()
    if isinstance(node, ast.Dict):
        required = set()
        for key in node.keys:
            if not (
                isinstance(key, ast.Constant) and isinstance(key.value, str)
            ):
                return None, set()
            required.add(key.value)
        return required, set()
    if isinstance(node, ast.DictComp):
        iter_keys = _string_set(node.generators[0].iter, constants)
        return (iter_keys, set()) if iter_keys is not None else (None, set())
    return None, set()


# --------------------------------------------------------------------- #
# Fixture corpus
# --------------------------------------------------------------------- #
def _iter_envelopes(value: object) -> Iterator[dict]:
    if isinstance(value, dict):
        if "schema" in value and "kind" in value:
            yield value
        for item in value.values():
            yield from _iter_envelopes(item)
    elif isinstance(value, list):
        for item in value:
            yield from _iter_envelopes(item)


@register
class WireFreezeRule(Rule):
    rule_id = "wire-freeze"
    description = (
        "codec field sets, golden fixtures, make_fixtures entries and "
        "state vocabularies must all agree (v1 is frozen)"
    )

    def check_project(self, project: Project) -> Iterator[Finding]:
        codec = project.find_unit("service/codec.py")
        if codec is None:
            return
        specs = _extract_specs(codec.tree)
        if not specs:
            return
        yield from self._check_codec_parity(codec, specs)
        yield from self._check_fixtures(project, codec, specs)
        yield from self._check_make_fixtures(project)
        yield from self._check_vocabularies(project, codec)

    # -- 1. encoder vs decoder ----------------------------------------- #
    def _check_codec_parity(
        self, codec: ModuleUnit, specs: dict[str, _KindSpec]
    ) -> Iterator[Finding]:
        for kind, spec in sorted(specs.items()):
            if not spec.required:
                yield Finding(
                    codec.relpath,
                    spec.decode_line or 1,
                    0,
                    self.rule_id,
                    f"kind {kind!r} is decoded but never encoded",
                    hint="every wire kind needs an encoder and a decoder",
                )
                continue
            if spec.decode_keys is None:
                yield Finding(
                    codec.relpath,
                    spec.line or 1,
                    0,
                    self.rule_id,
                    f"kind {kind!r} is encoded but never decoded",
                    hint="every wire kind needs an encoder and a decoder",
                )
                continue
            emitted = spec.required | spec.optional
            if emitted != spec.decode_keys:
                extra = sorted(spec.decode_keys - emitted)
                missing = sorted(emitted - spec.decode_keys)
                detail = []
                if missing:
                    detail.append(f"encoder-only keys {missing}")
                if extra:
                    detail.append(f"decoder-only keys {extra}")
                yield Finding(
                    codec.relpath,
                    spec.line,
                    0,
                    self.rule_id,
                    f"kind {kind!r}: encoder and decoder disagree — "
                    + "; ".join(detail),
                    hint="update the _KEYS constant and the fixtures together",
                )

    # -- 2 + 3a. fixture instances and kind coverage -------------------- #
    def _check_fixtures(
        self,
        project: Project,
        codec: ModuleUnit,
        specs: dict[str, _KindSpec],
    ) -> Iterator[Finding]:
        fixtures_dir = project.root / _FIXTURES_DIR
        if not fixtures_dir.is_dir():
            yield Finding(
                codec.relpath,
                1,
                0,
                self.rule_id,
                f"golden fixture corpus not found at {_FIXTURES_DIR.as_posix()}",
                hint="run tests/service/make_fixtures.py to create it",
            )
            return
        seen_kinds: set[str] = set()
        for path in sorted(fixtures_dir.glob("*.json")):
            relpath = (_FIXTURES_DIR / path.name).as_posix()
            try:
                payload = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, ValueError) as exc:
                yield Finding(
                    relpath, 1, 0, self.rule_id, f"unreadable fixture: {exc}"
                )
                continue
            for envelope in _iter_envelopes(payload):
                kind = envelope.get("kind")
                spec = specs.get(kind) if isinstance(kind, str) else None
                if spec is None or not spec.required:
                    yield Finding(
                        relpath,
                        1,
                        0,
                        self.rule_id,
                        f"fixture contains unknown kind {kind!r}",
                        hint="the codec has no encoder for this kind",
                    )
                    continue
                seen_kinds.add(spec.kind)
                keys = set(envelope) - {"schema", "kind"}
                schema = envelope.get("schema")
                if schema == 1 and keys != spec.required:
                    yield Finding(
                        relpath,
                        1,
                        0,
                        self.rule_id,
                        f"v1 {spec.kind!r} envelope carries keys "
                        f"{sorted(keys)}, frozen set is "
                        f"{sorted(spec.required)}",
                        hint=(
                            "v1 bytes are frozen; additive keys must stamp "
                            "schema 2"
                        ),
                    )
                elif not (
                    spec.required <= keys <= spec.required | spec.optional
                ):
                    missing = sorted(spec.required - keys)
                    unknown = sorted(keys - spec.required - spec.optional)
                    detail = []
                    if missing:
                        detail.append(f"missing {missing}")
                    if unknown:
                        detail.append(f"unknown {unknown}")
                    yield Finding(
                        relpath,
                        1,
                        0,
                        self.rule_id,
                        f"{spec.kind!r} envelope drifted from the codec: "
                        + "; ".join(detail),
                        hint="regenerate with tests/service/make_fixtures.py",
                    )
        for kind, spec in sorted(specs.items()):
            if spec.required and kind not in seen_kinds:
                yield Finding(
                    codec.relpath,
                    spec.line or 1,
                    0,
                    self.rule_id,
                    f"kind {kind!r} has no golden fixture pinning its shape",
                    hint=(
                        "add a payload to tests/service/make_fixtures.py "
                        "and regenerate the corpus"
                    ),
                )

    # -- 3b. make_fixtures entries vs fixture files --------------------- #
    def _check_make_fixtures(self, project: Project) -> Iterator[Finding]:
        script = project.root / _MAKE_FIXTURES
        fixtures_dir = project.root / _FIXTURES_DIR
        if not script.is_file() or not fixtures_dir.is_dir():
            return
        relpath = _MAKE_FIXTURES.as_posix()
        try:
            tree = ast.parse(script.read_text(encoding="utf-8"))
        except (OSError, SyntaxError) as exc:
            yield Finding(relpath, 1, 0, self.rule_id, f"unparsable: {exc}")
            return
        entries: dict[str, int] = {}
        for node in ast.walk(tree):
            if not (
                isinstance(node, ast.FunctionDef)
                and node.name == "build_payloads"
            ):
                continue
            # Only the *returned* dict's top-level keys are corpus entries
            # (payload expressions may contain dict literals of their own).
            named_dicts: dict[str, ast.Dict] = {}
            returned: list[ast.Dict] = []
            for inner in ast.walk(node):
                if (
                    isinstance(inner, ast.Assign)
                    and len(inner.targets) == 1
                    and isinstance(inner.targets[0], ast.Name)
                    and isinstance(inner.value, ast.Dict)
                ):
                    named_dicts[inner.targets[0].id] = inner.value
                elif isinstance(inner, ast.Return):
                    if isinstance(inner.value, ast.Dict):
                        returned.append(inner.value)
                    elif (
                        isinstance(inner.value, ast.Name)
                        and inner.value.id in named_dicts
                    ):
                        returned.append(named_dicts[inner.value.id])
            for payload_dict in returned:
                for key in payload_dict.keys:
                    if isinstance(key, ast.Constant) and isinstance(
                        key.value, str
                    ):
                        entries.setdefault(key.value, key.lineno)
        if not entries:
            return
        files = {path.stem for path in fixtures_dir.glob("*.json")}
        for name in sorted(set(entries) - files):
            yield Finding(
                relpath,
                entries[name],
                0,
                self.rule_id,
                f"build_payloads() entry {name!r} has no fixture file",
                hint="run tests/service/make_fixtures.py to regenerate",
            )
        for name in sorted(files - set(entries)):
            yield Finding(
                relpath,
                1,
                0,
                self.rule_id,
                f"fixture {name}.json has no build_payloads() entry — the "
                "corpus cannot be regenerated",
                hint="add the payload to build_payloads() or delete the file",
            )

    # -- 4. vocabulary cross-checks ------------------------------------- #
    def _check_vocabularies(
        self, project: Project, codec: ModuleUnit
    ) -> Iterator[Finding]:
        job_states: tuple[str, ...] | None = None
        job_states_line = 1
        stop_reason_names: set[str] | None = None
        stop_reasons_line = 1
        for node in codec.tree.body:
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if not isinstance(target, ast.Name):
                    continue
                if target.id == "JOB_STATES":
                    job_states = _string_tuple(node.value)
                    job_states_line = node.lineno
                elif target.id == "_STOP_REASONS":
                    stop_reason_names = _attribute_names(
                        node.value, "StopReason"
                    )
                    stop_reasons_line = node.lineno

        jobs_unit = project.find_unit("service/jobs.py")
        if job_states is not None and jobs_unit is not None:
            members, _ = _class_string_members(jobs_unit.tree, "JobState")
            if members and tuple(members.values()) != job_states:
                yield Finding(
                    codec.relpath,
                    job_states_line,
                    0,
                    self.rule_id,
                    f"JOB_STATES {list(job_states)} drifted from "
                    f"JobState members {list(members.values())}",
                    hint="the wire vocabulary must match the scheduler's",
                )

        controls_unit = project.find_unit("core/engine/controls.py")
        if stop_reason_names is not None and controls_unit is not None:
            members, _ = _class_string_members(
                controls_unit.tree, "StopReason"
            )
            if members and set(members) != stop_reason_names:
                missing = sorted(set(members) - stop_reason_names)
                extra = sorted(stop_reason_names - set(members))
                detail = []
                if missing:
                    detail.append(f"missing {missing}")
                if extra:
                    detail.append(f"unknown {extra}")
                yield Finding(
                    codec.relpath,
                    stop_reasons_line,
                    0,
                    self.rule_id,
                    "_STOP_REASONS drifted from StopReason: "
                    + "; ".join(detail),
                    hint="every stop reason must round-trip over the wire",
                )
