"""lock-discipline: a lightweight static race detector.

The service, api and distributed layers guard mutable state with ``threading.Lock`` /
``RLock`` / ``Condition`` attributes and manual ``with self._lock:``
blocks.  The discipline this rule enforces: **any instance attribute
ever mutated while holding a lock of the same class must never be read
or written outside a lock-held context.**

A context counts as lock-held when it is

* lexically inside a ``with self.<guard>:`` block (nested functions
  inherit the enclosing context — they close over the locked region); or
* anywhere in a method whose name ends in ``_locked`` — the repo-wide
  convention for "caller holds the lock" helpers.

``__init__`` and ``__del__`` are *exempt*: accesses there can never be
violations (no concurrent aliases exist yet / anymore), but writes there
also do not mark an attribute as guarded — otherwise every attribute
initialised in the constructor would look lock-protected.

The rule is intraprocedural and conservative by design: it cannot see a
helper called *with* the lock held unless the helper advertises it via
the ``_locked`` suffix.  That is deliberate — the suffix is the
machine-checkable form of the locking contract.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterator

from ..findings import Finding
from ..registry import ModuleUnit, Rule, dotted_name, register

#: Constructors whose result makes the assigned attribute a lock guard.
_LOCK_FACTORIES = {"Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore"}

#: Method names that mutate their receiver in place.
_MUTATORS = {
    "append",
    "appendleft",
    "add",
    "clear",
    "discard",
    "extend",
    "insert",
    "move_to_end",
    "pop",
    "popitem",
    "popleft",
    "remove",
    "reverse",
    "setdefault",
    "sort",
    "update",
}

#: Methods where the whole body counts as lock-held.
_EXEMPT_METHODS = {"__init__", "__del__"}


#: Access contexts: "lock" = under a with-lock block or in a _locked
#: helper; "exempt" = __init__/__del__ (no concurrent aliases); "none" =
#: plain code.  Only "lock" writes mark an attribute as guarded, and only
#: "none" accesses to guarded attributes are violations.
_LOCKED, _EXEMPT, _UNHELD = "lock", "exempt", "none"


@dataclass(frozen=True)
class _Event:
    attr: str
    line: int
    col: int
    is_write: bool
    context: str
    #: Structural writes (rebind / subscript store / del) prove the
    #: attribute needs this class's lock.  Mutator *method* calls are
    #: still access events, but not guard evidence — the receiver may be
    #: an internally synchronised object (e.g. the shared compiled-graph
    #: cache) whose own methods take their own lock.
    marks_guarded: bool = True


def _self_attr(node: ast.AST) -> str | None:
    """Return ``X`` when ``node`` is exactly ``self.X``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _is_lock_factory(value: ast.AST) -> bool:
    if not isinstance(value, ast.Call):
        return False
    name = dotted_name(value.func)
    if name is None:
        return False
    leaf = name.rsplit(".", 1)[-1]
    return leaf in _LOCK_FACTORIES


class _ClassAnalyzer:
    """Collect guard names and attribute access events for one class."""

    def __init__(self, class_node: ast.ClassDef) -> None:
        self.class_node = class_node
        self.guards: set[str] = set()
        self.events: list[_Event] = []

    def analyze(self) -> None:
        methods = [
            node
            for node in self.class_node.body
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        for method in methods:
            self._find_guards(method)
        for method in methods:
            if method.name.endswith("_locked"):
                context = _LOCKED
            elif method.name in _EXEMPT_METHODS:
                context = _EXEMPT
            else:
                context = _UNHELD
            for stmt in method.body:
                self._visit(stmt, context)

    # -- pass 1: which attributes hold locks? -------------------------- #
    def _find_guards(self, method: ast.AST) -> None:
        for node in ast.walk(method):
            if isinstance(node, ast.Assign) and _is_lock_factory(node.value):
                for target in node.targets:
                    attr = _self_attr(target)
                    if attr is not None:
                        self.guards.add(attr)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                if _is_lock_factory(node.value):
                    attr = _self_attr(node.target)
                    if attr is not None:
                        self.guards.add(attr)

    # -- pass 2: classify every self.<attr> access --------------------- #
    def _record(
        self,
        node: ast.AST,
        *,
        write: bool,
        context: str,
        marks_guarded: bool = True,
    ) -> None:
        attr = _self_attr(node)
        if attr is not None:
            self.events.append(
                _Event(
                    attr,
                    node.lineno,
                    node.col_offset,
                    write,
                    context,
                    marks_guarded,
                )
            )

    def _record_target(self, target: ast.AST, context: str) -> None:
        """A store/delete target: unwrap subscripts back to ``self.X``."""
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._record_target(element, context)
        elif isinstance(target, ast.Starred):
            self._record_target(target.value, context)
        elif isinstance(target, (ast.Subscript, ast.Slice)):
            base = target.value if isinstance(target, ast.Subscript) else None
            if base is not None and _self_attr(base) is not None:
                self._record(base, write=True, context=context)
            else:
                self._visit(target, context)
            if isinstance(target, ast.Subscript):
                self._visit(target.slice, context)
        elif _self_attr(target) is not None:
            self._record(target, write=True, context=context)
        else:
            self._visit(target, context)

    def _visit(self, node: ast.AST, context: str) -> None:
        if isinstance(node, ast.ClassDef):
            return  # nested classes have their own discipline
        if isinstance(node, (ast.With, ast.AsyncWith)):
            inner = context
            for item in node.items:
                attr = _self_attr(item.context_expr)
                if attr is not None and attr in self.guards:
                    inner = _LOCKED
                else:
                    self._visit(item.context_expr, context)
                if item.optional_vars is not None:
                    self._record_target(item.optional_vars, context)
            for stmt in node.body:
                self._visit(stmt, inner)
            return
        if isinstance(node, ast.Assign):
            for target in node.targets:
                self._record_target(target, context)
            self._visit(node.value, context)
            return
        if isinstance(node, ast.AnnAssign):
            self._record_target(node.target, context)
            if node.value is not None:
                self._visit(node.value, context)
            return
        if isinstance(node, ast.AugAssign):
            # Read-modify-write: one write event covers both halves.
            self._record_target(node.target, context)
            self._visit(node.value, context)
            return
        if isinstance(node, ast.Delete):
            for target in node.targets:
                self._record_target(target, context)
            return
        if isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _MUTATORS
                and _self_attr(func.value) is not None
            ):
                self._record(
                    func.value,
                    write=True,
                    context=context,
                    marks_guarded=False,
                )
            else:
                self._visit(func, context)
            for arg in node.args:
                self._visit(arg, context)
            for keyword in node.keywords:
                self._visit(keyword.value, context)
            return
        if isinstance(node, ast.Attribute):
            attr = _self_attr(node)
            if attr is not None:
                self._record(
                    node,
                    write=not isinstance(node.ctx, ast.Load),
                    context=context,
                )
                return
            self._visit(node.value, context)
            return
        for child in ast.iter_child_nodes(node):
            self._visit(child, context)


@register
class LockDisciplineRule(Rule):
    rule_id = "lock-discipline"
    description = (
        "attributes mutated under a class lock must never be touched "
        "outside one (service/, api/ and distributed/)"
    )

    def check_module(self, unit: ModuleUnit) -> Iterator[Finding]:
        parts = unit.relpath.split("/")
        if (
            "service" not in parts
            and "api" not in parts
            and "distributed" not in parts
        ):
            return
        for node in ast.walk(unit.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            analyzer = _ClassAnalyzer(node)
            analyzer.analyze()
            if not analyzer.guards:
                continue
            guarded = {
                event.attr
                for event in analyzer.events
                if event.is_write
                and event.marks_guarded
                and event.context == _LOCKED
            } - analyzer.guards
            for event in analyzer.events:
                if event.attr not in guarded or event.context != _UNHELD:
                    continue
                action = "written" if event.is_write else "read"
                yield Finding(
                    unit.relpath,
                    event.line,
                    event.col,
                    self.rule_id,
                    (
                        f"{node.name}.{event.attr} is mutated under a lock "
                        f"elsewhere in the class but {action} here without one"
                    ),
                    hint=(
                        "wrap the access in 'with self.<lock>:', or mark the "
                        "enclosing helper as caller-holds-lock by renaming it "
                        "with a '_locked' suffix"
                    ),
                )
