"""metrics-discipline: naming and placement rules for the global registry.

The observability subsystem (:mod:`repro.obs`) hangs every instrument off
one process-global :func:`~repro.obs.registry` seam.  Two conventions
keep that registry coherent and cheap:

* **names** are ``snake_case`` with a layer prefix (``engine_``,
  ``cache_``, ``sched_``, ``jobs_``, ``http_``, ``dist_``) so a metrics
  page groups by architectural layer and two layers can never collide on
  a name;
* **registration happens once, at module scope** — ``registry().counter``
  inside a function or loop would re-run per call, putting a registry
  lock acquisition (and a name-collision check) on the hot path the
  instrument is supposed to *observe*, not perturb.

The rule recognises a registration syntactically: a ``.counter(...)`` /
``.gauge(...)`` / ``.histogram(...)`` attribute call whose receiver is
itself a call to something named like a registry accessor
(``registry()``, ``_obs_registry()``).  Instruments created on private
:class:`~repro.obs.MetricsRegistry` *instances* (test fixtures, golden
corpora) are out of scope on purpose — the conventions protect the
shared seam, not scratch registries.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from ..findings import Finding
from ..registry import ModuleUnit, Rule, dotted_name, register

#: Layer prefixes a global-registry metric name must start with.
_LAYER_PREFIXES = ("engine_", "cache_", "sched_", "jobs_", "http_", "dist_")

#: snake_case after the prefix: lowercase alphanumerics and underscores.
_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*$")

#: Instrument-constructing methods of the registry.
_METHODS = frozenset({"counter", "gauge", "histogram"})


def _registration(node: ast.AST) -> "ast.Call | None":
    """Return ``node`` when it registers an instrument on the global seam.

    Matches ``<accessor>().counter/gauge/histogram(...)`` where the
    accessor's final name segment contains ``registry`` — the shape of
    ``from ..obs import registry as _obs_registry`` call sites.
    """
    if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
        return None
    if node.func.attr not in _METHODS:
        return None
    receiver = node.func.value
    if not isinstance(receiver, ast.Call):
        return None
    accessor = dotted_name(receiver.func)
    if accessor is None or "registry" not in accessor.split(".")[-1].lower():
        return None
    return node


@register
class MetricsDisciplineRule(Rule):
    rule_id = "metrics-discipline"
    description = (
        "global-registry metrics: snake_case names with a layer prefix, "
        "registered once at module scope (never in functions or loops)"
    )

    def check_module(self, unit: ModuleUnit) -> Iterator[Finding]:
        yield from self._walk(unit, unit.tree, in_function=False, in_loop=False)

    def _walk(
        self,
        unit: ModuleUnit,
        node: ast.AST,
        *,
        in_function: bool,
        in_loop: bool,
    ) -> Iterator[Finding]:
        for child in ast.iter_child_nodes(node):
            call = _registration(child)
            if call is not None:
                yield from self._check_call(
                    unit, call, in_function=in_function, in_loop=in_loop
                )
            yield from self._walk(
                unit,
                child,
                in_function=in_function
                or isinstance(
                    child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
                ),
                in_loop=in_loop
                or isinstance(child, (ast.For, ast.AsyncFor, ast.While)),
            )

    def _check_call(
        self,
        unit: ModuleUnit,
        call: ast.Call,
        *,
        in_function: bool,
        in_loop: bool,
    ) -> Iterator[Finding]:
        make = lambda msg, hint="": Finding(  # noqa: E731
            unit.relpath, call.lineno, call.col_offset, self.rule_id, msg, hint=hint
        )
        method = call.func.attr  # type: ignore[attr-defined]
        if not call.args or not (
            isinstance(call.args[0], ast.Constant)
            and isinstance(call.args[0].value, str)
        ):
            yield make(
                f"registry .{method}() call without a literal metric name",
                hint="metric names must be static so dashboards can rely on them",
            )
        else:
            name = call.args[0].value
            if not name.startswith(_LAYER_PREFIXES) or not _NAME_RE.match(name):
                yield make(
                    f"metric name {name!r} is not snake_case with a layer "
                    f"prefix {sorted(_LAYER_PREFIXES)}",
                    hint="prefix the owning layer, lowercase with underscores",
                )
        if in_loop:
            yield make(
                f"registry .{method}() inside a loop — instruments must be "
                "registered once at module scope",
                hint="hoist the registration to a module-level constant",
            )
        elif in_function:
            yield make(
                f"registry .{method}() inside a function — instruments must "
                "be registered once at module scope",
                hint="hoist the registration to a module-level constant",
            )
