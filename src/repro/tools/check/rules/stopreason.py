"""stopreason-exhaustive: state dispatch must cover every member.

``StopReason`` and ``JobState`` are closed vocabularies (the wire
protocol pins both), yet python has no compile-time exhaustiveness check
for the ``if x == StopReason.A: ... elif x == StopReason.B: ...`` chains
that dispatch on them.  A member added later — or simply forgotten, as
``CANCELLED`` historically was in the parallel stop-reason merge — falls
through silently into whatever the last branch or fall-through produces.

This rule finds every if/elif chain (including consecutive ``if``
statements whose earlier bodies all terminate) and every ``match``
statement dispatching one subject against members of these classes, and
requires it to either carry an ``else``/wildcard branch or to cover
every member.  Chains with fewer than two member tests are ignored —
single guards like ``if state == JobState.FAILED:`` are not dispatches.

Member sets come from the real classes at lint time, so the rule can
never drift from the vocabulary it protects; composite aliases
(``JobState.TERMINAL`` / ``JobState.ALL``) resolve to their members.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterator

from ..findings import Finding
from ..registry import ModuleUnit, Rule, register


def _enum_vocabulary() -> dict[str, tuple[dict[str, str], dict[str, frozenset[str]]]]:
    """{class name: ({member: value}, {composite: member names})}."""
    from repro.core.engine.controls import StopReason
    from repro.service.jobs import JobState

    vocab: dict[str, tuple[dict[str, str], dict[str, frozenset[str]]]] = {}
    for cls in (StopReason, JobState):
        members = {
            name: value
            for name, value in vars(cls).items()
            if not name.startswith("_") and isinstance(value, str)
        }
        by_value = {value: name for name, value in members.items()}
        composites = {
            name: frozenset(
                by_value[item] for item in value if item in by_value
            )
            for name, value in vars(cls).items()
            if not name.startswith("_")
            and isinstance(value, tuple)
            and all(isinstance(item, str) for item in value)
        }
        vocab[cls.__name__] = (members, composites)
    return vocab


@dataclass(frozen=True)
class _Test:
    """One branch test resolved to enum members: ``subject == Enum.X``."""

    enum: str
    subject: str  # ast.dump of the non-enum side
    covered: frozenset[str]


class _Resolver:
    def __init__(self) -> None:
        self.vocab = _enum_vocabulary()

    def members_of(self, node: ast.AST) -> tuple[str, frozenset[str]] | None:
        """Resolve ``Enum.X`` (member or composite) to (enum, members)."""
        if not (
            isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name)
        ):
            return None
        enum = node.value.id
        if enum not in self.vocab:
            return None
        members, composites = self.vocab[enum]
        if node.attr in members:
            return enum, frozenset({node.attr})
        if node.attr in composites:
            return enum, composites[node.attr]
        return None

    def collection_members(
        self, node: ast.AST
    ) -> tuple[str, frozenset[str]] | None:
        """Resolve ``(Enum.A, Enum.B)`` / ``Enum.COMPOSITE`` for ``in`` tests."""
        direct = self.members_of(node)
        if direct is not None:
            return direct
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            enum: str | None = None
            covered: set[str] = set()
            for element in node.elts:
                resolved = self.members_of(element)
                if resolved is None:
                    return None
                element_enum, element_members = resolved
                if enum is None:
                    enum = element_enum
                elif enum != element_enum:
                    return None
                covered.update(element_members)
            if enum is None:
                return None
            return enum, frozenset(covered)
        return None

    def parse_test(self, test: ast.AST) -> _Test | None:
        if not isinstance(test, ast.Compare) or len(test.ops) != 1:
            return None
        op = test.ops[0]
        left, right = test.left, test.comparators[0]
        if isinstance(op, ast.Eq):
            for member_side, subject_side in ((right, left), (left, right)):
                resolved = self.members_of(member_side)
                if resolved is not None:
                    enum, covered = resolved
                    return _Test(enum, ast.dump(subject_side), covered)
            return None
        if isinstance(op, ast.In):
            resolved = self.collection_members(right)
            if resolved is None:
                return None
            enum, covered = resolved
            return _Test(enum, ast.dump(left), covered)
        return None


def _terminates(body: list[ast.stmt]) -> bool:
    return bool(body) and isinstance(
        body[-1], (ast.Return, ast.Raise, ast.Continue, ast.Break)
    )


def _iter_statement_lists(tree: ast.AST) -> Iterator[list[ast.stmt]]:
    for node in ast.walk(tree):
        for field in ("body", "orelse", "finalbody"):
            stmts = getattr(node, field, None)
            if isinstance(stmts, list) and stmts and isinstance(stmts[0], ast.stmt):
                yield stmts


@register
class StopReasonExhaustiveRule(Rule):
    rule_id = "stopreason-exhaustive"
    description = (
        "if/elif chains and matches dispatching on StopReason/JobState "
        "must cover every member or carry an else"
    )

    def __init__(self) -> None:
        self._resolver: _Resolver | None = None

    def _get_resolver(self) -> _Resolver:
        if self._resolver is None:
            self._resolver = _Resolver()
        return self._resolver

    def check_module(self, unit: ModuleUnit) -> Iterator[Finding]:
        resolver = self._get_resolver()
        consumed: set[int] = set()
        for stmts in _iter_statement_lists(unit.tree):
            yield from self._check_list(unit, stmts, resolver, consumed)
        for node in ast.walk(unit.tree):
            if isinstance(node, ast.Match):
                yield from self._check_match(unit, node, resolver)

    # -- if/elif chains (plus consecutive terminating ifs) ------------- #
    def _check_list(
        self,
        unit: ModuleUnit,
        stmts: list[ast.stmt],
        resolver: _Resolver,
        consumed: set[int],
    ) -> Iterator[Finding]:
        index = 0
        while index < len(stmts):
            stmt = stmts[index]
            if not isinstance(stmt, ast.If) or id(stmt) in consumed:
                index += 1
                continue
            tests, has_else, chain_terminates = self._flatten_chain(
                stmt, resolver, consumed
            )
            if tests is None:
                index += 1
                continue
            # Absorb following sibling ifs on the same subject when every
            # branch so far terminates (the classic early-return ladder).
            index += 1
            while (
                not has_else
                and chain_terminates
                and index < len(stmts)
                and isinstance(stmts[index], ast.If)
                and id(stmts[index]) not in consumed
            ):
                sibling = stmts[index]
                peek = self._flatten_chain(sibling, resolver, set())
                sibling_tests, sibling_else, sibling_terminates = peek
                if sibling_tests is None or any(
                    t.enum != tests[0].enum or t.subject != tests[0].subject
                    for t in sibling_tests
                ):
                    break
                self._flatten_chain(sibling, resolver, consumed)
                tests = tests + sibling_tests
                has_else = sibling_else
                chain_terminates = sibling_terminates
                index += 1
            yield from self._judge(unit, stmt, tests, has_else, resolver)

    def _flatten_chain(
        self,
        stmt: ast.If,
        resolver: _Resolver,
        consumed: set[int],
    ) -> tuple[list[_Test] | None, bool, bool]:
        """Flatten an if/elif chain into enum tests.

        Returns (tests, has_else, every_branch_terminates); tests is None
        when any branch test is not a dispatch on one enum and subject.
        """
        tests: list[_Test] = []
        terminates = True
        node: ast.stmt = stmt
        while True:
            consumed.add(id(node))
            parsed = resolver.parse_test(node.test)  # type: ignore[attr-defined]
            if parsed is None or (
                tests
                and (
                    parsed.enum != tests[0].enum
                    or parsed.subject != tests[0].subject
                )
            ):
                return None, False, False
            tests.append(parsed)
            terminates = terminates and _terminates(node.body)  # type: ignore[attr-defined]
            orelse = node.orelse  # type: ignore[attr-defined]
            if len(orelse) == 1 and isinstance(orelse[0], ast.If):
                node = orelse[0]
                continue
            return tests, bool(orelse), terminates

    def _judge(
        self,
        unit: ModuleUnit,
        stmt: ast.stmt,
        tests: list[_Test],
        has_else: bool,
        resolver: _Resolver,
    ) -> Iterator[Finding]:
        if len(tests) < 2 or has_else:
            return
        enum = tests[0].enum
        all_members = frozenset(resolver.vocab[enum][0])
        covered = frozenset().union(*(test.covered for test in tests))
        missing = sorted(all_members - covered)
        if missing:
            yield Finding(
                unit.relpath,
                stmt.lineno,
                stmt.col_offset,
                self.rule_id,
                (
                    f"dispatch on {enum} covers {sorted(covered)} but not "
                    f"{missing}"
                ),
                hint=(
                    "add branches for the missing members or an explicit "
                    "else documenting the default"
                ),
            )

    # -- match statements ---------------------------------------------- #
    def _check_match(
        self, unit: ModuleUnit, node: ast.Match, resolver: _Resolver
    ) -> Iterator[Finding]:
        enum: str | None = None
        covered: set[str] = set()
        enum_cases = 0
        for case in node.cases:
            patterns = (
                case.pattern.patterns
                if isinstance(case.pattern, ast.MatchOr)
                else [case.pattern]
            )
            for pattern in patterns:
                if isinstance(pattern, ast.MatchAs) and pattern.pattern is None:
                    return  # wildcard case: exhaustive by construction
                if not isinstance(pattern, ast.MatchValue):
                    return  # mixed dispatch; out of scope
                resolved = resolver.members_of(pattern.value)
                if resolved is None:
                    return
                case_enum, case_members = resolved
                if enum is None:
                    enum = case_enum
                elif enum != case_enum:
                    return
                covered.update(case_members)
                enum_cases += 1
        if enum is None or enum_cases < 2:
            return
        missing = sorted(frozenset(resolver.vocab[enum][0]) - covered)
        if missing:
            yield Finding(
                unit.relpath,
                node.lineno,
                node.col_offset,
                self.rule_id,
                f"match on {enum} covers {sorted(covered)} but not {missing}",
                hint="add the missing cases or a wildcard 'case _:'",
            )
