"""kernel-determinism: guard the bit-identity of the enumeration kernels.

Every parity suite in the repo (python vs vector kernel, serial vs
sharded) assumes the engine is a pure function of its inputs.  This rule
bans the ambient-nondeterminism escape hatches inside ``core/engine/``:

* wall-clock and entropy sources (``time.*`` except the designated
  ``perf_counter`` stopwatch seam, ``datetime.now``, ``random``,
  ``os.urandom``, ``uuid``, ``secrets``);
* hash-order-dependent iteration over sets (``for x in {...}`` /
  ``set(...)`` / set comprehensions, and ``set.pop()``), whose order
  varies with ``PYTHONHASHSEED`` — wrap the iterable in ``sorted()``.

``time.perf_counter`` / ``perf_counter_ns`` stay allowed: they are the
stopwatch seam the run-controls deadline machinery is built on, and
their values only ever *stop* a run (a controlled, reported event), they
never steer which clique is emitted next.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding
from ..registry import ModuleUnit, Rule, dotted_name, register

#: Modules whose import into the engine is itself a finding.
_BANNED_MODULES = {"random", "uuid", "secrets"}

#: ``time.*`` attributes allowed inside the engine (the stopwatch seam).
_ALLOWED_TIME = {"perf_counter", "perf_counter_ns"}

#: Dotted call targets that are always nondeterministic.
_BANNED_CALLS = {
    "os.urandom",
    "datetime.now",
    "datetime.utcnow",
    "datetime.today",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
    "date.today",
}


def _is_set_expr(node: ast.AST) -> bool:
    """Syntactically a set: literal, comprehension, or set()/frozenset()."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = dotted_name(node.func)
        return name in ("set", "frozenset")
    return False


@register
class KernelDeterminismRule(Rule):
    rule_id = "kernel-determinism"
    description = (
        "no clocks, entropy or hash-order iteration in core/engine/ "
        "(time.perf_counter is the only sanctioned seam)"
    )

    def check_module(self, unit: ModuleUnit) -> Iterator[Finding]:
        if "core/engine/" not in unit.relpath:
            return
        for node in ast.walk(unit.tree):
            yield from self._check_node(unit, node)

    def _check_node(self, unit: ModuleUnit, node: ast.AST) -> Iterator[Finding]:
        make = lambda line, col, msg, hint="": Finding(  # noqa: E731
            unit.relpath, line, col, self.rule_id, msg, hint=hint
        )

        if isinstance(node, ast.Import):
            for alias in node.names:
                top = alias.name.split(".")[0]
                if top in _BANNED_MODULES:
                    yield make(
                        node.lineno,
                        node.col_offset,
                        f"import of nondeterministic module {alias.name!r}",
                        hint="the engine must be a pure function of its inputs",
                    )
        elif isinstance(node, ast.ImportFrom):
            top = (node.module or "").split(".")[0]
            if top in _BANNED_MODULES:
                yield make(
                    node.lineno,
                    node.col_offset,
                    f"import from nondeterministic module {node.module!r}",
                    hint="the engine must be a pure function of its inputs",
                )

        elif isinstance(node, ast.Call):
            name = dotted_name(node.func)
            if name is not None:
                parts = name.split(".")
                if name in _BANNED_CALLS or parts[0] in _BANNED_MODULES:
                    yield make(
                        node.lineno,
                        node.col_offset,
                        f"call to nondeterministic {name}()",
                        hint="derive values from the request, not the environment",
                    )
                elif parts[0] == "time" and len(parts) == 2:
                    if parts[1] not in _ALLOWED_TIME:
                        yield make(
                            node.lineno,
                            node.col_offset,
                            f"call to time.{parts[1]}() outside the stopwatch seam",
                            hint=(
                                "time.perf_counter is the only clock the "
                                "engine may consult (run-controls deadlines)"
                            ),
                        )
                elif parts[-1] == "pop" and len(parts) >= 2:
                    # set.pop() removes an arbitrary element; we can only
                    # see it syntactically when the receiver is a set expr.
                    receiver = node.func
                    if isinstance(receiver, ast.Attribute) and _is_set_expr(
                        receiver.value
                    ):
                        yield make(
                            node.lineno,
                            node.col_offset,
                            "set.pop() removes a hash-order-dependent element",
                            hint="use sorted(...) and pop from the list",
                        )
            # list(set(...)) / tuple(set(...)) materialise hash order.
            if (
                name in ("list", "tuple")
                and node.args
                and _is_set_expr(node.args[0])
            ):
                yield make(
                    node.args[0].lineno,
                    node.args[0].col_offset,
                    f"{name}() over a set materialises hash order",
                    hint="use sorted(...) for a deterministic order",
                )

        elif isinstance(node, (ast.For, ast.AsyncFor)):
            if _is_set_expr(node.iter):
                yield make(
                    node.iter.lineno,
                    node.iter.col_offset,
                    "iteration over a set depends on hash order",
                    hint="iterate over sorted(...) instead",
                )
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            for generator in node.generators:
                if _is_set_expr(generator.iter):
                    yield make(
                        generator.iter.lineno,
                        generator.iter.col_offset,
                        "comprehension over a set depends on hash order",
                        hint="iterate over sorted(...) instead",
                    )
