"""Erdős–Rényi random graphs.

Not used directly in the paper's evaluation but indispensable for testing:
``G(n, p)`` graphs with moderate density exercise the enumeration algorithms
on unstructured inputs, and very dense instances approach the worst-case
regimes analysed in Section 3.
"""

from __future__ import annotations

import random

from ..deterministic.graph import Graph
from ..errors import ParameterError
from ..uncertain.builder import from_skeleton
from ..uncertain.graph import UncertainGraph
from .probabilities import ProbabilityModel, uniform_probabilities

__all__ = ["erdos_renyi_skeleton", "erdos_renyi_uncertain", "random_uncertain_graph"]


def erdos_renyi_skeleton(
    n: int,
    edge_probability: float,
    *,
    rng: random.Random | int | None = None,
) -> Graph:
    """Generate a ``G(n, p)`` graph on vertices ``1..n``.

    Each of the ``C(n, 2)`` possible edges is included independently with
    probability ``edge_probability``.

    Raises
    ------
    ParameterError
        If ``n`` is negative or ``edge_probability`` is outside [0, 1].
    """
    if n < 0:
        raise ParameterError(f"n must be non-negative, got {n}")
    if not 0.0 <= edge_probability <= 1.0:
        raise ParameterError(
            f"edge_probability must be in [0, 1], got {edge_probability}"
        )
    generator = _coerce_rng(rng)
    graph = Graph(vertices=range(1, n + 1))
    for u in range(1, n + 1):
        for v in range(u + 1, n + 1):
            if generator.random() < edge_probability:
                graph.add_edge(u, v)
    return graph


def erdos_renyi_uncertain(
    n: int,
    edge_probability: float,
    *,
    probability_model: ProbabilityModel | None = None,
    rng: random.Random | int | None = None,
) -> UncertainGraph:
    """Generate an uncertain ``G(n, p)`` graph with random edge probabilities."""
    generator = _coerce_rng(rng)
    skeleton = erdos_renyi_skeleton(n, edge_probability, rng=generator)
    model = probability_model or uniform_probabilities(rng=generator)
    return from_skeleton(skeleton, model)


def random_uncertain_graph(
    n: int,
    edge_probability: float = 0.3,
    *,
    min_edge_probability: float = 0.05,
    max_edge_probability: float = 1.0,
    rng: random.Random | int | None = None,
) -> UncertainGraph:
    """Convenience generator for small random uncertain graphs used in tests.

    Combines an Erdős–Rényi skeleton with probabilities uniform in
    ``[min_edge_probability, max_edge_probability]``.
    """
    generator = _coerce_rng(rng)
    return erdos_renyi_uncertain(
        n,
        edge_probability,
        probability_model=uniform_probabilities(
            min_edge_probability, max_edge_probability, rng=generator
        ),
        rng=generator,
    )


def _coerce_rng(rng: random.Random | int | None) -> random.Random:
    if rng is None:
        return random.Random()
    if isinstance(rng, random.Random):
        return rng
    return random.Random(rng)
