"""Barabási–Albert preferential-attachment graphs.

The paper's synthetic inputs BA5000 … BA10000 are Barabási–Albert random
graphs with 5 000–10 000 vertices and roughly ``10 · n`` edges (each new
vertex attaches to ``m ≈ 10`` existing vertices), after which edge
probabilities are drawn uniformly at random from [0, 1].  This module
reimplements the model from scratch (no networkx dependency) with
deterministic seeding.
"""

from __future__ import annotations

import random

from ..deterministic.graph import Graph
from ..errors import ParameterError
from ..uncertain.builder import from_skeleton
from ..uncertain.graph import UncertainGraph
from .probabilities import ProbabilityModel, uniform_probabilities

__all__ = ["barabasi_albert_skeleton", "barabasi_albert_uncertain"]


def barabasi_albert_skeleton(
    n: int,
    attachment: int,
    *,
    rng: random.Random | int | None = None,
) -> Graph:
    """Generate a Barabási–Albert graph with ``n`` vertices.

    The construction starts from a small seed clique of ``attachment + 1``
    vertices; every subsequent vertex attaches to ``attachment`` distinct
    existing vertices chosen with probability proportional to their current
    degree (implemented with the standard repeated-endpoint urn).

    Parameters
    ----------
    n:
        Total number of vertices (labelled ``1..n``).
    attachment:
        Number of edges each new vertex creates (``m`` in the model).
    rng:
        Seed or :class:`random.Random` for reproducibility.

    Raises
    ------
    ParameterError
        If ``n`` or ``attachment`` is non-positive or ``attachment >= n``.
    """
    if n <= 0:
        raise ParameterError(f"n must be positive, got {n}")
    if attachment <= 0:
        raise ParameterError(f"attachment must be positive, got {attachment}")
    if attachment >= n:
        raise ParameterError(
            f"attachment ({attachment}) must be smaller than n ({n})"
        )
    generator = _coerce_rng(rng)

    graph = Graph(vertices=range(1, n + 1))
    # Seed: a clique on the first attachment + 1 vertices so every early
    # vertex has non-zero degree.
    seed_size = attachment + 1
    urn: list[int] = []
    for u in range(1, seed_size + 1):
        for v in range(u + 1, seed_size + 1):
            graph.add_edge(u, v)
            urn.append(u)
            urn.append(v)

    for new_vertex in range(seed_size + 1, n + 1):
        targets: set[int] = set()
        while len(targets) < attachment:
            candidate = urn[generator.randrange(len(urn))]
            targets.add(candidate)
        for target in targets:
            graph.add_edge(new_vertex, target)
            urn.append(new_vertex)
            urn.append(target)
    return graph


def barabasi_albert_uncertain(
    n: int,
    attachment: int = 10,
    *,
    probability_model: ProbabilityModel | None = None,
    rng: random.Random | int | None = None,
) -> UncertainGraph:
    """Generate an uncertain Barabási–Albert graph as used in the paper.

    Defaults reproduce the paper's configuration: ``attachment = 10`` (so
    BA5000 has ≈ 50 000 edges) and uniformly random edge probabilities.
    A single ``rng`` seeds both the topology and the probabilities so one
    integer reproduces the whole dataset.

    >>> g = barabasi_albert_uncertain(100, 3, rng=7)
    >>> g.num_vertices
    100
    """
    generator = _coerce_rng(rng)
    skeleton = barabasi_albert_skeleton(n, attachment, rng=generator)
    model = probability_model or uniform_probabilities(rng=generator)
    return from_skeleton(skeleton, model)


def _coerce_rng(rng: random.Random | int | None) -> random.Random:
    if rng is None:
        return random.Random()
    if isinstance(rng, random.Random):
        return rng
    return random.Random(rng)
