"""Peer-to-peer overlay network generator (Gnutella analog).

The p2p-Gnutella snapshots used in the paper (6 301–10 879 hosts,
20 000–40 000 links) are overlay networks with a distinctive structure: low
clustering (neighbours of a host are rarely neighbours of each other),
moderate and fairly homogeneous degrees for the core of well-connected
ultrapeers, and a periphery of leaf hosts with very few links.  Because
clustering is low these graphs contain almost no large cliques, which is why
they are cheap inputs in Figures 2–3.  The generator reproduces exactly
those traits.
"""

from __future__ import annotations

import random

from ..errors import ParameterError
from ..uncertain.graph import UncertainGraph
from .probabilities import uniform_probabilities

__all__ = ["p2p_like_graph"]


def p2p_like_graph(
    num_hosts: int,
    *,
    core_fraction: float = 0.35,
    core_degree: int = 8,
    leaf_degree: int = 2,
    rng: random.Random | int | None = None,
) -> UncertainGraph:
    """Generate a Gnutella-style uncertain overlay network.

    Parameters
    ----------
    num_hosts:
        Number of host vertices (labelled ``1..num_hosts``).
    core_fraction:
        Fraction of hosts acting as well-connected ultrapeers.
    core_degree:
        Target number of links each core host initiates to other core hosts.
    leaf_degree:
        Number of links each leaf host initiates to core hosts.
    rng:
        Seed or :class:`random.Random`.

    The core is wired as a sparse random graph (low clustering by
    construction) and each leaf attaches to a few random core hosts.  Edge
    probabilities are uniform random in (0, 1], matching the paper's
    semi-synthetic construction.

    Raises
    ------
    ParameterError
        If parameters are out of range.

    >>> g = p2p_like_graph(300, rng=3)
    >>> g.num_vertices
    300
    """
    if num_hosts <= 2:
        raise ParameterError(f"num_hosts must exceed 2, got {num_hosts}")
    if not 0.0 < core_fraction <= 1.0:
        raise ParameterError(f"core_fraction must be in (0, 1], got {core_fraction}")
    if core_degree <= 0 or leaf_degree < 0:
        raise ParameterError("core_degree must be positive and leaf_degree non-negative")
    generator = _coerce_rng(rng)
    probability = uniform_probabilities(rng=generator)

    core_count = max(2, int(num_hosts * core_fraction))
    core = list(range(1, core_count + 1))
    leaves = list(range(core_count + 1, num_hosts + 1))
    graph = UncertainGraph(vertices=range(1, num_hosts + 1))

    # Core overlay: each core host opens connections to random core peers.
    for host in core:
        links = 0
        attempts = 0
        while links < core_degree and attempts < 10 * core_degree:
            peer = core[generator.randrange(len(core))]
            attempts += 1
            if peer == host or graph.has_edge(host, peer):
                continue
            graph.add_edge(host, peer, probability(host, peer))
            links += 1

    # Leaves attach to a few random core hosts.
    for leaf in leaves:
        targets = generator.sample(core, min(leaf_degree, len(core))) if leaf_degree else []
        for target in targets:
            if not graph.has_edge(leaf, target):
                graph.add_edge(leaf, target, probability(leaf, target))
    return graph


def _coerce_rng(rng: random.Random | int | None) -> random.Random:
    if rng is None:
        return random.Random()
    if isinstance(rng, random.Random):
        return rng
    return random.Random(rng)
