"""Graph generators and edge-probability models.

Everything needed to build the paper's synthetic inputs (Barabási–Albert),
semi-synthetic inputs (SNAP-like skeletons with random probabilities) and
structure-matched analogs of its real uncertain datasets (PPI, DBLP), plus
test-oriented generators (Erdős–Rényi, planted cliques) and the extremal
constructions of Section 3 (re-exported from :mod:`repro.core.bounds`).
"""

from ..core.bounds import extremal_uncertain_graph, moon_moser_graph
from .barabasi_albert import barabasi_albert_skeleton, barabasi_albert_uncertain
from .erdos_renyi import (
    erdos_renyi_skeleton,
    erdos_renyi_uncertain,
    random_uncertain_graph,
)
from .p2p import p2p_like_graph
from .planted import planted_clique_graph, planted_partition_graph
from .ppi import ppi_like_graph
from .probabilities import (
    beta_probabilities,
    bimodal_confidence_probabilities,
    coauthorship_probabilities_from_counts,
    coauthorship_probability,
    constant_probability,
    uniform_probabilities,
)
from .social import collaboration_graph, wiki_vote_like_graph

__all__ = [
    "barabasi_albert_skeleton",
    "barabasi_albert_uncertain",
    "erdos_renyi_skeleton",
    "erdos_renyi_uncertain",
    "random_uncertain_graph",
    "collaboration_graph",
    "wiki_vote_like_graph",
    "ppi_like_graph",
    "p2p_like_graph",
    "planted_clique_graph",
    "planted_partition_graph",
    "extremal_uncertain_graph",
    "moon_moser_graph",
    "constant_probability",
    "uniform_probabilities",
    "beta_probabilities",
    "bimodal_confidence_probabilities",
    "coauthorship_probability",
    "coauthorship_probabilities_from_counts",
]
