"""Edge probability assignment models.

The paper builds its uncertain graphs in three ways:

* real probabilities from the source data (the STRING-derived PPI network);
* the DBLP co-authorship model ``p = 1 − e^{−c/10}`` where ``c`` is the
  number of co-authored papers;
* probabilities drawn uniformly at random for the "semi-synthetic" SNAP and
  Barabási–Albert graphs.

Every model here is a callable factory returning a function
``(u, v) -> probability`` so it can be plugged into
:func:`repro.uncertain.builder.from_skeleton` and the generators.
Deterministic seeding is supported everywhere so datasets are reproducible.
"""

from __future__ import annotations

import math
import random
from collections.abc import Callable, Hashable

from ..errors import ParameterError
from ..uncertain.graph import validate_probability

__all__ = [
    "constant_probability",
    "uniform_probabilities",
    "beta_probabilities",
    "bimodal_confidence_probabilities",
    "coauthorship_probability",
    "coauthorship_probabilities_from_counts",
]

Vertex = Hashable
ProbabilityModel = Callable[[Vertex, Vertex], float]


def constant_probability(p: float) -> ProbabilityModel:
    """Every edge receives the same probability ``p``.

    >>> model = constant_probability(0.7)
    >>> model("a", "b")
    0.7
    """
    p = validate_probability(p)
    return lambda u, v: p


def uniform_probabilities(
    low: float = 0.0,
    high: float = 1.0,
    *,
    rng: random.Random | int | None = None,
) -> ProbabilityModel:
    """Probabilities drawn uniformly at random from ``(low, high]``.

    This is the paper's semi-synthetic construction ("edge probabilities
    assigned uniformly at random from [0, 1]").  Draws of exactly 0 are
    re-rolled because an impossible edge is equivalent to no edge.

    Parameters
    ----------
    low, high:
        Bounds of the uniform range; must satisfy ``0 ≤ low < high ≤ 1``.
    rng:
        Seed or :class:`random.Random` for reproducibility.
    """
    if not 0.0 <= low < high <= 1.0:
        raise ParameterError(
            f"require 0 <= low < high <= 1, got low={low}, high={high}"
        )
    generator = _coerce_rng(rng)

    def model(u: Vertex, v: Vertex) -> float:
        p = generator.uniform(low, high)
        while p <= 0.0:
            p = generator.uniform(low, high)
        return min(p, 1.0)

    return model


def beta_probabilities(
    alpha_shape: float,
    beta_shape: float,
    *,
    rng: random.Random | int | None = None,
) -> ProbabilityModel:
    """Probabilities drawn from a Beta(α, β) distribution, clipped to (0, 1].

    Useful for modelling skewed confidence scores (e.g. mostly-low-confidence
    interaction networks use ``Beta(2, 5)``; mostly-high-confidence curated
    networks use ``Beta(5, 2)``).
    """
    if alpha_shape <= 0 or beta_shape <= 0:
        raise ParameterError("beta distribution shapes must be positive")
    generator = _coerce_rng(rng)

    def model(u: Vertex, v: Vertex) -> float:
        p = generator.betavariate(alpha_shape, beta_shape)
        return min(max(p, 1e-9), 1.0)

    return model


def bimodal_confidence_probabilities(
    *,
    high_fraction: float = 0.4,
    high_range: tuple[float, float] = (0.7, 0.99),
    low_range: tuple[float, float] = (0.15, 0.5),
    rng: random.Random | int | None = None,
) -> ProbabilityModel:
    """A two-regime confidence model typical of protein-interaction databases.

    A fraction ``high_fraction`` of edges are high-confidence (experimentally
    validated interactions) and the rest are low-confidence (predicted
    interactions).  This mirrors the STRING confidence-score distribution
    that underlies the paper's PPI dataset.
    """
    if not 0.0 <= high_fraction <= 1.0:
        raise ParameterError(f"high_fraction must be in [0, 1], got {high_fraction}")
    for name, (lo, hi) in (("high_range", high_range), ("low_range", low_range)):
        if not 0.0 < lo < hi <= 1.0:
            raise ParameterError(f"{name} must satisfy 0 < lo < hi <= 1, got ({lo}, {hi})")
    generator = _coerce_rng(rng)

    def model(u: Vertex, v: Vertex) -> float:
        if generator.random() < high_fraction:
            return generator.uniform(*high_range)
        return generator.uniform(*low_range)

    return model


def coauthorship_probability(paper_count: int, *, scale: float = 10.0) -> float:
    """Return the DBLP co-authorship probability ``1 − e^{−c/scale}``.

    The paper uses ``scale = 10``: two authors with ``c`` joint papers are
    connected with probability ``1 − e^{−c/10}``.

    >>> round(coauthorship_probability(1), 4)
    0.0952
    >>> round(coauthorship_probability(10), 4)
    0.6321
    """
    if paper_count < 0:
        raise ParameterError(f"paper_count must be non-negative, got {paper_count}")
    if scale <= 0:
        raise ParameterError(f"scale must be positive, got {scale}")
    if paper_count == 0:
        # No joint papers means no edge; callers should simply not add one,
        # but returning the smallest legal probability keeps the function
        # total for property-based tests.
        return 1e-9
    return 1.0 - math.exp(-paper_count / scale)


def coauthorship_probabilities_from_counts(
    counts: dict[tuple[Vertex, Vertex], int], *, scale: float = 10.0
) -> ProbabilityModel:
    """Build a probability model from a co-authorship count table.

    ``counts`` maps (unordered) vertex pairs to the number of co-authored
    papers; lookups normalise the pair ordering.  Pairs missing from the
    table default to a single joint paper.
    """

    def model(u: Vertex, v: Vertex) -> float:
        c = counts.get((u, v), counts.get((v, u), 1))
        return coauthorship_probability(c, scale=scale)

    return model


def _coerce_rng(rng: random.Random | int | None) -> random.Random:
    """Normalise the ``rng`` argument accepted throughout the generators."""
    if rng is None:
        return random.Random()
    if isinstance(rng, random.Random):
        return rng
    return random.Random(rng)
