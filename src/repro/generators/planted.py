"""Planted-clique generators.

A *planted* uncertain graph hides a small number of known high-probability
cliques inside a noisy background.  These inputs make correctness visible:
the planted cliques must reappear in the enumerator output (possibly merged
into larger maximal cliques when the background happens to extend them),
which the integration tests and the quickstart example both exercise.
"""

from __future__ import annotations

import random
from collections.abc import Sequence

from ..errors import ParameterError
from ..uncertain.graph import UncertainGraph

__all__ = ["planted_clique_graph", "planted_partition_graph"]


def planted_clique_graph(
    num_vertices: int,
    clique_sizes: Sequence[int],
    *,
    clique_probability: float = 0.95,
    background_density: float = 0.02,
    background_probability_range: tuple[float, float] = (0.05, 0.4),
    rng: random.Random | int | None = None,
) -> tuple[UncertainGraph, list[frozenset]]:
    """Generate a noisy uncertain graph with known planted cliques.

    Parameters
    ----------
    num_vertices:
        Total number of vertices (labelled ``1..num_vertices``).
    clique_sizes:
        Sizes of the cliques to plant; they are placed on disjoint vertex
        ranges starting from vertex 1.
    clique_probability:
        Probability assigned to every edge inside a planted clique.
    background_density:
        Probability that any other vertex pair receives a background edge.
    background_probability_range:
        Range of the (low) probabilities of background edges.
    rng:
        Seed or :class:`random.Random`.

    Returns
    -------
    tuple(UncertainGraph, list[frozenset])
        The generated graph and the list of planted cliques (vertex sets).

    Raises
    ------
    ParameterError
        If the planted cliques do not fit into ``num_vertices`` or any
        parameter is out of range.
    """
    if num_vertices <= 0:
        raise ParameterError(f"num_vertices must be positive, got {num_vertices}")
    if any(size < 2 for size in clique_sizes):
        raise ParameterError("every planted clique must have at least 2 vertices")
    if sum(clique_sizes) > num_vertices:
        raise ParameterError(
            f"planted cliques need {sum(clique_sizes)} vertices but only "
            f"{num_vertices} are available"
        )
    if not 0.0 < clique_probability <= 1.0:
        raise ParameterError(
            f"clique_probability must be in (0, 1], got {clique_probability}"
        )
    if not 0.0 <= background_density <= 1.0:
        raise ParameterError(
            f"background_density must be in [0, 1], got {background_density}"
        )
    lo, hi = background_probability_range
    if not 0.0 < lo <= hi <= 1.0:
        raise ParameterError(
            f"background_probability_range must satisfy 0 < lo <= hi <= 1, got ({lo}, {hi})"
        )
    generator = _coerce_rng(rng)

    graph = UncertainGraph(vertices=range(1, num_vertices + 1))
    planted: list[frozenset] = []
    next_vertex = 1
    for size in clique_sizes:
        members = list(range(next_vertex, next_vertex + size))
        next_vertex += size
        planted.append(frozenset(members))
        for i, a in enumerate(members):
            for b in members[i + 1 :]:
                graph.add_edge(a, b, clique_probability)

    if background_density > 0:
        for u in range(1, num_vertices + 1):
            for v in range(u + 1, num_vertices + 1):
                if graph.has_edge(u, v):
                    continue
                if generator.random() < background_density:
                    graph.add_edge(u, v, generator.uniform(lo, hi))
    return graph, planted


def planted_partition_graph(
    communities: int,
    community_size: int,
    *,
    intra_probability: float = 0.8,
    intra_density: float = 0.9,
    inter_probability: float = 0.2,
    inter_density: float = 0.05,
    rng: random.Random | int | None = None,
) -> UncertainGraph:
    """Generate a planted-partition uncertain graph (dense communities, sparse cuts).

    Each community is a near-clique with high edge probabilities; pairs in
    different communities are connected rarely and with low probability.
    This is the structure the paper's introduction motivates (robust
    communities in a social or biological network).

    Raises
    ------
    ParameterError
        If sizes are non-positive or densities/probabilities out of range.
    """
    if communities <= 0 or community_size <= 0:
        raise ParameterError("communities and community_size must be positive")
    for name, value in (
        ("intra_probability", intra_probability),
        ("inter_probability", inter_probability),
    ):
        if not 0.0 < value <= 1.0:
            raise ParameterError(f"{name} must be in (0, 1], got {value}")
    for name, value in (("intra_density", intra_density), ("inter_density", inter_density)):
        if not 0.0 <= value <= 1.0:
            raise ParameterError(f"{name} must be in [0, 1], got {value}")
    generator = _coerce_rng(rng)

    total = communities * community_size
    graph = UncertainGraph(vertices=range(1, total + 1))
    community_of = {v: (v - 1) // community_size for v in range(1, total + 1)}
    for u in range(1, total + 1):
        for v in range(u + 1, total + 1):
            same = community_of[u] == community_of[v]
            density = intra_density if same else inter_density
            if generator.random() < density:
                base = intra_probability if same else inter_probability
                jitter = generator.uniform(-0.05, 0.05)
                probability = min(1.0, max(1e-6, base + jitter))
                graph.add_edge(u, v, probability)
    return graph


def _coerce_rng(rng: random.Random | int | None) -> random.Random:
    if rng is None:
        return random.Random()
    if isinstance(rng, random.Random):
        return rng
    return random.Random(rng)
