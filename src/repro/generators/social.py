"""Collaboration-network and social-network generators.

These generators build structure-matched synthetic analogs of the paper's
real and semi-synthetic social datasets:

* :func:`collaboration_graph` — a DBLP / ca-GrQc style co-authorship
  network.  Authors are grouped into overlapping "papers"; every author pair
  sharing a paper is connected, and the edge probability follows the paper's
  DBLP model ``1 − e^{−c/10}`` where ``c`` is the number of shared papers.
  Because each paper contributes a clique, the graph has the high clustering
  and the many small-to-medium cliques that drive the DBLP/ca-GrQc results
  (Figures 5c and 6c).
* :func:`wiki_vote_like_graph` — a denser, hub-heavy graph mimicking the
  who-votes-for-whom Wikipedia adminship network: a small set of popular
  candidates receives many edges from a large set of voters, plus a noisy
  voter–voter background.  Probabilities are uniform random, as in the
  paper's semi-synthetic construction.
"""

from __future__ import annotations

import random
from collections import defaultdict

from ..errors import ParameterError
from ..uncertain.graph import UncertainGraph
from .probabilities import coauthorship_probability, uniform_probabilities

__all__ = ["collaboration_graph", "wiki_vote_like_graph"]


def collaboration_graph(
    num_authors: int,
    num_papers: int,
    *,
    min_authors_per_paper: int = 2,
    max_authors_per_paper: int = 6,
    community_count: int | None = None,
    sequel_probability: float = 0.0,
    coauthorship_scale: float = 10.0,
    probability_model=None,
    rng: random.Random | int | None = None,
) -> UncertainGraph:
    """Generate a co-authorship uncertain graph (DBLP / ca-GrQc analog).

    Authors are partitioned into research communities; each paper draws its
    author list mostly from a single community (with a small chance of a
    cross-community collaborator), which yields the overlapping-clique,
    high-clustering structure of real collaboration networks.  The edge
    probability between two authors with ``c`` joint papers is
    ``1 − e^{−c/coauthorship_scale}`` — exactly the model the paper uses for
    its DBLP dataset.

    Parameters
    ----------
    num_authors:
        Number of author vertices (labelled ``1..num_authors``).
    num_papers:
        Number of papers to generate.
    min_authors_per_paper, max_authors_per_paper:
        Bounds on the author-list size of each paper.
    community_count:
        Number of communities; defaults to ``max(1, num_authors // 50)``.
    sequel_probability:
        Probability that a paper reuses the author list of the previous
        paper (a "paper series" by the same group).  This produces the heavy
        tail of joint-paper counts — and therefore of edge probabilities —
        seen in real DBLP data, where long-running collaborations have
        dozens of joint papers.
    coauthorship_scale:
        The ``scale`` of the co-authorship probability model.
    probability_model:
        Optional callable ``(u, v) -> probability`` overriding the
        co-authorship probability model.  The paper's "semi-synthetic"
        collaboration graphs (e.g. ca-GrQc) keep the co-authorship topology
        but assign probabilities uniformly at random — pass
        :func:`repro.generators.probabilities.uniform_probabilities` to
        reproduce that construction.
    rng:
        Seed or :class:`random.Random`.

    Raises
    ------
    ParameterError
        If any size parameter is non-positive or inconsistent.
    """
    if num_authors <= 0:
        raise ParameterError(f"num_authors must be positive, got {num_authors}")
    if num_papers < 0:
        raise ParameterError(f"num_papers must be non-negative, got {num_papers}")
    if not 2 <= min_authors_per_paper <= max_authors_per_paper:
        raise ParameterError(
            "require 2 <= min_authors_per_paper <= max_authors_per_paper, got "
            f"{min_authors_per_paper}..{max_authors_per_paper}"
        )
    if not 0.0 <= sequel_probability < 1.0:
        raise ParameterError(
            f"sequel_probability must be in [0, 1), got {sequel_probability}"
        )
    generator = _coerce_rng(rng)
    communities = community_count or max(1, num_authors // 50)

    # Assign authors to communities round-robin with a shuffle so community
    # membership is random but sizes are balanced.
    authors = list(range(1, num_authors + 1))
    generator.shuffle(authors)
    community_of: dict[int, int] = {
        author: index % communities for index, author in enumerate(authors)
    }
    members: dict[int, list[int]] = defaultdict(list)
    for author, community in community_of.items():
        members[community].append(author)

    joint_papers: dict[tuple[int, int], int] = defaultdict(int)
    previous_authors: list[int] = []
    for _ in range(num_papers):
        if previous_authors and generator.random() < sequel_probability:
            # A follow-up paper by the same group (heavy tail of joint counts).
            paper_authors = list(previous_authors)
        else:
            community = generator.randrange(communities)
            pool = members[community]
            size = generator.randint(
                min_authors_per_paper, min(max_authors_per_paper, max(2, len(pool)))
            )
            if len(pool) < size:
                paper_authors = list(pool)
            else:
                paper_authors = generator.sample(pool, size)
            # Occasionally bring in a cross-community collaborator.
            if generator.random() < 0.15 and num_authors > len(paper_authors):
                outsider = generator.randint(1, num_authors)
                if outsider not in paper_authors:
                    paper_authors.append(outsider)
        previous_authors = paper_authors
        for i, a in enumerate(paper_authors):
            for b in paper_authors[i + 1 :]:
                key = (a, b) if a < b else (b, a)
                joint_papers[key] += 1

    graph = UncertainGraph(vertices=range(1, num_authors + 1))
    for (a, b), count in joint_papers.items():
        if probability_model is not None:
            probability = probability_model(a, b)
        else:
            probability = coauthorship_probability(count, scale=coauthorship_scale)
        graph.add_edge(a, b, probability)
    return graph


def wiki_vote_like_graph(
    num_voters: int,
    num_candidates: int,
    *,
    votes_per_voter: int = 12,
    background_edge_probability: float = 0.0005,
    rng: random.Random | int | None = None,
) -> UncertainGraph:
    """Generate a Wikipedia-adminship-vote style uncertain graph.

    A small candidate set receives many incoming votes from a much larger
    voter population (preferentially towards already-popular candidates,
    producing the heavy-tailed in-degree of the real wiki-Vote graph), and a
    sparse random voter–voter background adds the long tail of low-degree
    edges.  Edge probabilities are uniform random in (0, 1], matching the
    paper's semi-synthetic construction.

    Raises
    ------
    ParameterError
        If counts are non-positive or ``votes_per_voter`` exceeds the number
        of candidates.
    """
    if num_voters <= 0 or num_candidates <= 0:
        raise ParameterError("num_voters and num_candidates must be positive")
    if votes_per_voter <= 0:
        raise ParameterError(f"votes_per_voter must be positive, got {votes_per_voter}")
    if votes_per_voter > num_candidates:
        raise ParameterError(
            f"votes_per_voter ({votes_per_voter}) cannot exceed "
            f"num_candidates ({num_candidates})"
        )
    if not 0.0 <= background_edge_probability <= 1.0:
        raise ParameterError(
            "background_edge_probability must be in [0, 1], got "
            f"{background_edge_probability}"
        )
    generator = _coerce_rng(rng)
    probability = uniform_probabilities(rng=generator)

    total = num_voters + num_candidates
    candidates = list(range(1, num_candidates + 1))
    voters = list(range(num_candidates + 1, total + 1))
    graph = UncertainGraph(vertices=range(1, total + 1))

    # Preferential urn over candidates (popular candidates attract votes).
    urn = list(candidates)
    for voter in voters:
        chosen: set[int] = set()
        attempts = 0
        while len(chosen) < votes_per_voter and attempts < 20 * votes_per_voter:
            candidate = urn[generator.randrange(len(urn))]
            attempts += 1
            if candidate in chosen:
                continue
            chosen.add(candidate)
            urn.append(candidate)
        for candidate in chosen:
            graph.add_edge(voter, candidate, probability(voter, candidate))

    # Candidate–candidate edges: candidates also vote for each other densely.
    for i, a in enumerate(candidates):
        for b in candidates[i + 1 :]:
            if generator.random() < 0.2:
                graph.add_edge(a, b, probability(a, b))

    # Sparse voter–voter background.
    if background_edge_probability > 0:
        expected = background_edge_probability * len(voters) * (len(voters) - 1) / 2
        samples = int(expected)
        for _ in range(samples):
            a, b = generator.sample(voters, 2)
            if not graph.has_edge(a, b):
                graph.add_edge(a, b, probability(a, b))
    return graph


def _coerce_rng(rng: random.Random | int | None) -> random.Random:
    if rng is None:
        return random.Random()
    if isinstance(rng, random.Random):
        return rng
    return random.Random(rng)
