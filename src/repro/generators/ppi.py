"""Protein–protein interaction (PPI) network generator.

The paper's PPI dataset is the fruit-fly interaction network obtained by
integrating BioGRID with STRING confidence scores: 3 751 proteins and only
3 692 scored interactions — an extremely sparse graph whose components are
small protein complexes plus a few hub proteins.  The generator below
reproduces that regime:

* a collection of small, densely connected *complexes* (the groups of
  proteins the paper's introduction wants to discover as α-maximal cliques);
* a set of *hub* proteins attached to many complexes with lower-confidence
  edges (promiscuous binders / sticky proteins);
* a large population of proteins with zero or one observed interaction,
  which keeps the average degree below 2 exactly like the real dataset;
* bimodal confidence scores (validated vs. predicted interactions).
"""

from __future__ import annotations

import random

from ..errors import ParameterError
from ..uncertain.graph import UncertainGraph
from .probabilities import bimodal_confidence_probabilities

__all__ = ["ppi_like_graph"]


def ppi_like_graph(
    num_proteins: int,
    *,
    num_complexes: int | None = None,
    complex_size_range: tuple[int, int] = (3, 6),
    num_hubs: int | None = None,
    hub_attachments: int = 8,
    singleton_fraction: float = 0.55,
    rng: random.Random | int | None = None,
) -> UncertainGraph:
    """Generate a sparse PPI-style uncertain graph.

    Parameters
    ----------
    num_proteins:
        Total number of protein vertices (labelled ``1..num_proteins``).
    num_complexes:
        Number of protein complexes (small near-cliques).  Defaults to a
        value that keeps the edge count close to the vertex count, matching
        the fruit-fly dataset (3 751 vertices / 3 692 edges).
    complex_size_range:
        Inclusive bounds on the size of each complex.
    num_hubs:
        Number of hub proteins.  Defaults to ``max(1, num_proteins // 200)``.
    hub_attachments:
        Number of complex members each hub connects to.
    singleton_fraction:
        Fraction of proteins that are reserved as isolated / degree-≤1
        proteins (never placed in complexes), reproducing the very low
        average degree of the real network.
    rng:
        Seed or :class:`random.Random`.

    Raises
    ------
    ParameterError
        If parameters are inconsistent.

    >>> g = ppi_like_graph(500, rng=11)
    >>> g.num_vertices
    500
    """
    if num_proteins <= 0:
        raise ParameterError(f"num_proteins must be positive, got {num_proteins}")
    lo, hi = complex_size_range
    if not 2 <= lo <= hi:
        raise ParameterError(
            f"complex_size_range must satisfy 2 <= lo <= hi, got ({lo}, {hi})"
        )
    if not 0.0 <= singleton_fraction < 1.0:
        raise ParameterError(
            f"singleton_fraction must be in [0, 1), got {singleton_fraction}"
        )
    generator = _coerce_rng(rng)
    confidence = bimodal_confidence_probabilities(rng=generator)

    graph = UncertainGraph(vertices=range(1, num_proteins + 1))

    # Proteins that may participate in complexes.
    interactive_count = max(2, int(num_proteins * (1.0 - singleton_fraction)))
    interactive = list(range(1, interactive_count + 1))

    hubs = num_hubs if num_hubs is not None else max(1, num_proteins // 200)
    hubs = min(hubs, len(interactive))
    hub_vertices = interactive[:hubs]
    complex_pool = interactive[hubs:] or interactive

    average_complex_size = (lo + hi) / 2
    edges_per_complex = average_complex_size * (average_complex_size - 1) / 2
    if num_complexes is None:
        # Aim for roughly one edge per vertex overall, like the real dataset.
        target_edges = num_proteins
        hub_edges = hubs * hub_attachments
        num_complexes = max(1, int((target_edges - hub_edges) / max(edges_per_complex, 1)))

    for _ in range(num_complexes):
        size = generator.randint(lo, hi)
        if len(complex_pool) < size:
            members = list(complex_pool)
        else:
            members = generator.sample(complex_pool, size)
        for i, a in enumerate(members):
            for b in members[i + 1 :]:
                if not graph.has_edge(a, b):
                    graph.add_edge(a, b, confidence(a, b))

    # Hubs attach to random interactive proteins with low-confidence edges.
    for hub in hub_vertices:
        attachments = min(hub_attachments, len(complex_pool))
        for target in generator.sample(complex_pool, attachments):
            if target != hub and not graph.has_edge(hub, target):
                graph.add_edge(hub, target, generator.uniform(0.1, 0.5))

    # A sprinkle of singleton interactions among the reserved proteins.
    reserved = list(range(interactive_count + 1, num_proteins + 1))
    for protein in reserved:
        if generator.random() < 0.3 and len(interactive) >= 1:
            partner = generator.choice(interactive)
            if partner != protein and not graph.has_edge(protein, partner):
                graph.add_edge(protein, partner, confidence(protein, partner))
    return graph


def _coerce_rng(rng: random.Random | int | None) -> random.Random:
    if rng is None:
        return random.Random()
    if isinstance(rng, random.Random):
        return rng
    return random.Random(rng)
