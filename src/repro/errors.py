"""Exception hierarchy for the :mod:`repro` package.

All errors raised by the library derive from :class:`ReproError` so callers
can catch library failures with a single ``except`` clause while still being
able to distinguish structural graph problems from bad algorithm parameters.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "GraphError",
    "EdgeError",
    "VertexError",
    "ProbabilityError",
    "ParameterError",
    "DatasetError",
    "FormatError",
    "ServiceError",
    "DegradedError",
    "StoreError",
    "GraphNotFoundError",
    "JobError",
    "JobNotFoundError",
]


class ReproError(Exception):
    """Base class for every exception raised by the :mod:`repro` library."""


class GraphError(ReproError):
    """A structural problem with a graph (deterministic or uncertain)."""


class VertexError(GraphError):
    """An operation referenced a vertex that does not exist in the graph."""


class EdgeError(GraphError):
    """An operation referenced an invalid or missing edge.

    Raised, for example, when adding a self-loop or querying the probability
    of an edge that is not present in the uncertain graph.
    """


class ProbabilityError(ReproError):
    """An edge probability or probability threshold is outside its domain.

    Edge probabilities must lie in ``(0, 1]`` and the threshold ``alpha``
    used by the enumeration algorithms must lie in ``(0, 1]`` as well.
    """


class ParameterError(ReproError):
    """An algorithm parameter (size threshold, k, sample count, ...) is invalid."""


class DatasetError(ReproError):
    """A named dataset could not be located or constructed."""


class FormatError(ReproError):
    """An input file or serialized payload does not follow the expected format."""


class StoreError(ReproError):
    """A graph-store operation failed.

    Raised when a graph reference (name or fingerprint) does not resolve,
    a registration name is invalid or already taken by a different graph,
    or the store's graph budget is exhausted by pinned entries.
    """


class GraphNotFoundError(StoreError):
    """A graph reference (name or fingerprint) resolved to no stored graph.

    The service layer maps this to HTTP 404, every other library error to
    400 — which is why "does not exist" is a distinct type from the other
    store failures.
    """


class ServiceError(ReproError):
    """A service request failed at the transport or protocol layer.

    Raised by the remote client when the server is unreachable, the
    connection drops, or a response is not a well-formed wire payload.
    Application-level failures (bad parameters, malformed requests) are
    re-raised client-side as their original exception types instead.
    """


class DegradedError(ServiceError):
    """A distributed run lost every worker it could retry on.

    Raised by the fleet coordinator (:mod:`repro.distributed`) when a shard
    exhausts its retry budget because no healthy worker remains to take it.
    It subclasses :class:`ServiceError` because the underlying causes are
    transport-level worker failures, but it is a distinct type so callers
    can tell "the whole fleet degraded away" from a single failed call.
    """


class JobError(ReproError):
    """An asynchronous job operation failed.

    Raised for invalid job interactions: waiting on a job whose streamed
    pages were already released, resuming a result stream below the
    released cursor floor, or timing out while awaiting a terminal state.
    """


class JobNotFoundError(JobError):
    """A job id resolved to no registered job.

    Like :class:`GraphNotFoundError`, the service layer maps this to HTTP
    404 (jobs are evicted from the registry after a retention window, so
    an unknown id is an expected condition, not a protocol violation).
    """
