"""Result containers for α-maximal clique enumeration.

Every enumerator in :mod:`repro.core` returns an
:class:`EnumerationResult`, which records the emitted cliques together with
search-effort counters (recursive calls, candidate extensions examined) and
wall-clock time.  The counters make the Figure 1 / Figure 4 style analyses
("runtime is proportional to output size", "MULE explores far fewer states
than DFS-NOIP") reproducible without relying solely on noisy timings.
"""

from __future__ import annotations

import time
from collections import Counter
from collections.abc import Hashable, Iterable, Iterator
from dataclasses import dataclass, field

from ..uncertain.graph import UncertainGraph

__all__ = [
    "CliqueRecord",
    "EnumerationResult",
    "SearchStatistics",
    "Stopwatch",
    "rank_by_probability",
]

Vertex = Hashable
Clique = frozenset


@dataclass(frozen=True, order=True)
class CliqueRecord:
    """One emitted α-maximal clique with its exact clique probability.

    Ordering is by (size, sorted members) so result listings are stable.
    """

    sort_key: tuple = field(init=False, repr=False, compare=True)
    vertices: Clique = field(compare=False)
    probability: float = field(compare=False)

    def __post_init__(self) -> None:
        members = tuple(sorted(self.vertices, key=repr))
        object.__setattr__(self, "sort_key", (len(members), members))

    @property
    def size(self) -> int:
        """Number of vertices in the clique."""
        return len(self.vertices)

    def as_tuple(self) -> tuple:
        """Return the sorted vertex tuple (useful for deterministic output)."""
        try:
            return tuple(sorted(self.vertices))
        except TypeError:
            return tuple(sorted(self.vertices, key=repr))


def rank_by_probability(records: Iterable[CliqueRecord], k: int) -> list[CliqueRecord]:
    """Return the ``k`` records of highest clique probability.

    Ties break by larger size, then lexicographically by vertex tuple, so
    the ranking is deterministic.  This is the one ranking used everywhere
    top-k order matters (:meth:`EnumerationResult.top_k_by_probability` and
    the session API's ``top_k`` dispatch), keeping their outputs identical
    by construction.
    """
    ranked = sorted(records, key=lambda r: (-r.probability, -r.size, r.as_tuple()))
    return ranked[:k]


@dataclass
class SearchStatistics:
    """Counters describing the work performed by an enumeration run."""

    recursive_calls: int = 0
    candidates_examined: int = 0
    probability_multiplications: int = 0
    maximality_checks: int = 0
    pruned_branches: int = 0

    def merge(self, other: "SearchStatistics") -> "SearchStatistics":
        """Return a new statistics object with component-wise sums."""
        return SearchStatistics(
            recursive_calls=self.recursive_calls + other.recursive_calls,
            candidates_examined=self.candidates_examined + other.candidates_examined,
            probability_multiplications=(
                self.probability_multiplications + other.probability_multiplications
            ),
            maximality_checks=self.maximality_checks + other.maximality_checks,
            pruned_branches=self.pruned_branches + other.pruned_branches,
        )


class Stopwatch:
    """A tiny context manager measuring elapsed wall-clock seconds."""

    def __init__(self) -> None:
        self.elapsed = 0.0
        self._start = 0.0

    def __enter__(self) -> "Stopwatch":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.elapsed = time.perf_counter() - self._start


class EnumerationResult:
    """The outcome of an α-maximal clique enumeration run.

    Attributes
    ----------
    algorithm:
        Name of the enumerator that produced the result (``"mule"``,
        ``"dfs-noip"``, ``"large-mule"``, ``"brute-force"``, ...).
    alpha:
        The probability threshold used.
    cliques:
        The emitted cliques as :class:`CliqueRecord` objects (sorted).
    statistics:
        Search-effort counters.
    elapsed_seconds:
        Wall-clock enumeration time.
    stop_reason:
        ``"completed"`` for a full enumeration, or the
        :class:`~repro.core.engine.controls.StopReason` that truncated the
        run (``"max-cliques"``, ``"time-budget"``).
    """

    def __init__(
        self,
        algorithm: str,
        alpha: float,
        cliques: Iterable[CliqueRecord],
        statistics: SearchStatistics | None = None,
        elapsed_seconds: float = 0.0,
        stop_reason: str = "completed",
    ) -> None:
        self.algorithm = algorithm
        self.alpha = alpha
        self.cliques: list[CliqueRecord] = sorted(cliques)
        self.statistics = statistics or SearchStatistics()
        self.elapsed_seconds = elapsed_seconds
        self.stop_reason = stop_reason

    @property
    def truncated(self) -> bool:
        """True when run controls stopped the enumeration before completion."""
        return self.stop_reason != "completed"

    # ------------------------------------------------------------------ #
    # Container protocol
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.cliques)

    def __iter__(self) -> Iterator[CliqueRecord]:
        return iter(self.cliques)

    def __contains__(self, vertices: Iterable[Vertex]) -> bool:
        target = frozenset(vertices)
        return any(record.vertices == target for record in self.cliques)

    # ------------------------------------------------------------------ #
    # Views
    # ------------------------------------------------------------------ #
    @property
    def num_cliques(self) -> int:
        """Number of α-maximal cliques found (the paper's "output size")."""
        return len(self.cliques)

    def vertex_sets(self) -> set[Clique]:
        """Return the emitted cliques as a set of frozensets."""
        return {record.vertices for record in self.cliques}

    def size_histogram(self) -> dict[int, int]:
        """Return a mapping clique size → number of cliques of that size."""
        counts = Counter(record.size for record in self.cliques)
        return dict(sorted(counts.items()))

    def largest(self) -> CliqueRecord | None:
        """Return a largest clique record, or ``None`` when no cliques exist."""
        return max(self.cliques, key=lambda r: r.size, default=None)

    def filter_minimum_size(self, size: int) -> "EnumerationResult":
        """Return a new result containing only cliques with at least ``size`` vertices."""
        return EnumerationResult(
            algorithm=self.algorithm,
            alpha=self.alpha,
            cliques=[r for r in self.cliques if r.size >= size],
            statistics=self.statistics,
            elapsed_seconds=self.elapsed_seconds,
            stop_reason=self.stop_reason,
        )

    def top_k_by_probability(self, k: int) -> list[CliqueRecord]:
        """Return the ``k`` cliques of highest clique probability (ties by size)."""
        return rank_by_probability(self.cliques, k)

    # ------------------------------------------------------------------ #
    # Verification
    # ------------------------------------------------------------------ #
    def verify(self, graph: UncertainGraph) -> None:
        """Raise ``AssertionError`` unless every emitted clique is α-maximal.

        The check recomputes every clique probability from scratch and tests
        extension by all outside vertices; it is O(output · n · |C|) and is
        intended for tests and sanity checks, not production use.
        """
        emitted = self.vertex_sets()
        assert len(emitted) == len(self.cliques), "duplicate cliques in output"
        for record in self.cliques:
            probability = graph.clique_probability(record.vertices)
            assert probability >= self.alpha, (
                f"{set(record.vertices)} has probability {probability} < α={self.alpha}"
            )
            assert abs(probability - record.probability) <= 1e-9 * max(1.0, probability), (
                f"recorded probability {record.probability} differs from exact {probability}"
            )
            for v in graph.vertices():
                if v in record.vertices:
                    continue
                extended = graph.clique_probability(set(record.vertices) | {v})
                assert extended < self.alpha, (
                    f"{set(record.vertices)} is not maximal: adding {v!r} keeps "
                    f"probability {extended} ≥ α={self.alpha}"
                )

    def summary(self) -> dict[str, object]:
        """Return a small dict suitable for tabular reporting in the benches."""
        return {
            "algorithm": self.algorithm,
            "alpha": self.alpha,
            "num_cliques": self.num_cliques,
            "elapsed_seconds": round(self.elapsed_seconds, 6),
            "recursive_calls": self.statistics.recursive_calls,
            "candidates_examined": self.statistics.candidates_examined,
        }

    def __repr__(self) -> str:
        return (
            f"EnumerationResult(algorithm={self.algorithm!r}, alpha={self.alpha}, "
            f"num_cliques={self.num_cliques}, elapsed={self.elapsed_seconds:.4f}s)"
        )
