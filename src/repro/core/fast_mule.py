"""FAST-MULE — the bitset-accelerated entry point for MULE.

Historically this module carried its own recursive bitmask implementation
while :mod:`repro.core.mule` followed the paper's pseudo-code with explicit
``I``/``X`` tuple sets.  The engine refactor promoted the bitmask
representation into the shared :class:`~repro.core.engine.compiled.CompiledGraph`
stage and the recursion into the iterative kernel, so **both** entry points
now route through the same engine and differ only in their recorded
algorithm label:

* vertices are relabelled to ``0..n-1`` and every neighborhood is stored as
  an **integer bitmask**, so the "candidates adjacent to the new vertex
  ``m`` and larger than ``m``" filter of ``GenerateI`` is two bitwise ANDs;
* candidate/exclusion *factors* are kept in flat ``dict``s keyed by vertex
  index, exactly mirroring the incremental maintenance of the paper;
* the search uses an explicit stack instead of recursion, so deep search
  paths never touch the interpreter recursion limit.

``fast_mule`` is kept as a stable public name (CLI, benchmarks and the
ablation studies reference it); the test suite asserts it remains
output-identical to :func:`repro.core.mule.mule`.  Both entry points are
thin delegates over :class:`repro.api.MiningSession` (compile-once caching,
uniform dispatch); only the recorded algorithm label differs from ``mule``.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterator

from ..api.request import EnumerationRequest
from ..api.session import MiningSession
from ..uncertain.graph import UncertainGraph
from .engine.controls import RunControls, RunReport
from .result import EnumerationResult, SearchStatistics

__all__ = ["fast_mule", "iter_alpha_maximal_cliques_fast"]

Vertex = Hashable


def iter_alpha_maximal_cliques_fast(
    graph: UncertainGraph,
    alpha: float,
    *,
    prune_edges: bool = True,
    statistics: SearchStatistics | None = None,
    controls: RunControls | None = None,
    report: RunReport | None = None,
) -> Iterator[tuple[frozenset, float]]:
    """Lazily yield every α-maximal clique using the bitset-accelerated search.

    Parameters mirror :func:`repro.core.mule.iter_alpha_maximal_cliques`.
    """
    request = EnumerationRequest(
        algorithm="fast", alpha=alpha, prune_edges=prune_edges, controls=controls
    )
    yield from MiningSession(graph).stream(
        request, statistics=statistics, report=report
    )


def fast_mule(
    graph: UncertainGraph,
    alpha: float,
    *,
    prune_edges: bool = True,
    controls: RunControls | None = None,
) -> EnumerationResult:
    """Enumerate all α-maximal cliques with the bitset-accelerated MULE.

    Produces exactly the same cliques as :func:`repro.core.mule.mule`; only
    the recorded algorithm label differs.

    Examples
    --------
    >>> g = UncertainGraph(edges=[(1, 2, 0.9), (2, 3, 0.9), (1, 3, 0.9)])
    >>> sorted(sorted(r.vertices) for r in fast_mule(g, 0.5))
    [[1, 2, 3]]
    """
    request = EnumerationRequest(
        algorithm="fast", alpha=alpha, prune_edges=prune_edges, controls=controls
    )
    return MiningSession(graph).enumerate(request).to_result()
