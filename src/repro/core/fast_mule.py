"""FAST-MULE — a bitset-accelerated implementation of MULE.

The reference implementation in :mod:`repro.core.mule` follows the paper's
pseudo-code closely (explicit ``I``/``X`` tuple sets, one dictionary per
recursion level).  This module provides a drop-in variant tuned for CPython:

* vertices are relabelled to ``0..n-1`` and every neighborhood is stored as
  an **integer bitmask**, so the "candidates adjacent to the new vertex
  ``m`` and larger than ``m``" filter of ``GenerateI`` becomes two bitwise
  ANDs instead of a per-candidate dictionary probe;
* candidate/exclusion *factors* are kept in flat ``dict``s keyed by vertex
  index, exactly mirroring the incremental maintenance of the paper, but
  the *membership* filtering is done on the bitmasks;
* the recursion allocates no intermediate objects besides those dicts.

The semantics are identical to :func:`repro.core.mule.mule` — the test
suite asserts equal outputs on randomized inputs — and the speed-up is a
constant factor (typically 1.5–3× on the benchmark graphs).  The variant
exists both as a practical fast path and as an ablation showing that the
paper's algorithmic ideas, not implementation details, carry the Figure 1
comparison.
"""

from __future__ import annotations

import sys
from collections.abc import Hashable, Iterator

from ..errors import ParameterError
from ..uncertain.graph import UncertainGraph, validate_probability
from ..uncertain.operations import prune_edges_below_alpha
from .result import CliqueRecord, EnumerationResult, SearchStatistics, Stopwatch

__all__ = ["fast_mule", "iter_alpha_maximal_cliques_fast"]

Vertex = Hashable


def _bits(mask: int) -> Iterator[int]:
    """Yield the indices of the set bits of ``mask`` in increasing order."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


def iter_alpha_maximal_cliques_fast(
    graph: UncertainGraph,
    alpha: float,
    *,
    prune_edges: bool = True,
    statistics: SearchStatistics | None = None,
) -> Iterator[tuple[frozenset, float]]:
    """Lazily yield every α-maximal clique using the bitset-accelerated search.

    Parameters mirror :func:`repro.core.mule.iter_alpha_maximal_cliques`.
    """
    alpha = validate_probability(alpha, what="alpha")
    stats = statistics if statistics is not None else SearchStatistics()

    if graph.num_vertices == 0:
        return

    working = prune_edges_below_alpha(graph, alpha) if prune_edges else graph

    # --- index the graph -------------------------------------------------
    try:
        ordered = sorted(working.vertices())
    except TypeError:
        ordered = sorted(working.vertices(), key=lambda v: (type(v).__name__, repr(v)))
    index_of = {v: i for i, v in enumerate(ordered)}
    labels = ordered
    n = len(ordered)

    adjacency_mask = [0] * n
    adjacency_probability: list[dict[int, float]] = [dict() for _ in range(n)]
    for u, v, p in working.edges():
        iu, iv = index_of[u], index_of[v]
        adjacency_mask[iu] |= 1 << iv
        adjacency_mask[iv] |= 1 << iu
        adjacency_probability[iu][iv] = p
        adjacency_probability[iv][iu] = p

    # higher_mask[m] has bits set for every vertex index strictly above m.
    all_mask = (1 << n) - 1
    higher_mask = [all_mask ^ ((1 << (m + 1)) - 1) for m in range(n)]

    needed_depth = n + 512
    if sys.getrecursionlimit() < needed_depth:
        sys.setrecursionlimit(needed_depth)

    def enum(
        clique: list[int],
        clique_probability: float,
        candidate_mask: int,
        candidate_factor: dict[int, float],
        exclusion_mask: int,
        exclusion_factor: dict[int, float],
    ) -> Iterator[tuple[frozenset, float]]:
        stats.recursive_calls += 1
        if not candidate_mask and not exclusion_mask:
            stats.maximality_checks += 1
            yield frozenset(labels[i] for i in clique), clique_probability
            return

        for u in _bits(candidate_mask):
            stats.candidates_examined += 1
            r = candidate_factor[u]
            extended_probability = clique_probability * r
            stats.probability_multiplications += 1
            adjacency_u = adjacency_probability[u]

            # GenerateI: candidates above u, adjacent to u, still above α.
            new_candidate_mask = 0
            new_candidate_factor: dict[int, float] = {}
            for w in _bits(candidate_mask & adjacency_mask[u] & higher_mask[u]):
                factor = candidate_factor[w] * adjacency_u[w]
                stats.probability_multiplications += 1
                if extended_probability * factor >= alpha:
                    new_candidate_mask |= 1 << w
                    new_candidate_factor[w] = factor

            # GenerateX: exclusions adjacent to u, still above α.
            new_exclusion_mask = 0
            new_exclusion_factor: dict[int, float] = {}
            for w in _bits(exclusion_mask & adjacency_mask[u]):
                factor = exclusion_factor[w] * adjacency_u[w]
                stats.probability_multiplications += 1
                if extended_probability * factor >= alpha:
                    new_exclusion_mask |= 1 << w
                    new_exclusion_factor[w] = factor

            clique.append(u)
            yield from enum(
                clique,
                extended_probability,
                new_candidate_mask,
                new_candidate_factor,
                new_exclusion_mask,
                new_exclusion_factor,
            )
            clique.pop()

            # Move u from the candidate side to the exclusion side.
            exclusion_mask |= 1 << u
            exclusion_factor[u] = r

    initial_factor = {i: 1.0 for i in range(n)}
    yield from enum([], 1.0, all_mask if n else 0, initial_factor, 0, {})


def fast_mule(
    graph: UncertainGraph,
    alpha: float,
    *,
    prune_edges: bool = True,
) -> EnumerationResult:
    """Enumerate all α-maximal cliques with the bitset-accelerated MULE.

    Produces exactly the same cliques as :func:`repro.core.mule.mule`; only
    the constant factors differ.

    Examples
    --------
    >>> g = UncertainGraph(edges=[(1, 2, 0.9), (2, 3, 0.9), (1, 3, 0.9)])
    >>> sorted(sorted(r.vertices) for r in fast_mule(g, 0.5))
    [[1, 2, 3]]
    """
    statistics = SearchStatistics()
    records: list[CliqueRecord] = []
    with Stopwatch() as timer:
        for members, probability in iter_alpha_maximal_cliques_fast(
            graph, alpha, prune_edges=prune_edges, statistics=statistics
        ):
            records.append(CliqueRecord(vertices=members, probability=probability))
    return EnumerationResult(
        algorithm="fast-mule",
        alpha=validate_probability(alpha, what="alpha"),
        cliques=records,
        statistics=statistics,
        elapsed_seconds=timer.elapsed,
    )
