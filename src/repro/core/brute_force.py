"""Brute-force oracle for α-maximal clique enumeration.

The oracle enumerates *every* subset of the vertex set, computes its clique
probability from scratch and keeps the subsets that are α-maximal.  Its
runtime is Θ(n² · 2ⁿ · n) so it is only usable for tiny graphs, but it has
one crucial property: it follows Definition 4 of the paper literally, with
no shared code or clever bookkeeping, which makes it a trustworthy ground
truth for validating MULE, DFS-NOIP and LARGE-MULE in the test suite.
"""

from __future__ import annotations

import itertools
from collections.abc import Hashable

from ..errors import ParameterError
from ..uncertain.graph import UncertainGraph, validate_probability
from .result import CliqueRecord, EnumerationResult, SearchStatistics, Stopwatch

__all__ = ["brute_force_alpha_maximal_cliques", "is_alpha_maximal_clique"]

Vertex = Hashable

#: Refuse to enumerate subsets of graphs larger than this many vertices.
MAX_BRUTE_FORCE_VERTICES = 22


def is_alpha_maximal_clique(
    graph: UncertainGraph, vertices: set[Vertex] | frozenset, alpha: float
) -> bool:
    """Return ``True`` when ``vertices`` is an α-maximal clique (Definition 4).

    The check is direct: the set must be an α-clique and no single outside
    vertex may extend it while keeping the clique probability at least α.

    >>> g = UncertainGraph(edges=[(1, 2, 0.9), (2, 3, 0.9), (1, 3, 0.9)])
    >>> is_alpha_maximal_clique(g, {1, 2, 3}, 0.5)
    True
    >>> is_alpha_maximal_clique(g, {1, 2}, 0.5)
    False
    """
    alpha = validate_probability(alpha, what="alpha")
    members = set(vertices)
    if graph.clique_probability(members) < alpha:
        return False
    for v in graph.vertices():
        if v in members:
            continue
        if graph.clique_probability(members | {v}) >= alpha:
            return False
    return True


def brute_force_alpha_maximal_cliques(
    graph: UncertainGraph,
    alpha: float,
    *,
    max_vertices: int = MAX_BRUTE_FORCE_VERTICES,
) -> EnumerationResult:
    """Enumerate all α-maximal cliques by exhaustive subset enumeration.

    Parameters
    ----------
    graph:
        The uncertain graph (any vertex labels).
    alpha:
        Probability threshold in ``(0, 1]``.
    max_vertices:
        Safety limit; graphs with more vertices are rejected because the
        subset lattice would be too large.

    Raises
    ------
    ParameterError
        If the graph exceeds ``max_vertices`` vertices.

    Notes
    -----
    The empty set is never emitted: for a non-empty graph every single vertex
    is a 1.0-probability clique, so the empty set can always be extended; for
    the empty graph there is nothing to enumerate.  This matches the
    behaviour of MULE (Algorithm 1 seeds the search with all vertices).
    """
    alpha = validate_probability(alpha, what="alpha")
    vertices = list(graph.vertices())
    if len(vertices) > max_vertices:
        raise ParameterError(
            f"brute force oracle limited to {max_vertices} vertices, "
            f"got {len(vertices)}"
        )

    statistics = SearchStatistics()
    records: list[CliqueRecord] = []
    with Stopwatch() as timer:
        for size in range(1, len(vertices) + 1):
            for subset in itertools.combinations(vertices, size):
                statistics.candidates_examined += 1
                members = frozenset(subset)
                probability = graph.clique_probability(members)
                if probability < alpha:
                    continue
                statistics.maximality_checks += 1
                if is_alpha_maximal_clique(graph, members, alpha):
                    records.append(
                        CliqueRecord(vertices=members, probability=probability)
                    )
    return EnumerationResult(
        algorithm="brute-force",
        alpha=alpha,
        cliques=records,
        statistics=statistics,
        elapsed_seconds=timer.elapsed,
    )
