"""Pre-pruning for large maximal clique enumeration.

LARGE-MULE (Section 4.3 of the paper) first shrinks the input graph with the
"Shared Neighborhood Filtering" technique of Modani and Dey before running
the size-thresholded search:

* drop every edge ``{u, v}`` whose endpoints share fewer than ``t - 2``
  common neighbors — such an edge cannot belong to any clique with ``t`` or
  more vertices;
* drop every vertex ``v`` that does not have at least ``t - 1`` neighbors
  ``u`` with ``|Γ(u) ∩ Γ(v)| ≥ t - 2`` — such a vertex cannot belong to any
  clique with ``t`` or more vertices;
* repeat until a fixed point, because removing edges/vertices can invalidate
  previously-passing ones.

The filter is *safe* for cliques of size ≥ t: it never removes an edge or a
vertex of any such clique, so running MULE on the filtered graph and keeping
only cliques of size ≥ t yields exactly the same result as filtering the
full MULE output (this equivalence is exercised by the integration tests).
"""

from __future__ import annotations

from collections.abc import Hashable

from ..errors import ParameterError
from ..uncertain.graph import UncertainGraph

__all__ = ["shared_neighborhood_filter", "PruningReport"]

Vertex = Hashable


class PruningReport:
    """What the shared-neighborhood filter removed, for logging/benchmarks."""

    def __init__(self) -> None:
        self.rounds = 0
        self.edges_removed = 0
        self.vertices_removed = 0

    def __repr__(self) -> str:
        return (
            f"PruningReport(rounds={self.rounds}, edges_removed={self.edges_removed}, "
            f"vertices_removed={self.vertices_removed})"
        )


def shared_neighborhood_filter(
    graph: UncertainGraph,
    size_threshold: int,
    *,
    report: PruningReport | None = None,
) -> UncertainGraph:
    """Apply Shared Neighborhood Filtering for cliques of at least ``size_threshold`` vertices.

    Parameters
    ----------
    graph:
        The input uncertain graph (not modified).
    size_threshold:
        The minimum clique size ``t ≥ 2`` that must be preserved.
    report:
        Optional :class:`PruningReport` updated in place with removal counts.

    Returns
    -------
    UncertainGraph
        A pruned copy.  Vertices that survive but lose all their edges are
        removed as well (they cannot be in a clique of size ≥ 2 ≤ t).

    Raises
    ------
    ParameterError
        If ``size_threshold`` is smaller than 2.

    Examples
    --------
    >>> g = UncertainGraph(edges=[(1, 2, 0.9), (2, 3, 0.9), (1, 3, 0.9), (3, 4, 0.9)])
    >>> pruned = shared_neighborhood_filter(g, 3)
    >>> sorted(pruned.vertices())
    [1, 2, 3]
    """
    if size_threshold < 2:
        raise ParameterError(
            f"size_threshold must be at least 2, got {size_threshold}"
        )
    t = size_threshold
    working = graph.copy()
    report = report if report is not None else PruningReport()

    changed = True
    while changed:
        changed = False
        report.rounds += 1

        # Edge filter: an edge inside a clique of size >= t has at least
        # t - 2 common neighbors (the remaining clique members).
        to_remove_edges = [
            (u, v)
            for u, v, _ in working.edges()
            if len(working.common_neighbors(u, v)) < t - 2
        ]
        for u, v in to_remove_edges:
            working.remove_edge(u, v)
        if to_remove_edges:
            changed = True
            report.edges_removed += len(to_remove_edges)

        # Vertex filter: a vertex of a clique of size >= t has at least
        # t - 1 neighbors u that themselves share >= t - 2 neighbors with it.
        to_remove_vertices = []
        for v in working.vertices():
            strong_neighbors = 0
            for u in working.adjacency(v):
                if len(working.common_neighbors(u, v)) >= t - 2:
                    strong_neighbors += 1
                    if strong_neighbors >= t - 1:
                        break
            if strong_neighbors < t - 1:
                to_remove_vertices.append(v)
        for v in to_remove_vertices:
            working.remove_vertex(v)
        if to_remove_vertices:
            changed = True
            report.vertices_removed += len(to_remove_vertices)

    return working
