"""LARGE-MULE — enumerate only large α-maximal cliques (Algorithms 5–6).

For a user-provided size threshold ``t``, LARGE-MULE enumerates every
α-maximal clique with **at least** ``t`` vertices while skipping most of the
search space that can only produce smaller cliques.  Two mechanisms provide
the speed-up reported in Figures 5–6 of the paper:

1. **Shared Neighborhood Filtering** (Modani & Dey) prunes edges and
   vertices that cannot belong to any clique of size ≥ t before the search
   starts (see :mod:`repro.core.pruning`); since the engine refactor this
   runs inside the shared
   :func:`~repro.core.engine.compiled.compile_graph` pipeline.
2. **Search-space pruning**: before descending into an extended clique
   ``C'``, the strategy checks ``|C'| + |I'| ≥ t``; when the bound fails, no
   clique of size ≥ t can be reached along this branch, so it is skipped
   (Algorithm 6, line 8 — implemented by
   :class:`~repro.core.engine.strategies.LargeCliqueStrategy`).

Note on semantics: the paper's Lemma 13 phrases the guarantee as
"enumerates every α-maximal clique with more than t vertices" while the
pseudo-code prunes branches with ``|C'| + |I'| < t``, i.e. it retains
cliques of size exactly ``t`` as well.  We follow the pseudo-code — the
output is every α-maximal clique of size **≥ t** — and the test suite pins
this behaviour by comparing against filtered MULE output.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterator

from ..api.request import EnumerationRequest
from ..api.session import MiningSession
from ..uncertain.graph import UncertainGraph
from .engine.controls import RunControls, RunReport
from .pruning import PruningReport
from .result import EnumerationResult, SearchStatistics

__all__ = ["large_mule", "iter_large_alpha_maximal_cliques", "LargeMuleConfig"]

Vertex = Hashable


class LargeMuleConfig:
    """Tunable knobs of the LARGE-MULE enumerator.

    Parameters
    ----------
    prune_edges:
        Apply Observation 3 edge pruning (drop ``p(e) < α``) first.
    shared_neighborhood_filtering:
        Apply the Modani--Dey pre-filter.  Disabling it keeps the output
        identical but removes the pre-pruning speed-up; the ablation
        benchmark toggles this flag.
    """

    def __init__(
        self,
        *,
        prune_edges: bool = True,
        shared_neighborhood_filtering: bool = True,
    ) -> None:
        self.prune_edges = prune_edges
        self.shared_neighborhood_filtering = shared_neighborhood_filtering


def iter_large_alpha_maximal_cliques(
    graph: UncertainGraph,
    alpha: float,
    size_threshold: int,
    *,
    config: LargeMuleConfig | None = None,
    statistics: SearchStatistics | None = None,
    pruning_report: PruningReport | None = None,
    controls: RunControls | None = None,
    report: RunReport | None = None,
) -> Iterator[tuple[frozenset, float]]:
    """Lazily yield every α-maximal clique with at least ``size_threshold`` vertices.

    Parameters
    ----------
    graph:
        The uncertain graph.
    alpha:
        The probability threshold ``0 < α ≤ 1``.
    size_threshold:
        The minimum clique size ``t ≥ 2``.
    config:
        Optional :class:`LargeMuleConfig`.
    statistics, pruning_report:
        Optional counter objects updated in place.
    controls, report:
        Optional run controls and stop-reason report (see
        :mod:`repro.core.engine.controls`).

    Yields
    ------
    tuple(frozenset, float)
        Each large α-maximal clique with its clique probability.
    """
    config = config or LargeMuleConfig()
    request = EnumerationRequest(
        algorithm="large",
        alpha=alpha,
        size_threshold=size_threshold,
        prune_edges=config.prune_edges,
        shared_neighborhood_filtering=config.shared_neighborhood_filtering,
        controls=controls,
    )
    yield from MiningSession(graph).stream(
        request,
        statistics=statistics,
        report=report,
        pruning_report=pruning_report,
    )


def large_mule(
    graph: UncertainGraph,
    alpha: float,
    size_threshold: int,
    *,
    config: LargeMuleConfig | None = None,
    controls: RunControls | None = None,
) -> EnumerationResult:
    """Enumerate every α-maximal clique with at least ``size_threshold`` vertices.

    Returns the same cliques as ``mule(graph, alpha)`` filtered to size
    ≥ ``size_threshold`` but is typically much faster because of the
    pre-pruning and the branch-and-bound cut (Figures 5–6 of the paper).

    Examples
    --------
    >>> g = UncertainGraph(edges=[(1, 2, 0.9), (2, 3, 0.9), (1, 3, 0.9), (4, 5, 0.9)])
    >>> result = large_mule(g, 0.5, 3)
    >>> sorted(sorted(r.vertices) for r in result)
    [[1, 2, 3]]
    """
    config = config or LargeMuleConfig()
    request = EnumerationRequest(
        algorithm="large",
        alpha=alpha,
        size_threshold=size_threshold,
        prune_edges=config.prune_edges,
        shared_neighborhood_filtering=config.shared_neighborhood_filtering,
        controls=controls,
    )
    return MiningSession(graph).enumerate(request).to_result()
