"""LARGE-MULE — enumerate only large α-maximal cliques (Algorithms 5–6).

For a user-provided size threshold ``t``, LARGE-MULE enumerates every
α-maximal clique with **at least** ``t`` vertices while skipping most of the
search space that can only produce smaller cliques.  Two mechanisms provide
the speed-up reported in Figures 5–6 of the paper:

1. **Shared Neighborhood Filtering** (Modani & Dey) prunes edges and
   vertices that cannot belong to any clique of size ≥ t before the search
   starts (see :mod:`repro.core.pruning`).
2. **Search-space pruning**: before recursing on an extended clique ``C'``,
   the algorithm checks ``|C'| + |I'| ≥ t``; when the bound fails, no clique
   of size ≥ t can be reached along this branch, so it is skipped
   (Algorithm 6, line 8).

Note on semantics: the paper's Lemma 13 phrases the guarantee as
"enumerates every α-maximal clique with more than t vertices" while the
pseudo-code prunes branches with ``|C'| + |I'| < t``, i.e. it retains
cliques of size exactly ``t`` as well.  We follow the pseudo-code — the
output is every α-maximal clique of size **≥ t** — and the test suite pins
this behaviour by comparing against filtered MULE output.
"""

from __future__ import annotations

import sys
from collections.abc import Hashable, Iterator

from ..errors import ParameterError
from ..uncertain.graph import UncertainGraph, validate_probability
from ..uncertain.operations import prune_edges_below_alpha
from .candidates import CandidateSet, generate_i, generate_x, initial_candidates
from .pruning import PruningReport, shared_neighborhood_filter
from .result import CliqueRecord, EnumerationResult, SearchStatistics, Stopwatch

__all__ = ["large_mule", "iter_large_alpha_maximal_cliques", "LargeMuleConfig"]

Vertex = Hashable


class LargeMuleConfig:
    """Tunable knobs of the LARGE-MULE enumerator.

    Parameters
    ----------
    prune_edges:
        Apply Observation 3 edge pruning (drop ``p(e) < α``) first.
    shared_neighborhood_filtering:
        Apply the Modani--Dey pre-filter.  Disabling it keeps the output
        identical but removes the pre-pruning speed-up; the ablation
        benchmark toggles this flag.
    """

    def __init__(
        self,
        *,
        prune_edges: bool = True,
        shared_neighborhood_filtering: bool = True,
    ) -> None:
        self.prune_edges = prune_edges
        self.shared_neighborhood_filtering = shared_neighborhood_filtering


def iter_large_alpha_maximal_cliques(
    graph: UncertainGraph,
    alpha: float,
    size_threshold: int,
    *,
    config: LargeMuleConfig | None = None,
    statistics: SearchStatistics | None = None,
    pruning_report: PruningReport | None = None,
) -> Iterator[tuple[frozenset, float]]:
    """Lazily yield every α-maximal clique with at least ``size_threshold`` vertices.

    Parameters
    ----------
    graph:
        The uncertain graph.
    alpha:
        The probability threshold ``0 < α ≤ 1``.
    size_threshold:
        The minimum clique size ``t ≥ 2``.
    config:
        Optional :class:`LargeMuleConfig`.
    statistics, pruning_report:
        Optional counter objects updated in place.

    Yields
    ------
    tuple(frozenset, float)
        Each large α-maximal clique with its clique probability.
    """
    alpha = validate_probability(alpha, what="alpha")
    if size_threshold < 2:
        raise ParameterError(f"size_threshold must be at least 2, got {size_threshold}")
    config = config or LargeMuleConfig()
    stats = statistics if statistics is not None else SearchStatistics()

    if graph.num_vertices == 0:
        return

    working = graph
    if config.prune_edges:
        working = prune_edges_below_alpha(working, alpha)
    if config.shared_neighborhood_filtering:
        working = shared_neighborhood_filter(
            working, size_threshold, report=pruning_report
        )
    if working.num_vertices == 0:
        return

    relabeled, _forward, backward = working.relabeled()

    needed_depth = relabeled.num_vertices + 512
    if sys.getrecursionlimit() < needed_depth:
        sys.setrecursionlimit(needed_depth)

    t = size_threshold

    def enum(
        clique: list[int],
        clique_probability: float,
        candidates: CandidateSet,
        exclusions: CandidateSet,
    ) -> Iterator[tuple[frozenset, float]]:
        stats.recursive_calls += 1
        if not candidates and not exclusions:
            stats.maximality_checks += 1
            if len(clique) >= t:
                yield (
                    frozenset(backward[v] for v in clique),
                    clique_probability,
                )
            return
        for u, r in candidates.items_sorted():
            stats.candidates_examined += 1
            stats.probability_multiplications += 1
            extended_probability = clique_probability * r
            clique.append(u)
            new_candidates = generate_i(
                relabeled, u, extended_probability, candidates, alpha
            )
            stats.probability_multiplications += len(candidates)
            if len(clique) + len(new_candidates) < t:
                # Algorithm 6, line 8: no clique of size >= t is reachable.
                stats.pruned_branches += 1
                clique.pop()
                exclusions.add(u, r)
                continue
            new_exclusions = generate_x(
                relabeled, u, extended_probability, exclusions, alpha
            )
            stats.probability_multiplications += len(exclusions)
            yield from enum(clique, extended_probability, new_candidates, new_exclusions)
            clique.pop()
            exclusions.add(u, r)

    yield from enum([], 1.0, initial_candidates(relabeled), CandidateSet())


def large_mule(
    graph: UncertainGraph,
    alpha: float,
    size_threshold: int,
    *,
    config: LargeMuleConfig | None = None,
) -> EnumerationResult:
    """Enumerate every α-maximal clique with at least ``size_threshold`` vertices.

    Returns the same cliques as ``mule(graph, alpha)`` filtered to size
    ≥ ``size_threshold`` but is typically much faster because of the
    pre-pruning and the branch-and-bound cut (Figures 5–6 of the paper).

    Examples
    --------
    >>> g = UncertainGraph(edges=[(1, 2, 0.9), (2, 3, 0.9), (1, 3, 0.9), (4, 5, 0.9)])
    >>> result = large_mule(g, 0.5, 3)
    >>> sorted(sorted(r.vertices) for r in result)
    [[1, 2, 3]]
    """
    statistics = SearchStatistics()
    records: list[CliqueRecord] = []
    with Stopwatch() as timer:
        for members, probability in iter_large_alpha_maximal_cliques(
            graph, alpha, size_threshold, config=config, statistics=statistics
        ):
            records.append(CliqueRecord(vertices=members, probability=probability))
    return EnumerationResult(
        algorithm="large-mule",
        alpha=validate_probability(alpha, what="alpha"),
        cliques=records,
        statistics=statistics,
        elapsed_seconds=timer.elapsed,
    )
