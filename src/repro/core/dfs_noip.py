"""DFS-NOIP — the baseline enumerator of the paper (Algorithm 7).

DFS-NOIP ("DFS with NO Incremental Probability computation") performs the
same depth-first exploration of vertex subsets as MULE but recomputes clique
probabilities and maximality from scratch at every step:

* deciding whether a candidate vertex keeps the working set an α-clique
  costs Θ(|C|²) probability multiplications instead of O(1);
* testing whether the working set is α-maximal scans every outside vertex
  and recomputes its extension factor, a Θ(n · |C|) operation instead of the
  O(1) emptiness test on MULE's ``I`` and ``X`` sets.

The paper uses DFS-NOIP as the comparison baseline of Figure 1, where MULE
outperforms it by one to two orders of magnitude as α decreases.  The
enumeration output of the two algorithms is identical (both enumerate the
full set of α-maximal cliques); only the work performed differs.

Since the engine refactor the module is a thin wrapper over the shared
iterative kernel driven by
:class:`~repro.core.engine.strategies.NoIncrementalStrategy`, which keeps
the from-scratch cost profile while sharing the walk, the run controls and
the streaming interface with every other enumerator.  Both entry points
delegate to :class:`repro.api.MiningSession`, so running the baseline next
to MULE in one session (as ``repro-mule compare`` does) shares a single
graph compilation.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterator

from ..api.request import EnumerationRequest
from ..api.session import MiningSession
from ..uncertain.graph import UncertainGraph
from .engine.controls import RunControls, RunReport
from .result import EnumerationResult, SearchStatistics

__all__ = ["dfs_noip", "iter_alpha_maximal_cliques_noip"]

Vertex = Hashable


def iter_alpha_maximal_cliques_noip(
    graph: UncertainGraph,
    alpha: float,
    *,
    prune_edges: bool = True,
    statistics: SearchStatistics | None = None,
    controls: RunControls | None = None,
    report: RunReport | None = None,
) -> Iterator[tuple[frozenset, float]]:
    """Lazily yield α-maximal cliques using the non-incremental DFS baseline.

    The walk mirrors Algorithm 7 of the paper:

    1. at every node, filter the candidate list, dropping vertices that are
       not larger than ``max(C)`` or whose addition breaks the α-clique
       property (both checks recompute probabilities from scratch);
    2. if no candidate survives, test ``C`` for α-maximality from scratch
       and emit it if it passes;
    3. otherwise branch on every surviving candidate in ascending order.
    """
    request = EnumerationRequest(
        algorithm="noip", alpha=alpha, prune_edges=prune_edges, controls=controls
    )
    yield from MiningSession(graph).stream(
        request, statistics=statistics, report=report
    )


def dfs_noip(
    graph: UncertainGraph,
    alpha: float,
    *,
    prune_edges: bool = True,
    controls: RunControls | None = None,
) -> EnumerationResult:
    """Enumerate all α-maximal cliques with the DFS-NOIP baseline (Algorithm 7).

    Produces exactly the same set of cliques as :func:`repro.core.mule.mule`
    but performs substantially more work per search node, which is what the
    paper's Figure 1 comparison measures.

    Examples
    --------
    >>> g = UncertainGraph(edges=[(1, 2, 0.9), (2, 3, 0.9), (1, 3, 0.9)])
    >>> sorted(sorted(r.vertices) for r in dfs_noip(g, 0.5))
    [[1, 2, 3]]
    """
    request = EnumerationRequest(
        algorithm="noip", alpha=alpha, prune_edges=prune_edges, controls=controls
    )
    return MiningSession(graph).enumerate(request).to_result()
