"""DFS-NOIP — the baseline enumerator of the paper (Algorithm 7).

DFS-NOIP ("DFS with NO Incremental Probability computation") performs the
same depth-first exploration of vertex subsets as MULE but recomputes clique
probabilities and maximality from scratch at every step:

* deciding whether a candidate vertex keeps the working set an α-clique
  costs Θ(|C|) probability multiplications instead of O(1);
* testing whether the working set is α-maximal scans every outside vertex
  and recomputes its extension factor, a Θ(n · |C|) operation instead of the
  O(1) emptiness test on MULE's ``I`` and ``X`` sets.

The paper uses DFS-NOIP as the comparison baseline of Figure 1, where MULE
outperforms it by one to two orders of magnitude as α decreases.  The
enumeration output of the two algorithms is identical (both enumerate the
full set of α-maximal cliques); only the work performed differs.
"""

from __future__ import annotations

import sys
from collections.abc import Hashable, Iterator

from ..uncertain.graph import UncertainGraph, validate_probability
from ..uncertain.operations import prune_edges_below_alpha
from .result import CliqueRecord, EnumerationResult, SearchStatistics, Stopwatch

__all__ = ["dfs_noip", "iter_alpha_maximal_cliques_noip"]

Vertex = Hashable


def _clique_probability_from_scratch(
    graph: UncertainGraph, vertices: list[int], stats: SearchStatistics
) -> float:
    """Recompute ``clq(C, G)`` by multiplying every internal edge probability."""
    probability = 1.0
    for i, u in enumerate(vertices):
        adjacency = graph.adjacency(u)
        for v in vertices[i + 1 :]:
            p = adjacency.get(v)
            stats.probability_multiplications += 1
            if p is None:
                return 0.0
            probability *= p
    return probability


def _is_alpha_maximal_from_scratch(
    graph: UncertainGraph,
    clique: list[int],
    clique_probability: float,
    alpha: float,
    stats: SearchStatistics,
) -> bool:
    """Scan all outside vertices, recomputing extension factors from scratch."""
    stats.maximality_checks += 1
    members = set(clique)
    for w in graph.vertices():
        if w in members:
            continue
        adjacency = graph.adjacency(w)
        factor = 1.0
        feasible = True
        for u in clique:
            p = adjacency.get(u)
            stats.probability_multiplications += 1
            if p is None:
                feasible = False
                break
            factor *= p
        if feasible and clique_probability * factor >= alpha:
            return False
    return True


def iter_alpha_maximal_cliques_noip(
    graph: UncertainGraph,
    alpha: float,
    *,
    prune_edges: bool = True,
    statistics: SearchStatistics | None = None,
) -> Iterator[tuple[frozenset, float]]:
    """Lazily yield α-maximal cliques using the non-incremental DFS baseline.

    The recursion mirrors Algorithm 7 of the paper:

    1. filter the candidate list, dropping vertices that are not larger than
       ``max(C)`` or whose addition breaks the α-clique property (both
       checks recompute probabilities from scratch);
    2. if no candidate survives, test ``C`` for α-maximality from scratch
       and emit it if it passes;
    3. otherwise branch on every surviving candidate, emitting extended sets
       that are already α-maximal and recursing into the rest.
    """
    alpha = validate_probability(alpha, what="alpha")
    stats = statistics if statistics is not None else SearchStatistics()

    if graph.num_vertices == 0:
        return

    working = prune_edges_below_alpha(graph, alpha) if prune_edges else graph
    relabeled, _forward, backward = working.relabeled()

    needed_depth = relabeled.num_vertices + 512
    if sys.getrecursionlimit() < needed_depth:
        sys.setrecursionlimit(needed_depth)

    def emit(clique: list[int], probability: float) -> tuple[frozenset, float]:
        return frozenset(backward[v] for v in clique), probability

    def search(clique: list[int], candidates: list[int]) -> Iterator[tuple[frozenset, float]]:
        stats.recursive_calls += 1
        current_max = clique[-1] if clique else 0
        clique_probability = _clique_probability_from_scratch(relabeled, clique, stats)

        surviving: list[int] = []
        for u in candidates:
            stats.candidates_examined += 1
            if u <= current_max:
                continue
            extended = _clique_probability_from_scratch(relabeled, clique + [u], stats)
            if extended < alpha:
                continue
            surviving.append(u)

        if not surviving:
            if clique and _is_alpha_maximal_from_scratch(
                relabeled, clique, clique_probability, alpha, stats
            ):
                yield emit(clique, clique_probability)
            return

        for v in sorted(surviving):
            extended_clique = clique + [v]
            extended_probability = _clique_probability_from_scratch(
                relabeled, extended_clique, stats
            )
            if _is_alpha_maximal_from_scratch(
                relabeled, extended_clique, extended_probability, alpha, stats
            ):
                yield emit(extended_clique, extended_probability)
            else:
                next_candidates = [
                    w for w in surviving if w in relabeled.adjacency(v)
                ]
                yield from search(extended_clique, next_candidates)

    yield from search([], sorted(relabeled.vertices()))


def dfs_noip(
    graph: UncertainGraph,
    alpha: float,
    *,
    prune_edges: bool = True,
) -> EnumerationResult:
    """Enumerate all α-maximal cliques with the DFS-NOIP baseline (Algorithm 7).

    Produces exactly the same set of cliques as :func:`repro.core.mule.mule`
    but performs substantially more work per search node, which is what the
    paper's Figure 1 comparison measures.

    Examples
    --------
    >>> g = UncertainGraph(edges=[(1, 2, 0.9), (2, 3, 0.9), (1, 3, 0.9)])
    >>> sorted(sorted(r.vertices) for r in dfs_noip(g, 0.5))
    [[1, 2, 3]]
    """
    statistics = SearchStatistics()
    records: list[CliqueRecord] = []
    with Stopwatch() as timer:
        for members, probability in iter_alpha_maximal_cliques_noip(
            graph, alpha, prune_edges=prune_edges, statistics=statistics
        ):
            records.append(CliqueRecord(vertices=members, probability=probability))
    return EnumerationResult(
        algorithm="dfs-noip",
        alpha=validate_probability(alpha, what="alpha"),
        cliques=records,
        statistics=statistics,
        elapsed_seconds=timer.elapsed,
    )
