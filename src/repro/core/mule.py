"""MULE — Maximal Uncertain cLique Enumeration (Algorithms 1–4 of the paper).

MULE enumerates every α-maximal clique of an uncertain graph using a
depth-first search over vertex subsets in increasing vertex-identifier
order, with three optimizations over the naive search (Section 4):

1. **Candidate tracking** — the search carries the set ``I`` of vertices
   that can still extend the current clique, so adjacency never has to be
   re-verified from scratch.
2. **Incremental probability maintenance** — every candidate ``u`` carries
   the factor ``r`` such that ``clq(C ∪ {u}, G) = clq(C, G) · r``; extending
   the clique therefore costs O(1) multiplications per candidate instead of
   Θ(|C|).
3. **O(n) maximality checking** — the exclusion set ``X`` (vertices smaller
   than ``max(C)`` that could extend ``C`` but belong to other search paths)
   is maintained incrementally; ``C`` is α-maximal exactly when both ``I``
   and ``X`` are empty.

The worst-case running time is ``O(n · 2^n)`` (Theorem 3), within a
``O(√n)`` factor of the output-size lower bound ``Ω(√n · 2^n)``
(Observation 5 / Lemma 12).

Since the engine refactor this module is a thin wrapper over the shared
iterative kernel (:mod:`repro.core.engine`) driven by
:class:`~repro.core.engine.strategies.MuleStrategy`: the search is
non-recursive (no ``sys.setrecursionlimit`` mutation), streams its results,
and honours :class:`~repro.core.engine.controls.RunControls`.  Since the
session-API refactor both entry points delegate to
:class:`repro.api.MiningSession` — the one owner of compilation and
compiled-graph caching — and produce output (cliques, counters, labels)
bit-identical to the pre-refactor implementation.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterator

from ..api.request import EnumerationRequest
from ..api.session import MiningSession
from ..errors import ParameterError
from ..uncertain.graph import UncertainGraph
from .engine.controls import RunControls, RunReport
from .result import EnumerationResult, SearchStatistics

__all__ = ["mule", "iter_alpha_maximal_cliques", "MuleConfig"]

Vertex = Hashable


class MuleConfig:
    """Tunable knobs of the MULE enumerator.

    Parameters
    ----------
    prune_edges:
        Apply the Observation 3 preprocessing (drop edges with
        ``p(e) < α``) before the search.  On by default; turning it off is
        only useful for the ablation benchmark.
    min_recursion_headroom:
        Retained for backwards compatibility.  The iterative kernel never
        recurses, so this value is validated but otherwise unused.
    """

    def __init__(self, *, prune_edges: bool = True, min_recursion_headroom: int = 512) -> None:
        if min_recursion_headroom < 0:
            raise ParameterError("min_recursion_headroom must be non-negative")
        self.prune_edges = prune_edges
        self.min_recursion_headroom = min_recursion_headroom


def iter_alpha_maximal_cliques(
    graph: UncertainGraph,
    alpha: float,
    *,
    config: MuleConfig | None = None,
    statistics: SearchStatistics | None = None,
    controls: RunControls | None = None,
    report: RunReport | None = None,
) -> Iterator[tuple[frozenset, float]]:
    """Lazily yield ``(clique, probability)`` pairs for every α-maximal clique.

    This is the streaming core of MULE; :func:`mule` wraps it into an
    :class:`~repro.core.result.EnumerationResult`.  Cliques are yielded in
    the order the depth-first search discovers them.

    Parameters
    ----------
    graph:
        The uncertain graph; vertex labels may be arbitrary hashables.
    alpha:
        The probability threshold ``0 < α ≤ 1``.
    config:
        Optional :class:`MuleConfig`.
    statistics:
        Optional counter object that will be updated in place.
    controls:
        Optional :class:`~repro.core.engine.controls.RunControls` bounding
        the run (maximum cliques, wall-clock budget).
    report:
        Optional :class:`~repro.core.engine.controls.RunReport` recording
        how the run ended.

    Yields
    ------
    tuple(frozenset, float)
        The α-maximal clique (original vertex labels) and its exact clique
        probability as maintained incrementally during the search.
    """
    config = config or MuleConfig()
    request = EnumerationRequest(
        algorithm="mule",
        alpha=alpha,
        prune_edges=config.prune_edges,
        controls=controls,
    )
    yield from MiningSession(graph).stream(
        request, statistics=statistics, report=report
    )


def mule(
    graph: UncertainGraph,
    alpha: float,
    *,
    config: MuleConfig | None = None,
    controls: RunControls | None = None,
) -> EnumerationResult:
    """Enumerate all α-maximal cliques of ``graph`` with MULE (Algorithm 1).

    Parameters
    ----------
    graph:
        The uncertain graph.
    alpha:
        The probability threshold ``0 < α ≤ 1``.  With ``α = 1`` the output
        coincides with deterministic maximal cliques of the subgraph of
        certain edges.
    config:
        Optional :class:`MuleConfig` controlling preprocessing.
    controls:
        Optional :class:`~repro.core.engine.controls.RunControls`; when the
        run is truncated the result's ``stop_reason`` says why.

    Returns
    -------
    EnumerationResult
        The α-maximal cliques, with search statistics and wall-clock time.

    Examples
    --------
    >>> g = UncertainGraph(edges=[(1, 2, 0.9), (2, 3, 0.9), (1, 3, 0.9)])
    >>> result = mule(g, 0.5)
    >>> sorted(sorted(r.vertices) for r in result)
    [[1, 2, 3]]
    """
    config = config or MuleConfig()
    request = EnumerationRequest(
        algorithm="mule",
        alpha=alpha,
        prune_edges=config.prune_edges,
        controls=controls,
    )
    return MiningSession(graph).enumerate(request).to_result()
