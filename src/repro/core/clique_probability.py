"""Clique probability computation.

Implements Observation 1 of the paper: for a vertex set ``C`` that is a
clique of the skeleton, ``clq(C, G) = ∏_{e ∈ E_C} p(e)``; when any pair in
``C`` is not a possible edge the probability is ``0``.

Besides the direct product computation, this module provides the
*incremental* primitives that MULE relies on:

* :func:`extension_factor` — the multiplicative factor by which
  ``clq(C, G)`` drops when a vertex ``v`` is added to ``C`` (the product of
  the probabilities of the edges between ``v`` and every member of ``C``);
* :func:`log_clique_probability` — a log-domain variant that avoids
  underflow for very large cliques / very small α, used by the top-k
  extension and available to callers who need it.

Keeping these as free functions (rather than methods of the graph) lets the
algorithms, the brute-force oracle and the tests share a single definition.
"""

from __future__ import annotations

import math
from collections.abc import Hashable, Iterable

from ..errors import VertexError
from ..uncertain.graph import UncertainGraph

__all__ = [
    "clique_probability",
    "extension_factor",
    "log_clique_probability",
    "is_alpha_clique",
]

Vertex = Hashable


def clique_probability(graph: UncertainGraph, vertices: Iterable[Vertex]) -> float:
    """Return ``clq(C, G)`` for the vertex set ``C = vertices``.

    The empty set and singletons have probability ``1.0`` (the paper sets
    ``clq(∅, G) = 1``).  Missing skeleton edges make the probability ``0.0``.

    >>> g = UncertainGraph(edges=[(1, 2, 0.5), (1, 3, 0.5), (2, 3, 0.5)])
    >>> clique_probability(g, [1, 2, 3])
    0.125
    >>> clique_probability(g, [])
    1.0
    """
    return graph.clique_probability(vertices)


def extension_factor(
    graph: UncertainGraph, clique: Iterable[Vertex], new_vertex: Vertex
) -> float:
    """Return the factor by which adding ``new_vertex`` scales ``clq(C, G)``.

    For a clique ``C`` and a vertex ``v ∉ C``::

        clq(C ∪ {v}, G) = clq(C, G) * extension_factor(G, C, v)

    The factor is the product of ``p({v, u})`` over all ``u ∈ C``; it is
    ``0.0`` if any of those possible edges is missing.  This is the quantity
    MULE maintains incrementally (the ``r`` and ``s`` values attached to the
    ``I`` and ``X`` sets).

    >>> g = UncertainGraph(edges=[(1, 2, 0.5), (1, 3, 0.4), (2, 3, 0.8)])
    >>> extension_factor(g, [1, 2], 3)
    0.32000000000000006
    """
    if new_vertex not in graph:
        raise VertexError(f"vertex {new_vertex!r} is not in the graph")
    adjacency = graph.adjacency(new_vertex)
    factor = 1.0
    for u in clique:
        p = adjacency.get(u)
        if p is None:
            return 0.0
        factor *= p
    return factor


def log_clique_probability(
    graph: UncertainGraph, vertices: Iterable[Vertex]
) -> float:
    """Return ``log clq(C, G)`` (natural log), with ``-inf`` for impossible cliques.

    Useful when working with extremely small thresholds or very large cliques
    where the plain product would underflow to ``0.0``.

    >>> g = UncertainGraph(edges=[(1, 2, 0.5)])
    >>> round(log_clique_probability(g, [1, 2]), 6)
    -0.693147
    """
    vs = list(vertices)
    total = 0.0
    for i, u in enumerate(vs):
        adjacency = graph.adjacency(u)
        for v in vs[i + 1 :]:
            p = adjacency.get(v)
            if p is None:
                return float("-inf")
            total += math.log(p)
    return total


def is_alpha_clique(
    graph: UncertainGraph, vertices: Iterable[Vertex], alpha: float
) -> bool:
    """Return ``True`` when ``vertices`` form an α-clique (Definition 3)."""
    return graph.clique_probability(vertices) >= alpha
