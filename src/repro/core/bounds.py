"""Counting bounds on the number of (α-)maximal cliques (Section 3).

The paper's combinatorial contribution is Theorem 1: for any ``n ≥ 2`` and
``0 < α < 1`` the maximum number of α-maximal cliques over all uncertain
graphs with ``n`` vertices is exactly ``C(n, ⌊n/2⌋)`` — strictly larger than
the Moon--Moser bound ``≈ 3^{n/3}`` that holds for deterministic graphs
(the ``α = 1`` case).

This module provides:

* :func:`moon_moser_bound` — the deterministic maximum (Moon & Moser 1965);
* :func:`uncertain_clique_bound` — ``f(n, α) = C(n, ⌊n/2⌋)`` for
  ``0 < α < 1``;
* :func:`extremal_uncertain_graph` — the Lemma 1 construction: the complete
  graph on ``n`` vertices with every edge probability ``q`` chosen so that
  ``q^κ = α`` for ``κ = C(⌊n/2⌋, 2)``, whose α-maximal cliques are exactly
  the ``⌊n/2⌋``-subsets of ``V``;
* :func:`moon_moser_graph` — the deterministic extremal construction
  (complete multipartite graph with parts of size 3);
* :func:`is_non_redundant_family` — the antichain property of Definition 6,
  which every collection of α-maximal cliques must satisfy.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable
from math import comb

from ..errors import ParameterError
from ..uncertain.graph import UncertainGraph, validate_probability

__all__ = [
    "moon_moser_bound",
    "uncertain_clique_bound",
    "extremal_uncertain_graph",
    "extremal_clique_size",
    "moon_moser_graph",
    "is_non_redundant_family",
    "stirling_output_lower_bound",
]

Vertex = Hashable


def moon_moser_bound(n: int) -> int:
    """Return the Moon--Moser maximum number of maximal cliques in a deterministic graph.

    For ``n ≥ 2``::

        n ≡ 0 (mod 3):  3^(n/3)
        n ≡ 1 (mod 3):  4 · 3^((n-4)/3)
        n ≡ 2 (mod 3):  2 · 3^((n-2)/3)

    Small cases (n = 0, 1) return 1 by convention (the empty clique / the
    single vertex).

    >>> moon_moser_bound(6)
    9
    >>> moon_moser_bound(7)
    12
    >>> moon_moser_bound(8)
    18
    """
    if n < 0:
        raise ParameterError(f"n must be non-negative, got {n}")
    if n <= 1:
        return 1
    if n == 2:
        return 2
    remainder = n % 3
    if remainder == 0:
        return 3 ** (n // 3)
    if remainder == 1:
        return 4 * 3 ** ((n - 4) // 3)
    return 2 * 3 ** ((n - 2) // 3)


def uncertain_clique_bound(n: int, alpha: float) -> int:
    """Return ``f(n, α)``, the maximum number of α-maximal cliques on ``n`` vertices.

    Implements Theorem 1: for ``0 < α < 1`` the bound is ``C(n, ⌊n/2⌋)``.
    For ``α = 1`` the problem degenerates to deterministic maximal clique
    counting and the Moon--Moser bound applies instead.

    >>> uncertain_clique_bound(4, 0.5)
    6
    >>> uncertain_clique_bound(5, 0.5)
    10
    >>> uncertain_clique_bound(6, 1.0)
    9
    """
    if n < 0:
        raise ParameterError(f"n must be non-negative, got {n}")
    alpha = validate_probability(alpha, what="alpha")
    if alpha == 1.0:
        return moon_moser_bound(n)
    if n <= 1:
        return 1
    return comb(n, n // 2)


def _repeated_product(value: float, count: int) -> float:
    """Multiply ``value`` by itself ``count`` times exactly as the enumerators do."""
    product = 1.0
    for _ in range(count):
        product *= value
    return product


def extremal_clique_size(n: int) -> int:
    """Return ``⌊n/2⌋``, the size of every α-maximal clique in the extremal graph."""
    if n < 2:
        raise ParameterError(f"extremal construction requires n >= 2, got {n}")
    return n // 2


def extremal_uncertain_graph(n: int, alpha: float) -> UncertainGraph:
    """Build the Lemma 1 extremal uncertain graph on vertices ``1..n``.

    The construction takes the complete graph ``K_n`` and assigns every edge
    the probability ``q`` with ``q^κ = α`` where ``κ = C(⌊n/2⌋, 2)`` is the
    number of edges inside a ``⌊n/2⌋``-subset.  Consequences (proved in the
    paper and verified by the test suite):

    * every ``⌊n/2⌋``-subset has clique probability exactly α, hence is an
      α-clique;
    * adding any vertex multiplies the probability by at least one more
      factor ``q < 1``, dropping it below α, so each ``⌊n/2⌋``-subset is
      α-maximal;
    * subsets smaller than ``⌊n/2⌋`` can always be extended and subsets
      larger than ``⌊n/2⌋`` are below threshold, so the α-maximal cliques
      are exactly the ``C(n, ⌊n/2⌋)`` subsets of size ``⌊n/2⌋``.

    Raises
    ------
    ParameterError
        If ``n < 2``.
    ProbabilityError
        If ``alpha`` is not in ``(0, 1)`` (the construction needs q < 1,
        so α = 1 is rejected).

    >>> g = extremal_uncertain_graph(4, 0.5)
    >>> g.num_vertices, g.num_edges
    (4, 6)
    """
    if n < 2:
        raise ParameterError(f"extremal construction requires n >= 2, got {n}")
    alpha = validate_probability(alpha, what="alpha")
    if alpha == 1.0:
        raise ParameterError(
            "the extremal construction requires 0 < alpha < 1; "
            "use moon_moser_graph for the deterministic case"
        )
    half = n // 2
    kappa = comb(half, 2)
    if kappa == 0:
        # n = 2 or 3: the target subsets are singletons (κ = 0 internal
        # edges), so every edge must fall strictly below α to make the
        # singletons maximal.
        q = alpha / 2.0
    else:
        q = alpha ** (1.0 / kappa)
        # Floating-point guard: the enumerators compute clique probabilities
        # as an explicit κ-fold product, which can round a hair below α and
        # silently change which subsets count as α-cliques.  Nudge q upward
        # until the explicit product clears the threshold.
        while _repeated_product(q, kappa) < alpha:
            q = min(1.0, q * (1.0 + 1e-15))
    graph = UncertainGraph(vertices=range(1, n + 1))
    for u in range(1, n + 1):
        for v in range(u + 1, n + 1):
            graph.add_edge(u, v, q)
    return graph


def moon_moser_graph(n: int) -> UncertainGraph:
    """Build a Moon--Moser graph on ``n`` vertices with all edges certain (p = 1).

    The graph is the complete multipartite graph whose parts have size 3
    (with one part of size 1 or 2 when ``n mod 3 ≠ 0``).  Its maximal cliques
    pick exactly one vertex from each part, so their number meets the
    Moon--Moser bound.  Because all probabilities are 1, the graph doubles
    as a worst case for deterministic maximal clique enumeration.

    >>> g = moon_moser_graph(6)
    >>> g.num_vertices, g.num_edges
    (6, 12)
    """
    if n < 1:
        raise ParameterError(f"n must be positive, got {n}")
    # Partition vertices 1..n into groups of 3 (with a smaller last group).
    parts: list[list[int]] = []
    vertices = list(range(1, n + 1))
    remainder = n % 3
    if remainder == 0 or n <= 2:
        chunk_sizes = [3] * (n // 3) if n > 2 else [n]
    elif remainder == 1:
        # One part of size 4 is suboptimal; Moon--Moser uses two parts of 2.
        chunk_sizes = [3] * ((n - 4) // 3) + [2, 2]
    else:
        chunk_sizes = [3] * ((n - 2) // 3) + [2]
    index = 0
    for size in chunk_sizes:
        parts.append(vertices[index : index + size])
        index += size

    graph = UncertainGraph(vertices=vertices)
    for i, part_a in enumerate(parts):
        for part_b in parts[i + 1 :]:
            for u in part_a:
                for v in part_b:
                    graph.add_edge(u, v, 1.0)
    return graph


def is_non_redundant_family(sets: Iterable[Iterable[Vertex]]) -> bool:
    """Return ``True`` when no set in the family contains another (Definition 6).

    The collection of α-maximal cliques of any uncertain graph is
    non-redundant (an antichain under inclusion); this predicate is used by
    the property-based tests to verify that invariant on enumerator output.

    >>> is_non_redundant_family([{1, 2}, {2, 3}])
    True
    >>> is_non_redundant_family([{1, 2}, {1, 2, 3}])
    False
    """
    family = [frozenset(s) for s in sets]
    for i, a in enumerate(family):
        for b in family[i + 1 :]:
            if a <= b or b <= a:
                return False
    return True


def stirling_output_lower_bound(n: int) -> float:
    """Return the asymptotic output-size lower bound ``Θ(2^n / √n)`` (Observation 5).

    The exact central binomial coefficient is returned as a float so callers
    can compare growth rates without integer overflow concerns in plotting
    code.  For ``n < 2`` returns 1.0.
    """
    if n < 2:
        return 1.0
    return float(comb(n, n // 2))
