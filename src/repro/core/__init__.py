"""The paper's primary contribution: α-maximal clique mining algorithms.

Public entry points:

* :func:`repro.core.mule.mule` — enumerate all α-maximal cliques (MULE).
* :func:`repro.core.large_mule.large_mule` — enumerate only α-maximal
  cliques with at least ``t`` vertices (LARGE-MULE).
* :func:`repro.core.dfs_noip.dfs_noip` — the non-incremental DFS baseline.
* :func:`repro.core.brute_force.brute_force_alpha_maximal_cliques` — the
  exhaustive oracle used for validation.
* :func:`repro.core.top_k.top_k_maximal_cliques` — the related-work top-k
  problem.
* :mod:`repro.core.bounds` — Theorem 1 bounds and extremal constructions.

All enumerators are thin wrappers over the shared iterative search engine
(:mod:`repro.core.engine`): a compiled bitmask graph stage, an
explicit-stack kernel with run controls (``max_cliques``,
``time_budget_seconds``), and pluggable enumeration strategies.
"""

from .bounds import (
    extremal_clique_size,
    extremal_uncertain_graph,
    is_non_redundant_family,
    moon_moser_bound,
    moon_moser_graph,
    stirling_output_lower_bound,
    uncertain_clique_bound,
)
from .brute_force import brute_force_alpha_maximal_cliques, is_alpha_maximal_clique
from .candidates import CandidateSet, generate_i, generate_x, initial_candidates
from .clique_probability import (
    clique_probability,
    extension_factor,
    is_alpha_clique,
    log_clique_probability,
)
from .dfs_noip import dfs_noip, iter_alpha_maximal_cliques_noip
from .engine import (
    CompiledGraph,
    EnumerationStrategy,
    LargeCliqueStrategy,
    MuleStrategy,
    NoIncrementalStrategy,
    RunControls,
    RunReport,
    StopReason,
    TopKStrategy,
    compile_graph,
    run_search,
)
from .fast_mule import fast_mule, iter_alpha_maximal_cliques_fast
from .large_mule import LargeMuleConfig, iter_large_alpha_maximal_cliques, large_mule
from .mule import MuleConfig, iter_alpha_maximal_cliques, mule
from .pruning import PruningReport, shared_neighborhood_filter
from .result import CliqueRecord, EnumerationResult, SearchStatistics, Stopwatch
from .top_k import top_k_by_threshold_search, top_k_maximal_cliques

__all__ = [
    "mule",
    "MuleConfig",
    "iter_alpha_maximal_cliques",
    "large_mule",
    "LargeMuleConfig",
    "iter_large_alpha_maximal_cliques",
    "dfs_noip",
    "iter_alpha_maximal_cliques_noip",
    "fast_mule",
    "iter_alpha_maximal_cliques_fast",
    "brute_force_alpha_maximal_cliques",
    "is_alpha_maximal_clique",
    "top_k_maximal_cliques",
    "top_k_by_threshold_search",
    "clique_probability",
    "extension_factor",
    "log_clique_probability",
    "is_alpha_clique",
    "CandidateSet",
    "generate_i",
    "generate_x",
    "initial_candidates",
    "CompiledGraph",
    "compile_graph",
    "run_search",
    "RunControls",
    "RunReport",
    "StopReason",
    "EnumerationStrategy",
    "MuleStrategy",
    "NoIncrementalStrategy",
    "LargeCliqueStrategy",
    "TopKStrategy",
    "shared_neighborhood_filter",
    "PruningReport",
    "CliqueRecord",
    "EnumerationResult",
    "SearchStatistics",
    "Stopwatch",
    "moon_moser_bound",
    "uncertain_clique_bound",
    "extremal_uncertain_graph",
    "extremal_clique_size",
    "moon_moser_graph",
    "is_non_redundant_family",
    "stirling_output_lower_bound",
]
