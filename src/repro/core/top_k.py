"""Top-k maximal cliques by clique probability.

This implements the problem studied by the closest related work the paper
compares against (Zou et al., ICDE 2010): return the ``k`` maximal cliques
of an uncertain graph with the highest probability of existence.  The paper
contrasts its own problem (enumerate *all* α-maximal cliques) with this one;
having both in the library lets the examples and benchmarks reproduce that
comparison.

Two strategies are provided:

* :func:`top_k_maximal_cliques` — run the shared engine at a caller-chosen
  α with :class:`~repro.core.engine.strategies.TopKStrategy` (MULE's search
  restricted to cliques of at least ``min_size`` vertices) and keep the
  ``k`` most probable emissions (a direct reduction; exact whenever at
  least ``k`` cliques have probability ≥ α).
* :func:`top_k_by_threshold_search` — repeatedly lower α geometrically until
  at least ``k`` α-maximal cliques are found, then report the best ``k``.
  This removes the need to guess α and is the strategy used by the example
  applications.

Both accept :class:`~repro.core.engine.controls.RunControls` like every
other enumerator, and both return a :class:`TopKResult` — a plain ``list``
of records augmented with the run's provenance (``stop_reason`` /
``truncated``), so a ranking computed from a truncated enumeration is never
mistaken for the exact answer.
"""

from __future__ import annotations

from collections.abc import Hashable
from dataclasses import replace
from time import monotonic

from ..errors import ParameterError
from ..uncertain.graph import UncertainGraph, validate_probability
from .engine.compiled import compile_graph
from .engine.controls import RunControls, RunReport, StopReason
from .engine.kernel import run_search
from .engine.strategies import TopKStrategy
from .mule import MuleConfig
from .result import CliqueRecord, EnumerationResult, SearchStatistics, Stopwatch

__all__ = ["TopKResult", "top_k_maximal_cliques", "top_k_by_threshold_search"]

Vertex = Hashable


class TopKResult(list):
    """A ranked list of :class:`CliqueRecord` objects with run provenance.

    Behaves exactly like the plain ``list`` the top-k functions used to
    return (indexing, equality, iteration), with three extra attributes:

    Attributes
    ----------
    alpha:
        The threshold the final enumeration ran at (for
        :func:`top_k_by_threshold_search`, the last α tried).
    stop_reason:
        :class:`~repro.core.engine.controls.StopReason` of the enumeration
        that produced the ranking.
    truncated:
        True when run controls stopped that enumeration early — the ranking
        then covers only the cliques emitted before the stop and may miss
        more probable ones.
    """

    def __init__(self, records, *, alpha: float, stop_reason: str) -> None:
        super().__init__(records)
        self.alpha = alpha
        self.stop_reason = stop_reason

    @property
    def truncated(self) -> bool:
        return self.stop_reason != StopReason.COMPLETED


def _enumerate_at_least(
    graph: UncertainGraph,
    alpha: float,
    min_size: int,
    config: MuleConfig | None,
    controls: RunControls | None = None,
) -> EnumerationResult:
    """Run the engine with :class:`TopKStrategy`, keeping cliques of size ≥ ``min_size``."""
    alpha = validate_probability(alpha, what="alpha")
    config = config or MuleConfig()
    statistics = SearchStatistics()
    report = RunReport()
    records: list[CliqueRecord] = []
    with Stopwatch() as timer:
        if graph.num_vertices > 0:
            compiled = compile_graph(
                graph, alpha=alpha if config.prune_edges else None
            )
            for members, probability in run_search(
                compiled,
                alpha,
                TopKStrategy(min_size=min_size),
                statistics=statistics,
                controls=controls,
                report=report,
            ):
                records.append(
                    CliqueRecord(vertices=members, probability=probability)
                )
    return EnumerationResult(
        algorithm="top-k",
        alpha=alpha,
        cliques=records,
        statistics=statistics,
        elapsed_seconds=timer.elapsed,
        stop_reason=report.stop_reason,
    )


def top_k_maximal_cliques(
    graph: UncertainGraph,
    k: int,
    alpha: float,
    *,
    min_size: int = 2,
    config: MuleConfig | None = None,
    controls: RunControls | None = None,
) -> TopKResult:
    """Return the ``k`` α-maximal cliques with the highest clique probability.

    Ties are broken by larger size, then lexicographically by vertex tuple,
    so the output is deterministic.  Singleton cliques trivially have
    probability 1 and would always dominate the ranking, so by default only
    cliques with at least ``min_size = 2`` vertices are considered; pass
    ``min_size=1`` to include singletons.

    ``controls`` bounds the underlying enumeration like every other
    enumerator; when it truncates the run, the returned
    :class:`TopKResult` has ``truncated=True`` and ranks only the cliques
    emitted before the stop.

    Raises
    ------
    ParameterError
        If ``k`` or ``min_size`` is not positive.
    """
    if k <= 0:
        raise ParameterError(f"k must be positive, got {k}")
    if min_size <= 0:
        raise ParameterError(f"min_size must be positive, got {min_size}")
    result = _enumerate_at_least(graph, alpha, min_size, config, controls)
    return TopKResult(
        result.top_k_by_probability(k),
        alpha=result.alpha,
        stop_reason=result.stop_reason,
    )


def top_k_by_threshold_search(
    graph: UncertainGraph,
    k: int,
    *,
    initial_alpha: float = 0.5,
    shrink_factor: float = 0.1,
    min_alpha: float = 1e-9,
    min_size: int = 2,
    config: MuleConfig | None = None,
    controls: RunControls | None = None,
) -> TopKResult:
    """Return the ``k`` most probable maximal cliques without a caller-chosen α.

    The search starts at ``initial_alpha`` and geometrically lowers the
    threshold (multiplying by ``shrink_factor``) until the enumeration
    returns at least ``k`` cliques of size ≥ ``min_size`` or the threshold
    reaches ``min_alpha``.  Because every α-maximal clique with probability
    ≥ α is found at threshold α, the final top-``k`` selection is exact as
    soon as ``k`` qualifying cliques with probability ≥ α exist.  As in
    :func:`top_k_maximal_cliques`, singletons are excluded by default.

    ``controls`` applies to the search as a whole: ``time_budget_seconds``
    is the budget across *all* threshold passes (each pass receives only
    the time remaining), and ``max_cliques`` caps each pass.  A truncated
    pass ends the descent immediately — lowering α further could not be
    enumerated within the budget either — and the returned
    :class:`TopKResult` carries the truncation in its provenance.

    Raises
    ------
    ParameterError
        If ``k`` or ``min_size`` is not positive, ``shrink_factor`` is not
        in (0, 1), or the initial threshold is not in (0, 1].
    """
    if k <= 0:
        raise ParameterError(f"k must be positive, got {k}")
    if min_size <= 0:
        raise ParameterError(f"min_size must be positive, got {min_size}")
    if not 0.0 < shrink_factor < 1.0:
        raise ParameterError(f"shrink_factor must be in (0, 1), got {shrink_factor}")
    if not 0.0 < initial_alpha <= 1.0:
        raise ParameterError(f"initial_alpha must be in (0, 1], got {initial_alpha}")

    deadline = None
    if controls is not None and controls.time_budget_seconds is not None:
        deadline = monotonic() + controls.time_budget_seconds

    alpha = initial_alpha
    while True:
        pass_controls = controls
        if deadline is not None:
            pass_controls = replace(
                controls, time_budget_seconds=max(0.0, deadline - monotonic())
            )
        result = _enumerate_at_least(graph, alpha, min_size, config, pass_controls)
        best = result.top_k_by_probability(k)
        if len(best) >= k or alpha <= min_alpha or result.truncated:
            return TopKResult(best, alpha=alpha, stop_reason=result.stop_reason)
        alpha = max(alpha * shrink_factor, min_alpha)
