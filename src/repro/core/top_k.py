"""Top-k maximal cliques by clique probability.

This implements the problem studied by the closest related work the paper
compares against (Zou et al., ICDE 2010): return the ``k`` maximal cliques
of an uncertain graph with the highest probability of existence.  The paper
contrasts its own problem (enumerate *all* α-maximal cliques) with this one;
having both in the library lets the examples and benchmarks reproduce that
comparison.

Two strategies are provided:

* :func:`top_k_maximal_cliques` — run the shared engine at a caller-chosen
  α with :class:`~repro.core.engine.strategies.TopKStrategy` (MULE's search
  restricted to cliques of at least ``min_size`` vertices) and keep the
  ``k`` most probable emissions (a direct reduction; exact whenever at
  least ``k`` cliques have probability ≥ α).
* :func:`top_k_by_threshold_search` — repeatedly lower α geometrically until
  at least ``k`` α-maximal cliques are found, then report the best ``k``.
  This removes the need to guess α and is the strategy used by the example
  applications.

Both accept :class:`~repro.core.engine.controls.RunControls` like every
other enumerator, and both return a :class:`TopKResult` — a plain ``list``
of records augmented with the run's provenance (``stop_reason`` /
``truncated``), so a ranking computed from a truncated enumeration is never
mistaken for the exact answer.  Both are thin delegates over
:class:`repro.api.MiningSession` (which exposes the same rankings as
uniform :class:`~repro.api.EnumerationOutcome` objects).
"""

from __future__ import annotations

from collections.abc import Hashable

from ..api.request import EnumerationRequest
from ..api.session import MiningSession
from ..errors import ParameterError
from ..uncertain.graph import UncertainGraph
from .engine.controls import RunControls, StopReason
from .mule import MuleConfig

__all__ = ["TopKResult", "top_k_maximal_cliques", "top_k_by_threshold_search"]

Vertex = Hashable


class TopKResult(list):
    """A ranked list of :class:`CliqueRecord` objects with run provenance.

    Behaves exactly like the plain ``list`` the top-k functions used to
    return (indexing, equality, iteration), with three extra attributes:

    Attributes
    ----------
    alpha:
        The threshold the final enumeration ran at (for
        :func:`top_k_by_threshold_search`, the last α tried).
    stop_reason:
        :class:`~repro.core.engine.controls.StopReason` of the enumeration
        that produced the ranking.
    truncated:
        True when run controls stopped that enumeration early — the ranking
        then covers only the cliques emitted before the stop and may miss
        more probable ones.
    """

    def __init__(self, records, *, alpha: float, stop_reason: str) -> None:
        super().__init__(records)
        self.alpha = alpha
        self.stop_reason = stop_reason

    @property
    def truncated(self) -> bool:
        return self.stop_reason != StopReason.COMPLETED


def top_k_maximal_cliques(
    graph: UncertainGraph,
    k: int,
    alpha: float,
    *,
    min_size: int = 2,
    config: MuleConfig | None = None,
    controls: RunControls | None = None,
) -> TopKResult:
    """Return the ``k`` α-maximal cliques with the highest clique probability.

    Ties are broken by larger size, then lexicographically by vertex tuple,
    so the output is deterministic.  Singleton cliques trivially have
    probability 1 and would always dominate the ranking, so by default only
    cliques with at least ``min_size = 2`` vertices are considered; pass
    ``min_size=1`` to include singletons.

    ``controls`` bounds the underlying enumeration like every other
    enumerator; when it truncates the run, the returned
    :class:`TopKResult` has ``truncated=True`` and ranks only the cliques
    emitted before the stop.

    Raises
    ------
    ParameterError
        If ``k`` or ``min_size`` is not positive.
    """
    config = config or MuleConfig()
    outcome = MiningSession(graph).enumerate(
        EnumerationRequest(
            algorithm="top_k",
            alpha=alpha,
            k=k,
            min_size=min_size,
            prune_edges=config.prune_edges,
            controls=controls,
        )
    )
    return TopKResult(
        outcome.records,
        alpha=outcome.alpha,
        stop_reason=outcome.stop_reason,
    )


def top_k_by_threshold_search(
    graph: UncertainGraph,
    k: int,
    *,
    initial_alpha: float = 0.5,
    shrink_factor: float = 0.1,
    min_alpha: float = 1e-9,
    min_size: int = 2,
    config: MuleConfig | None = None,
    controls: RunControls | None = None,
) -> TopKResult:
    """Return the ``k`` most probable maximal cliques without a caller-chosen α.

    The search starts at ``initial_alpha`` and geometrically lowers the
    threshold (multiplying by ``shrink_factor``) until the enumeration
    returns at least ``k`` cliques of size ≥ ``min_size`` or the threshold
    reaches ``min_alpha``.  Because every α-maximal clique with probability
    ≥ α is found at threshold α, the final top-``k`` selection is exact as
    soon as ``k`` qualifying cliques with probability ≥ α exist.  As in
    :func:`top_k_maximal_cliques`, singletons are excluded by default.

    ``controls`` applies to the search as a whole: ``time_budget_seconds``
    is the budget across *all* threshold passes (each pass receives only
    the time remaining), and ``max_cliques`` caps each pass.  A truncated
    pass ends the descent immediately — lowering α further could not be
    enumerated within the budget either — and the returned
    :class:`TopKResult` carries the truncation in its provenance.

    Raises
    ------
    ParameterError
        If ``k`` or ``min_size`` is not positive, ``shrink_factor`` is not
        in (0, 1), or the initial threshold is not in (0, 1].
    """
    if k <= 0:
        raise ParameterError(f"k must be positive, got {k}")
    if min_size <= 0:
        raise ParameterError(f"min_size must be positive, got {min_size}")

    config = config or MuleConfig()
    outcome = MiningSession(graph).top_k_search(
        k,
        initial_alpha=initial_alpha,
        shrink_factor=shrink_factor,
        min_alpha=min_alpha,
        min_size=min_size,
        prune_edges=config.prune_edges,
        controls=controls,
    )
    return TopKResult(
        outcome.records,
        alpha=outcome.alpha,
        stop_reason=outcome.stop_reason,
    )
