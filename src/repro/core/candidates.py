"""Candidate (``I``) and exclusion (``X``) bookkeeping for MULE.

The recursive procedure ``Enum-Uncertain-MC`` (Algorithm 2 of the paper)
carries two tuple sets:

* ``I`` — tuples ``(u, r)`` with ``u > max(C)`` such that ``C ∪ {u}`` is an
  α-clique and ``clq(C ∪ {u}, G) = q · r``; these are the vertices that can
  still *extend* the current clique along this search path.
* ``X`` — tuples ``(v, s)`` with ``v < max(C)``, ``v ∉ C`` such that
  ``C ∪ {v}`` is an α-clique and ``clq(C ∪ {v}, G) = q · s``; these vertices
  could extend ``C`` but are explored on a *different* search path, so they
  only matter for the maximality test (``C`` is α-maximal iff both sets are
  empty).

The incremental factors ``r`` / ``s`` are what makes MULE faster than the
naive DFS: extending the clique only requires one multiplication per
candidate instead of recomputing a Θ(|C|) product (the key insight called
out in Section 4 of the paper).

:class:`CandidateSet` wraps a plain ``dict[vertex, factor]`` with the
generation operations of Algorithms 3 (``GenerateI``) and 4 (``GenerateX``).

This module is the reference (paper pseudo-code) formulation of the
bookkeeping; the shared engine (:mod:`repro.core.engine`) carries the same
``I``/``X`` state as bitmask + factor-dict pairs for speed.  The sorted view
of a :class:`CandidateSet` is cached and invalidated on mutation, so
repeated :meth:`CandidateSet.items_sorted` calls cost O(k log k) only after
a mutation, not on every visit.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator, Mapping

from ..uncertain.graph import UncertainGraph

__all__ = ["CandidateSet", "generate_i", "generate_x", "initial_candidates"]

Vertex = Hashable


class CandidateSet:
    """An ordered mapping vertex → incremental probability factor.

    Iteration yields vertices in increasing identifier order, matching the
    lexicographic exploration order required by Algorithm 2 (line 4).
    """

    __slots__ = ("_factors", "_sorted_items")

    def __init__(self, factors: Mapping[Vertex, float] | None = None) -> None:
        self._factors: dict[Vertex, float] = dict(factors) if factors else {}
        self._sorted_items: list[tuple[Vertex, float]] | None = None

    @classmethod
    def from_pairs(cls, pairs: Iterable[tuple[Vertex, float]]) -> "CandidateSet":
        """Build a candidate set from ``(vertex, factor)`` pairs."""
        return cls(dict(pairs))

    def add(self, vertex: Vertex, factor: float) -> None:
        """Insert (or overwrite) a vertex with its factor."""
        self._factors[vertex] = factor
        self._sorted_items = None

    def factor(self, vertex: Vertex) -> float:
        """Return the stored factor for ``vertex`` (KeyError if absent)."""
        return self._factors[vertex]

    def items(self) -> Iterable[tuple[Vertex, float]]:
        """Iterate ``(vertex, factor)`` pairs in insertion order (no sort)."""
        return self._factors.items()

    def items_sorted(self) -> list[tuple[Vertex, float]]:
        """Return ``(vertex, factor)`` pairs sorted by increasing vertex id.

        The sort is computed lazily and cached until the next mutation, so
        repeated calls on an unchanged set are O(k) instead of O(k log k).
        A fresh list is returned each call (the cache is never aliased), so
        callers may mutate the result freely.
        """
        if self._sorted_items is None:
            self._sorted_items = sorted(
                self._factors.items(), key=lambda kv: kv[0]
            )
        return list(self._sorted_items)

    def vertices(self) -> set[Vertex]:
        """Return the set of vertices currently in the candidate set."""
        return set(self._factors)

    def copy(self) -> "CandidateSet":
        """Return a shallow copy."""
        return CandidateSet(self._factors)

    def __contains__(self, vertex: Vertex) -> bool:
        return vertex in self._factors

    def __len__(self) -> int:
        return len(self._factors)

    def __iter__(self) -> Iterator[Vertex]:
        return iter(sorted(self._factors))

    def __bool__(self) -> bool:
        return bool(self._factors)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CandidateSet):
            return NotImplemented
        return self._factors == other._factors

    def __repr__(self) -> str:
        return f"CandidateSet({self._factors!r})"


def initial_candidates(graph: UncertainGraph) -> CandidateSet:
    """Return the initial candidate set ``Î = {(u, 1) : u ∈ V}`` of Algorithm 1."""
    return CandidateSet({u: 1.0 for u in graph.vertices()})


def generate_i(
    graph: UncertainGraph,
    new_max: Vertex,
    new_clique_probability: float,
    candidates: CandidateSet,
    alpha: float,
) -> CandidateSet:
    """Algorithm 3 (``GenerateI``): candidates for the extended clique ``C'``.

    Parameters
    ----------
    graph:
        The uncertain graph.
    new_max:
        The vertex ``m = max(C')`` that was just added to the clique.
    new_clique_probability:
        ``q' = clq(C', G)``.
    candidates:
        The parent's ``I`` set.
    alpha:
        The probability threshold.

    Returns
    -------
    CandidateSet
        Tuples ``(u, r')`` for every ``u ∈ I`` with ``u > m``, ``u`` adjacent
        to ``m``, and ``q' · r · p({u, m}) ≥ α``, where
        ``r' = r · p({u, m})``.
    """
    adjacency = graph.adjacency(new_max)
    result: dict[Vertex, float] = {}
    for u, r in candidates.items():
        if u <= new_max:
            continue
        p = adjacency.get(u)
        if p is None:
            continue
        r_new = r * p
        if new_clique_probability * r_new >= alpha:
            result[u] = r_new
    return CandidateSet(result)


def generate_x(
    graph: UncertainGraph,
    new_max: Vertex,
    new_clique_probability: float,
    exclusions: CandidateSet,
    alpha: float,
) -> CandidateSet:
    """Algorithm 4 (``GenerateX``): exclusion set for the extended clique ``C'``.

    Same filtering as :func:`generate_i` but applied to the parent's ``X``
    set and without the ``u > m`` requirement (every vertex in ``X`` is
    already smaller than ``max(C)`` < ``m``).
    """
    adjacency = graph.adjacency(new_max)
    result: dict[Vertex, float] = {}
    for v, s in exclusions.items():
        p = adjacency.get(v)
        if p is None:
            continue
        s_new = s * p
        if new_clique_probability * s_new >= alpha:
            result[v] = s_new
    return CandidateSet(result)
