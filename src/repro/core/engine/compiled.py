"""The compiled graph stage of the enumeration engine.

Every enumerator used to repeat the same preprocessing pipeline —
validate α, drop edges with ``p(e) < α`` (Observation 3), optionally apply
Shared Neighborhood Filtering (LARGE-MULE), relabel vertices to integers —
and :mod:`repro.core.fast_mule` privately built bitmask adjacency on top.
:class:`CompiledGraph` makes that representation a first-class, shared
artifact:

* vertices are relabelled to ``0..n-1`` in sorted label order (``repr``
  order for non-orderable labels), so the lexicographic exploration order of
  Algorithm 2 becomes plain ascending-integer order;
* each neighborhood is an **integer bitmask**, so the "candidates adjacent
  to the new vertex ``m`` and larger than ``m``" filter of ``GenerateI``
  is two bitwise ANDs;
* edge probabilities live in flat per-vertex dictionaries keyed by the
  integer index, preserving the O(1) lookup the paper's Lemma 10 assumes.

A compiled graph is immutable by convention: strategies read it, never
write it, so one compilation can back many searches (and, later, many
parallel shards).
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable
from typing import Any

from ...uncertain.graph import UncertainGraph
from ...uncertain.operations import prune_edges_below_alpha
from ..pruning import PruningReport, shared_neighborhood_filter

__all__ = ["CompiledGraph", "compile_graph"]

Vertex = Hashable


class CompiledGraph:
    """A search-ready, integer-indexed snapshot of an uncertain graph.

    Attributes
    ----------
    n:
        Number of vertices.
    labels:
        ``labels[i]`` is the original label of vertex index ``i``; indices
        are assigned in sorted label order.
    index_of:
        Inverse mapping original label → index.
    adjacency_mask:
        ``adjacency_mask[i]`` is an integer whose bit ``j`` is set when
        ``{i, j}`` is a possible edge.
    adjacency_probability:
        ``adjacency_probability[i][j]`` is ``p({i, j})`` for every possible
        edge; both directions are stored.
    all_mask:
        ``(1 << n) - 1`` — the bitmask of all vertices.
    higher_masks:
        ``higher_masks[i]`` has exactly the bits of indices strictly greater
        than ``i`` set; used for the ``u > max(C)`` filter of ``GenerateI``.
    root_mask:
        Bitmask of the vertices the search may branch on at the **root** of
        the depth-first tree (``all_mask`` by default).  Restricting it via
        :meth:`restrict_roots` confines a search to the subtrees rooted at a
        subset of first-branch vertices — the sharding primitive of the
        parallel runner (:mod:`repro.parallel`).  Vertices outside the mask
        are still *retired* into the exclusion set as the root frame
        advances, so maximality tests inside the shard remain global and
        every emitted clique is genuinely α-maximal.
    """

    __slots__ = (
        "n",
        "labels",
        "index_of",
        "adjacency_mask",
        "adjacency_probability",
        "all_mask",
        "higher_masks",
        "root_mask",
        "vector_form",
    )

    def __init__(
        self,
        labels: list[Vertex],
        adjacency_mask: list[int],
        adjacency_probability: list[dict[int, float]],
    ) -> None:
        self.n = len(labels)
        self.labels = labels
        self.index_of = {v: i for i, v in enumerate(labels)}
        self.adjacency_mask = adjacency_mask
        self.adjacency_probability = adjacency_probability
        self.all_mask = (1 << self.n) - 1
        self.higher_masks = [
            self.all_mask ^ ((1 << (i + 1)) - 1) for i in range(self.n)
        ]
        self.root_mask = self.all_mask
        # Lazily-built word-array view of this artifact (see
        # repro.core.engine.backends.vector_form).  restrict_roots copies the
        # slot, so shard views inherit the compiled word arrays; derived
        # artifacts (restrict_probability) start from None and build their own.
        self.vector_form = None

    @classmethod
    def from_graph(
        cls, graph: UncertainGraph, *, min_probability: float | None = None
    ) -> "CompiledGraph":
        """Compile ``graph`` into the bitmask representation.

        When ``min_probability`` is given, edges with ``p(e)`` below it are
        dropped during compilation — the Observation 3 preprocessing fused
        into the single compile pass (vertices are always kept, so singleton
        α-maximal cliques survive).

        >>> g = UncertainGraph(edges=[(2, 1, 0.5)])
        >>> cg = CompiledGraph.from_graph(g)
        >>> cg.labels, cg.adjacency_mask
        ([1, 2], [2, 1])
        """
        try:
            ordered = sorted(graph.vertices())
        except TypeError:
            ordered = sorted(
                graph.vertices(), key=lambda v: (type(v).__name__, repr(v))
            )
        index_of = {v: i for i, v in enumerate(ordered)}
        n = len(ordered)
        adjacency_mask = [0] * n
        adjacency_probability: list[dict[int, float]] = [dict() for _ in range(n)]
        for u, v, p in graph.edges():
            if min_probability is not None and p < min_probability:
                continue
            iu, iv = index_of[u], index_of[v]
            adjacency_mask[iu] |= 1 << iv
            adjacency_mask[iv] |= 1 << iu
            adjacency_probability[iu][iv] = p
            adjacency_probability[iv][iu] = p
        return cls(ordered, adjacency_mask, adjacency_probability)

    def restrict_probability(self, min_probability: float) -> "CompiledGraph":
        """Return a new compiled graph without edges below ``min_probability``.

        Produces exactly the artifact ``compile_graph(graph, alpha=p)``
        would — same labels, same indexing, same floats — but derives it
        from the already-compiled arrays: no vertex re-sort, no traversal of
        the original ``UncertainGraph``.  This is the cheap path that lets
        one base compilation back a whole α sweep
        (:meth:`repro.api.MiningSession.sweep`): searches over the derived
        artifact are bit-identical — counters included — to searches over a
        fresh compilation at that α.

        Only restriction is supported: ``min_probability`` must be at least
        as large as the threshold the base was compiled with (dropped edges
        cannot be recovered); callers are responsible for honouring that.

        >>> g = UncertainGraph(edges=[(1, 2, 0.9), (2, 3, 0.4)])
        >>> base = CompiledGraph.from_graph(g)
        >>> base.restrict_probability(0.5).adjacency_mask
        [2, 1, 0]
        """
        masks: list[int] = []
        probabilities: list[dict[int, float]] = []
        for row in self.adjacency_probability:
            kept = {j: p for j, p in row.items() if p >= min_probability}
            mask = 0
            for j in kept:
                mask |= 1 << j
            masks.append(mask)
            probabilities.append(kept)
        return CompiledGraph(self.labels, masks, probabilities)

    def restrict_roots(self, root_mask: int) -> "CompiledGraph":
        """Return a shallow shard view confined to ``root_mask`` first branches.

        The view shares every array with ``self`` (compilation is never
        repeated), differing only in :attr:`root_mask`.  The search kernel
        descends only into root-level branches whose bit is set (strategies
        never see the others); all other root candidates are still retired
        for exclusion-set bookkeeping.  The union of searches
        over a partition of ``all_mask`` therefore emits exactly the cliques
        of the unrestricted search, each exactly once (a clique is emitted
        under the root branch of its smallest vertex).

        >>> g = UncertainGraph(edges=[(1, 2, 0.9)])
        >>> compiled = CompiledGraph.from_graph(g)
        >>> shard = compiled.restrict_roots(0b01)
        >>> shard.root_mask, shard.adjacency_mask is compiled.adjacency_mask
        (1, True)
        """
        view = object.__new__(CompiledGraph)
        for slot in CompiledGraph.__slots__:
            setattr(view, slot, getattr(self, slot))
        view.root_mask = root_mask & self.all_mask
        return view

    # ------------------------------------------------------------------ #
    # Queries used by strategies and tests
    # ------------------------------------------------------------------ #
    def decode(self, indices: Iterable[int]) -> frozenset[Any]:
        """Translate vertex indices back to a frozenset of original labels.

        This sits on the kernel's per-emission path, so it avoids the
        generator-expression frame a naive ``frozenset(labels[i] for i in
        indices)`` would allocate per call (``benchmarks/
        bench_emission_decode.py`` measures the difference).
        """
        return frozenset(map(self.labels.__getitem__, indices))

    def probability(self, i: int, j: int) -> float:
        """Return ``p({i, j})`` for vertex indices, or ``0.0`` when absent."""
        return self.adjacency_probability[i].get(j, 0.0)

    def subset_probability(self, indices: list[int]) -> float:
        """Recompute the clique probability of an index set from scratch.

        Returns ``0.0`` when any required edge is missing.  This is the
        non-incremental primitive used by :class:`NoIncrementalStrategy`;
        the incremental strategies never call it.
        """
        probability = 1.0
        adjacency_probability = self.adjacency_probability
        for pos, u in enumerate(indices):
            row = adjacency_probability[u]
            for v in indices[pos + 1 :]:
                p = row.get(v)
                if p is None:
                    return 0.0
                probability *= p
        return probability

    def __repr__(self) -> str:
        edges = sum(mask.bit_count() for mask in self.adjacency_mask) // 2
        return f"CompiledGraph(n={self.n}, m={edges})"


def compile_graph(
    graph: UncertainGraph,
    *,
    alpha: float | None = None,
    size_threshold: int | None = None,
    pruning_report: PruningReport | None = None,
) -> CompiledGraph:
    """Run the shared preprocessing pipeline and compile the result.

    Parameters
    ----------
    graph:
        The input uncertain graph (never modified).
    alpha:
        When given, apply the Observation 3 preprocessing first: edges with
        ``p(e) < α`` cannot appear in any α-clique of size ≥ 2 and are
        dropped.  Pass ``None`` to skip (the ablation configuration).
    size_threshold:
        When given, additionally apply the Modani–Dey Shared Neighborhood
        Filtering for cliques of at least this many vertices (LARGE-MULE's
        pre-filter).
    pruning_report:
        Optional :class:`~repro.core.pruning.PruningReport` updated in place
        when ``size_threshold`` is given.
    """
    if size_threshold is not None:
        # The Modani–Dey filter works on an actual UncertainGraph, so the
        # edge pruning materialises an intermediate copy on this path.
        working = graph
        if alpha is not None:
            working = prune_edges_below_alpha(working, alpha)
        working = shared_neighborhood_filter(
            working, size_threshold, report=pruning_report
        )
        return CompiledGraph.from_graph(working)
    # Plain path: fuse the Observation 3 edge filter into the compile pass.
    return CompiledGraph.from_graph(graph, min_probability=alpha)
