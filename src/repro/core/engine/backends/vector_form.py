"""The word-array compilation stage of the vector kernel backend.

:class:`VectorForm` recompiles a :class:`~repro.core.engine.compiled.
CompiledGraph` into fixed-width machine words and scan-ready neighbor
lists — the structures the fused drivers of
:mod:`repro.core.engine.backends.vector_kernel` consume:

* **uint64 word arrays** — every adjacency bitmask split into 64-bit
  words (one ``numpy`` ``(n, W)`` ``uint64`` matrix when numpy is
  available, one :class:`array.array` of type code ``'Q'`` per row
  otherwise).  Word-wise set algebra — intersections, unions, popcounts
  — runs over these arrays vectorised at compile time: per-vertex degree
  popcounts come from :func:`numpy.bitwise_count` (a SWAR sweep on the
  pure-``array`` fallback), and the big-int masks the drivers intersect
  per node are materialised straight from the word rows.
* **scan lists** — per-vertex ``(neighbor, probability)`` pairs in
  ascending index order, split into the higher-index suffix ``GenerateI``
  walks and the full row ``GenerateX`` walks, so the drivers can choose
  the cheaper of mask-intersection and list-scan per node.
* **root plans** (:meth:`VectorForm.root_plan`) — per-α precompiled
  depth-1 frames.  After the Observation 3 edge filter every root-level
  survivor test ``q · f · p(e) ≥ α`` is just ``p(e) ≥ α`` (``q = f = 1``
  at the root), so the candidate lists, factor lists, candidate masks and
  exclusion dictionaries of **every** first branch are fully determined
  by the compiled arrays: the drivers enter depth 1 without scanning at
  all.  Plans are cached per α on the form, so sweeps and repeated runs
  pay the build once.

One form is built per compiled artifact and cached on
``CompiledGraph.vector_form``; :meth:`CompiledGraph.restrict_roots`
copies that slot, so parallel shards inherit the compiled word arrays
instead of rebuilding them per shard.
"""

from __future__ import annotations

import os
from array import array
from collections.abc import Iterable
from typing import Any

from ..compiled import CompiledGraph

__all__ = [
    "VectorForm",
    "RootPlan",
    "vector_form",
    "numpy_or_none",
    "reset_numpy_probe",
    "WORD_BITS",
]

#: Width of one machine word of the vector representation.
WORD_BITS = 64

_WORD_MASK = (1 << WORD_BITS) - 1

#: Bound on cached per-α root plans per form (sweeps touch a handful of
#: thresholds; an unbounded cache would pin one plan per α of a 500-point
#: sweep).
_MAX_ROOT_PLANS = 8

# The numpy probe result: _UNPROBED until the first call, then the module
# object or None.  Tests monkeypatch ``_numpy_module`` (or set
# REPRO_DISABLE_NUMPY and call reset_numpy_probe) to exercise the
# pure-``array`` fallback without uninstalling numpy.
_UNPROBED = object()
_numpy_module: Any = _UNPROBED


def numpy_or_none() -> Any:
    """Return the numpy module when usable, ``None`` otherwise.

    The probe runs once and is cached; ``REPRO_DISABLE_NUMPY=1`` masks
    numpy even when importable (the fallback-path tests and the capability
    probe use this).  Absence is a capability, not an error — callers get
    the pure-``array`` word representation instead.
    """
    global _numpy_module
    if _numpy_module is _UNPROBED:
        if os.environ.get("REPRO_DISABLE_NUMPY"):
            _numpy_module = None
        else:
            try:
                import numpy
            except ImportError:
                _numpy_module = None
            else:
                _numpy_module = numpy
    return _numpy_module


def reset_numpy_probe() -> None:
    """Forget the cached numpy probe (re-reads REPRO_DISABLE_NUMPY)."""
    global _numpy_module
    _numpy_module = _UNPROBED


def _mask_to_words(mask: int, word_count: int) -> list[int]:
    """Split an arbitrary-precision bitmask into ``word_count`` uint64 words."""
    return [
        (mask >> (WORD_BITS * k)) & _WORD_MASK for k in range(word_count)
    ]


def _words_to_mask(words: Iterable[Any]) -> int:
    """Rebuild the big-int bitmask from its little-endian word sequence."""
    mask = 0
    shift = 0
    for word in words:
        mask |= int(word) << shift
        shift += WORD_BITS
    return mask


def _popcount_words_swar(words: Iterable[Any]) -> int:
    """Population count of a word sequence (the pure-``array`` path)."""
    return sum(int(word).bit_count() for word in words)


class RootPlan:
    """Precompiled depth-1 frames of one (form, α) pair.

    For every root branch ``u`` the plan holds the child node the python
    backend would build with ``GenerateI``/``GenerateX``: ``cand[u]`` /
    ``factors[u]`` are the surviving higher candidates with their factors
    (shared, never mutated), ``cand_mask[u]`` the matching bitmask,
    ``x_factor[u]`` / ``x_mask[u]`` the surviving exclusion side (the
    dictionary is copied per visit — retirements mutate it), and
    ``cand_dict[u]`` a lazily memoised candidate→factor lookup table.
    """

    __slots__ = ("cand", "factors", "cand_mask", "cand_dict", "x_factor", "x_mask")

    def __init__(
        self,
        cand: list[Any],
        factors: list[Any],
        cand_mask: list[int],
        x_factor: list[Any],
        x_mask: list[int],
    ) -> None:
        self.cand = cand
        self.factors = factors
        self.cand_mask = cand_mask
        self.cand_dict: list[Any] = [None] * len(cand)
        self.x_factor = x_factor
        self.x_mask = x_mask


class VectorForm:
    """Word arrays + scan lists compiled from one :class:`CompiledGraph`.

    Attributes
    ----------
    n, word_count:
        Vertex count and uint64 words per adjacency row.
    words:
        The adjacency matrix as machine words: a ``numpy`` ``(n, W)``
        ``uint64`` array, or a list of ``array('Q')`` rows on the
        pure-python fallback.
    uses_numpy:
        Which of the two representations :attr:`words` is.
    degrees:
        Per-vertex degree, popcounted from the word rows (vectorised via
        ``numpy.bitwise_count`` when available).
    items, items_higher:
        Per-vertex ``(neighbor, probability)`` scan lists in ascending
        order; ``items_higher[u]`` keeps only neighbors ``> u``.
    """

    __slots__ = (
        "n",
        "word_count",
        "words",
        "uses_numpy",
        "degrees",
        "items",
        "items_higher",
        "_root_plans",
    )

    def __init__(self, compiled: CompiledGraph) -> None:
        n = compiled.n
        self.n = n
        self.word_count = max(1, (n + WORD_BITS - 1) // WORD_BITS)
        np = numpy_or_none()
        self.uses_numpy = np is not None
        word_rows = [
            _mask_to_words(mask, self.word_count)
            for mask in compiled.adjacency_mask
        ]
        if np is not None:
            words = np.array(word_rows, dtype=np.uint64).reshape(
                n, self.word_count
            )
            self.words = words
            if hasattr(np, "bitwise_count"):
                degrees = np.bitwise_count(words).sum(axis=1, dtype=np.int64)
            else:  # pragma: no cover - numpy < 2.0
                degrees = np.unpackbits(
                    words.view(np.uint8), axis=1
                ).sum(axis=1, dtype=np.int64)
            self.degrees = [int(d) for d in degrees]
        else:
            self.words = [array("Q", row) for row in word_rows]
            self.degrees = [_popcount_words_swar(row) for row in self.words]
        self.items = [
            sorted(row.items()) for row in compiled.adjacency_probability
        ]
        self.items_higher = [
            [(w, p) for w, p in pairs if w > u]
            for u, pairs in enumerate(self.items)
        ]
        self._root_plans: dict[float, RootPlan] = {}

    def mask_of(self, u: int) -> int:
        """Rebuild vertex ``u``'s adjacency bitmask from its word row."""
        return _words_to_mask(self.words[u])

    def root_plan(self, alpha: float) -> RootPlan:
        """Return the depth-1 frame plan for threshold ``alpha``, cached.

        At the root ``q = 1`` and every candidate factor is ``1``, so the
        ``GenerateI``/``GenerateX`` survivor test collapses to
        ``p(e) ≥ α`` (bit-exactly: multiplying by 1.0 is the identity on
        floats).  With the Observation 3 compile-time filter active every
        edge passes; without it (``prune_edges=False``) the plan applies
        the same filter the python backend would.
        """
        plan = self._root_plans.get(alpha)
        if plan is None:
            if len(self._root_plans) >= _MAX_ROOT_PLANS:
                self._root_plans.clear()
            cand: list[list[int]] = []
            factors: list[list[float]] = []
            cand_mask: list[int] = []
            x_factor: list[dict[int, float]] = []
            x_mask: list[int] = []
            for u, pairs in enumerate(self.items):
                cc: list[int] = []
                nf: list[float] = []
                cm = 0
                xf: dict[int, float] = {}
                xm = 0
                for w, p in pairs:
                    if p < alpha:
                        continue
                    if w > u:
                        cc.append(w)
                        nf.append(p)
                        cm |= 1 << w
                    else:
                        xf[w] = p
                        xm |= 1 << w
                cand.append(cc)
                factors.append(nf)
                cand_mask.append(cm)
                x_factor.append(xf)
                x_mask.append(xm)
            plan = RootPlan(cand, factors, cand_mask, x_factor, x_mask)
            self._root_plans[alpha] = plan
        return plan


def vector_form(compiled: CompiledGraph) -> VectorForm:
    """Return the (cached) vector form of a compiled graph.

    The form is stored on ``compiled.vector_form``:
    :meth:`CompiledGraph.restrict_roots` copies the slot, so every shard
    view of one artifact shares one set of word arrays.
    """
    form = compiled.vector_form
    if form is None:
        form = VectorForm(compiled)
        compiled.vector_form = form
    return form
